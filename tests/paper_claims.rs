//! The capstone: every headline claim of the paper, asserted against one
//! end-to-end run of the full reproduction (era + origin + honeypot
//! pipelines at small scale). Each test names the claim it checks.

use nxdomain::dga::DgaDetector;
use nxdomain::squat::{SquatClassifier, SquatKind};
use nxdomain::study::{origin as origin_analysis, scale, security};
use nxdomain::traffic::{era, honeypot_era, origin, EraConfig, HoneypotConfig, OriginConfig};

fn era_world() -> era::EraWorld {
    era::generate(EraConfig {
        nx_names: 12_000,
        expired_panel: 600,
        resolver_checks: 100,
        ..Default::default()
    })
}

fn origin_world() -> origin::OriginWorld {
    origin::generate(OriginConfig {
        expired_total: 20_000,
        ..Default::default()
    })
}

/// §4.1: "the number of NXDomains is over 225 times greater than the total
/// number of registered domains" — in our world: NXDomain names vastly
/// outnumber the registered panel.
#[test]
fn claim_nxdomains_dwarf_registered_domains() {
    let w = era_world();
    let nx = scale::headline(&w.db).distinct_nx_names;
    let registered = w.expiry_days.len() as u64;
    assert!(nx > registered * 15, "nx {nx} vs registered {registered}");
}

/// §4.1: queries outnumber distinct names severalfold (1.07 T vs 146 B).
#[test]
fn claim_queries_exceed_names() {
    let w = era_world();
    let r = scale::headline(&w.db);
    assert!(r.total_nx_responses > r.distinct_nx_names * 3);
}

/// §4.4: "1,018,964 NXDomains receiving … DNS queries as of 2022, while
/// they have been in non-existent status for more than 5 years."
#[test]
fn claim_long_lived_nxdomains_still_receive_queries() {
    let w = era_world();
    let r = scale::headline(&w.db);
    assert!(r.five_year_names > 0);
    assert!(
        r.five_year_queries > r.five_year_names,
        "multiple queries each"
    );
}

/// §5.1: only a tiny fraction of NXDomains were ever registered; the rest
/// never existed.
#[test]
fn claim_never_registered_majority() {
    let w = era_world();
    let join = origin_analysis::whois_join(&w.db, &w.whois);
    assert!(join.without_history > join.with_history * 10);
}

/// §5.2: "2,770,650 potential DGA-based NXDomains, which represent 3% of
/// all expired NXDomains."
#[test]
fn claim_three_percent_dga_among_expired() {
    let w = origin_world();
    let detector = DgaDetector::default();
    let (_, fraction) =
        origin_analysis::dga_scan(w.domains.iter().map(|d| d.name.as_str()), &detector);
    assert!(
        (0.015..0.06).contains(&fraction),
        "paper: 3%; measured {fraction}"
    );
}

/// §5.2 / Fig. 7: typosquatting is the most common squat type, ahead of
/// combosquatting, with dot/bit/homo trailing.
#[test]
fn claim_squat_type_ordering() {
    let w = origin_world();
    let classifier = SquatClassifier::default();
    let counts =
        origin_analysis::squat_scan(w.domains.iter().map(|d| d.name.as_str()), &classifier);
    let get = |k: SquatKind| counts.get(&k).copied().unwrap_or(0);
    assert!(get(SquatKind::Typo) > 0);
    assert!(get(SquatKind::Typo) >= get(SquatKind::Combo));
    // The two big categories dwarf each of the small ones; at this scale
    // the small three (dot/bit/homo) are single digits and their internal
    // order is noise (classification-precedence overlaps), so compare them
    // collectively.
    let small = get(SquatKind::Dot) + get(SquatKind::Bit) + get(SquatKind::Homo);
    assert!(get(SquatKind::Combo) > small);
    assert!(small > 0);
}

/// §5.2 / Fig. 8: malware dominates the blocklisted categories (79%).
#[test]
fn claim_malware_dominates_blocklist() {
    let w = origin_world();
    let xref = origin_analysis::blocklist_xref(
        w.domains.iter().map(|d| d.name.as_str()),
        &w.blocklist,
        w.domains.len() / 4,
        1_000,
        1_000,
    );
    let total: u64 = xref.hits.values().sum();
    let malware = xref
        .hits
        .get(&nxdomain::blocklist::ThreatCategory::Malware)
        .copied()
        .unwrap_or(0);
    assert!(total > 0);
    assert!(
        malware as f64 / total as f64 > 0.6,
        "paper: 79%; got {}",
        malware as f64 / total as f64
    );
}

/// §6: the four major traffic groups all appear, and automated processes
/// carry the largest share (paper: 5,186,858 of 5,925,311 ≈ 87.5%).
#[test]
fn claim_automated_processes_dominate_honeypot_traffic() {
    let world = honeypot_era::generate(HoneypotConfig {
        scale: 300,
        ..Default::default()
    });
    let report = security::run(&world);
    use nxdomain::honeypot::TrafficCategory as C;
    let g = |c: C| report.totals.get(&c).copied().unwrap_or(0);
    let automated = g(C::ScriptSoftware) + g(C::MaliciousRequest);
    let crawler = g(C::SearchEngineCrawler) + g(C::FileGrabber);
    let referral = g(C::ReferralSearchEngine) + g(C::ReferralEmbedded) + g(C::ReferralMalicious);
    let user = g(C::UserPcMobile) + g(C::UserInApp);
    assert!(automated > 0 && crawler > 0 && referral > 0 && user > 0);
    let share = automated as f64 / report.grand_total as f64;
    assert!((0.75..0.95).contains(&share), "paper ≈87.5%; got {share}");
}

/// §6.3: "not all DNS queries lead to follow-up domain visits" — the
/// honeypot records HTTP for every domain, but the passive-DNS era shows
/// names with queries and no HTTP counterpart (by construction, most of the
/// era's 12k names aren't in the 19-domain panel at all).
#[test]
fn claim_dns_queries_exceed_http_visits() {
    let w = era_world();
    let candidates = scale::headline(&w.db).distinct_nx_names;
    assert!(
        candidates > 19,
        "only 19 of {candidates} names were registered for HTTP study"
    );
}

/// §6.4: gpclick's botnet — one UA, global victims, cloud-proxied sources.
#[test]
fn claim_botnet_takeover_signature() {
    let world = honeypot_era::generate(HoneypotConfig {
        scale: 300,
        ..Default::default()
    });
    let report = security::run(&world);
    let b = &report.botnet;
    assert!(b.total_requests > 1_000);
    assert_eq!(b.continents.len(), 4, "victims on four continents");
    assert_eq!(b.hostname_classes[0].0, "google-proxy");
    // §6.4: "the actual IP addresses that initiate these malicious requests
    // are not widely spread" — top class alone carries the majority.
    let top_share = b.hostname_classes[0].1 as f64 / b.total_requests as f64;
    assert!(top_share > 0.5);
}

/// Appendix A (ethics): the honeypot never interacts beyond serving the
/// landing page — and the interactive extension still refuses probes.
#[test]
fn claim_ethics_envelope_holds() {
    use nxdomain::honeypot::{Interaction, InteractiveResponder};
    use nxdomain::http::HttpRequest;
    let mut responder = InteractiveResponder::new();
    let (resp, kind) = responder.respond(&HttpRequest::get("/"));
    assert_eq!(kind, Interaction::LandingPage);
    assert!(String::from_utf8_lossy(&resp.body).contains("Contact"));
    let (resp, kind) = responder.respond(&HttpRequest::get("/wp-login.php"));
    assert_eq!(kind, Interaction::RefusedProbe);
    assert_eq!(resp.status, 403);
    // Botnet pollers receive an explicit empty task — never a command.
    let (resp, _) = responder.respond(&HttpRequest::get("/getTask.php?imei=1"));
    assert!(String::from_utf8_lossy(&resp.body).contains("\"result\":\"none\""));
}

/// §7: at the measured 4.8% wild hijack rate, the passive view loses only a
/// marginal share of NXDOMAIN signal.
#[test]
fn claim_hijacking_does_not_bias_study() {
    let w = era_world();
    let policy = nxdomain::sim::HijackPolicy::paper_rate(21);
    let (_, _, fraction) = scale::hijack_sensitivity(&w.db, &policy);
    assert!(fraction < 0.1, "lost {fraction}");
}

/// §1 related work (Jung et al., Plonka et al.): "10% to 42% of DNS
/// responses are NXDomain responses" — the sensors below the resolver see
/// an NXDOMAIN share in that band. Our era world is NXDomain-focused, so
/// the share sits near (or above) the top of the measured range; assert it
/// is a substantial but not total fraction.
#[test]
fn claim_nxdomain_share_of_all_responses() {
    let w = era_world();
    let share = nxdomain::passive::query::nxdomain_share(&w.db);
    assert!(share > 0.10, "share {share}");
    assert!(
        share < 1.0,
        "NOERROR traffic must exist (expired panel pre-expiry)"
    );
    let breakdown = nxdomain::passive::query::rcode_breakdown(&w.db);
    assert_eq!(breakdown.len(), 2, "NOERROR and NXDOMAIN rcodes present");
}
