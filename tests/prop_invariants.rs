//! Property-based cross-crate invariants: the registry lifecycle state
//! machine, resolver cache correctness against ground truth, and the
//! passive-store aggregate index.

use std::net::Ipv4Addr;

use nxdomain::passive::PassiveDb;
use nxdomain::sim::{
    Phase, Registry, RegistryConfig, Resolver, ResolverConfig, SimDns, SimDuration, SimTime,
};
use nxdomain::wire::{Name, RCode, RType};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = Name> {
    "[a-z]{3,12}".prop_map(|label| format!("{label}.com").parse::<Name>().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever sequence of ticks/renews happens, a domain's phase follows
    /// the legal ERRP order and resolution is exactly `phase == Registered`.
    #[test]
    fn registry_phase_machine_is_sound(
        name in name_strategy(),
        renew_at_days in proptest::collection::vec(1u64..800, 0..4),
        step_days in 1u64..37,
    ) {
        let start = SimTime::ERA_START;
        let mut registry = Registry::new(RegistryConfig::default(), start);
        registry.register(&name, "owner", "registrar", 1).unwrap();

        let mut renewals = renew_at_days.clone();
        renewals.sort();
        let mut day = 0u64;
        let mut prev_phase = Phase::Registered;
        while day < 900 {
            day += step_days;
            registry.tick(start + SimDuration::days(day));
            while let Some(&r) = renewals.first() {
                if r <= day {
                    // Renewals are only legal in Registered/AutoRenewGrace.
                    let res = registry.renew(&name, 1);
                    let phase = registry.phase(&name);
                    if matches!(phase, Phase::Registered) {
                        prop_assert!(res.is_ok() || res.is_err());
                    }
                    renewals.remove(0);
                } else {
                    break;
                }
            }
            let phase = registry.phase(&name);
            // Legal transitions only (no skipping backwards except via
            // renew/restore to Registered or release to Available).
            let legal = matches!(
                (prev_phase, phase),
                (a, b) if a == b
                    || matches!((a, b),
                        (Phase::Registered, Phase::AutoRenewGrace)
                        | (Phase::AutoRenewGrace, Phase::RedemptionGrace)
                        | (Phase::AutoRenewGrace, Phase::Registered)
                        | (Phase::RedemptionGrace, Phase::PendingDelete)
                        | (Phase::RedemptionGrace, Phase::Registered)
                        | (Phase::PendingDelete, Phase::Available)
                        | (Phase::Available, Phase::Registered)
                        | (Phase::Registered, Phase::RedemptionGrace) // big step jump
                        | (Phase::Registered, Phase::PendingDelete)
                        | (Phase::Registered, Phase::Available)
                        | (Phase::AutoRenewGrace, Phase::PendingDelete)
                        | (Phase::AutoRenewGrace, Phase::Available)
                        | (Phase::RedemptionGrace, Phase::Available))
            );
            prop_assert!(legal, "illegal transition {:?} -> {:?}", prev_phase, phase);
            prop_assert_eq!(registry.resolves(&name), phase == Phase::Registered);
            prev_phase = phase;
        }
    }

    /// The resolver's cached answers always match a fresh uncached resolve
    /// at the same instant.
    #[test]
    fn resolver_cache_transparent(
        names in proptest::collection::vec(name_strategy(), 1..6),
        queries in proptest::collection::vec((0usize..6, 0u64..7200), 1..40),
    ) {
        let start = SimTime::ERA_START;
        let mut dns = SimDns::new(&["com"], RegistryConfig::default(), start);
        // Register every other name.
        for (i, n) in names.iter().enumerate() {
            if i % 2 == 0 {
                let _ = dns.register_domain(n, "o", "r", 1, Ipv4Addr::new(192, 0, 2, 1));
            }
        }
        let mut cached = Resolver::new(ResolverConfig::default());
        let mut uncached = Resolver::new(ResolverConfig {
            positive_cache: false,
            negative_cache: false,
            ..Default::default()
        });
        for (idx, offset) in queries {
            let qname = &names[idx % names.len()];
            let t = start + SimDuration::seconds(offset);
            let a = cached.resolve(&dns, qname, RType::A, t);
            let b = uncached.resolve(&dns, qname, RType::A, t);
            prop_assert_eq!(a.rcode, b.rcode, "cache changed the answer for {}", qname);
            prop_assert_eq!(a.answers, b.answers);
        }
    }

    /// The passive store's per-name aggregates always equal a full scan.
    #[test]
    fn passive_aggregates_match_scan(
        rows in proptest::collection::vec(
            ("[a-c]{1,2}", 0u32..100, 0u8..2, 1u32..50),
            1..60
        ),
    ) {
        let mut db = PassiveDb::new();
        for (label, day, rc, count) in &rows {
            let rcode = if *rc == 0 { RCode::NxDomain } else { RCode::NoError };
            db.record_str(&format!("{label}.com"), *day, 0, rcode, *count);
        }
        for (id, agg) in db.nx_names() {
            let mut nx = 0u64;
            let mut total = 0u64;
            let mut first = u32::MAX;
            let mut last = 0u32;
            for obs in db.rows().filter(|o| o.name == id) {
                total += obs.count as u64;
                if obs.rcode == RCode::NxDomain.to_u8() {
                    nx += obs.count as u64;
                    first = first.min(obs.day);
                    last = last.max(obs.day);
                }
            }
            prop_assert_eq!(agg.nx_queries, nx);
            prop_assert_eq!(agg.total_queries, total);
            prop_assert_eq!(agg.first_nx_day, first);
            prop_assert_eq!(agg.last_nx_day, last);
        }
    }
}
