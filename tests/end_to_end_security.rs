//! Cross-crate integration: the §6 honeypot pipeline end to end — actor
//! workload (nxd-traffic) → recorder/filter/categorizer (nxd-honeypot) →
//! Table 1 and the security analyses (nxd-core) — with per-domain shape
//! checks against the paper's Table 1.

use nxdomain::honeypot::TrafficCategory;
use nxdomain::study::security;
use nxdomain::traffic::{honeypot_era, HoneypotConfig, TABLE1};

fn report() -> (honeypot_era::HoneypotWorld, nxdomain::study::SecurityReport) {
    let world = honeypot_era::generate(HoneypotConfig {
        scale: 200,
        ..Default::default()
    });
    let report = security::run(&world);
    (world, report)
}

#[test]
fn table1_structure_matches_paper() {
    let (_world, r) = report();
    assert_eq!(r.rows.len(), 19);

    // Column dominance must match the paper: script & software is the
    // largest category overall, malicious requests second.
    let g = |c| r.totals.get(&c).copied().unwrap_or(0);
    let script = g(TrafficCategory::ScriptSoftware);
    let malreq = g(TrafficCategory::MaliciousRequest);
    assert!(script > malreq, "script {script} vs malreq {malreq}");
    for cat in [
        TrafficCategory::SearchEngineCrawler,
        TrafficCategory::FileGrabber,
        TrafficCategory::ReferralSearchEngine,
        TrafficCategory::UserPcMobile,
        TrafficCategory::UserInApp,
        TrafficCategory::Other,
    ] {
        assert!(
            malreq > g(cat),
            "{cat:?} should be below malicious requests"
        );
    }
}

#[test]
fn per_domain_signatures() {
    let (_world, r) = report();
    let row = |name: &str| r.rows.iter().find(|t| t.spec.name == name).unwrap();
    let g = |t: &nxdomain::study::DomainTally, c| t.counts.get(&c).copied().unwrap_or(0);

    // gpclick.com: ≥90% of all malicious requests (paper: 90.8%).
    let gp = row("gpclick.com");
    let gp_mal = g(gp, TrafficCategory::MaliciousRequest);
    let all_mal: u64 = r
        .rows
        .iter()
        .map(|t| g(t, TrafficCategory::MaliciousRequest))
        .sum();
    assert!(
        gp_mal as f64 / all_mal as f64 > 0.85,
        "gpclick share {} of {}",
        gp_mal,
        all_mal
    );

    // 1x-sport-bk7.com: the browser-UA status.json storm must be
    // reclassified as automated, not user visits.
    let sport = row("1x-sport-bk7.com");
    assert!(
        g(sport, TrafficCategory::ScriptSoftware) > g(sport, TrafficCategory::UserPcMobile) * 50,
        "status.json storm not reclassified"
    );

    // resheba.online: the single largest row overall (paper: 2,097,152).
    let resheba = row("resheba.online");
    assert_eq!(
        r.rows.iter().map(|t| t.total).max().unwrap(),
        resheba.total,
        "resheba should carry the most traffic"
    );

    // porno-komiksy.com: the most user visits (paper: 25,112).
    let porno = row("porno-komiksy.com");
    let user_total = |t: &nxdomain::study::DomainTally| {
        g(t, TrafficCategory::UserPcMobile) + g(t, TrafficCategory::UserInApp)
    };
    for t in &r.rows {
        assert!(
            user_total(porno) >= user_total(t),
            "{} outranks porno-komiksy",
            t.spec.name
        );
    }

    // conf-cdn.com: file grabbers dominated by e-mail proxies (95.1%).
    let conf = row("conf-cdn.com");
    assert!(g(conf, TrafficCategory::FileGrabber) > g(conf, TrafficCategory::SearchEngineCrawler));
}

#[test]
fn row_totals_approximate_scaled_paper_totals() {
    let (world, r) = report();
    let scale = world.config.scale;
    for (row, spec) in r.rows.iter().zip(TABLE1.iter()) {
        assert_eq!(row.spec.name, spec.name);
        let expected = (spec.total() / scale).max(1);
        let got = row.total;
        // Within a factor of two: scaling floors, filter edge effects, and
        // classification overlaps all nibble at the edges.
        assert!(
            got >= expected / 2 && got <= expected * 2,
            "{}: expected ≈{expected}, got {got}",
            spec.name
        );
    }
}

#[test]
fn noise_never_reaches_the_table() {
    let (world, r) = report();
    // AWS monitor port must be invisible after filtering.
    assert!(r.ports_nxdomain.iter().all(|&(p, _)| p != 52_646));
    // No ACME establishment requests survive into any category count.
    let baseline_ips: std::collections::HashSet<_> =
        world.baseline_packets.iter().map(|p| p.src_ip).collect();
    // The kept set is not directly exposed; verify via filter stats: every
    // domain dropped something, and kept+dropped == input.
    for row in &r.rows {
        let s = row.filter;
        assert_eq!(s.input, s.kept + s.dropped_no_hosting + s.dropped_control);
        assert!(s.dropped_no_hosting + s.dropped_control > 0);
    }
    assert!(!baseline_ips.is_empty());
}

#[test]
fn botnet_analysis_matches_paper_shape() {
    let (_world, r) = report();
    let b = &r.botnet;
    // Fig. 15: google-proxy first at roughly 56%.
    assert_eq!(b.hostname_classes[0].0, "google-proxy");
    let share = b.hostname_classes[0].1 as f64 / b.total_requests as f64;
    assert!((0.48..0.65).contains(&share), "google-proxy share {share}");
    // Fig. 14: all four continents, phones distinct and numerous.
    assert_eq!(b.continents.len(), 4);
    assert!(b.distinct_phones as f64 > b.total_requests as f64 * 0.5);
    // §6.4: Nexus 5X the single most common model.
    assert_eq!(b.models[0].0, "Nexus 5X");
    // Fig. 12: example is masked.
    assert!(b.example_request.contains("imei=A-BBBBBB-CCCCCC-D"));
    assert!(!b.example_request.contains("op=Android&mnc=0"), "sanity");
}

#[test]
fn wire_parse_roundtrip_on_generated_traffic() {
    // Every generated HTTP request must survive wire serialization and
    // re-parsing — ties nxd-httpsim's codec to the actor output.
    let world = honeypot_era::generate(HoneypotConfig {
        scale: 2_000,
        ..Default::default()
    });
    let mut checked = 0;
    for capture in &world.captures {
        for p in capture.packets.iter().take(50) {
            if let Some(req) = p.http_request() {
                let wire = req.to_bytes();
                let parsed = nxdomain::http::HttpRequest::parse(&wire).unwrap();
                assert_eq!(parsed.uri, req.uri);
                assert_eq!(parsed.headers, req.headers);
                checked += 1;
            }
        }
    }
    assert!(checked > 300);
}
