//! Cross-crate integration: the passive-DNS era pipeline end to end —
//! workload generation (nxd-traffic) → database (nxd-passive-dns) →
//! analyses (nxd-core) — with the §4 figure shapes asserted against the
//! paper.

use nxdomain::study::{origin, scale, selection};
use nxdomain::traffic::era::{self, EraConfig};

fn world() -> era::EraWorld {
    era::generate(EraConfig {
        nx_names: 10_000,
        expired_panel: 500,
        resolver_checks: 150,
        ..Default::default()
    })
}

#[test]
fn full_scale_pipeline_shapes() {
    let w = world();

    // Consistency: the passive DB never disagrees with the DNS simulation.
    let (passed, total) = w.consistency;
    assert_eq!(passed, total);

    // Headline scalars are non-trivial.
    let headline = scale::headline(&w.db);
    assert!(headline.total_nx_responses > 10_000);
    assert!(headline.distinct_nx_names > 5_000);
    assert!(
        headline.five_year_names > 0,
        "a long tail of ≥5y NXDomains must exist"
    );

    // Fig. 3: 2014 < 2016; 2021 jumps over 2020; 2022 stays high.
    let fig3 = scale::fig3(&w.db);
    let get = |y: i32| {
        fig3.iter()
            .find(|&&(yy, _)| yy == y)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    assert!(get(2014) < get(2016));
    assert!(
        get(2021) > get(2020) * 1.05,
        "2021 {} vs 2020 {}",
        get(2021),
        get(2020)
    );
    assert!(get(2022) > get(2020));

    // Fig. 4: .com leads both axes; queries align with names.
    let fig4 = scale::fig4(&w.db, 20);
    assert_eq!(fig4[0].tld, "com");
    assert!(fig4[0].nx_queries > fig4[5].nx_queries);

    // Fig. 5: steep decay within ten days.
    let fig5 = scale::fig5(&w.db);
    assert!((fig5[10].names as f64) < fig5[0].names as f64 * 0.6);

    // Fig. 6: expiry spike at ~+30 days exceeding pre-expiry average.
    let fig6 = scale::fig6(&w.db, &w.expiry_days);
    let at = |o: i32| fig6.iter().find(|&&(x, _)| x == o).unwrap().1;
    let pre: f64 = (-30..-5).map(at).sum::<f64>() / 25.0;
    let spike: f64 = (27..=33).map(at).sum::<f64>() / 7.0;
    assert!(spike > pre, "spike {spike} vs pre {pre}");
}

#[test]
fn whois_join_covers_exactly_the_panel() {
    let w = world();
    let join = origin::whois_join(&w.db, &w.whois);
    // Every panel name (and only panel names) has history. A few panel
    // names may emit zero NX queries and thus not appear among nx_names.
    assert!(join.with_history as usize <= w.expiry_days.len());
    assert!(join.with_history as usize >= w.expiry_days.len() * 9 / 10);
    assert!(join.expired_fraction < 0.2);
}

#[test]
fn selection_prefers_high_traffic_old_names() {
    let w = world();
    let criteria = selection::SelectionCriteria {
        min_monthly_queries: 20.0,
        min_nx_days: 182,
        as_of_day: nxdomain::sim::SimTime::ERA_END.day_number() as u32,
        max_selected: 19,
    };
    let picked = selection::select(&w.db, &criteria);
    assert!(!picked.is_empty(), "the heavy tail guarantees candidates");
    assert!(picked.len() <= 19);
    for c in &picked {
        assert!(c.nx_days >= 182);
        assert!(c.avg_monthly_queries >= 20.0);
    }
    // Ordered by total volume.
    for pair in picked.windows(2) {
        assert!(pair[0].total_nx_queries >= pair[1].total_nx_queries);
    }
}

#[test]
fn sampling_is_stable_and_proportional() {
    let w = world();
    let s1 = origin::sample_names(&w.db, 100, 7);
    let s2 = origin::sample_names(&w.db, 100, 7);
    assert_eq!(s1, s2);
    let expected = scale::headline(&w.db).distinct_nx_names / 100;
    let got = s1.len() as u64;
    assert!(
        got.abs_diff(expected) < expected / 2 + 20,
        "1/100 sample of {} names gave {}",
        expected * 100,
        got
    );
}

#[test]
fn hijack_rates_scale_monotonically() {
    use nxdomain::sim::HijackPolicy;
    let w = world();
    let mut last = 0.0;
    for rate in [0u16, 48, 200, 600] {
        let policy = HijackPolicy {
            rate_permille: rate,
            ..HijackPolicy::paper_rate(3)
        };
        let (_, _, fraction) = scale::hijack_sensitivity(&w.db, &policy);
        assert!(fraction >= last, "hijack fraction must grow with rate");
        last = fraction;
    }
    // At the paper's 4.8% the loss is marginal (<10%).
    let (_, _, f) = scale::hijack_sensitivity(&w.db, &HijackPolicy::paper_rate(3));
    assert!(f < 0.10, "got {f}");
}
