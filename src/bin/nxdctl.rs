//! `nxdctl` — a command-line companion for exploring the nxdomain library:
//! resolution against a simulated DNS world, DGA generation and scoring,
//! squat generation and classification (including IDN homographs), domain
//! lifecycle timelines, and pcap export of a sample honeypot capture.
//!
//! ```text
//! nxdctl resolve paypal.com --register
//! nxdctl dga list
//! nxdctl dga gen lcg 42 2022-06-01 10
//! nxdctl dga check google.com xkqzvwpjh.com
//! nxdctl squat gen paypal.com
//! nxdctl squat check gogle.com twitter-support.com
//! nxdctl idn apple.com
//! nxdctl punycode encode bücher
//! nxdctl lifecycle beloved-project.com
//! nxdctl pcap /tmp/demo.pcap
//! nxdctl obs scrape 127.0.0.1:9090
//! nxdctl obs scrape 127.0.0.1:9090 /snapshot.json
//! nxdctl obs journal 127.0.0.1:9090 42
//! nxdctl dns 127.0.0.1:5353 ghost.example.com
//! nxdctl dns 127.0.0.1:5353 example.com mx --tcp
//! ```
//!
//! `obs` talks to a live observability plane started with
//! `repro --serve <addr>` (see `nxdomain::obs`); `dns` sends a real wire
//! query to a live DNS front-end started with `repro --serve-dns <addr>`
//! (see `nxdomain::serve`) over UDP, or TCP with `--tcp`.

use std::net::Ipv4Addr;

use nxdomain::dga::{all_families, DgaDetector};
use nxdomain::honeypot::{Packet, PcapWriter};
use nxdomain::http::HttpRequest;
use nxdomain::sim::{
    EventKind, Registry, RegistryConfig, Resolver, ResolverConfig, SimDns, SimDuration, SimTime,
};
use nxdomain::squat::{generate, idn, SquatClassifier};
use nxdomain::wire::{Name, RType};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let code = match argv.split_first() {
        Some((&"resolve", rest)) => cmd_resolve(rest),
        Some((&"dga", rest)) => cmd_dga(rest),
        Some((&"squat", rest)) => cmd_squat(rest),
        Some((&"idn", rest)) => cmd_idn(rest),
        Some((&"punycode", rest)) => cmd_punycode(rest),
        Some((&"lifecycle", rest)) => cmd_lifecycle(rest),
        Some((&"pcap", rest)) => cmd_pcap(rest),
        Some((&"obs", rest)) => cmd_obs(rest),
        Some((&"dns", rest)) => cmd_dns(rest),
        _ => {
            eprintln!("usage: nxdctl <resolve|dga|squat|idn|punycode|lifecycle|pcap|obs|dns> ...");
            eprintln!("see the module docs at the top of src/bin/nxdctl.rs for examples");
            2
        }
    };
    std::process::exit(code);
}

fn parse_name(s: &str) -> Result<Name, String> {
    s.parse().map_err(|e| format!("invalid domain {s:?}: {e}"))
}

fn cmd_resolve(args: &[&str]) -> i32 {
    let Some(&domain) = args.first() else {
        eprintln!("usage: nxdctl resolve <name> [--register]");
        return 2;
    };
    let name = match parse_name(domain) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let start = SimTime::from_ymd(2022, 1, 1);
    let mut dns = SimDns::with_popular_tlds(start);
    if args.contains(&"--register") {
        match name.registrable() {
            Some(reg) => {
                match dns.register_domain(&reg, "nxdctl", "cli", 1, Ipv4Addr::new(192, 0, 2, 80)) {
                    Ok(expires) => println!("registered {reg} until {expires}"),
                    Err(e) => {
                        eprintln!("cannot register {reg}: {e:?}");
                        return 1;
                    }
                }
            }
            None => {
                eprintln!("{name} has no registrable form");
                return 1;
            }
        }
    }
    let mut resolver = Resolver::new(ResolverConfig::default());
    let res = resolver.resolve(&dns, &name, RType::A, start);
    println!(
        "{name} → {} ({} upstream queries{})",
        res.rcode,
        res.upstream_queries,
        if res.from_cache { ", cached" } else { "" }
    );
    for record in &res.answers {
        println!("  {} {} {}", record.name, record.rtype(), record.rdata);
    }
    0
}

fn cmd_dga(args: &[&str]) -> i32 {
    match args.split_first() {
        Some((&"list", _)) => {
            for family in all_families() {
                println!("{}", family.name());
            }
            0
        }
        Some((&"gen", rest)) => {
            let (Some(&fam_name), Some(&seed), Some(&date)) =
                (rest.first(), rest.get(1), rest.get(2))
            else {
                eprintln!("usage: nxdctl dga gen <family> <seed> <YYYY-MM-DD> [count]");
                return 2;
            };
            let count: usize = rest.get(3).and_then(|c| c.parse().ok()).unwrap_or(10);
            let Ok(seed) = seed.parse::<u64>() else {
                eprintln!("bad seed {seed:?}");
                return 2;
            };
            let mut parts = date.split('-');
            let (Some(y), Some(m), Some(d)) = (
                parts.next().and_then(|v| v.parse::<i32>().ok()),
                parts.next().and_then(|v| v.parse::<u32>().ok()),
                parts.next().and_then(|v| v.parse::<u32>().ok()),
            ) else {
                eprintln!("bad date {date:?} (want YYYY-MM-DD)");
                return 2;
            };
            let families = all_families();
            let Some(family) = families.iter().find(|f| f.name() == fam_name) else {
                eprintln!("unknown family {fam_name:?} (try `nxdctl dga list`)");
                return 2;
            };
            for candidate in family.generate(seed, (y, m, d), count) {
                println!("{candidate}");
            }
            0
        }
        Some((&"check", names)) if !names.is_empty() => {
            let detector = DgaDetector::default();
            for name in names {
                println!(
                    "{name:<32} score {:>7.2}  {}",
                    detector.score(name),
                    if detector.is_dga(name) {
                        "DGA"
                    } else {
                        "benign"
                    }
                );
            }
            0
        }
        _ => {
            eprintln!("usage: nxdctl dga <list|gen|check> ...");
            2
        }
    }
}

fn cmd_squat(args: &[&str]) -> i32 {
    match args.split_first() {
        Some((&"gen", rest)) => {
            let Some(&target) = rest.first() else {
                eprintln!("usage: nxdctl squat gen <brand.tld>");
                return 2;
            };
            for (label, squats) in [
                ("typo", generate::typosquats(target)),
                ("combo", generate::combosquats(target)),
                ("dot", generate::dotsquats(target)),
                ("bit", generate::bitsquats(target)),
                ("homo", generate::homosquats(target)),
            ] {
                println!("# {label} ({})", squats.len());
                for s in squats.iter().take(8) {
                    println!("{s}");
                }
            }
            0
        }
        Some((&"check", names)) if !names.is_empty() => {
            let classifier = SquatClassifier::default();
            for name in names {
                match classifier.classify(name) {
                    Some(m) => println!("{name:<28} {} of {}", m.kind.label(), m.target),
                    None => println!("{name:<28} not a squat"),
                }
            }
            0
        }
        _ => {
            eprintln!("usage: nxdctl squat <gen|check> ...");
            2
        }
    }
}

fn cmd_idn(args: &[&str]) -> i32 {
    let Some(&target) = args.first() else {
        eprintln!("usage: nxdctl idn <brand.tld>");
        return 2;
    };
    let squats = idn::idn_homosquats(target);
    if squats.is_empty() {
        println!("no confusable characters in {target}");
        return 0;
    }
    println!("{:<24} {:<32} projects-to", "unicode", "registered (IDNA)");
    for (unicode, ascii) in squats {
        let projection = idn::ascii_projection(&ascii).unwrap_or_default();
        println!("{unicode:<24} {ascii:<32} {projection}");
    }
    0
}

fn cmd_punycode(args: &[&str]) -> i32 {
    match args {
        [op, label] => {
            let result = match *op {
                "encode" => idn::punycode_encode(label),
                "decode" => idn::punycode_decode(label),
                _ => None,
            };
            match result {
                Some(out) => {
                    println!("{out}");
                    0
                }
                None => {
                    eprintln!("punycode {op} failed for {label:?}");
                    1
                }
            }
        }
        _ => {
            eprintln!("usage: nxdctl punycode <encode|decode> <label>");
            2
        }
    }
}

fn cmd_lifecycle(args: &[&str]) -> i32 {
    let Some(&domain) = args.first() else {
        eprintln!("usage: nxdctl lifecycle <brand.tld>");
        return 2;
    };
    let name = match parse_name(domain) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let start = SimTime::from_ymd(2022, 1, 1);
    let mut registry = Registry::new(RegistryConfig::default(), start);
    if let Err(e) = registry.register(&name, "owner", "registrar", 1) {
        eprintln!("cannot register {name}: {e:?}");
        return 1;
    }
    registry.tick(start + SimDuration::days(460));
    for event in registry.drain_events() {
        let what = match &event.kind {
            EventKind::Registered { expires, .. } => format!("registered, expires {expires}"),
            EventKind::Renewed { expires } => format!("renewed until {expires}"),
            EventKind::ExpirationNotice { number } => format!("expiration notice {number}/3"),
            EventKind::Expired => "expired (NXDomain from now on)".into(),
            EventKind::EnteredRedemption => "entered redemption grace period".into(),
            EventKind::Restored { expires } => format!("restored until {expires}"),
            EventKind::PendingDelete => "pending delete".into(),
            EventKind::Released => "released to the public".into(),
            EventKind::DropCaught { catcher } => format!("drop-caught by {catcher}"),
        };
        println!("{}  {what}", event.at);
    }
    0
}

fn cmd_obs(args: &[&str]) -> i32 {
    match args.split_first() {
        Some((&"scrape", rest)) => {
            let Some(&addr) = rest.first() else {
                eprintln!("usage: nxdctl obs scrape <host:port> [path]");
                return 2;
            };
            let path = rest.get(1).copied().unwrap_or("/metrics");
            match nxdomain::obs::http_get(addr, path) {
                Ok(res) if res.status == 200 => {
                    print!("{}", res.body);
                    0
                }
                Ok(res) => {
                    eprintln!("GET {path} → HTTP {}", res.status);
                    eprint!("{}", res.body);
                    1
                }
                Err(e) => {
                    eprintln!("cannot scrape {addr}{path}: {e}");
                    1
                }
            }
        }
        Some((&"journal", rest)) => {
            let Some(&addr) = rest.first() else {
                eprintln!("usage: nxdctl obs journal <host:port> [since-seq]");
                return 2;
            };
            let since: u64 = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
            match nxdomain::obs::http_get(addr, &format!("/journal?since={since}")) {
                Ok(res) if res.status == 200 => {
                    print!("{}", res.body);
                    0
                }
                Ok(res) => {
                    eprintln!("GET /journal → HTTP {}", res.status);
                    1
                }
                Err(e) => {
                    eprintln!("cannot reach {addr}: {e}");
                    1
                }
            }
        }
        _ => {
            eprintln!("usage: nxdctl obs <scrape|journal> <host:port> ...");
            2
        }
    }
}

fn cmd_pcap(args: &[&str]) -> i32 {
    let Some(&path) = args.first() else {
        eprintln!("usage: nxdctl pcap <output-file>");
        return 2;
    };
    let mut writer = PcapWriter::new(Ipv4Addr::new(192, 0, 2, 80));
    // A small representative capture: a botnet poll, a crawler fetch, and a
    // vulnerability probe.
    writer.write_packet(&Packet::http(
        HttpRequest::get("/getTask.php?imei=1-2-3&country=us&model=Nexus%205X")
            .with_header("Host", "gpclick.com")
            .with_header("User-Agent", "Apache-HttpClient/UNAVAILABLE (java 1.4)")
            .with_src(Ipv4Addr::new(66, 102, 1, 2))
            .with_port(80)
            .with_time(1_650_000_000),
    ));
    writer.write_packet(&Packet::http(
        HttpRequest::get("/page-1.html")
            .with_header("Host", "resheba.online")
            .with_header("User-Agent", "Mozilla/5.0 (compatible; Googlebot/2.1)")
            .with_src(Ipv4Addr::new(66, 249, 66, 1))
            .with_port(443)
            .with_time(1_650_000_060),
    ));
    writer.write_packet(&Packet::http(
        HttpRequest::get("/wp-login.php")
            .with_header("Host", "yebeda.org")
            .with_header("User-Agent", "python-requests/2.28")
            .with_src(Ipv4Addr::new(93, 1, 2, 3))
            .with_port(80)
            .with_time(1_650_000_120),
    ));
    let bytes = writer.finish();
    match std::fs::write(path, &bytes) {
        Ok(()) => {
            println!("wrote {} bytes ({} packets) to {path}", bytes.len(), 3);
            0
        }
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            1
        }
    }
}

fn cmd_dns(args: &[&str]) -> i32 {
    use nxdomain::serve::{tcp_exchange, StubResolver, MAX_TCP_MESSAGE};
    use nxdomain::wire::Message;
    use std::net::ToSocketAddrs;
    use std::time::Duration;

    let tcp = args.contains(&"--tcp");
    let positional: Vec<&&str> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (Some(&&server), Some(&&domain)) = (positional.first(), positional.get(1)) else {
        eprintln!(
            "usage: nxdctl dns <server-addr> <name> [a|aaaa|ns|mx|txt|soa|cname|ptr] [--tcp]"
        );
        return 2;
    };
    let name = match parse_name(domain) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let rtype = match positional.get(2).map(|t| t.to_ascii_lowercase()) {
        None => RType::A,
        Some(t) => match t.as_str() {
            "a" => RType::A,
            "aaaa" => RType::Aaaa,
            "ns" => RType::Ns,
            "mx" => RType::Mx,
            "txt" => RType::Txt,
            "soa" => RType::Soa,
            "cname" => RType::Cname,
            "ptr" => RType::Ptr,
            other => {
                eprintln!("unknown record type {other:?}");
                return 2;
            }
        },
    };
    let Ok(Some(addr)) = server.to_socket_addrs().map(|mut a| a.next()) else {
        eprintln!("cannot resolve server address {server:?}");
        return 2;
    };
    let query = match Message::query(0x4e58, name, rtype).encode() {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot encode query: {e}");
            return 2;
        }
    };
    let timeout = Duration::from_secs(3);
    let exchange = if tcp {
        tcp_exchange(addr, std::slice::from_ref(&query), timeout, MAX_TCP_MESSAGE)
            .map(|mut r| r.pop().unwrap_or_default())
    } else {
        StubResolver::connect(addr, timeout, 3).and_then(|stub| {
            stub.exchange(&query).map(|e| {
                if e.retransmits > 0 {
                    eprintln!("({} udp retransmissions)", e.retransmits);
                }
                e.response
            })
        })
    };
    let response = match exchange {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "no answer from {addr} ({}): {e}",
                if tcp { "tcp" } else { "udp" }
            );
            return 1;
        }
    };
    let message = match Message::decode(&response) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("undecodable response ({} bytes): {e}", response.len());
            return 1;
        }
    };
    println!(
        "{:?} from {addr} over {} ({} bytes, aa={})",
        message.header.rcode,
        if tcp { "tcp" } else { "udp" },
        response.len(),
        message.header.aa,
    );
    for (section, records) in [
        ("answer", &message.answers),
        ("authority", &message.authorities),
        ("additional", &message.additionals),
    ] {
        for record in records {
            println!(
                "{section:<10} {} {}s {:?}",
                record.name, record.ttl, record.rdata
            );
        }
    }
    0
}
