//! `nxd-analyze` — batch front end for the `nxd-analyzer` rule engine.
//!
//! ```text
//! nxd-analyze rules                     # print the rule catalog
//! nxd-analyze message <hex> [--json]    # analyze one wire-format message
//! nxd-analyze zonefile <path> <origin> [--json]
//! nxd-analyze demo [--json]             # analyze a deliberately broken response
//! ```
//!
//! Exit codes: 0 = clean, 1 = diagnostics found (or High diagnostics for
//! `zonefile`/`message`), 2 = usage or input error.

use nxdomain::analyzer::{catalog, Analyzer, Report};
use nxdomain::sim::parse_records;
use nxdomain::wire::{Message, Name, RCode, RData, RType, Record};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let argv: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--json")
        .collect();
    let code = match argv.split_first() {
        Some((&"rules", _)) => cmd_rules(json),
        Some((&"message", rest)) => cmd_message(rest, json),
        Some((&"zonefile", rest)) => cmd_zonefile(rest, json),
        Some((&"demo", _)) => cmd_demo(json),
        _ => {
            eprintln!("usage: nxd-analyze <rules|message|zonefile|demo> [...] [--json]");
            eprintln!("see the module docs at the top of src/bin/nxd-analyze.rs for examples");
            2
        }
    };
    std::process::exit(code);
}

/// Prints a report in the requested format and maps it to an exit code.
fn emit(report: &Report, json: bool) -> i32 {
    if json {
        println!("{}", report.to_json());
    } else if report.is_clean() {
        println!("clean: no diagnostics");
    } else {
        println!("{}", report.to_text());
    }
    i32::from(!report.is_clean())
}

fn cmd_rules(json: bool) -> i32 {
    if json {
        let rows: Vec<String> = catalog()
            .iter()
            .map(|r| {
                format!(
                    "{{\"id\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"rfc\":\"{}\"}}",
                    r.id,
                    r.name,
                    r.severity.as_str(),
                    r.rfc
                )
            })
            .collect();
        println!("[{}]", rows.join(","));
    } else {
        println!("{:<8} {:<8} {:<32} rfc", "id", "severity", "name");
        for rule in catalog() {
            println!(
                "{:<8} {:<8} {:<32} {}",
                rule.id,
                rule.severity.as_str(),
                rule.name,
                rule.rfc
            );
        }
    }
    0
}

fn cmd_message(args: &[&str], json: bool) -> i32 {
    let Some(&hex) = args.first() else {
        eprintln!("usage: nxd-analyze message <hex-encoded-wire-bytes> [--json]");
        return 2;
    };
    let Some(bytes) = decode_hex(hex) else {
        eprintln!("not a hex string: {hex:?}");
        return 2;
    };
    match Analyzer::new().analyze_bytes(&bytes) {
        Ok(report) => emit(&report, json),
        Err(e) => {
            eprintln!("cannot decode message: {e:?}");
            2
        }
    }
}

fn cmd_zonefile(args: &[&str], json: bool) -> i32 {
    let (Some(&path), Some(&origin)) = (args.first(), args.get(1)) else {
        eprintln!("usage: nxd-analyze zonefile <path> <origin> [--json]");
        return 2;
    };
    let apex: Name = match origin.parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("invalid origin {origin:?}: {e}");
            return 2;
        }
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let records = match parse_records(&input, &apex) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return 2;
        }
    };
    let report = Analyzer::new().analyze_records(&apex, &records);
    emit(&report, json)
}

/// Analyzes a deliberately non-conformant NXDOMAIN response: no SOA, a
/// stray answer, and an over-limit TTL — a quick tour of the wire rules.
fn cmd_demo(json: bool) -> i32 {
    let qname: Name = "ghost.example.com".parse().expect("static name");
    let query = Message::query(0x1D4E, qname.clone(), RType::A);
    let mut resp = Message::response(&query, RCode::NxDomain);
    resp.answers.push(Record::new(
        qname,
        0x8000_0000,
        RData::Txt(vec!["oops".to_string()]),
    ));
    let report = Analyzer::new().analyze_message(&resp);
    let code = emit(&report, json);
    if !json {
        println!("(the `rules` subcommand lists every check; RFC 2308 wants an SOA here)");
    }
    code
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    let s: String = s.chars().filter(|c| !c.is_ascii_whitespace()).collect();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}
