//! `nxd-lint` — the workspace invariant linter's command-line front end.
//!
//! ```text
//! nxd-lint                        # lint the workspace, text report
//! nxd-lint --strict               # non-zero exit on any surviving finding
//! nxd-lint --json                 # machine-readable report
//! nxd-lint --baseline FILE        # absorb grandfathered findings (default: lint-baseline.txt)
//! nxd-lint --write-baseline FILE  # snapshot current findings as a new baseline
//! nxd-lint --list-rules           # print the rule catalog and exit
//! ```
//!
//! Exit codes: 0 = clean (stale baseline entries still exit 0 without
//! `--strict`), 1 = surviving findings (or, with `--strict`, stale baseline
//! entries), 2 = usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nxd_lint::{catalog, find_workspace_root, Baseline, Linter};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nxd-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut strict = false;
    let mut json = false;
    let mut list_rules = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--baseline" => {
                let path = it.next().ok_or("--baseline needs a file path")?;
                baseline_path = Some(PathBuf::from(path));
            }
            "--write-baseline" => {
                let path = it.next().ok_or("--write-baseline needs a file path")?;
                write_baseline = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }

    if list_rules {
        for info in catalog() {
            println!(
                "{} {:<24} [{}] {}\n    invariant: {}",
                info.id, info.name, info.severity, info.summary, info.invariant
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
    let root = find_workspace_root(&cwd).ok_or("no workspace root above the current directory")?;

    if let Some(out) = write_baseline {
        // Snapshot what a bare run (no baseline) reports.
        let report = Linter::new()
            .lint_workspace(&root)
            .map_err(|e| format!("walking {}: {e}", root.display()))?;
        let text = Baseline::render(&report.findings);
        std::fs::write(&out, text).map_err(|e| format!("writing {}: {e}", out.display()))?;
        eprintln!(
            "nxd-lint: wrote {} baseline entries to {}",
            report.findings.len(),
            out.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_file = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    let baseline = load_baseline(&baseline_file)?;
    let report = Linter::new()
        .with_baseline(baseline)
        .lint_workspace(&root)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }

    let stale = !report.stale_baseline.is_empty();
    if !report.is_clean() || (strict && stale) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Reads the baseline file; a missing file is an empty baseline, any other
/// I/O failure is fatal (a truncated read must never hide findings).
fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(Baseline::parse(&text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

fn usage() -> &'static str {
    "usage: nxd-lint [--strict] [--json] [--baseline FILE] [--write-baseline FILE] [--list-rules]"
}
