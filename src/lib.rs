//! # nxdomain
//!
//! A full reproduction of *"Dial "N" for NXDomain: The Scale, Origin, and
//! Security Implications of DNS Queries to Non-Existent Domains"*
//! (IMC 2023) as a Rust workspace, with every proprietary substrate the
//! paper relies on (Farsight passive DNS, WhoisXML, commercial DGA/squat
//! detectors, the Palo Alto blocklist, and the 19-domain honeypot
//! deployment) rebuilt as a deterministic simulation.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`telemetry`] | `nxd-telemetry` | metrics registry + span tracer + event journal |
//! | [`obs`] | `nxd-obs` | live HTTP metrics/admin plane |
//! | [`wire`] | `nxd-dns-wire` | RFC 1035 protocol |
//! | [`sim`] | `nxd-dns-sim` | registry lifecycle, hierarchy, resolver |
//! | [`analyzer`] | `nxd-analyzer` | RFC-conformance rule engine |
//! | [`passive`] | `nxd-passive-dns` | Farsight-substitute database |
//! | [`whois`] | `nxd-whois` | historic WHOIS |
//! | [`dga`] | `nxd-dga` | DGA families + detector |
//! | [`squat`] | `nxd-squat` | squat generators + classifier |
//! | [`blocklist`] | `nxd-blocklist` | categorized blocklist |
//! | [`http`] | `nxd-httpsim` | HTTP model + UA classification |
//! | [`honeypot`] | `nxd-honeypot` | NXD-Honeypot pipeline |
//! | [`traffic`] | `nxd-traffic` | workload generators |
//! | [`serve`] | `nxd-serve` | live UDP+TCP DNS front-end + load driver |
//! | [`study`] | `nxd-core` | the paper's analyses |
//!
//! See the `examples/` directory for runnable entry points and
//! `crates/bench` for the `repro` binary regenerating every table and
//! figure.

pub use nxd_analyzer as analyzer;
pub use nxd_blocklist as blocklist;
pub use nxd_core as study;
pub use nxd_dga as dga;
pub use nxd_dns_sim as sim;
pub use nxd_dns_wire as wire;
pub use nxd_honeypot as honeypot;
pub use nxd_httpsim as http;
pub use nxd_obs as obs;
pub use nxd_passive_dns as passive;
pub use nxd_serve as serve;
pub use nxd_squat as squat;
pub use nxd_telemetry as telemetry;
pub use nxd_traffic as traffic;
pub use nxd_whois as whois;
