//! A split-probe Bloom filter fronting the blocklist map.
//!
//! The Fig. 8 cross-reference probes the blocklist once per sampled
//! NXDomain, and almost every probe misses (the paper finds ~2.4% of its
//! 20 M-domain sample listed). A Bloom filter answers the overwhelming
//! miss case from a few cache lines without touching the map: zero false
//! negatives by construction (property-tested in `tests/prop_bloom.rs`),
//! and a false-positive rate kept low by resizing at a fixed
//! bits-per-key budget as the list grows.

/// Target filter density: 12 bits/key with 4 probes ≈ 0.3% false
/// positives — small enough that the map is effectively touched only on
/// real hits.
const BITS_PER_KEY: usize = 12;

/// Probes per key (double hashing: `h1 + i*h2`).
const PROBES: u64 = 4;

/// FNV-1a, the same mixing the passive store's sampler uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A fixed-size Bloom filter over string keys. Grown by rebuilding from
/// the backing map (the filter itself cannot enumerate its keys).
#[derive(Debug, Clone)]
pub struct BloomFilter {
    /// Bit array, length a power of two (in bits).
    words: Vec<u64>,
    /// `bit_len - 1`; valid because `bit_len` is a power of two.
    mask: u64,
}

impl Default for BloomFilter {
    fn default() -> Self {
        Self::with_capacity(64)
    }
}

impl BloomFilter {
    /// A filter sized for `keys` entries at [`BITS_PER_KEY`] density.
    pub fn with_capacity(keys: usize) -> Self {
        let bits = (keys.max(1) * BITS_PER_KEY).next_power_of_two().max(1024);
        BloomFilter {
            words: vec![0u64; bits / 64],
            mask: (bits - 1) as u64,
        }
    }

    /// Total bits in the filter.
    pub fn bit_len(&self) -> usize {
        self.words.len() * 64
    }

    /// Whether the filter is over-budget for `keys` entries and should be
    /// rebuilt larger.
    pub fn wants_rebuild(&self, keys: usize) -> bool {
        keys * BITS_PER_KEY > self.bit_len()
    }

    /// Marks `key` present.
    pub fn insert(&mut self, key: &str) {
        for (word, bit) in probes(self.mask, key) {
            if let Some(w) = self.words.get_mut(word) {
                *w |= bit;
            }
        }
    }

    /// `false` means definitely absent; `true` means probably present.
    /// Never returns `false` for an inserted key.
    pub fn may_contain(&self, key: &str) -> bool {
        probes(self.mask, key).all(|(word, bit)| self.words.get(word).is_some_and(|w| w & bit != 0))
    }
}

/// The `(word index, bit mask)` probe sequence for `key` in a filter of
/// `mask + 1` bits (double hashing with an odd step, so probes cycle the
/// whole power-of-two bit space).
fn probes(mask: u64, key: &str) -> impl Iterator<Item = (usize, u64)> {
    let h1 = fnv1a(key.as_bytes());
    let h2 = (h1 >> 33) | 1;
    (0..PROBES).map(move |i| {
        let bit = h1.wrapping_add(i.wrapping_mul(h2)) & mask;
        ((bit / 64) as usize, 1u64 << (bit % 64))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_always_found() {
        let mut f = BloomFilter::with_capacity(100);
        for i in 0..100 {
            f.insert(&format!("domain-{i}.com"));
        }
        for i in 0..100 {
            assert!(f.may_contain(&format!("domain-{i}.com")));
        }
    }

    #[test]
    fn misses_are_mostly_filtered() {
        let mut f = BloomFilter::with_capacity(1000);
        for i in 0..1000 {
            f.insert(&format!("listed-{i}.com"));
        }
        let false_positives = (0..10_000)
            .filter(|i| f.may_contain(&format!("clean-{i}.org")))
            .count();
        // 12 bits/key, 4 probes: expect ~0.3%; allow 10x slack.
        assert!(false_positives < 300, "{false_positives} false positives");
    }

    #[test]
    fn rebuild_threshold_tracks_bits_per_key() {
        let f = BloomFilter::with_capacity(64);
        assert!(!f.wants_rebuild(64));
        assert!(f.wants_rebuild(f.bit_len() / BITS_PER_KEY + 1));
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::default();
        assert!(!f.may_contain("anything.com"));
    }
}
