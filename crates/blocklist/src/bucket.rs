//! A token-bucket rate limiter with caller-supplied time.
//!
//! Implements the classic shaping primitive (the networking guides' fault-
//! injection examples use the same construct): a bucket of `capacity`
//! tokens, refilled continuously at `refill_per_sec`, where each operation
//! takes one token. Integer math only — refill is computed from whole
//! elapsed seconds against a stored fractional remainder, so long
//! simulations never drift.

/// Deterministic token bucket. All methods take `now_secs` explicitly; the
/// bucket never reads a clock.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u64,
    refill_per_sec: u64,
    tokens: u64,
    last_refill_secs: u64,
}

impl TokenBucket {
    /// A full bucket with the given burst capacity and refill rate.
    pub fn new(capacity: u64, refill_per_sec: u64) -> Self {
        TokenBucket {
            capacity,
            refill_per_sec,
            tokens: capacity,
            last_refill_secs: 0,
        }
    }

    fn refill(&mut self, now_secs: u64) {
        if now_secs <= self.last_refill_secs {
            return; // time went sideways; never un-refill
        }
        let elapsed = now_secs - self.last_refill_secs;
        let added = elapsed.saturating_mul(self.refill_per_sec);
        self.tokens = (self.tokens + added).min(self.capacity);
        self.last_refill_secs = now_secs;
    }

    /// Takes one token if available.
    pub fn try_take(&mut self, now_secs: u64) -> bool {
        self.refill(now_secs);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Takes `n` tokens atomically if all are available.
    pub fn try_take_n(&mut self, n: u64, now_secs: u64) -> bool {
        self.refill(now_secs);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&mut self, now_secs: u64) -> u64 {
        self.refill(now_secs);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_up_to_capacity() {
        let mut b = TokenBucket::new(3, 1);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(2, 2);
        assert!(b.try_take_n(2, 0));
        assert!(!b.try_take(0));
        assert_eq!(b.available(1), 2);
        assert!(b.try_take_n(2, 1));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut b = TokenBucket::new(5, 100);
        assert_eq!(b.available(1_000_000), 5);
    }

    #[test]
    fn take_n_is_atomic() {
        let mut b = TokenBucket::new(3, 0);
        assert!(!b.try_take_n(4, 0));
        assert_eq!(b.available(0), 3, "failed take must not consume");
        assert!(b.try_take_n(3, 0));
    }

    #[test]
    fn time_regression_is_harmless() {
        let mut b = TokenBucket::new(1, 1);
        assert!(b.try_take(10));
        assert!(!b.try_take(5)); // earlier timestamp: no refill, no panic
        assert!(b.try_take(11));
    }

    #[test]
    fn conservation_under_mixed_ops() {
        // Property: total granted ≤ capacity + elapsed * rate.
        let (cap, rate) = (10u64, 3u64);
        let mut b = TokenBucket::new(cap, rate);
        let mut granted = 0u64;
        let mut now = 0u64;
        for step in 0..1000u64 {
            now += step % 3; // uneven time steps
            if b.try_take(now) {
                granted += 1;
            }
        }
        assert!(granted <= cap + now * rate);
        assert!(granted > 0);
    }
}
