//! # nxd-blocklist
//!
//! A categorized domain blocklist standing in for the Palo Alto Networks
//! URL-filtering list the paper cross-references (§5.2, Fig. 8: 382,135
//! malware / 42,050 grayware / 39,834 phishing / 19,868 C&C hits in a
//! 20 M-domain sample).
//!
//! The real database is rate-limited — the reason the paper samples 20 M of
//! 91 M expired domains instead of querying all of them. [`RateLimitedView`]
//! reproduces that constraint with a token bucket, so experiments must adopt
//! the same sampling strategy.

pub mod bloom;
pub mod bucket;

use std::collections::HashMap;

pub use bloom::BloomFilter;
pub use bucket::TokenBucket;

/// Threat categories tracked by the blocklist (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThreatCategory {
    Malware,
    Grayware,
    Phishing,
    CommandAndControl,
}

impl ThreatCategory {
    pub const ALL: [ThreatCategory; 4] = [
        ThreatCategory::Malware,
        ThreatCategory::Grayware,
        ThreatCategory::Phishing,
        ThreatCategory::CommandAndControl,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ThreatCategory::Malware => "Malware",
            ThreatCategory::Grayware => "Grayware",
            ThreatCategory::Phishing => "Phishing",
            ThreatCategory::CommandAndControl => "C&C",
        }
    }
}

/// The blocklist database: a category map fronted by a Bloom filter so
/// the overwhelmingly-miss cross-reference workload (§5.2) answers "not
/// listed" from a few cache lines without probing the map.
#[derive(Debug, Default, Clone)]
pub struct Blocklist {
    entries: HashMap<String, ThreatCategory>,
    filter: BloomFilter,
}

impl Blocklist {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or updates an entry (normalized to lowercase). Keeps the Bloom
    /// prefilter in sync, rebuilding it at a larger size when the list
    /// outgrows its bits-per-key budget.
    pub fn insert(&mut self, domain: &str, category: ThreatCategory) {
        let key = domain.to_ascii_lowercase();
        self.filter.insert(&key);
        self.entries.insert(key, category);
        if self.filter.wants_rebuild(self.entries.len()) {
            let mut rebuilt = BloomFilter::with_capacity(self.entries.len() * 2);
            for existing in self.entries.keys() {
                rebuilt.insert(existing);
            }
            self.filter = rebuilt;
        }
    }

    /// Looks up a domain. Already-lowercase inputs (the common case — the
    /// passive store normalizes qnames) probe directly; only mixed-case
    /// queries pay for a lowercased copy. The Bloom prefilter short-circuits
    /// definite misses before the map is touched; it never produces false
    /// negatives, so listed domains are always found.
    pub fn lookup(&self, domain: &str) -> Option<ThreatCategory> {
        if domain.bytes().any(|b| b.is_ascii_uppercase()) {
            let key = domain.to_ascii_lowercase();
            if !self.filter.may_contain(&key) {
                return None;
            }
            self.entries.get(&key).copied()
        } else {
            if !self.filter.may_contain(domain) {
                return None;
            }
            self.entries.get(domain).copied()
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counts entries per category across the whole list.
    pub fn category_counts(&self) -> HashMap<ThreatCategory, u64> {
        let mut out = HashMap::new();
        for cat in self.entries.values() {
            *out.entry(*cat).or_insert(0) += 1;
        }
        out
    }

    /// Cross-references an iterator of domains, returning per-category hit
    /// counts — the Fig. 8 query.
    pub fn cross_reference<'a, I>(&self, domains: I) -> HashMap<ThreatCategory, u64>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut out = HashMap::new();
        for d in domains {
            if let Some(cat) = self.lookup(d) {
                *out.entry(cat).or_insert(0) += 1;
            }
        }
        out
    }

    /// Wraps the list in a rate-limited view with `capacity` burst tokens
    /// refilled at `refill_per_sec`.
    pub fn rate_limited(&self, capacity: u64, refill_per_sec: u64) -> RateLimitedView<'_> {
        RateLimitedView {
            list: self,
            bucket: TokenBucket::new(capacity, refill_per_sec),
        }
    }
}

/// Error returned when the query rate limit is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimited;

/// A rate-limited handle to a [`Blocklist`] (the commercial API constraint).
/// Time is supplied by the caller in seconds, matching the simulated clock.
#[derive(Debug)]
pub struct RateLimitedView<'a> {
    list: &'a Blocklist,
    bucket: TokenBucket,
}

impl RateLimitedView<'_> {
    /// Performs one lookup at time `now_secs`, consuming a token.
    pub fn lookup(
        &mut self,
        domain: &str,
        now_secs: u64,
    ) -> Result<Option<ThreatCategory>, RateLimited> {
        if self.bucket.try_take(now_secs) {
            Ok(self.list.lookup(domain))
        } else {
            Err(RateLimited)
        }
    }

    /// Remaining burst capacity at `now_secs`.
    pub fn tokens(&mut self, now_secs: u64) -> u64 {
        self.bucket.available(now_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Blocklist {
        let mut b = Blocklist::new();
        b.insert("malware1.com", ThreatCategory::Malware);
        b.insert("malware2.com", ThreatCategory::Malware);
        b.insert("gray.com", ThreatCategory::Grayware);
        b.insert("phish.com", ThreatCategory::Phishing);
        b.insert("cnc.ru", ThreatCategory::CommandAndControl);
        b
    }

    #[test]
    fn insert_and_lookup() {
        let b = sample();
        assert_eq!(b.lookup("malware1.com"), Some(ThreatCategory::Malware));
        assert_eq!(b.lookup("MALWARE1.COM"), Some(ThreatCategory::Malware));
        assert_eq!(b.lookup("clean.com"), None);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn category_counts() {
        let counts = sample().category_counts();
        assert_eq!(counts[&ThreatCategory::Malware], 2);
        assert_eq!(counts[&ThreatCategory::Grayware], 1);
    }

    #[test]
    fn cross_reference_counts_hits_only() {
        let b = sample();
        let hits = b.cross_reference(["malware1.com", "clean.com", "phish.com", "also-clean.org"]);
        assert_eq!(hits.get(&ThreatCategory::Malware), Some(&1));
        assert_eq!(hits.get(&ThreatCategory::Phishing), Some(&1));
        assert_eq!(hits.get(&ThreatCategory::Grayware), None);
    }

    #[test]
    fn rate_limit_enforced() {
        let b = sample();
        let mut view = b.rate_limited(2, 1);
        assert!(view.lookup("malware1.com", 0).is_ok());
        assert!(view.lookup("malware2.com", 0).is_ok());
        assert_eq!(view.lookup("gray.com", 0), Err(RateLimited));
        // One second later a token has refilled.
        assert_eq!(
            view.lookup("gray.com", 1),
            Ok(Some(ThreatCategory::Grayware))
        );
    }

    #[test]
    fn category_labels() {
        assert_eq!(ThreatCategory::CommandAndControl.label(), "C&C");
        assert_eq!(ThreatCategory::ALL.len(), 4);
    }

    #[test]
    fn update_overwrites_category() {
        let mut b = sample();
        b.insert("gray.com", ThreatCategory::Malware);
        assert_eq!(b.lookup("gray.com"), Some(ThreatCategory::Malware));
        assert_eq!(b.len(), 5);
    }
}
