//! Property tests for the Bloom-prefiltered blocklist: the filter may
//! only ever short-circuit *misses* — every inserted domain must remain
//! findable (zero false negatives), and the prefiltered lookup path must
//! be observationally identical to a plain map lookup for any key set,
//! query set, and casing.

use std::collections::HashMap;

use nxd_blocklist::{Blocklist, BloomFilter, ThreatCategory};
use proptest::prelude::*;

const TLDS: [&str; 4] = ["com", "net", "ru", "org"];

fn arb_domain() -> impl Strategy<Value = String> {
    ("[a-zA-Z0-9-]{1,12}", 0usize..TLDS.len())
        .prop_map(|(stem, tld)| format!("{stem}.{}", TLDS[tld]))
}

fn arb_entries() -> impl Strategy<Value = Vec<(String, usize)>> {
    proptest::collection::vec((arb_domain(), 0usize..4), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Zero false negatives: every key ever inserted into the raw filter is
    /// reported as possibly present, at every fill level (including right
    /// past rebuild thresholds).
    #[test]
    fn filter_never_forgets(keys in proptest::collection::vec(arb_domain(), 1..300)) {
        let mut filter = BloomFilter::with_capacity(8);
        for (i, key) in keys.iter().enumerate() {
            filter.insert(key);
            // Every previously inserted key must still be visible, even
            // though the filter was sized for far fewer.
            for seen in &keys[..=i] {
                prop_assert!(filter.may_contain(seen), "lost {}", seen);
            }
        }
    }

    /// The prefiltered blocklist behaves exactly like a plain map: listed
    /// domains (any casing) resolve to their category, unlisted domains to
    /// None, across incremental inserts and rebuilds.
    #[test]
    fn prefiltered_lookup_matches_plain_map(
        entries in arb_entries(),
        probes in proptest::collection::vec(arb_domain(), 0..100)
    ) {
        let mut list = Blocklist::new();
        let mut reference: HashMap<String, ThreatCategory> = HashMap::new();
        for (domain, cat_idx) in &entries {
            let cat = ThreatCategory::ALL[*cat_idx];
            list.insert(domain, cat);
            reference.insert(domain.to_ascii_lowercase(), cat);
        }
        prop_assert_eq!(list.len(), reference.len());
        // Inserted keys are always found — the zero-false-negative claim
        // end to end, including the mixed-case lookup path.
        for (domain, _) in &entries {
            let want = reference.get(&domain.to_ascii_lowercase()).copied();
            prop_assert_eq!(list.lookup(domain), want);
            prop_assert_eq!(list.lookup(&domain.to_ascii_uppercase()), want);
        }
        // Arbitrary probes agree with the reference map (false positives in
        // the filter fall through to the map and come back correct).
        for probe in &probes {
            prop_assert_eq!(
                list.lookup(probe),
                reference.get(&probe.to_ascii_lowercase()).copied()
            );
        }
    }

    /// Cross-reference counts are unchanged by the prefilter.
    #[test]
    fn cross_reference_matches_reference_counts(
        entries in arb_entries(),
        probes in proptest::collection::vec(arb_domain(), 0..100)
    ) {
        let mut list = Blocklist::new();
        let mut reference: HashMap<String, ThreatCategory> = HashMap::new();
        for (domain, cat_idx) in &entries {
            let cat = ThreatCategory::ALL[*cat_idx];
            list.insert(domain, cat);
            reference.insert(domain.to_ascii_lowercase(), cat);
        }
        let mut expect: HashMap<ThreatCategory, u64> = HashMap::new();
        for probe in &probes {
            if let Some(cat) = reference.get(&probe.to_ascii_lowercase()) {
                *expect.entry(*cat).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(
            list.cross_reference(probes.iter().map(String::as_str)),
            expect
        );
    }
}
