//! The origin-analysis population (§5.2): the 91.5 M expired NXDomains,
//! generated at the same 1/1,000 sampling ratio the paper itself applies to
//! its data. The population carries planted DGA registrations (3%), squat
//! registrations in Fig. 7's type mix, and blocklist entries in Fig. 8's
//! category mix; the `nxd-core` origin pipeline must *re-discover* all
//! three with the real detectors.

use nxd_blocklist::{Blocklist, ThreatCategory};
use nxd_dga::all_families;
use nxd_squat::generate as squatgen;
use nxd_squat::tables::POPULAR_TARGETS;
use nxd_whois::{HistoricWhoisDb, SpanEnd, WhoisRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Origin-population configuration. Defaults reproduce the paper's numbers
/// at 1/1,000 scale.
#[derive(Debug, Clone)]
pub struct OriginConfig {
    pub seed: u64,
    /// Expired-domain population size (paper: 91,545,561; /1000 ≈ 91,546).
    pub expired_total: usize,
    /// Fraction of the population that is DGA-registered, in permille
    /// (paper: 2,770,650 / 91.5 M ≈ 30‰).
    pub dga_permille: u32,
    /// Squat registrations by kind `(typo, combo, dot, bit, homo)`
    /// (paper: 45,175 / 38,900 / 6,090 / 313 / 126; /1000 with floors).
    pub squat_counts: (usize, usize, usize, usize, usize),
    /// Blocklisted fraction of the population in permille (paper: 483,887
    /// hits in a 20 M sample ≈ 24.2‰).
    pub blocklist_permille: u32,
}

impl Default for OriginConfig {
    fn default() -> Self {
        OriginConfig {
            seed: 0x0219,
            expired_total: 91_546,
            dga_permille: 30,
            squat_counts: (45, 39, 6, 2, 2),
            blocklist_permille: 24,
        }
    }
}

/// One expired domain with its hidden ground-truth origin (the pipeline
/// never reads the label; tests compare pipeline output against it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpiredDomain {
    pub name: String,
    /// Ground truth for evaluation only.
    pub truth: OriginTruth,
}

/// Hidden origin label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OriginTruth {
    Benign,
    Dga,
    Squat(nxd_squat::SquatKind),
}

/// The generated origin world.
pub struct OriginWorld {
    pub domains: Vec<ExpiredDomain>,
    pub whois: HistoricWhoisDb,
    pub blocklist: Blocklist,
    pub config: OriginConfig,
}

/// Generates the expired-domain population.
pub fn generate(config: OriginConfig) -> OriginWorld {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut domains: Vec<ExpiredDomain> = Vec::with_capacity(config.expired_total);
    let mut seen = std::collections::HashSet::new();
    let families = all_families();
    let words = nxd_dga::corpus::WORDS;

    let dga_target = config.expired_total * config.dga_permille as usize / 1000;
    let (n_typo, n_combo, n_dot, n_bit, n_homo) = config.squat_counts;

    // Planted squats, drawn from the generators against popular targets.
    let plant_squats = |kind: nxd_squat::SquatKind,
                        count: usize,
                        gen: fn(&str) -> Vec<String>,
                        rng: &mut StdRng,
                        domains: &mut Vec<ExpiredDomain>,
                        seen: &mut std::collections::HashSet<String>| {
        let mut planted = 0;
        let mut attempts = 0;
        while planted < count && attempts < count * 50 {
            attempts += 1;
            let target = POPULAR_TARGETS[rng.gen_range(0..POPULAR_TARGETS.len())];
            let candidates = gen(target);
            if candidates.is_empty() {
                continue;
            }
            let name = candidates[rng.gen_range(0..candidates.len())].clone();
            if seen.insert(name.clone()) {
                domains.push(ExpiredDomain {
                    name,
                    truth: OriginTruth::Squat(kind),
                });
                planted += 1;
            }
        }
    };
    plant_squats(
        nxd_squat::SquatKind::Typo,
        n_typo,
        squatgen::typosquats,
        &mut rng,
        &mut domains,
        &mut seen,
    );
    plant_squats(
        nxd_squat::SquatKind::Combo,
        n_combo,
        squatgen::combosquats,
        &mut rng,
        &mut domains,
        &mut seen,
    );
    plant_squats(
        nxd_squat::SquatKind::Dot,
        n_dot,
        squatgen::dotsquats,
        &mut rng,
        &mut domains,
        &mut seen,
    );
    plant_squats(
        nxd_squat::SquatKind::Bit,
        n_bit,
        squatgen::bitsquats,
        &mut rng,
        &mut domains,
        &mut seen,
    );
    plant_squats(
        nxd_squat::SquatKind::Homo,
        n_homo,
        squatgen::homosquats,
        &mut rng,
        &mut domains,
        &mut seen,
    );

    // Planted DGA registrations (the small set a botmaster actually
    // registered, §5.2).
    while domains
        .iter()
        .filter(|d| d.truth == OriginTruth::Dga)
        .count()
        < dga_target
    {
        let fam = &families[rng.gen_range(0..families.len())];
        let date = (
            2014 + rng.gen_range(0..9),
            rng.gen_range(1..13u32),
            rng.gen_range(1..29u32),
        );
        let name = fam.generate(rng.gen(), date, 1).pop().unwrap();
        if seen.insert(name.clone()) {
            domains.push(ExpiredDomain {
                name,
                truth: OriginTruth::Dga,
            });
        }
    }

    // Benign background: human-plausible expired names.
    while domains.len() < config.expired_total {
        let name = match rng.gen_range(0..4) {
            0 => format!(
                "{}{}.com",
                words[rng.gen_range(0..words.len())],
                words[rng.gen_range(0..words.len())]
            ),
            1 => format!(
                "{}-{}.net",
                words[rng.gen_range(0..words.len())],
                words[rng.gen_range(0..words.len())]
            ),
            2 => format!(
                "{}{}.org",
                words[rng.gen_range(0..words.len())],
                rng.gen_range(1..999u32)
            ),
            _ => format!("my{}.info", words[rng.gen_range(0..words.len())]),
        };
        if seen.insert(name.clone()) {
            domains.push(ExpiredDomain {
                name,
                truth: OriginTruth::Benign,
            });
        }
    }

    // WHOIS spans: every domain in this population has exactly the expired
    // history the paper's §5.1 join selects for.
    let mut whois = HistoricWhoisDb::new();
    for (i, d) in domains.iter().enumerate() {
        let registered = 1_300_000_000 + rng.gen_range(0..250_000_000u64);
        let expires = registered + 365 * 86_400 * rng.gen_range(1..4u64);
        whois.add(WhoisRecord {
            domain: d.name.clone(),
            registered,
            expires,
            registrar: ["godaddy", "namecheap", "101domain"][i % 3].to_string(),
            registrant: format!("anon-{i}"),
            nameservers: vec![format!("ns1.{}", d.name)],
            end: SpanEnd::Expired,
        });
    }

    // Blocklist entries: malicious history for a slice of the population,
    // weighted 79/9/8/4 across categories (Fig. 8).
    let mut blocklist = Blocklist::new();
    let bl_target = config.expired_total * config.blocklist_permille as usize / 1000;
    let mut listed = 0;
    let mut idx = 0;
    while listed < bl_target && idx < domains.len() {
        // Spread entries across the population deterministically.
        let d = &domains[(idx * 7919) % domains.len()];
        idx += 1;
        if blocklist.lookup(&d.name).is_some() {
            continue;
        }
        let roll = rng.gen_range(0..100);
        let cat = if roll < 79 {
            ThreatCategory::Malware
        } else if roll < 88 {
            ThreatCategory::Grayware
        } else if roll < 96 {
            ThreatCategory::Phishing
        } else {
            ThreatCategory::CommandAndControl
        };
        blocklist.insert(&d.name, cat);
        listed += 1;
    }

    OriginWorld {
        domains,
        whois,
        blocklist,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OriginWorld {
        generate(OriginConfig {
            expired_total: 5_000,
            ..Default::default()
        })
    }

    #[test]
    fn population_size_and_uniqueness() {
        let w = small();
        assert_eq!(w.domains.len(), 5_000);
        let unique: std::collections::HashSet<_> = w.domains.iter().map(|d| &d.name).collect();
        assert_eq!(unique.len(), 5_000);
    }

    #[test]
    fn truth_mix_matches_config() {
        let w = small();
        let dga = w
            .domains
            .iter()
            .filter(|d| d.truth == OriginTruth::Dga)
            .count();
        assert_eq!(dga, 150); // 30‰ of 5000
        let squats = w
            .domains
            .iter()
            .filter(|d| matches!(d.truth, OriginTruth::Squat(_)))
            .count();
        assert_eq!(squats, 45 + 39 + 6 + 2 + 2);
    }

    #[test]
    fn whois_has_every_domain_expired() {
        let w = small();
        assert_eq!(w.whois.distinct_domains(), 5_000);
        for d in w.domains.iter().take(100) {
            assert_eq!(w.whois.latest(&d.name).unwrap().end, SpanEnd::Expired);
        }
    }

    #[test]
    fn blocklist_sized_and_weighted() {
        let w = small();
        let total = w.blocklist.len();
        assert_eq!(total, 120); // 24‰ of 5000
        let counts = w.blocklist.category_counts();
        let malware = counts.get(&ThreatCategory::Malware).copied().unwrap_or(0);
        assert!(
            malware as f64 / total as f64 > 0.6,
            "malware should dominate"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(OriginConfig {
            expired_total: 1_000,
            ..Default::default()
        });
        let b = generate(OriginConfig {
            expired_total: 1_000,
            ..Default::default()
        });
        assert_eq!(a.domains, b.domains);
    }
}
