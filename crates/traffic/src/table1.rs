//! Calibration targets transcribed from the paper's Table 1: HTTP/HTTPS
//! traffic received by the 19 registered domains over six months, split
//! into the ten analysis categories. The honeypot-era workload generator
//! reproduces these mixes (scaled), and experiment E-TAB1 checks that the
//! categorizer re-derives them from raw packets.

/// Per-domain traffic mix (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainSpec {
    pub name: &'static str,
    /// Highlighted as malicious in the paper.
    pub malicious: bool,
    pub search_engine: u64,
    pub file_grabber: u64,
    pub script_software: u64,
    pub malicious_request: u64,
    pub referral_search: u64,
    pub referral_embedded: u64,
    pub referral_malicious: u64,
    pub user_pc_mobile: u64,
    pub user_in_app: u64,
    pub others: u64,
}

impl DomainSpec {
    /// Row total (sum of the ten category cells).
    pub fn total(&self) -> u64 {
        self.search_engine
            + self.file_grabber
            + self.script_software
            + self.malicious_request
            + self.referral_search
            + self.referral_embedded
            + self.referral_malicious
            + self.user_pc_mobile
            + self.user_in_app
            + self.others
    }
}

/// The 19 rows of Table 1 (cells as printed; the paper's row totals differ
/// from the cell sums by small typesetting errors in two rows — we use the
/// cells).
pub const TABLE1: [DomainSpec; 19] = [
    DomainSpec {
        name: "resheba.online",
        malicious: false,
        search_engine: 15_223,
        file_grabber: 105_221,
        script_software: 1_866_523,
        malicious_request: 52_263,
        referral_search: 1_052,
        referral_embedded: 655,
        referral_malicious: 265,
        user_pc_mobile: 56,
        user_in_app: 20,
        others: 55_874,
    },
    DomainSpec {
        name: "1x-sport-bk7.com",
        malicious: true,
        search_engine: 4_058,
        file_grabber: 328,
        script_software: 1_215_606,
        malicious_request: 725,
        referral_search: 3_054,
        referral_embedded: 143,
        referral_malicious: 522,
        user_pc_mobile: 2_952,
        user_in_app: 43,
        others: 15_428,
    },
    DomainSpec {
        name: "fanserials.moda",
        malicious: false,
        search_engine: 2_536,
        file_grabber: 5_622,
        script_software: 996_968,
        malicious_request: 6_225,
        referral_search: 1_556,
        referral_embedded: 4_112,
        referral_malicious: 2_189,
        user_pc_mobile: 106,
        user_in_app: 122,
        others: 4_071,
    },
    DomainSpec {
        name: "gpclick.com",
        malicious: true,
        search_engine: 415,
        file_grabber: 144,
        script_software: 365,
        malicious_request: 939_420,
        referral_search: 10_524,
        referral_embedded: 248,
        referral_malicious: 115,
        user_pc_mobile: 1_014,
        user_in_app: 22,
        others: 5_014,
    },
    DomainSpec {
        name: "porno-komiksy.com",
        malicious: false,
        search_engine: 43_285,
        file_grabber: 105_412,
        script_software: 2_952,
        malicious_request: 7_441,
        referral_search: 2_482,
        referral_embedded: 10_244,
        referral_malicious: 3_052,
        user_pc_mobile: 25_112,
        user_in_app: 1_825,
        others: 4_552,
    },
    DomainSpec {
        name: "conf-cdn.com",
        malicious: true,
        search_engine: 2_653,
        file_grabber: 55_842,
        script_software: 10_228,
        malicious_request: 1_699,
        referral_search: 3_455,
        referral_embedded: 2_568,
        referral_malicious: 623,
        user_pc_mobile: 2_004,
        user_in_app: 652,
        others: 11_957,
    },
    DomainSpec {
        name: "pro100diplom.com",
        malicious: false,
        search_engine: 796,
        file_grabber: 48_868,
        script_software: 16_500,
        malicious_request: 9_734,
        referral_search: 83,
        referral_embedded: 261,
        referral_malicious: 53,
        user_pc_mobile: 351,
        user_in_app: 108,
        others: 1_026,
    },
    DomainSpec {
        name: "yebeda.org",
        malicious: false,
        search_engine: 5_509,
        file_grabber: 25_742,
        script_software: 26_564,
        malicious_request: 2_094,
        referral_search: 1_993,
        referral_embedded: 351,
        referral_malicious: 314,
        user_pc_mobile: 205,
        user_in_app: 30,
        others: 4_625,
    },
    DomainSpec {
        name: "oboru.work",
        malicious: false,
        search_engine: 1_052,
        file_grabber: 49_954,
        script_software: 2_651,
        malicious_request: 6_048,
        referral_search: 50,
        referral_embedded: 366,
        referral_malicious: 30,
        user_pc_mobile: 4_852,
        user_in_app: 66,
        others: 501,
    },
    DomainSpec {
        name: "kinopack.org",
        malicious: false,
        search_engine: 1_205,
        file_grabber: 5_624,
        script_software: 6_401,
        malicious_request: 3_255,
        referral_search: 1_054,
        referral_embedded: 213,
        referral_malicious: 201,
        user_pc_mobile: 83,
        user_in_app: 304,
        others: 522,
    },
    DomainSpec {
        name: "sfscl.info",
        malicious: false,
        search_engine: 421,
        file_grabber: 10_566,
        script_software: 2_946,
        malicious_request: 1_098,
        referral_search: 152,
        referral_embedded: 62,
        referral_malicious: 97,
        user_pc_mobile: 401,
        user_in_app: 65,
        others: 957,
    },
    DomainSpec {
        name: "ipservl.net",
        malicious: true,
        search_engine: 2_016,
        file_grabber: 7_815,
        script_software: 3_297,
        malicious_request: 1_552,
        referral_search: 336,
        referral_embedded: 105,
        referral_malicious: 78,
        user_pc_mobile: 105,
        user_in_app: 63,
        others: 1_192,
    },
    DomainSpec {
        name: "cservll.net",
        malicious: true,
        search_engine: 1_487,
        file_grabber: 263,
        script_software: 92,
        malicious_request: 65,
        referral_search: 2_055,
        referral_embedded: 263,
        referral_malicious: 102,
        user_pc_mobile: 198,
        user_in_app: 105,
        others: 6_234,
    },
    DomainSpec {
        name: "ipserv2.net",
        malicious: true,
        search_engine: 323,
        file_grabber: 52,
        script_software: 144,
        malicious_request: 1_486,
        referral_search: 203,
        referral_embedded: 96,
        referral_malicious: 58,
        user_pc_mobile: 98,
        user_in_app: 86,
        others: 6_811,
    },
    DomainSpec {
        name: "redirectmyquery.com",
        malicious: false,
        search_engine: 266,
        file_grabber: 128,
        script_software: 62,
        malicious_request: 1_547,
        referral_search: 269,
        referral_embedded: 75,
        referral_malicious: 63,
        user_pc_mobile: 188,
        user_in_app: 42,
        others: 5_022,
    },
    DomainSpec {
        name: "adrenali.gq",
        malicious: false,
        search_engine: 1_089,
        file_grabber: 357,
        script_software: 215,
        malicious_request: 98,
        referral_search: 52,
        referral_embedded: 144,
        referral_malicious: 82,
        user_pc_mobile: 1_096,
        user_in_app: 65,
        others: 3_054,
    },
    DomainSpec {
        name: "dns2.name",
        malicious: false,
        search_engine: 396,
        file_grabber: 88,
        script_software: 105,
        malicious_request: 93,
        referral_search: 835,
        referral_embedded: 35,
        referral_malicious: 56,
        user_pc_mobile: 48,
        user_in_app: 51,
        others: 3_987,
    },
    DomainSpec {
        name: "akamai-technology.com",
        malicious: true,
        search_engine: 86,
        file_grabber: 85,
        script_software: 85,
        malicious_request: 196,
        referral_search: 65,
        referral_embedded: 88,
        referral_malicious: 352,
        user_pc_mobile: 620,
        user_in_app: 73,
        others: 672,
    },
    DomainSpec {
        name: "twitter-sup0rt.com",
        malicious: true,
        search_engine: 126,
        file_grabber: 185,
        script_software: 58,
        malicious_request: 57,
        referral_search: 107,
        referral_embedded: 63,
        referral_malicious: 65,
        user_pc_mobile: 118,
        user_in_app: 66,
        others: 589,
    },
];

/// Paper-reported column totals (used as EXPERIMENTS.md reference values).
pub const PAPER_TOTALS: DomainSpec = DomainSpec {
    name: "TOTAL",
    malicious: false,
    search_engine: 82_942,
    file_grabber: 422_296,
    script_software: 4_151_762,
    malicious_request: 1_035_096,
    referral_search: 29_317,
    referral_embedded: 20_092,
    referral_malicious: 8_317,
    user_pc_mobile: 39_592,
    user_in_app: 3_808,
    others: 132_088,
};

/// Paper-reported grand total of HTTP/HTTPS requests.
pub const PAPER_GRAND_TOTAL: u64 = 5_925_311;

/// Fig. 13's in-app browser mix `(app, requests)`; WeChat holds the
/// remainder of the 3,808 in-app total.
pub const IN_APP_MIX: [(&str, u64); 8] = [
    ("WhatsApp", 1_008),
    ("Facebook", 624),
    ("WeChat", 576),
    ("Twitter", 444),
    ("Instagram", 408),
    ("DingTalk", 252),
    ("QQ", 168),
    ("Others", 328),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_domains_eight_malicious() {
        assert_eq!(TABLE1.len(), 19);
        assert_eq!(TABLE1.iter().filter(|d| d.malicious).count(), 8);
    }

    #[test]
    fn cell_sums_close_to_paper_totals() {
        // Column sums over rows must match the paper's totals row to within
        // the two known typesetting discrepancies (< 0.2% per column).
        let sum = |f: fn(&DomainSpec) -> u64| TABLE1.iter().map(f).sum::<u64>();
        let close = |got: u64, paper: u64| {
            let diff = got.abs_diff(paper) as f64;
            diff / (paper as f64) < 0.01
        };
        assert!(close(sum(|d| d.search_engine), PAPER_TOTALS.search_engine));
        assert!(close(sum(|d| d.file_grabber), PAPER_TOTALS.file_grabber));
        assert!(close(
            sum(|d| d.script_software),
            PAPER_TOTALS.script_software
        ));
        assert!(close(
            sum(|d| d.malicious_request),
            PAPER_TOTALS.malicious_request
        ));
        assert!(close(
            sum(|d| d.referral_search),
            PAPER_TOTALS.referral_search
        ));
        assert!(close(
            sum(|d| d.referral_embedded),
            PAPER_TOTALS.referral_embedded
        ));
        assert!(close(
            sum(|d| d.referral_malicious),
            PAPER_TOTALS.referral_malicious
        ));
        assert!(close(
            sum(|d| d.user_pc_mobile),
            PAPER_TOTALS.user_pc_mobile
        ));
        assert!(close(sum(|d| d.user_in_app), PAPER_TOTALS.user_in_app));
        assert!(close(sum(|d| d.others), PAPER_TOTALS.others));
        let grand: u64 = TABLE1.iter().map(|d| d.total()).sum();
        assert!(close(grand, PAPER_GRAND_TOTAL), "grand total {grand}");
    }

    #[test]
    fn in_app_mix_sums_to_paper_total() {
        let total: u64 = IN_APP_MIX.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, PAPER_TOTALS.user_in_app);
    }

    #[test]
    fn gpclick_dominates_malicious_requests() {
        let gp = TABLE1.iter().find(|d| d.name == "gpclick.com").unwrap();
        let total: u64 = TABLE1.iter().map(|d| d.malicious_request).sum();
        let share = gp.malicious_request as f64 / total as f64;
        assert!(share > 0.9, "paper: 90.8%; got {share}");
    }

    #[test]
    fn domain_names_are_valid() {
        for d in &TABLE1 {
            let name: nxd_dns_wire::Name = d.name.parse().unwrap();
            assert_eq!(name.label_count(), 2, "{}", d.name);
        }
    }
}
