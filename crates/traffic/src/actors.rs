//! Shared actor building blocks for the honeypot-era workload: source-IP
//! pools with reverse-DNS conventions, and User-Agent inventories for every
//! visitor class the paper observed.

use std::net::Ipv4Addr;

use nxd_dns_sim::ReverseDns;
use rand::rngs::StdRng;
use rand::Rng;

/// Named IPv4 pools used by the actors. Ranges follow real-world provider
/// conventions so reverse lookups produce the hostnames of Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpPool {
    Googlebot,
    Bingbot,
    MailRuBot,
    YandexBot,
    BaiduSpider,
    /// Google mail image proxies (conf-cdn's e-mail crawlers) and the
    /// `google-proxy` hosts that route gpclick's botnet traffic.
    GoogleProxy,
    AmazonEc2,
    AzureCloud,
    Ovh,
    DigitalOcean,
    Hetzner,
    /// Residential/eyeball space with no PTR coverage.
    Residential,
    /// Internet-wide scanners (the no-hosting baseline population).
    Scanner,
    /// ACME / certificate-authority validators.
    Acme,
}

impl IpPool {
    /// `(network, prefix_len, PTR template)`; `None` template means
    /// unresolvable space.
    pub fn spec(self) -> (Ipv4Addr, u8, Option<&'static str>) {
        match self {
            IpPool::Googlebot => (
                Ipv4Addr::new(66, 249, 64, 0),
                19,
                Some("crawl-{ip}.googlebot.com"),
            ),
            IpPool::Bingbot => (
                Ipv4Addr::new(157, 55, 0, 0),
                16,
                Some("msnbot-{ip}.search.msn.com"),
            ),
            IpPool::MailRuBot => (
                Ipv4Addr::new(217, 69, 128, 0),
                20,
                Some("fetcher-{ip}.mail.ru"),
            ),
            IpPool::YandexBot => (
                Ipv4Addr::new(77, 88, 0, 0),
                18,
                Some("spider-{ip}.yandex.ru"),
            ),
            IpPool::BaiduSpider => (
                Ipv4Addr::new(180, 76, 0, 0),
                16,
                Some("baiduspider-{ip}.baidu.com"),
            ),
            IpPool::GoogleProxy => (
                Ipv4Addr::new(66, 102, 0, 0),
                16,
                Some("google-proxy-{ip}.google.com"),
            ),
            IpPool::AmazonEc2 => (
                Ipv4Addr::new(52, 32, 0, 0),
                11,
                Some("ec2-{ip}.compute-1.amazonaws.com"),
            ),
            IpPool::AzureCloud => (
                Ipv4Addr::new(40, 76, 0, 0),
                14,
                Some("azure-{ip}.cloudapp.azure.com"),
            ),
            IpPool::Ovh => (Ipv4Addr::new(51, 38, 0, 0), 16, Some("vps-{ip}.ovh.net")),
            IpPool::DigitalOcean => (
                Ipv4Addr::new(167, 99, 0, 0),
                16,
                Some("do-{ip}.digitalocean.com"),
            ),
            IpPool::Hetzner => (
                Ipv4Addr::new(95, 216, 0, 0),
                16,
                Some("static-{ip}.hetzner.de"),
            ),
            IpPool::Residential => (Ipv4Addr::new(93, 0, 0, 0), 10, None),
            IpPool::Scanner => (Ipv4Addr::new(171, 25, 0, 0), 16, None),
            IpPool::Acme => (
                Ipv4Addr::new(172, 65, 32, 0),
                20,
                Some("acme-{ip}.letsencrypt.org"),
            ),
        }
    }

    /// All pools (for reverse-DNS registration).
    pub const ALL: [IpPool; 14] = [
        IpPool::Googlebot,
        IpPool::Bingbot,
        IpPool::MailRuBot,
        IpPool::YandexBot,
        IpPool::BaiduSpider,
        IpPool::GoogleProxy,
        IpPool::AmazonEc2,
        IpPool::AzureCloud,
        IpPool::Ovh,
        IpPool::DigitalOcean,
        IpPool::Hetzner,
        IpPool::Residential,
        IpPool::Scanner,
        IpPool::Acme,
    ];

    /// Draws a deterministic random address from the pool.
    pub fn draw(self, rng: &mut StdRng) -> Ipv4Addr {
        let (net, prefix, _) = self.spec();
        let host_bits = 32 - prefix as u32;
        let base = u32::from(net);
        // Avoid .0 hosts for realism.
        let offset = if host_bits >= 31 {
            rng.gen_range(1..=u32::MAX >> 1)
        } else {
            rng.gen_range(1..(1u32 << host_bits))
        };
        Ipv4Addr::from(base | offset)
    }

    /// Registers every pool's PTR template in a [`ReverseDns`].
    pub fn register_all(rdns: &mut ReverseDns) {
        for pool in IpPool::ALL {
            let (net, prefix, template) = pool.spec();
            if let Some(t) = template {
                rdns.insert_range(net, prefix, t);
            }
        }
    }
}

/// PC browser User-Agents.
pub const PC_UAS: &[&str] = &[
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/112.0 Safari/537.36",
    "Mozilla/5.0 (Windows NT 6.1; Win64; x64; rv:109.0) Gecko/20100101 Firefox/113.0",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 13_3) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/16.4 Safari/605.1.15",
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/111.0 Safari/537.36",
];

/// Mobile browser User-Agents (Apple/Huawei/Xiaomi/Samsung — §6.3's device
/// observation for porno-komiksy.com).
pub const MOBILE_UAS: &[&str] = &[
    "Mozilla/5.0 (iPhone; CPU iPhone OS 16_3 like Mac OS X) AppleWebKit/605.1.15 Version/16.3 Safari/604.1",
    "Mozilla/5.0 (Linux; Android 12; SM-G991B) AppleWebKit/537.36 Chrome/110.0 Mobile Safari/537.36",
    "Mozilla/5.0 (Linux; Android 11; HUAWEI P40) AppleWebKit/537.36 Chrome/99.0 Mobile Safari/537.36",
    "Mozilla/5.0 (Linux; Android 12; Mi 11) AppleWebKit/537.36 Chrome/107.0 Mobile Safari/537.36",
];

/// In-app browser User-Agents keyed by Fig. 13 app label.
pub fn in_app_ua(app: &str) -> &'static str {
    match app {
        "WhatsApp" => "Mozilla/5.0 (iPhone; CPU iPhone OS 15_0 like Mac OS X) WhatsApp/2.23.10",
        "Facebook" => "Mozilla/5.0 (Linux; Android 12) [FBAN/FB4A;FBAV/407.0.0.0]",
        "WeChat" => "Mozilla/5.0 (Linux; Android 11) MicroMessenger/8.0.30",
        "Twitter" => "Mozilla/5.0 (Linux; Android 12) TwitterAndroid/9.80",
        "Instagram" => "Mozilla/5.0 (Linux; Android 13) Instagram 270.0",
        "DingTalk" => "Mozilla/5.0 (Linux; Android 10) DingTalk/6.5.45",
        "QQ" => "Mozilla/5.0 (Linux; Android 11) QQ/8.9.3 Mobile",
        _ => "Mozilla/5.0 (Linux; Android 11) Line/12.7.0",
    }
}

/// Script/tool User-Agents (§6.3: "Python, Java, curl, wget, etc.").
pub const SCRIPT_UAS: &[&str] = &[
    "python-requests/2.28.0",
    "python-urllib/3.9",
    "curl/7.88.1",
    "Wget/1.21.3",
    "Java/1.8.0_362",
    "okhttp/4.10.0",
    "Go-http-client/2.0",
    "libwww-perl/6.67",
    "Scrapy/2.8.0 (+https://scrapy.org)",
    "axios/1.3.4",
];

/// Crawler User-Agents by service.
pub fn crawler_ua(service: &str) -> &'static str {
    match service {
        "googlebot" => "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
        "bingbot" => "Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)",
        "mailru" => "Mozilla/5.0 (compatible; Mail.RU_Bot/2.0; +http://go.mail.ru/help/robots)",
        "yandex" => "Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)",
        "baidu" => {
            "Mozilla/5.0 (compatible; Baiduspider/2.0; +http://www.baidu.com/search/spider.html)"
        }
        "semrush" => "Mozilla/5.0 (compatible; SemrushBot/7~bl; +http://www.semrush.com/bot.html)",
        "ahrefs" => "Mozilla/5.0 (compatible; AhrefsBot/7.0; +http://ahrefs.com/robot/)",
        _ => "Mozilla/5.0 (compatible; generic-crawler/1.0)",
    }
}

/// E-mail image-proxy User-Agents by provider (conf-cdn's visitors).
pub fn email_ua(provider: &str) -> &'static str {
    match provider {
        "gmail" => "Mozilla/5.0 (Windows NT 5.1; rv:11.0) Gecko Firefox/11.0 (via ggpht.com GoogleImageProxy)",
        "yahoo" => "YahooMailProxy; https://help.yahoo.com/kb/yahoo-mail-proxy-SLN28749.html",
        _ => "Mozilla/5.0 OutlookImageProxy (compatible; Microsoft Office)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pools_draw_inside_their_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for pool in IpPool::ALL {
            let (net, prefix, _) = pool.spec();
            let mask = if prefix == 0 {
                0
            } else {
                u32::MAX << (32 - prefix as u32)
            };
            for _ in 0..50 {
                let ip = pool.draw(&mut rng);
                assert_eq!(
                    u32::from(ip) & mask,
                    u32::from(net) & mask,
                    "{pool:?} drew {ip}"
                );
            }
        }
    }

    #[test]
    fn reverse_dns_covers_named_pools() {
        let mut rdns = ReverseDns::new();
        IpPool::register_all(&mut rdns);
        let mut rng = StdRng::seed_from_u64(2);
        let ip = IpPool::GoogleProxy.draw(&mut rng);
        let host = rdns.lookup(ip).unwrap().to_string();
        assert!(host.starts_with("google-proxy-"), "{host}");
        assert!(host.ends_with(".google.com"), "{host}");
        assert!(rdns.lookup(IpPool::Residential.draw(&mut rng)).is_none());
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for pool in IpPool::ALL {
            assert_eq!(pool.draw(&mut a), pool.draw(&mut b));
        }
    }

    #[test]
    fn ua_tables_classify_as_expected() {
        use nxd_httpsim::{classify_user_agent, UaClass};
        for ua in PC_UAS {
            assert!(
                matches!(
                    classify_user_agent(ua),
                    UaClass::Browser {
                        device: nxd_httpsim::Device::Pc
                    }
                ),
                "{ua}"
            );
        }
        for ua in MOBILE_UAS {
            assert!(
                matches!(
                    classify_user_agent(ua),
                    UaClass::Browser {
                        device: nxd_httpsim::Device::Mobile
                    }
                ),
                "{ua}"
            );
        }
        for ua in SCRIPT_UAS {
            assert!(
                matches!(classify_user_agent(ua), UaClass::ScriptTool { .. }),
                "{ua}"
            );
        }
        for (app, _) in crate::table1::IN_APP_MIX {
            let ua = in_app_ua(app);
            assert!(
                matches!(classify_user_agent(ua), UaClass::InAppBrowser { .. }),
                "{app}: {ua}"
            );
        }
        for svc in [
            "googlebot",
            "bingbot",
            "mailru",
            "yandex",
            "baidu",
            "semrush",
            "ahrefs",
            "x",
        ] {
            assert!(
                matches!(
                    classify_user_agent(crawler_ua(svc)),
                    UaClass::Crawler { .. }
                ),
                "{svc}"
            );
        }
        for p in ["gmail", "yahoo", "outlook"] {
            assert!(
                matches!(
                    classify_user_agent(email_ua(p)),
                    UaClass::EmailCrawler { .. }
                ),
                "{p}"
            );
        }
    }
}
