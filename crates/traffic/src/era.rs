//! The passive-DNS era workload (2014–2022): the "simulated Internet" whose
//! queries populate the Farsight-substitute database for the §4 scale
//! analyses (Figs. 3–6 and the headline scalars).
//!
//! Composition of the NXDomain name universe (§5.1: the overwhelming
//! majority of NXDomains were never registered, dominated by DGA output and
//! typos):
//!
//! * DGA candidates from the eight `nxd-dga` families (never registered);
//! * typos of popular domains (never registered);
//! * miscellaneous junk (misconfigured suffixes, word mashups);
//! * an *expired panel*: domains registered in the simulated registry that
//!   lapse mid-era — their pre-expiry NOERROR and post-expiry NXDOMAIN
//!   traffic drives Fig. 6, including the +30-day query spike the paper
//!   observed.
//!
//! Every query's rcode is taken from the simulated registry's ground truth,
//! and a configurable subsample is verified through the full recursive
//! resolver, so the passive database can never drift from the DNS
//! simulation.

use std::collections::HashMap;

use nxd_dga::all_families;
use nxd_dns_sim::{Registry, RegistryConfig, SimTime};
use nxd_dns_wire::{Name, RCode};
use nxd_passive_dns::{NameId, PassiveDb};
use nxd_squat::generate as squatgen;
use nxd_squat::tables::POPULAR_TARGETS;
use nxd_telemetry::Telemetry;
use nxd_whois::{HistoricWhoisDb, SpanEnd, WhoisRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Era generator configuration.
#[derive(Debug, Clone)]
pub struct EraConfig {
    pub seed: u64,
    /// Distinct never-registered NXDomain names to synthesize.
    pub nx_names: usize,
    /// Expired-domain panel size. The paper-proportional value (0.06% of
    /// names) is statistically unusable at laptop scale, so the default
    /// oversamples; [`EraConfig::paper_proportions`] gives the honest ratio.
    pub expired_panel: usize,
    /// Verify this many randomly chosen observations through the recursive
    /// resolver against the registry ground truth.
    pub resolver_checks: usize,
}

impl Default for EraConfig {
    fn default() -> Self {
        EraConfig {
            seed: 0xE5A,
            nx_names: 60_000,
            expired_panel: 1_500,
            resolver_checks: 200,
        }
    }
}

impl EraConfig {
    /// The honest paper ratio: 0.0625% of NXDomain names have WHOIS history.
    pub fn paper_proportions(nx_names: usize) -> Self {
        EraConfig {
            nx_names,
            expired_panel: (nx_names as f64 * 0.000_625).round().max(1.0) as usize,
            ..Default::default()
        }
    }
}

/// Everything the §4 analyses consume.
pub struct EraWorld {
    pub db: PassiveDb,
    pub whois: HistoricWhoisDb,
    /// Expiry day (days since epoch) per expired-panel name id.
    pub expiry_days: HashMap<NameId, u32>,
    pub config: EraConfig,
    /// Resolver-vs-registry consistency check results (passed, total).
    pub consistency: (usize, usize),
}

/// One era name as the live front-end's load driver replays it: just the
/// name and whether it belongs to the expired panel (and so should be
/// *registered* in the serving hierarchy, answering NOERROR while active).
///
/// This is the deterministic spec stream [`generate`] builds internally,
/// stripped of the emission schedule: `nxd-serve`'s loadgen turns each spec
/// into real wire queries instead of synthetic [`PassiveDb`] rows, so the
/// served world exercises the same name universe (DGA output, typos, junk,
/// expired panel) the offline era does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySpec {
    pub name: String,
    /// Expired-panel member — register it in the hierarchy before serving.
    pub expired: bool,
}

/// The deterministic name universe for a config, for live replay through
/// `nxd-serve`. Same seed → same specs as [`generate`] would emit.
pub fn replay_specs(config: &EraConfig) -> Vec<ReplaySpec> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let era_start_day = SimTime::ERA_START.day_number() as u32;
    let era_days = SimTime::ERA_END.day_number() as u32 - era_start_day;
    build_name_specs(&mut rng, config, era_start_day, era_days)
        .into_iter()
        .map(|s| ReplaySpec {
            name: s.name,
            expired: s.expired,
        })
        .collect()
}

/// Fig. 3's yearly intensity curve, relative units per month
/// (2014 rise → flat 2016–2020 → 2021 jump → 2022 high).
const YEAR_MULT: [f64; 9] = [8.0, 12.0, 15.0, 15.2, 15.4, 15.5, 16.0, 19.8, 22.3];

/// TLD mix for names that do not inherit one (Fig. 4's top-20 shape).
const TLD_MIX: [(&str, u32); 20] = [
    ("com", 430),
    ("net", 100),
    ("cn", 85),
    ("ru", 75),
    ("org", 60),
    ("de", 30),
    ("uk", 28),
    ("info", 25),
    ("top", 22),
    ("xyz", 20),
    ("nl", 15),
    ("br", 14),
    ("io", 12),
    ("fr", 11),
    ("eu", 10),
    ("online", 9),
    ("jp", 8),
    ("biz", 7),
    ("it", 6),
    ("au", 5),
];

fn weighted_tld(rng: &mut StdRng) -> &'static str {
    let total: u32 = TLD_MIX.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (tld, w) in TLD_MIX {
        if pick < w {
            return tld;
        }
        pick -= w;
    }
    "com"
}

/// Small-λ Poisson sampler (inversion by sequential search).
fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation is fine at this size.
        let u: f64 = rng.gen_range(-3.0..3.0);
        return (lambda + u * lambda.sqrt()).round().max(0.0) as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k;
        }
    }
}

struct NameSpec {
    name: String,
    /// Day the name starts being queried as NX.
    nx_start: u32,
    /// Active NX-query span in days.
    duration: u32,
    /// Base intensity (expected queries/day at offset 0, year-2016 level).
    weight: f64,
    /// Expired-panel entry? Then `nx_start` is the expiry day.
    expired: bool,
    registered_day: u32,
}

/// Generates the era world.
pub fn generate(config: EraConfig) -> EraWorld {
    generate_with(config, &Telemetry::wall())
}

/// Instrumented variant of [`generate`]: stage spans (`era.specs`,
/// `era.registry`, `era.emit`, `era.consistency`) land on the telemetry
/// tracer, and the generated [`PassiveDb`] plus the consistency resolver
/// attach their metrics to the telemetry registry.
pub fn generate_with(config: EraConfig, telemetry: &Telemetry) -> EraWorld {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let era_start_day = SimTime::ERA_START.day_number() as u32;
    let era_end_day = SimTime::ERA_END.day_number() as u32;
    let era_days = era_end_day - era_start_day;

    let specs = {
        let _span = telemetry.span("era.specs");
        build_name_specs(&mut rng, &config, era_start_day, era_days)
    };
    telemetry
        .registry
        .counter("traffic_era_names_total")
        .add(specs.len() as u64);
    telemetry.journal.info(
        "traffic.era",
        "name specs built",
        &[("specs", &specs.len().to_string())],
    );

    let span_registry = telemetry.span("era.registry");
    // ---- registry + WHOIS for the expired panel -------------------------
    // The registry's fixed one-year term sets (registration = expiry − 1y).
    let mut registry = Registry::new(RegistryConfig::default(), SimTime(0));
    let mut whois = HistoricWhoisDb::new();
    let mut panel: Vec<usize> = (0..specs.len()).filter(|&i| specs[i].expired).collect();
    panel.sort_by_key(|&i| specs[i].registered_day);
    for &i in &panel {
        let spec = &specs[i];
        let reg_time = SimTime(spec.registered_day as u64 * 86_400);
        registry.tick(reg_time);
        let name: Name = spec.name.parse().expect("generated names are valid");
        registry
            .register(&name, &format!("owner-{i}"), pick_registrar(&mut rng), 1)
            .expect("panel names are unique and registrable");
        whois.add(WhoisRecord {
            domain: spec.name.clone(),
            registered: reg_time.as_secs(),
            expires: spec.nx_start as u64 * 86_400,
            registrar: pick_registrar(&mut rng).to_string(),
            registrant: format!("anon-{i}"),
            nameservers: vec![format!("ns1.{}", spec.name)],
            end: SpanEnd::Expired,
        });
    }
    // Roll the registry through the whole era so every panel domain expires.
    registry.tick(SimTime::ERA_END);
    drop(span_registry);
    telemetry.journal.info(
        "traffic.era",
        "expired panel registered",
        &[("panel", &panel.len().to_string())],
    );

    // ---- emit observations ---------------------------------------------
    let span_emit = telemetry.span("era.emit");
    let mut db = PassiveDb::new();
    db.attach_metrics(&telemetry.registry);
    db.attach_journal(telemetry.journal.clone());
    // Per-phase progress for live observers: the gauge climbs to
    // `traffic_era_names_total` while emit is in flight, so two `/metrics`
    // scrapes mid-run visibly differ.
    let specs_emitted = telemetry.registry.gauge("traffic_era_specs_emitted");
    let total_specs = specs.len();
    let mut expiry_days = HashMap::new();
    for (spec_index, spec) in specs.iter().enumerate() {
        let tld = spec.name.rsplit('.').next().unwrap_or("").to_string();
        let id = db.interner_mut().intern_str(&spec.name);
        if spec.expired {
            expiry_days.insert(id, spec.nx_start);
            // Pre-expiry NOERROR traffic (60 days back, constant-ish rate).
            let pre_rate = spec.weight * 1.2;
            for d in 0..60u32 {
                let day = spec.nx_start.saturating_sub(60 - d);
                if day < era_start_day {
                    continue;
                }
                let count = poisson(&mut rng, pre_rate * year_mult(day));
                if count > 0 {
                    let sensor = pick_sensor(&mut rng, &tld);
                    db.record_str(&spec.name, day, sensor, RCode::NoError, count);
                }
            }
        }
        // NX-phase traffic: decay from nx_start, optional expiry spike.
        for offset in 0..spec.duration {
            let day = spec.nx_start + offset;
            if day >= era_end_day {
                break;
            }
            let mut lambda = spec.weight * decay(offset) * year_mult(day);
            if spec.expired && (25..=35).contains(&offset) {
                // The unexplained +30-day spike of Fig. 6 — modeled as a
                // burst of monitoring/drop-catch probing.
                lambda *= 35.0;
            }
            let count = poisson(&mut rng, lambda);
            if count > 0 {
                let sensor = pick_sensor(&mut rng, &tld);
                db.record_str(&spec.name, day, sensor, RCode::NxDomain, count);
            }
        }
        let done = spec_index + 1;
        if done.is_multiple_of(2048) || done == total_specs {
            specs_emitted.set(done as i64);
        }
        if done.is_multiple_of(16_384) {
            telemetry.journal.info(
                "traffic.era",
                "emit heartbeat",
                &[
                    ("specs", &format!("{done}/{total_specs}")),
                    ("rows", &db.row_count().to_string()),
                ],
            );
        }
    }

    drop(span_emit);
    telemetry.journal.info(
        "traffic.era",
        "emit complete",
        &[
            ("rows", &db.row_count().to_string()),
            ("names", &db.distinct_names().to_string()),
        ],
    );

    // ---- resolver/registry consistency subsample ------------------------
    let consistency = {
        let _span = telemetry.span("era.consistency");
        verify_consistency(&mut rng, &config, &db, &registry, telemetry)
    };
    telemetry.journal.info(
        "traffic.era",
        "consistency checked",
        &[
            ("passed", &consistency.0.to_string()),
            ("total", &consistency.1.to_string()),
        ],
    );

    EraWorld {
        db,
        whois,
        expiry_days,
        config,
        consistency,
    }
}

fn year_mult(day: u32) -> f64 {
    let t = SimTime(day as u64 * 86_400);
    let year = t.year().clamp(2014, 2022);
    YEAR_MULT[(year - 2014) as usize] / 15.0
}

/// Query-rate decay with days spent in NX status: fast in the first ten
/// days, long tail afterwards (Fig. 5's shape).
fn decay(offset: u32) -> f64 {
    (1.0 + offset as f64).powf(-0.9)
}

/// Sensor ids by collection network: 0–9 belong to the global provider
/// (Farsight-like), 10–12 to a Greater-China regional network (114DNS-like),
/// 13–15 to a European network (CIRCL-like). Regional TLDs skew towards
/// their region's sensors — the contributor bias the paper's §7 worries
/// about, measurable via `nxd_passive_dns::Federation`.
pub const GLOBAL_SENSORS: std::ops::Range<u16> = 0..10;
pub const CHINA_SENSORS: std::ops::Range<u16> = 10..13;
pub const EUROPE_SENSORS: std::ops::Range<u16> = 13..16;

fn pick_sensor(rng: &mut StdRng, tld: &str) -> u16 {
    let roll = rng.gen_range(0..100u32);
    let range = match tld {
        "cn" | "jp" | "top" | "xyz" if roll < 55 => CHINA_SENSORS,
        "ru" | "de" | "nl" | "fr" | "eu" | "it" | "uk" if roll < 45 => EUROPE_SENSORS,
        _ => {
            if roll < 88 {
                GLOBAL_SENSORS
            } else if roll < 94 {
                CHINA_SENSORS
            } else {
                EUROPE_SENSORS
            }
        }
    };
    rng.gen_range(range)
}

fn pick_registrar(rng: &mut StdRng) -> &'static str {
    ["godaddy", "namecheap", "101domain", "enom", "gandi"][rng.gen_range(0..5usize)]
}

fn build_name_specs(
    rng: &mut StdRng,
    config: &EraConfig,
    era_start_day: u32,
    era_days: u32,
) -> Vec<NameSpec> {
    let mut specs: Vec<NameSpec> = Vec::with_capacity(config.nx_names + config.expired_panel);
    let mut seen = std::collections::HashSet::new();
    let families = all_families();

    // nx_start density follows the Fig. 3 curve so later years carry more
    // first-seen names.
    let year_weights: Vec<f64> = YEAR_MULT.to_vec();
    let wsum: f64 = year_weights.iter().sum();

    let draw_start = |rng: &mut StdRng| -> u32 {
        let mut pick = rng.gen::<f64>() * wsum;
        let mut year = 0usize;
        for (i, w) in year_weights.iter().enumerate() {
            if pick < *w {
                year = i;
                break;
            }
            pick -= w;
        }
        let day_in_year = rng.gen_range(0..360u32);
        (era_start_day + year as u32 * 365 + day_in_year).min(era_start_day + era_days - 1)
    };

    let draw_duration = |rng: &mut StdRng| -> u32 {
        match rng.gen_range(0..1000) {
            0..=799 => rng.gen_range(1..30),
            800..=949 => rng.gen_range(30..365),
            950..=992 => rng.gen_range(365..1825),
            _ => rng.gen_range(1825..3200), // the ≥5-year long tail (§4.4)
        }
    };

    // Pareto-ish base weight: most names get a trickle, a few get firehoses
    // (the >10k-queries/month selection pool).
    let draw_weight = |rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen_range(0.001..1.0);
        (0.3 * u.powf(-0.7)).min(25.0)
    };

    while specs.len() < config.nx_names {
        let roll = rng.gen_range(0..100);
        let name = if roll < 62 {
            // DGA candidates.
            let fam = &families[rng.gen_range(0..families.len())];
            let date = (
                2014 + rng.gen_range(0..9),
                rng.gen_range(1..13u32),
                rng.gen_range(1..29u32),
            );
            fam.generate(rng.gen(), date, 1).pop().unwrap()
        } else if roll < 80 {
            // Typos of popular targets.
            let target = POPULAR_TARGETS[rng.gen_range(0..POPULAR_TARGETS.len())];
            let typos = squatgen::typosquats(target);
            typos[rng.gen_range(0..typos.len())].clone()
        } else {
            // Junk: word mashups and misconfig-looking names.
            let w = nxd_dga::corpus::WORDS;
            format!(
                "{}{}{}.{}",
                w[rng.gen_range(0..w.len())],
                w[rng.gen_range(0..w.len())],
                rng.gen_range(0..100u32),
                weighted_tld(rng)
            )
        };
        // Re-attach a weighted TLD for 40% of names so Fig. 4's mix holds
        // regardless of family TLD conventions.
        let name = if rng.gen_range(0..100) < 40 {
            let label = name.split('.').next().unwrap().to_string();
            format!("{label}.{}", weighted_tld(rng))
        } else {
            name
        };
        if !seen.insert(name.clone()) {
            continue;
        }
        let nx_start = draw_start(rng);
        specs.push(NameSpec {
            name,
            nx_start,
            duration: draw_duration(rng),
            weight: draw_weight(rng),
            expired: false,
            registered_day: 0,
        });
    }

    // Expired panel: distinctive names so they never collide with the junk.
    for i in 0..config.expired_panel {
        let w = nxd_dga::corpus::WORDS;
        let name = format!(
            "{}-{}{}.{}",
            w[rng.gen_range(0..w.len())],
            w[rng.gen_range(0..w.len())],
            i,
            weighted_tld(rng)
        );
        if !seen.insert(name.clone()) {
            continue;
        }
        // Expiry must leave 60 days of pre-era history and 120 days of
        // post-expiry era; the registry's one-year term sets registration.
        let expiry = era_start_day + 425 + rng.gen_range(0..(era_days - 425 - 130));
        specs.push(NameSpec {
            name,
            nx_start: expiry,
            duration: draw_duration(rng).max(130),
            weight: draw_weight(rng).max(0.5),
            expired: true,
            registered_day: expiry - 365,
        });
    }
    specs
}

/// Two-layer consistency check.
///
/// Layer 1 — every sampled observation's rcode must match the registry's
/// registration spans at that instant (row-level ground truth).
///
/// Layer 2 — a genuine end-to-end check: rebuild the hierarchy as a
/// [`SimDns`], replay the panel registrations through it, advance to the
/// era end, and resolve a sample of names through the caching recursive
/// resolver; every name must be NXDOMAIN by then (the panel has expired and
/// the rest never existed).
fn verify_consistency(
    rng: &mut StdRng,
    config: &EraConfig,
    db: &PassiveDb,
    registry: &Registry,
    telemetry: &Telemetry,
) -> (usize, usize) {
    use nxd_dns_sim::{Resolver, ResolverConfig, SimDns};
    use nxd_dns_wire::RType;

    let rows = db.row_count();
    if rows == 0 || config.resolver_checks == 0 {
        return (0, 0);
    }
    let mut passed = 0;
    let mut total = 0;

    // Layer 1: row-level rcode vs registration spans.
    let sample = config.resolver_checks.min(rows);
    for _ in 0..sample {
        total += 1;
        let obs = db.row(rng.gen_range(0..rows));
        let name_str = db.interner().resolve(obs.name).to_string();
        let name: Name = name_str.parse().expect("stored names are valid");
        let day_time = SimTime(obs.day as u64 * 86_400);
        let expect_nx = obs.rcode == RCode::NxDomain.to_u8();
        let was_registered = registry.events().iter().any(|e| {
            e.domain == name
                && matches!(e.kind, nxd_dns_sim::EventKind::Registered { expires, .. }
                    if e.at <= day_time && day_time < expires)
        });
        if was_registered != expect_nx {
            passed += 1;
        }
    }

    // Layer 2: end-to-end through hierarchy + resolver.
    let tlds: Vec<&str> = TLD_MIX.iter().map(|&(t, _)| t).collect();
    let mut dns = SimDns::new(&tlds, RegistryConfig::default(), SimTime(0));
    let mut regs: Vec<(SimTime, Name)> = registry
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            nxd_dns_sim::EventKind::Registered { .. } => Some((e.at, e.domain.clone())),
            _ => None,
        })
        .collect();
    regs.sort();
    for (at, name) in regs {
        dns.tick(at);
        let _ = dns.register_domain(
            &name,
            "owner",
            "registrar",
            1,
            std::net::Ipv4Addr::new(198, 51, 100, 1),
        );
    }
    dns.tick(SimTime::ERA_END);
    let mut resolver = Resolver::new(ResolverConfig::default());
    resolver.attach_metrics(&telemetry.registry);
    for _ in 0..config.resolver_checks.min(rows) {
        total += 1;
        let obs = db.row(rng.gen_range(0..rows));
        let name: Name = db.interner().resolve(obs.name).parse().expect("valid");
        // Unknown TLDs (kept by DGA family conventions outside the top-20
        // mix) also produce NXDOMAIN at the root — still the expected state.
        let res = resolver.resolve(&dns, &name, RType::A, SimTime::ERA_END);
        if res.is_nxdomain() {
            passed += 1;
        }
    }
    (passed, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_passive_dns::query;

    fn small_world() -> EraWorld {
        generate(EraConfig {
            nx_names: 4_000,
            expired_panel: 200,
            resolver_checks: 100,
            ..Default::default()
        })
    }

    #[test]
    fn world_populates_database() {
        let w = small_world();
        assert!(w.db.row_count() > 10_000, "rows: {}", w.db.row_count());
        assert!(query::distinct_nx_names(&w.db) > 2_000);
        assert!(query::total_nx_responses(&w.db) > 10_000);
    }

    #[test]
    fn whois_covers_exactly_the_panel() {
        let w = small_world();
        assert_eq!(w.whois.distinct_domains(), w.expiry_days.len());
        for &id in w.expiry_days.keys() {
            let name = w.db.interner().resolve(id);
            assert!(w.whois.has_history(name), "{name}");
        }
    }

    #[test]
    fn consistency_subsample_passes() {
        let w = small_world();
        let (passed, total) = w.consistency;
        assert_eq!(passed, total, "resolver/registry disagreement");
        assert!(total >= 50);
    }

    #[test]
    fn fig3_shape_monotone_rise_then_jump() {
        let w = small_world();
        let yearly = query::yearly_avg_monthly_nx(&w.db);
        let get = |y: i32| {
            yearly
                .iter()
                .find(|&&(yy, _)| yy == y)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        assert!(
            get(2014) < get(2016),
            "2014 {} !< 2016 {}",
            get(2014),
            get(2016)
        );
        assert!(get(2021) > get(2020) * 1.1, "2021 jump missing");
        assert!(get(2022) > get(2021) * 0.95, "2022 should stay high");
    }

    #[test]
    fn fig4_com_leads_tlds() {
        let w = small_world();
        let dist = query::tld_distribution(&w.db);
        assert_eq!(dist[0].tld, "com");
        let top5: Vec<&str> = dist.iter().take(5).map(|t| t.tld.as_str()).collect();
        for tld in ["net", "ru"] {
            assert!(top5.contains(&tld), "{tld} not in top5: {top5:?}");
        }
    }

    #[test]
    fn fig5_decay_in_first_ten_days() {
        let w = small_world();
        let hist = query::lifespan_histogram(&w.db, 60);
        assert!(hist[0].names > 0);
        assert!(
            (hist[10].names as f64) < hist[0].names as f64 * 0.6,
            "day10 {} vs day0 {}",
            hist[10].names,
            hist[0].names
        );
        assert!(hist[40].names <= hist[5].names);
    }

    #[test]
    fn fig6_spike_and_decline() {
        let w = small_world();
        let series = query::expiry_aligned_series(&w.db, &w.expiry_days, 60, 120);
        let at = |o: i32| series.iter().find(|&&(x, _)| x == o).unwrap().1;
        let pre: f64 = (-30..-5).map(at).sum::<f64>() / 25.0;
        let spike: f64 = (27..=33).map(at).sum::<f64>() / 7.0;
        let late: f64 = (90..115).map(at).sum::<f64>() / 25.0;
        assert!(spike > pre, "spike {spike} should exceed pre-expiry {pre}");
        assert!(late < pre, "late {late} should fall below pre-expiry {pre}");
    }

    #[test]
    fn long_lived_tail_exists() {
        let w = small_world();
        let (names, queries) = query::long_lived_nx(&w.db, 365);
        assert!(names > 0, "some names must stay queried for over a year");
        assert!(queries > 0);
    }

    #[test]
    fn deterministic() {
        let a = generate(EraConfig {
            nx_names: 500,
            expired_panel: 30,
            ..Default::default()
        });
        let b = generate(EraConfig {
            nx_names: 500,
            expired_panel: 30,
            ..Default::default()
        });
        assert_eq!(a.db.row_count(), b.db.row_count());
        assert_eq!(
            query::total_nx_responses(&a.db),
            query::total_nx_responses(&b.db)
        );
    }

    #[test]
    fn instrumented_generation_reports_stages() {
        let telemetry = Telemetry::wall();
        let w = generate_with(
            EraConfig {
                nx_names: 500,
                expired_panel: 30,
                resolver_checks: 50,
                ..Default::default()
            },
            &telemetry,
        );
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter_total("passive_rows_ingested_total"),
            w.db.row_count() as u64
        );
        assert_eq!(snap.counter_total("traffic_era_names_total"), 530);
        // The emit-progress gauge ends at the full spec count, and the
        // stage transitions landed in the flight recorder.
        assert_eq!(snap.gauge_value("traffic_era_specs_emitted"), Some(530));
        let messages: Vec<String> = telemetry
            .journal
            .snapshot()
            .iter()
            .map(|e| e.message.clone())
            .collect();
        for expected in [
            "name specs built",
            "expired panel registered",
            "emit complete",
            "consistency checked",
        ] {
            assert!(
                messages.contains(&expected.to_string()),
                "missing journal event {expected:?} in {messages:?}"
            );
        }
        // The consistency subsample runs through an attached resolver.
        assert!(snap.counter_total("resolver_queries_total") >= 50);
        let names: Vec<String> = telemetry
            .tracer
            .spans()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        for stage in ["era.specs", "era.registry", "era.emit", "era.consistency"] {
            assert!(names.contains(&stage.to_string()), "missing span {stage}");
        }
    }

    #[test]
    fn replay_specs_are_deterministic_and_cover_the_panel() {
        let config = EraConfig {
            nx_names: 300,
            expired_panel: 20,
            resolver_checks: 0,
            ..Default::default()
        };
        let specs = replay_specs(&config);
        assert_eq!(specs, replay_specs(&config), "same seed, same universe");
        assert_eq!(specs.len(), 320);
        assert_eq!(specs.iter().filter(|s| s.expired).count(), 20);
        // Every spec must be servable: a valid wire name with a TLD.
        for s in &specs {
            let name: Name = s.name.parse().expect("replay names are valid");
            assert!(name.tld().is_some(), "{}", s.name);
        }
    }

    #[test]
    fn paper_proportions_ratio() {
        let c = EraConfig::paper_proportions(100_000);
        assert_eq!(c.expired_panel, 63); // 0.0625% of 100k, rounded
    }
}
