//! Feature-gated big-world generator for the `BENCH_6` compression/scan
//! gate: a deterministic multi-million-name passive-DNS era that is far too
//! large for the unit-test fixtures but cheap enough to synthesize inside a
//! bench run.
//!
//! Unlike [`crate::era`], which routes every query through the registry and
//! resolver for ground truth, this world is pure volume: a fixed name
//! universe (DGA-shaped stems, brand typos, and junk suffixes in the §5.1
//! proportions) streamed in day order so the columnar store's per-block
//! zone maps see realistic monotone day ranges. Everything derives from the
//! seed via splitmix64 — two calls with the same config produce an
//! identical observation stream, which is what lets the bench assert the
//! compressed sharded engine is bit-identical to the flat serial one
//! before timing either.
//!
//! Compiled only with the `bigworld` cargo feature; the normal build and
//! test tiers never pay for it.

use nxd_dns_wire::RCode;
use nxd_passive_dns::PassiveDb;

/// Size and shape of the generated world.
#[derive(Debug, Clone)]
pub struct BigWorldConfig {
    pub seed: u64,
    /// Total observations to stream into the store.
    pub rows: usize,
    /// Distinct qnames in the universe (the default is multi-million).
    pub names: usize,
    /// Era length in days; rows are emitted in non-decreasing day order.
    pub days: u32,
    /// Sensor pool size.
    pub sensors: u16,
}

impl Default for BigWorldConfig {
    fn default() -> Self {
        BigWorldConfig {
            seed: 0xB16_0001,
            rows: 6_000_000,
            names: 2_000_000,
            days: 1_461, // four years, same horizon as the era generator
            sensors: 64,
        }
    }
}

impl BigWorldConfig {
    /// The CI-sized world: same shape, two orders of magnitude smaller.
    pub fn quick() -> Self {
        BigWorldConfig {
            rows: 500_000,
            names: 150_000,
            ..BigWorldConfig::default()
        }
    }

    /// Default config honoring the bench environment: `NXD_BENCH_QUICK`
    /// selects [`BigWorldConfig::quick`], and `NXD_BIGWORLD_ROWS` /
    /// `NXD_BIGWORLD_NAMES` override the sizes for local experiments.
    pub fn from_env() -> Self {
        let mut cfg = if std::env::var_os("NXD_BENCH_QUICK").is_some() {
            BigWorldConfig::quick()
        } else {
            BigWorldConfig::default()
        };
        if let Some(rows) = env_usize("NXD_BIGWORLD_ROWS") {
            cfg.rows = rows.max(1);
        }
        if let Some(names) = env_usize("NXD_BIGWORLD_NAMES") {
            cfg.names = names.max(1);
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const TLDS: [&str; 8] = ["com", "net", "org", "cn", "ru", "info", "biz", "io"];
const BRANDS: [&str; 12] = [
    "google",
    "facebook",
    "amazon",
    "netflix",
    "paypal",
    "youtube",
    "microsoft",
    "apple",
    "twitter",
    "instagram",
    "wikipedia",
    "baidu",
];
const JUNK_SUFFIXES: [&str; 4] = ["localdomain", "lan", "corp", "home"];

/// Deterministic name for universe slot `idx`: roughly two thirds
/// DGA-shaped stems, a quarter brand typos, and the rest junk suffixes —
/// the §5.1 skew, coarsely.
fn name_for(idx: usize, seed: u64) -> String {
    let mut h = seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let r = splitmix64(&mut h);
    match idx % 12 {
        0..=7 => {
            // DGA-shaped: 12 pseudo-random lowercase letters.
            let mut stem = String::with_capacity(16);
            let mut v = r;
            for _ in 0..12 {
                stem.push(char::from(b'a' + u8::try_from(v % 26).unwrap_or(0)));
                v /= 26;
                if v == 0 {
                    v = splitmix64(&mut h);
                }
            }
            format!("{stem}.{}", TLDS[idx % TLDS.len()])
        }
        8..=10 => {
            // Typo-shaped: a brand with one letter doubled, made distinct
            // per slot by a numeric disambiguator.
            let brand = BRANDS[idx % BRANDS.len()];
            let pos = 1 + (r as usize) % (brand.len() - 1);
            let double = &brand[pos - 1..pos];
            format!(
                "{}{double}{}{}.{}",
                &brand[..pos],
                &brand[pos..],
                idx / 12,
                TLDS[(r as usize) % TLDS.len()]
            )
        }
        _ => {
            // Junk: word mashup under a non-resolving suffix.
            format!(
                "printer-{}.{}",
                idx / 12,
                JUNK_SUFFIXES[(r as usize) % JUNK_SUFFIXES.len()]
            )
        }
    }
}

/// Streams the configured world into `db` in non-decreasing day order.
///
/// Deterministic in `cfg`: calling this twice — e.g. once into a flat
/// [`PassiveDb::uncompressed`] reference store and once into the default
/// compressed layout — yields stores with identical logical contents, so
/// benches can assert result parity before timing.
pub fn populate(db: &mut PassiveDb, cfg: &BigWorldConfig) {
    let names: Vec<String> = (0..cfg.names).map(|i| name_for(i, cfg.seed)).collect();
    let mut rng = cfg.seed | 1;
    let days = usize::try_from(cfg.days.max(1)).unwrap_or(1);
    for i in 0..cfg.rows {
        let r = splitmix64(&mut rng);
        let name = &names[(r as usize) % names.len()];
        // Monotone day schedule: row i lands on day floor(i * days / rows).
        let day = 16_000 + u32::try_from(i * days / cfg.rows.max(1)).unwrap_or(0);
        let sensor = u16::try_from((r >> 40) % u64::from(cfg.sensors.max(1))).unwrap_or(0);
        let rcode = if r.is_multiple_of(10) {
            RCode::NoError
        } else {
            RCode::NxDomain
        };
        let count = u32::try_from(1 + ((r >> 48) % 8)).unwrap_or(1);
        db.record_str(name, day, sensor, rcode, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BigWorldConfig {
        BigWorldConfig {
            rows: 8_192,
            names: 400,
            ..BigWorldConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_across_layouts() {
        let cfg = tiny();
        let mut flat = PassiveDb::uncompressed();
        populate(&mut flat, &cfg);
        let mut compressed = PassiveDb::with_block_rows(1024);
        populate(&mut compressed, &cfg);
        assert_eq!(flat.row_count(), cfg.rows);
        assert_eq!(flat.row_count(), compressed.row_count());
        assert_eq!(
            flat.rows().collect::<Vec<_>>(),
            compressed.rows().collect::<Vec<_>>()
        );
        // The compressed layout halves the footprint once blocks are big
        // enough to amortize their name dictionaries; the production 64Ki
        // block size is gated at the same ≤50% floor in BENCH_6.
        assert!(compressed.compressed_bytes() * 2 < flat.row_bytes());
    }

    #[test]
    fn days_are_monotone_and_span_the_era() {
        let cfg = tiny();
        let mut db = PassiveDb::uncompressed();
        populate(&mut db, &cfg);
        let days: Vec<u32> = db.rows().map(|o| o.day).collect();
        assert!(days.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(days.first().copied(), Some(16_000));
        assert!(days.last().copied() > Some(16_000 + cfg.days / 2));
    }

    #[test]
    fn name_universe_mixes_families() {
        let names: Vec<String> = (0..60).map(|i| name_for(i, 0xB16_0001)).collect();
        assert!(names.iter().any(|n| n.ends_with(".localdomain")
            || n.ends_with(".lan")
            || n.ends_with(".corp")
            || n.ends_with(".home")));
        assert!(names.iter().any(|n| BRANDS
            .iter()
            .any(|b| n.len() > b.len() && n.contains(&b[..3]))));
        let distinct: std::collections::BTreeSet<&str> = names.iter().map(String::as_str).collect();
        assert_eq!(
            distinct.len(),
            names.len(),
            "universe slots must be distinct"
        );
    }
}
