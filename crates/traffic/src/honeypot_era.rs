//! The six-month honeypot experiment workload (§6).
//!
//! For each of the 19 registered domains, actors emit raw HTTP requests and
//! probe packets whose *shape* (User-Agents, referers, URIs, source ranges)
//! matches what the paper observed; Table 1's cell counts (scaled by
//! `1/scale`) calibrate the volumes. The generator also produces the
//! no-hosting baseline and control-group captures that §6.1's filter is
//! built from — including the noise (cloud scanners, the AWS port-52646
//! monitor, ACME validators) that the filter must remove.

use std::net::Ipv4Addr;

use nxd_dns_sim::{ReverseDns, SimTime};
use nxd_honeypot::{Packet, Transport, WebFilter};
use nxd_httpsim::HttpRequest;
use nxd_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actors::{crawler_ua, email_ua, in_app_ua, IpPool, MOBILE_UAS, PC_UAS, SCRIPT_UAS};
use crate::botnet;
use crate::table1::{DomainSpec, IN_APP_MIX, TABLE1};

/// Configuration for the honeypot-era generator.
#[derive(Debug, Clone)]
pub struct HoneypotConfig {
    pub seed: u64,
    /// Volume divisor applied to Table 1's cells (1 = paper scale).
    pub scale: u64,
    /// Collection length in days (the paper ran 6 months).
    pub days: u32,
    /// Experiment start (defaults to 2022-01-01 in `Default`).
    pub start: SimTime,
}

impl Default for HoneypotConfig {
    fn default() -> Self {
        HoneypotConfig {
            seed: 0x4E58_444F,
            scale: 100,
            days: 183,
            start: SimTime::from_ymd(2022, 1, 1),
        }
    }
}

/// The recorded capture of one registered domain's hosting phase.
#[derive(Debug)]
pub struct DomainCapture {
    pub spec: DomainSpec,
    pub packets: Vec<Packet>,
}

/// Everything the §6 analysis pipeline consumes.
pub struct HoneypotWorld {
    pub captures: Vec<DomainCapture>,
    /// No-hosting phase packets (filter step 1 input).
    pub baseline_packets: Vec<Packet>,
    /// Control-group packets (filter step 2 input).
    pub control_packets: Vec<Packet>,
    pub webfilter: WebFilter,
    pub reverse_dns: ReverseDns,
    pub config: HoneypotConfig,
}

/// Scales a Table 1 cell: zero stays zero, anything positive keeps at least
/// one request so the category structure survives any scale.
fn scaled(v: u64, scale: u64) -> u64 {
    if v == 0 {
        0
    } else {
        (v / scale).max(1)
    }
}

/// Generates the full honeypot world.
pub fn generate(config: HoneypotConfig) -> HoneypotWorld {
    generate_with(config, &Telemetry::wall())
}

/// Instrumented variant of [`generate`]: stage spans
/// (`honeypot_era.baseline`, `honeypot_era.control`,
/// `honeypot_era.captures`) on the tracer, and phase packet volumes on the
/// registry as `traffic_honeypot_packets_total{phase=...}`.
pub fn generate_with(config: HoneypotConfig, telemetry: &Telemetry) -> HoneypotWorld {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut reverse_dns = ReverseDns::new();
    IpPool::register_all(&mut reverse_dns);

    // Shared noise infrastructure: one scanner fleet and one monitor address
    // appear in the baseline AND in every later capture, so the filter can
    // learn and remove them.
    let scanner_ips: Vec<Ipv4Addr> = (0..64).map(|_| IpPool::Scanner.draw(&mut rng)).collect();
    let monitor_ip = Ipv4Addr::new(52, 94, 133, 7);
    let acme_ips: Vec<Ipv4Addr> = (0..8).map(|_| IpPool::Acme.draw(&mut rng)).collect();

    // Referral web: pages that genuinely embed links to our domains.
    let mut webfilter = WebFilter::new();
    for spec in &TABLE1 {
        for i in 0..16 {
            webfilter.add_page(
                &format!(
                    "https://forum{i}.example-boards.net/thread/{}",
                    fnv(spec.name) % 10_000 + i
                ),
                [spec.name],
            );
        }
    }
    // Pages that exist but do NOT link to any study domain (crafted referers
    // pointing at them classify as malicious links).
    for i in 0..8 {
        webfilter.add_page(
            &format!("https://blog{i}.example-unrelated.org/post"),
            ["elsewhere.com"],
        );
    }

    let baseline_packets = {
        let _span = telemetry.span("honeypot_era.baseline");
        gen_baseline(&mut rng, &config, &scanner_ips, monitor_ip)
    };
    telemetry.journal.info(
        "traffic.honeypot",
        "no-hosting baseline generated",
        &[("packets", &baseline_packets.len().to_string())],
    );
    let control_packets = {
        let _span = telemetry.span("honeypot_era.control");
        gen_control(&mut rng, &config, &scanner_ips, monitor_ip, &acme_ips)
    };
    telemetry.journal.info(
        "traffic.honeypot",
        "control group generated",
        &[("packets", &control_packets.len().to_string())],
    );

    // Per-domain progress for live observers: the gauge climbs 1..=19 and
    // each capture lands one journal event while the phase is in flight.
    let domains_generated = telemetry
        .registry
        .gauge("traffic_honeypot_domains_generated");
    let captures: Vec<DomainCapture> = {
        let _span = telemetry.span("honeypot_era.captures");
        TABLE1
            .iter()
            .enumerate()
            .map(|(domain_index, spec)| {
                let capture = DomainCapture {
                    spec: *spec,
                    packets: gen_domain(
                        &mut rng,
                        &config,
                        spec,
                        &scanner_ips,
                        monitor_ip,
                        &acme_ips,
                    ),
                };
                domains_generated.set(domain_index as i64 + 1);
                telemetry.journal.debug(
                    "traffic.honeypot",
                    "domain capture generated",
                    &[
                        ("domain", spec.name),
                        ("packets", &capture.packets.len().to_string()),
                    ],
                );
                capture
            })
            .collect()
    };

    let packets = |phase: &str| {
        telemetry
            .registry
            .counter_with("traffic_honeypot_packets_total", &[("phase", phase)])
    };
    packets("no-hosting").add(baseline_packets.len() as u64);
    packets("control").add(control_packets.len() as u64);
    packets("hosting").add(captures.iter().map(|c| c.packets.len() as u64).sum());

    HoneypotWorld {
        captures,
        baseline_packets,
        control_packets,
        webfilter,
        reverse_dns,
        config,
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn stamp(rng: &mut StdRng, config: &HoneypotConfig) -> u64 {
    config.start.as_secs()
        + rng.gen_range(0..config.days as u64) * 86_400
        + rng.gen_range(0..86_400u64)
}

fn http_port(rng: &mut StdRng) -> u16 {
    if rng.gen_range(0..100) < 35 {
        443
    } else {
        80
    }
}

/// No-hosting phase: pure scanning noise (Fig. 10b's shape, dominated by the
/// AWS monitor on port 52646).
fn gen_baseline(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    scanner_ips: &[Ipv4Addr],
    monitor_ip: Ipv4Addr,
) -> Vec<Packet> {
    let mut out = Vec::new();
    let n = (60_000 / config.scale).max(300) as usize;
    const PROBE_PORTS: [u16; 9] = [22, 23, 80, 443, 445, 3389, 8080, 5060, 21];
    for _ in 0..n {
        let t = stamp(rng, config);
        // 60% AWS monitor chatter, 40% internet scanners.
        if rng.gen_range(0..10) < 6 {
            out.push(Packet::raw(
                monitor_ip,
                52_646,
                Transport::Tcp,
                t,
                b"aws-health",
            ));
        } else {
            let ip = scanner_ips[rng.gen_range(0..scanner_ips.len())];
            let port = PROBE_PORTS[rng.gen_range(0..PROBE_PORTS.len())];
            out.push(Packet::raw(
                ip,
                port,
                Transport::Tcp,
                t,
                b"\x16\x03\x01probe",
            ));
        }
    }
    out
}

/// Control group: ten fresh domains collecting only establishment traffic.
fn gen_control(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    scanner_ips: &[Ipv4Addr],
    monitor_ip: Ipv4Addr,
    acme_ips: &[Ipv4Addr],
) -> Vec<Packet> {
    let mut out = Vec::new();
    let n = (20_000 / config.scale).max(200) as usize;
    for i in 0..n {
        let t = stamp(rng, config);
        let host = format!("control-{}.com", i % 10);
        match rng.gen_range(0..10) {
            // ACME certificate validation (the "Let's Encrypt consistently
            // querying with correct hostnames" problem).
            0..=2 => {
                let ip = acme_ips[rng.gen_range(0..acme_ips.len())];
                out.push(Packet::http(
                    HttpRequest::get(&format!(
                        "/.well-known/acme-challenge/tok{}",
                        rng.gen_range(0..99)
                    ))
                    .with_header("Host", &host)
                    .with_header(
                        "User-Agent",
                        "Mozilla/5.0 (compatible; Let's Encrypt validation server)",
                    )
                    .with_src(ip)
                    .with_port(80)
                    .with_time(t),
                ));
            }
            // New-domain crawlers fetching the landing page.
            3..=4 => {
                let ip = IpPool::Googlebot.draw(rng);
                out.push(Packet::http(
                    HttpRequest::get("/")
                        .with_header("Host", &host)
                        .with_header("User-Agent", crawler_ua("googlebot"))
                        .with_src(ip)
                        .with_port(http_port(rng))
                        .with_time(t),
                ));
            }
            // AWS monitor (Fig. 10b's dominant port).
            5..=8 => out.push(Packet::raw(
                monitor_ip,
                52_646,
                Transport::Tcp,
                t,
                b"aws-health",
            )),
            // Residual scanning.
            _ => {
                let ip = scanner_ips[rng.gen_range(0..scanner_ips.len())];
                out.push(Packet::raw(ip, 22, Transport::Tcp, t, b"SSH-2.0-scan"));
            }
        }
    }
    out
}

/// One registered domain's capture: calibrated category traffic + the noise
/// the filter must remove.
fn gen_domain(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    spec: &DomainSpec,
    scanner_ips: &[Ipv4Addr],
    monitor_ip: Ipv4Addr,
    acme_ips: &[Ipv4Addr],
) -> Vec<Packet> {
    let s = config.scale;
    let mut out = Vec::new();

    gen_search_engine(rng, config, spec, scaled(spec.search_engine, s), &mut out);
    gen_file_grabber(rng, config, spec, scaled(spec.file_grabber, s), &mut out);
    gen_script_software(rng, config, spec, scaled(spec.script_software, s), &mut out);
    gen_malicious_request(
        rng,
        config,
        spec,
        scaled(spec.malicious_request, s),
        &mut out,
    );
    gen_referrals(rng, config, spec, &mut out);
    gen_users(rng, config, spec, &mut out);
    gen_others(rng, config, spec, scaled(spec.others, s), &mut out);

    // Establishment + scanning noise, removed by the Fig. 9 filter.
    let noise = (out.len() / 12).max(8);
    for _ in 0..noise {
        let t = stamp(rng, config);
        match rng.gen_range(0..4) {
            0 => out.push(Packet::http(
                HttpRequest::get(&format!(
                    "/.well-known/acme-challenge/tok{}",
                    rng.gen_range(0..99)
                ))
                .with_header("Host", spec.name)
                .with_header(
                    "User-Agent",
                    "Mozilla/5.0 (compatible; Let's Encrypt validation server)",
                )
                .with_src(acme_ips[rng.gen_range(0..acme_ips.len())])
                .with_port(80)
                .with_time(t),
            )),
            1 => out.push(Packet::raw(
                monitor_ip,
                52_646,
                Transport::Tcp,
                t,
                b"aws-health",
            )),
            _ => {
                let ip = scanner_ips[rng.gen_range(0..scanner_ips.len())];
                let port = [22, 23, 445, 3389, 8080][rng.gen_range(0..5usize)];
                out.push(Packet::raw(ip, port, Transport::Tcp, t, b"probe"));
            }
        }
    }
    // A sprinkle of fresh (unfilterable) non-HTTP probes — the small
    // non-80/443 bars of Fig. 10a.
    for _ in 0..(out.len() / 200).max(2) {
        let t = stamp(rng, config);
        let ip = IpPool::Residential.draw(rng);
        let port = [21, 22, 25, 8443][rng.gen_range(0..4usize)];
        out.push(Packet::raw(ip, port, Transport::Tcp, t, b"stray"));
    }
    out
}

fn gen_search_engine(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    spec: &DomainSpec,
    count: u64,
    out: &mut Vec<Packet>,
) {
    // Geographic correlation (§6.3): porno-komiksy (ex-Russia) is crawled
    // mostly by mail.ru; resheba (ex-USA) by Google/Bing.
    let mix: &[(&str, IpPool, u32)] = match spec.name {
        "porno-komiksy.com" => &[
            ("mailru", IpPool::MailRuBot, 60),
            ("yandex", IpPool::YandexBot, 20),
            ("googlebot", IpPool::Googlebot, 15),
            ("bingbot", IpPool::Bingbot, 5),
        ],
        "resheba.online" => &[
            ("googlebot", IpPool::Googlebot, 55),
            ("bingbot", IpPool::Bingbot, 30),
            ("mailru", IpPool::MailRuBot, 10),
            ("yandex", IpPool::YandexBot, 5),
        ],
        _ => &[
            ("googlebot", IpPool::Googlebot, 40),
            ("bingbot", IpPool::Bingbot, 20),
            ("yandex", IpPool::YandexBot, 15),
            ("mailru", IpPool::MailRuBot, 10),
            ("baidu", IpPool::BaiduSpider, 15),
        ],
    };
    let total: u32 = mix.iter().map(|(_, _, w)| w).sum();
    for _ in 0..count {
        let mut pick = rng.gen_range(0..total);
        let mut chosen = &mix[0];
        for entry in mix {
            if pick < entry.2 {
                chosen = entry;
                break;
            }
            pick -= entry.2;
        }
        let (service, pool, _) = chosen;
        let path = match rng.gen_range(0..3) {
            0 => "/".to_string(),
            1 => format!("/page-{}.html", rng.gen_range(1..500)),
            _ => format!("/archive/{}.html", rng.gen_range(1..200)),
        };
        out.push(Packet::http(
            HttpRequest::get(&path)
                .with_header("Host", spec.name)
                .with_header("User-Agent", crawler_ua(service))
                .with_src(pool.draw(rng))
                .with_port(http_port(rng))
                .with_time(stamp(rng, config)),
        ));
    }
}

fn gen_file_grabber(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    spec: &DomainSpec,
    count: u64,
    out: &mut Vec<Packet>,
) {
    let email_heavy = spec.name == "conf-cdn.com";
    for _ in 0..count {
        let t = stamp(rng, config);
        // conf-cdn: 95.1% of grabs from e-mail providers (gmail > yahoo >
        // microsoft); elsewhere SEO file grabbers dominate.
        let roll = rng.gen_range(0..1000);
        let (ua, src): (&str, Ipv4Addr) = if email_heavy && roll < 951 {
            if roll < 553 {
                (email_ua("gmail"), IpPool::GoogleProxy.draw(rng))
            } else if roll < 795 {
                (email_ua("yahoo"), IpPool::Residential.draw(rng))
            } else {
                (email_ua("outlook"), IpPool::AzureCloud.draw(rng))
            }
        } else if rng.gen_range(0..2) == 0 {
            (crawler_ua("semrush"), IpPool::AmazonEc2.draw(rng))
        } else {
            (crawler_ua("ahrefs"), IpPool::DigitalOcean.draw(rng))
        };
        let ext = ["jpeg", "png", "xml", "gif", "css", "js"][weighted6(rng)];
        let path = format!("/assets/{}.{ext}", rng.gen_range(1..400));
        out.push(Packet::http(
            HttpRequest::get(&path)
                .with_header("Host", spec.name)
                .with_header("User-Agent", ua)
                .with_src(src)
                .with_port(http_port(rng))
                .with_time(t),
        ));
    }
}

/// .jpeg/.png/.xml receive the most grabs (§6.3).
fn weighted6(rng: &mut StdRng) -> usize {
    let roll = rng.gen_range(0..100);
    match roll {
        0..=34 => 0,
        35..=59 => 1,
        60..=79 => 2,
        80..=89 => 3,
        90..=94 => 4,
        _ => 5,
    }
}

fn gen_script_software(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    spec: &DomainSpec,
    count: u64,
    out: &mut Vec<Packet>,
) {
    if spec.name == "1x-sport-bk7.com" {
        // The status.json storm: many addresses, one browser User-Agent,
        // one file, requested in streams (≥ threshold per address) — the
        // categorizer must re-classify it as automated.
        const STORM_UA: &str = "Mozilla/5.0 (Windows NT 6.3; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/41.0.2272.118 Safari/537.36";
        let per_ip = 40;
        let ips = (count / per_ip).max(1);
        let mut emitted = 0;
        'outer: for _ in 0..ips {
            let src = IpPool::Residential.draw(rng);
            for _ in 0..per_ip {
                out.push(Packet::http(
                    HttpRequest::get("/status.json")
                        .with_header("Host", spec.name)
                        .with_header("User-Agent", STORM_UA)
                        .with_src(src)
                        .with_port(http_port(rng))
                        .with_time(stamp(rng, config)),
                ));
                emitted += 1;
                if emitted >= count {
                    break 'outer;
                }
            }
        }
        return;
    }
    let video_domains = matches!(spec.name, "resheba.online" | "fanserials.moda");
    for _ in 0..count {
        let ua = SCRIPT_UAS[rng.gen_range(0..SCRIPT_UAS.len())];
        let path = if video_domains {
            // Online-course videos and their BitTorrent seeds (§6.3).
            match rng.gen_range(0..10) {
                0 => format!("/courses/lesson-{}.torrent", rng.gen_range(1..300)),
                1..=6 => format!("/courses/lesson-{}.mp4", rng.gen_range(1..300)),
                _ => format!("/courses/lesson-{}.html", rng.gen_range(1..300)),
            }
        } else {
            match rng.gen_range(0..3) {
                0 => "/data.json".to_string(),
                1 => format!("/api/v1/item/{}", rng.gen_range(1..1000)),
                _ => format!("/files/pack-{}.zip", rng.gen_range(1..50)),
            }
        };
        out.push(Packet::http(
            HttpRequest::get(&path)
                .with_header("Host", spec.name)
                .with_header("User-Agent", ua)
                .with_src(IpPool::Residential.draw(rng))
                .with_port(http_port(rng))
                .with_time(stamp(rng, config)),
        ));
    }
}

fn gen_malicious_request(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    spec: &DomainSpec,
    count: u64,
    out: &mut Vec<Packet>,
) {
    if spec.name == "gpclick.com" {
        for _ in 0..count {
            let t = stamp(rng, config);
            out.push(Packet::http(botnet::gettask_request(rng, t)));
        }
        return;
    }
    const PROBES: [&str; 8] = [
        "/wp-login.php",
        "/xmlrpc.php",
        "/admin.php",
        "/.env",
        "/phpmyadmin/index.php",
        "/boaform/admin/formLogin",
        "/HNAP1/",
        "/manager/html",
    ];
    for _ in 0..count {
        let path = PROBES[rng.gen_range(0..PROBES.len())];
        let mut req = HttpRequest::get(path)
            .with_header("Host", spec.name)
            .with_src(IpPool::Residential.draw(rng))
            .with_port(http_port(rng))
            .with_time(stamp(rng, config));
        // Half the probes use script UAs, half an unrecognizable agent.
        req = if rng.gen_range(0..2) == 0 {
            req.with_header("User-Agent", SCRIPT_UAS[rng.gen_range(0..SCRIPT_UAS.len())])
        } else {
            req.with_header("User-Agent", "dx-probe/0.3")
        };
        out.push(Packet::http(req));
    }
}

fn gen_referrals(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    spec: &DomainSpec,
    out: &mut Vec<Packet>,
) {
    let s = config.scale;
    const SEARCH_REFERERS: [&str; 4] = [
        "https://www.google.com/search?q=",
        "https://www.bing.com/search?q=",
        "https://go.mail.ru/search?q=",
        "https://yandex.ru/search/?text=",
    ];
    for _ in 0..scaled(spec.referral_search, s) {
        let referer = format!(
            "{}{}",
            SEARCH_REFERERS[rng.gen_range(0..SEARCH_REFERERS.len())],
            spec.name.split('.').next().unwrap()
        );
        out.push(referral_request(rng, config, spec, &referer));
    }
    for i in 0..scaled(spec.referral_embedded, s) {
        let referer = format!(
            "https://forum{}.example-boards.net/thread/{}",
            i % 16,
            fnv(spec.name) % 10_000 + (i % 16)
        );
        out.push(referral_request(rng, config, spec, &referer));
    }
    for i in 0..scaled(spec.referral_malicious, s) {
        // Crafted referers: either unresolvable pages or real pages with no
        // link to us.
        let referer = if i % 2 == 0 {
            format!(
                "https://spam-{}.example-junk.biz/landing",
                rng.gen_range(0..500)
            )
        } else {
            format!("https://blog{}.example-unrelated.org/post", i % 8)
        };
        out.push(referral_request(rng, config, spec, &referer));
    }
}

fn referral_request(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    spec: &DomainSpec,
    referer: &str,
) -> Packet {
    let ua = if rng.gen_range(0..2) == 0 {
        PC_UAS[rng.gen_range(0..PC_UAS.len())]
    } else {
        MOBILE_UAS[rng.gen_range(0..MOBILE_UAS.len())]
    };
    Packet::http(
        HttpRequest::get(&format!("/landing-{}.html", rng.gen_range(0..40)))
            .with_header("Host", spec.name)
            .with_header("User-Agent", ua)
            .with_header("Referer", referer)
            .with_src(IpPool::Residential.draw(rng))
            .with_port(http_port(rng))
            .with_time(stamp(rng, config)),
    )
}

fn gen_users(rng: &mut StdRng, config: &HoneypotConfig, spec: &DomainSpec, out: &mut Vec<Packet>) {
    let s = config.scale;
    for _ in 0..scaled(spec.user_pc_mobile, s) {
        let ua = if rng.gen_range(0..100) < 55 {
            PC_UAS[rng.gen_range(0..PC_UAS.len())]
        } else {
            MOBILE_UAS[rng.gen_range(0..MOBILE_UAS.len())]
        };
        out.push(Packet::http(
            HttpRequest::get(&format!("/view/{}", rng.gen_range(1..2000)))
                .with_header("Host", spec.name)
                .with_header("User-Agent", ua)
                .with_src(IpPool::Residential.draw(rng))
                .with_port(http_port(rng))
                .with_time(stamp(rng, config)),
        ));
    }
    // In-app visits follow the global Fig. 13 mix.
    let in_app_total: u64 = IN_APP_MIX.iter().map(|&(_, n)| n).sum();
    for _ in 0..scaled(spec.user_in_app, s) {
        let mut pick = rng.gen_range(0..in_app_total);
        let mut app = "Others";
        for &(a, n) in &IN_APP_MIX {
            if pick < n {
                app = a;
                break;
            }
            pick -= n;
        }
        out.push(Packet::http(
            HttpRequest::get(&format!("/view/{}", rng.gen_range(1..2000)))
                .with_header("Host", spec.name)
                .with_header("User-Agent", in_app_ua(app))
                .with_src(IpPool::Residential.draw(rng))
                .with_port(http_port(rng))
                .with_time(stamp(rng, config)),
        ));
    }
}

fn gen_others(
    rng: &mut StdRng,
    config: &HoneypotConfig,
    spec: &DomainSpec,
    count: u64,
    out: &mut Vec<Packet>,
) {
    for _ in 0..count {
        // Anonymous connectivity probes: no User-Agent, bare "/".
        out.push(Packet::http(
            HttpRequest::get("/")
                .with_header("Host", spec.name)
                .with_src(IpPool::Residential.draw(rng))
                .with_port(http_port(rng))
                .with_time(stamp(rng, config)),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> HoneypotWorld {
        generate(HoneypotConfig {
            scale: 2000,
            ..Default::default()
        })
    }

    #[test]
    fn world_has_all_19_domains() {
        let w = small_world();
        assert_eq!(w.captures.len(), 19);
        for c in &w.captures {
            assert!(!c.packets.is_empty(), "{} has no packets", c.spec.name);
        }
    }

    #[test]
    fn baseline_and_control_nonempty() {
        let w = small_world();
        assert!(!w.baseline_packets.is_empty());
        assert!(!w.control_packets.is_empty());
        // Baseline is non-HTTP scanning only.
        assert!(w.baseline_packets.iter().all(|p| !p.is_http()));
        // Control contains the AWS monitor port that dominates Fig. 10b.
        assert!(w.control_packets.iter().any(|p| p.dst_port == 52_646));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(HoneypotConfig {
            scale: 3000,
            ..Default::default()
        });
        let b = generate(HoneypotConfig {
            scale: 3000,
            ..Default::default()
        });
        for (ca, cb) in a.captures.iter().zip(&b.captures) {
            assert_eq!(ca.packets, cb.packets, "{}", ca.spec.name);
        }
        assert_eq!(a.baseline_packets, b.baseline_packets);
    }

    #[test]
    fn scaled_keeps_small_cells_alive() {
        assert_eq!(scaled(0, 100), 0);
        assert_eq!(scaled(20, 100), 1);
        assert_eq!(scaled(1_000, 100), 10);
    }

    #[test]
    fn timestamps_inside_window() {
        let w = small_world();
        let start = w.config.start.as_secs();
        let end = start + w.config.days as u64 * 86_400;
        for c in &w.captures {
            for p in &c.packets {
                assert!((start..end).contains(&p.timestamp));
            }
        }
    }

    #[test]
    fn instrumented_generation_counts_phases() {
        let telemetry = Telemetry::wall();
        let w = generate_with(
            HoneypotConfig {
                scale: 2000,
                ..Default::default()
            },
            &telemetry,
        );
        let snap = telemetry.snapshot();
        let hosted: u64 = w.captures.iter().map(|c| c.packets.len() as u64).sum();
        assert_eq!(
            snap.counter_total("traffic_honeypot_packets_total"),
            hosted + w.baseline_packets.len() as u64 + w.control_packets.len() as u64
        );
        let names: Vec<String> = telemetry
            .tracer
            .spans()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        for stage in [
            "honeypot_era.baseline",
            "honeypot_era.control",
            "honeypot_era.captures",
        ] {
            assert!(names.contains(&stage.to_string()), "missing span {stage}");
        }
        // Live-progress plumbing: gauge ends at 19, one capture event per
        // domain plus the two phase events.
        assert_eq!(
            snap.gauge_value("traffic_honeypot_domains_generated"),
            Some(19)
        );
        let events = telemetry.journal.snapshot();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.message == "domain capture generated")
                .count(),
            19
        );
        assert!(events
            .iter()
            .any(|e| e.message == "no-hosting baseline generated"));
        assert!(events
            .iter()
            .any(|e| e.message == "control group generated"));
    }

    #[test]
    fn gpclick_carries_botnet_traffic() {
        let w = small_world();
        let gp = w
            .captures
            .iter()
            .find(|c| c.spec.name == "gpclick.com")
            .unwrap();
        let gettask = gp
            .packets
            .iter()
            .filter_map(|p| p.http_request())
            .filter(|r| r.uri.file_name() == "getTask.php")
            .count();
        assert!(gettask > 100, "only {gettask} getTask polls");
    }
}
