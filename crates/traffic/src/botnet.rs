//! The gpclick.com botnet actor (§6.4 "Botnet Takeover", Figs. 12, 14, 15).
//!
//! Bots poll `getTask.php` with the User-Agent
//! `Apache-HttpClient/UNAVAILABLE (java 1.4)`, leaking IMEI, phone number,
//! country, carrier codes, and phone model in the query string. Victims'
//! phone numbers span the globe (Fig. 14) while the *source addresses* are
//! concentrated in cloud proxy infrastructure — 56.1% behind `google-proxy`
//! hosts (Fig. 15).

use rand::rngs::StdRng;
use rand::Rng;

use nxd_httpsim::HttpRequest;

use crate::actors::IpPool;

/// The exact User-Agent the paper reports for all malicious gpclick
/// requests.
pub const BOTNET_UA: &str = "Apache-HttpClient/UNAVAILABLE (java 1.4)";

/// Victim country mix: `(ISO code, calling code, continent, weight)`.
/// Shaped after Fig. 14's log-scale bars: Russian-speaking countries remain
/// heavy, but the US, Uruguay, the Netherlands, and China appear, plus a
/// long tail across four continents.
pub const COUNTRY_MIX: [(&str, &str, Continent, u32); 14] = [
    ("ru", "+7", Continent::Europe, 26),
    ("us", "+1", Continent::America, 22),
    ("uy", "+598", Continent::America, 11),
    ("nl", "+31", Continent::Europe, 9),
    ("cn", "+86", Continent::Asia, 8),
    ("de", "+49", Continent::Europe, 5),
    ("ua", "+380", Continent::Europe, 4),
    ("in", "+91", Continent::Asia, 4),
    ("br", "+55", Continent::America, 3),
    ("fr", "+33", Continent::Europe, 2),
    ("jp", "+81", Continent::Asia, 2),
    ("kz", "+7", Continent::Asia, 2),
    ("au", "+61", Continent::Oceania, 1),
    ("nz", "+64", Continent::Oceania, 1),
];

/// Continents as grouped in Fig. 14's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    Europe,
    Asia,
    America,
    Oceania,
}

impl Continent {
    pub fn label(self) -> &'static str {
        match self {
            Continent::Europe => "Europe",
            Continent::Asia => "Asia",
            Continent::America => "America",
            Continent::Oceania => "Oceania",
        }
    }
}

/// Phone model mix (§6.4: Nexus 5X 55.9%, Nexus 5 42.3%, remaining 1.8%
/// spread over 38 models).
const MODELS: [(&str, u32); 10] = [
    ("Nexus 5X", 559),
    ("Nexus 5", 423),
    ("SM-G900F", 3),
    ("LG-D855", 2),
    ("Vivo Y51", 2),
    ("HTC One", 2),
    ("HUAWEI P8", 2),
    ("Redmi Note 4", 2),
    ("Moto G", 2),
    ("ASUS Z00AD", 3),
];

/// Source-address routing mix (Fig. 15): `(pool, weight ‰)`. `google-proxy`
/// carries 56.1% of malicious requests.
const SOURCE_MIX: [(IpPool, u32); 6] = [
    (IpPool::GoogleProxy, 561),
    (IpPool::AmazonEc2, 180),
    (IpPool::AzureCloud, 80),
    (IpPool::Ovh, 60),
    (IpPool::DigitalOcean, 50),
    (IpPool::Hetzner, 30),
    // remainder (39‰) is drawn from residential space below
];

fn weighted<'a, T>(rng: &mut StdRng, items: &'a [(T, u32)]) -> &'a T {
    let total: u32 = items.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (item, w) in items {
        if pick < *w {
            return item;
        }
        pick -= w;
    }
    &items[items.len() - 1].0
}

/// One synthetic bot poll. IMEI and phone are generated (never real), in the
/// anonymized format of Fig. 12.
pub fn gettask_request(rng: &mut StdRng, timestamp: u64) -> HttpRequest {
    let (country, calling, _, _) =
        COUNTRY_MIX[weighted_index(rng, &COUNTRY_MIX.map(|(_, _, _, w)| w))];
    let model = *weighted(rng, &MODELS);
    let imei = format!(
        "{:01}-{:06}-{:06}-{:01}",
        rng.gen_range(1..10u32),
        rng.gen_range(0..1_000_000u32),
        rng.gen_range(0..1_000_000u32),
        rng.gen_range(0..10u32)
    );
    let phone = format!(
        "{calling}{}",
        rng.gen_range(1_000_000_000_u64..9_999_999_999_u64)
    );
    let src_mix_total: u32 = SOURCE_MIX.iter().map(|(_, w)| w).sum();
    let roll = rng.gen_range(0..1000u32);
    let src = if roll < src_mix_total {
        let mut pick = roll;
        let mut chosen = IpPool::Residential;
        for (pool, w) in SOURCE_MIX {
            if pick < w {
                chosen = pool;
                break;
            }
            pick -= w;
        }
        chosen.draw(rng)
    } else {
        IpPool::Residential.draw(rng)
    };
    let uri = format!(
        "/getTask.php?imei={imei}&balance=0&country={country}&phone={}&op=Android&mnc={}&mcc={}&model={}&os={}",
        phone.replace('+', "%2B"),
        rng.gen_range(1..999u32),
        rng.gen_range(200..750u32),
        model.replace(' ', "%20"),
        rng.gen_range(19..33u32),
    );
    HttpRequest::get(&uri)
        .with_header("Host", "gpclick.com")
        .with_header("User-Agent", BOTNET_UA)
        .with_src(src)
        .with_port(80)
        .with_time(timestamp)
}

fn weighted_index(rng: &mut StdRng, weights: &[u32]) -> usize {
    let total: u32 = weights.iter().sum();
    let mut pick = rng.gen_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn request_shape_matches_fig12() {
        let mut rng = StdRng::seed_from_u64(3);
        let req = gettask_request(&mut rng, 1_650_000_000);
        assert_eq!(req.uri.file_name(), "getTask.php");
        assert_eq!(req.user_agent(), Some(BOTNET_UA));
        for key in [
            "imei", "balance", "country", "phone", "op", "mnc", "mcc", "model", "os",
        ] {
            assert!(req.uri.query_value(key).is_some(), "missing {key}");
        }
        assert_eq!(req.uri.query_value("op"), Some("Android"));
        assert!(req.uri.query_value("phone").unwrap().starts_with('+'));
    }

    #[test]
    fn country_mix_spans_four_continents() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut continents = std::collections::HashSet::new();
        for _ in 0..2000 {
            let req = gettask_request(&mut rng, 0);
            let c = req.uri.query_value("country").unwrap().to_string();
            let (_, _, continent, _) = COUNTRY_MIX
                .iter()
                .find(|(code, _, _, _)| *code == c)
                .unwrap();
            continents.insert(*continent);
        }
        assert_eq!(continents.len(), 4, "all continents represented");
    }

    #[test]
    fn nexus_models_dominate() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut nexus = 0;
        let n = 3000;
        for _ in 0..n {
            let req = gettask_request(&mut rng, 0);
            let model = req.uri.query_value("model").unwrap().to_string();
            if model.starts_with("Nexus") {
                nexus += 1;
            }
        }
        let share = nexus as f64 / n as f64;
        assert!(share > 0.93, "paper: 98.2% Nexus; got {share}");
    }

    #[test]
    fn google_proxy_majority_of_sources() {
        use nxd_dns_sim::ReverseDns;
        let mut rdns = ReverseDns::new();
        IpPool::register_all(&mut rdns);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 4000;
        let mut gp = 0;
        for _ in 0..n {
            let req = gettask_request(&mut rng, 0);
            if let Some(host) = rdns.lookup(req.src_ip) {
                if host.to_string().starts_with("google-proxy-") {
                    gp += 1;
                }
            }
        }
        let share = gp as f64 / n as f64;
        assert!((0.50..0.63).contains(&share), "paper: 56.1%; got {share}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(gettask_request(&mut a, 1), gettask_request(&mut b, 1));
    }
}
