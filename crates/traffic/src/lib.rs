//! # nxd-traffic
//!
//! The workload generators — the "simulated Internet" that replaces the
//! paper's proprietary data feeds:
//!
//! * [`era`] — the 2014–2022 passive-DNS era: DGA storms, typo traffic,
//!   junk queries, and an expired-domain panel, producing the Farsight-
//!   substitute database for the §4 scale analyses (Figs. 3–6).
//! * [`origin`] — the expired-domain population at the paper's own 1/1,000
//!   sampling ratio, with planted DGA/squat/blocklist ground truth for the
//!   §5 origin analyses (Figs. 7–8).
//! * [`honeypot_era`] — six months of per-domain actor traffic calibrated
//!   to Table 1, plus the baseline/control noise the §6.1 filter removes.
//! * [`botnet`] — the gpclick.com botnet actor (Figs. 12, 14, 15).
//! * [`actors`] / [`table1`] — shared IP pools, User-Agent inventories, and
//!   the transcribed Table 1 calibration targets.

pub mod actors;
#[cfg(feature = "bigworld")]
pub mod bigworld;
pub mod botnet;
pub mod era;
pub mod honeypot_era;
pub mod origin;
pub mod table1;

pub use era::{replay_specs, EraConfig, EraWorld, ReplaySpec};
pub use honeypot_era::{DomainCapture, HoneypotConfig, HoneypotWorld};
pub use nxd_telemetry::Telemetry;
pub use origin::{ExpiredDomain, OriginConfig, OriginTruth, OriginWorld};
pub use table1::{DomainSpec, IN_APP_MIX, PAPER_GRAND_TOTAL, PAPER_TOTALS, TABLE1};
