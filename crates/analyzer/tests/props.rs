//! Property-based tests: the analyzer is total (never panics) over
//! arbitrary wire input, and conformant responder output round-trips to a
//! clean report.

use std::net::Ipv4Addr;

use nxd_analyzer::Analyzer;
use nxd_dns_sim::{RegistryConfig, ServerRef, SimDns, SimTime};
use nxd_dns_wire::{Message, Name, RCode, RData, RType, Record, Soa};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..6)
        .prop_filter_map("name too long", |labels| Name::from_labels(&labels).ok())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[ -~]{0,20}", 0..2).prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>()).prop_map(
            |(mname, rname, serial, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh: 7200,
                    retry: 900,
                    expire: 86_400,
                    minimum,
                })
            }
        ),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(n, ttl, rd)| Record::new(n, ttl, rd))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality over raw bytes: whatever `Message::decode` accepts, every
    /// rule must process without panicking.
    #[test]
    fn analyze_bytes_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Analyzer::new().analyze_bytes(&buf);
    }

    /// Totality over structured messages: arbitrary header bits, rcodes,
    /// and record soups are all in-domain for the wire rules.
    #[test]
    fn analyze_message_never_panics(
        id in any::<u16>(),
        qname in arb_name(),
        qr in any::<bool>(),
        aa in any::<bool>(),
        ra in any::<bool>(),
        rcode in 0u8..16,
        answers in proptest::collection::vec(arb_record(), 0..4),
        authorities in proptest::collection::vec(arb_record(), 0..4),
    ) {
        let q = Message::query(id, qname, RType::A);
        let mut msg = Message::response(&q, RCode::from_u8(rcode));
        msg.header.qr = qr;
        msg.header.aa = aa;
        msg.header.ra = ra;
        msg.answers = answers;
        msg.authorities = authorities;
        let report = Analyzer::new().analyze_message(&msg);
        // The report itself must render in both formats without panicking.
        let _ = report.to_text();
        let _ = report.to_json();
    }

    /// Zone-rule totality over arbitrary record soups.
    #[test]
    fn analyze_records_never_panics(
        apex in arb_name(),
        records in proptest::collection::vec(arb_record(), 0..8),
    ) {
        let _ = Analyzer::new().analyze_records(&apex, &records);
    }

    /// Conformance closure: a response produced by the (fixed) simulated
    /// authoritative hierarchy, round-tripped through the wire, is always
    /// diagnostic-free — for hits, NXDOMAIN, and NODATA alike.
    #[test]
    fn conformant_responder_roundtrip_is_clean(
        host in arb_label(),
        registered in any::<bool>(),
        mx in any::<bool>(),
    ) {
        let start = SimTime::ERA_START;
        let mut dns = SimDns::new(&["com"], RegistryConfig::default(), start);
        let apex: Name = "anchor.com".parse().unwrap();
        dns.register_domain(&apex, "owner", "registrar", 1, Ipv4Addr::new(192, 0, 2, 80)).unwrap();

        let qname = if registered {
            if host == "www" { apex.child("www").unwrap() } else { apex.clone() }
        } else {
            match apex.child(&host) {
                Ok(n) => n,
                Err(_) => apex.clone(),
            }
        };
        let qtype = if mx { RType::Mx } else { RType::A };
        let query = Message::query(9, qname, qtype).encode().unwrap();
        let wire = dns.respond(&ServerRef::Auth(apex), &query).unwrap();
        let report = Analyzer::new().analyze_bytes(&wire).unwrap();
        prop_assert!(report.is_clean(), "{}", report.to_text());
    }
}
