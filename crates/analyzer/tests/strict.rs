//! Strict-mode conformance gate: every responder in the simulated DNS
//! ecosystem must produce zero high-severity diagnostics — the violations
//! are fixed at the source (SOA attachment, AA/RA bits, TTL capping, glue),
//! not suppressed here.

use std::net::Ipv4Addr;

use nxd_analyzer::Analyzer;
use nxd_dns_sim::{
    HijackPolicy, Resolver, ResolverConfig, ServerRef, SimDns, SimDuration, SimTime, Sinkhole,
};
use nxd_dns_wire::{Message, Name, RCode, RType};

fn n(s: &str) -> Name {
    s.parse().unwrap()
}

fn world() -> SimDns {
    let mut dns = SimDns::new(
        &["com", "net"],
        nxd_dns_sim::RegistryConfig::default(),
        SimTime::ERA_START,
    );
    dns.register_domain(
        &n("example.com"),
        "alice",
        "godaddy",
        1,
        Ipv4Addr::new(192, 0, 2, 80),
    )
    .unwrap();
    dns.register_domain(
        &n("victim.net"),
        "bob",
        "namecheap",
        2,
        Ipv4Addr::new(192, 0, 2, 81),
    )
    .unwrap();
    dns
}

/// Sends `qname`/`qtype` to `server` over the wire and returns the analyzer
/// report for the raw response bytes.
fn analyze_authoritative(
    dns: &SimDns,
    server: &ServerRef,
    qname: &str,
    qtype: RType,
) -> nxd_analyzer::Report {
    let query = Message::query(0x4242, n(qname), qtype);
    let wire = dns.respond(server, &query.encode().unwrap()).unwrap();
    Analyzer::new().analyze_bytes(&wire).unwrap()
}

#[test]
fn authoritative_nxdomain_responses_are_strictly_clean() {
    let dns = world();
    let cases = [
        (ServerRef::Root, "nosuch.zz", RType::A),
        (ServerRef::Tld("com".into()), "unregistered.com", RType::A),
        (
            ServerRef::Auth(n("example.com")),
            "ghost.example.com",
            RType::A,
        ),
    ];
    for (server, qname, qtype) in cases {
        let report = analyze_authoritative(&dns, &server, qname, qtype);
        report.assert_no_high(&format!("{server:?} NXDOMAIN for {qname}"));
        // The simulated authorities should in fact be fully conformant.
        assert!(
            report.is_clean(),
            "{server:?} {qname}: {}",
            report.to_text()
        );
    }
}

#[test]
fn authoritative_nodata_and_answers_are_strictly_clean() {
    let dns = world();
    let cases = [
        (
            ServerRef::Auth(n("example.com")),
            "www.example.com",
            RType::Mx,
        ), // NODATA
        (
            ServerRef::Auth(n("example.com")),
            "www.example.com",
            RType::A,
        ), // answer
        (ServerRef::Auth(n("example.com")), "example.com", RType::Ns), // apex NS
        (ServerRef::Tld("com".into()), "www.example.com", RType::A),   // referral
    ];
    for (server, qname, qtype) in cases {
        let report = analyze_authoritative(&dns, &server, qname, qtype);
        assert!(
            report.is_clean(),
            "{server:?} {qname}: {}",
            report.to_text()
        );
    }
}

#[test]
fn authoritative_nxdomain_sets_aa_and_carries_capped_soa() {
    let dns = world();
    let query = Message::query(7, n("ghost.example.com"), RType::A);
    let wire = dns
        .respond(&ServerRef::Auth(n("example.com")), &query.encode().unwrap())
        .unwrap();
    let resp = Message::decode(&wire).unwrap();
    assert!(resp.is_nxdomain());
    assert!(resp.header.aa, "authoritative denial must set AA");
    assert!(!resp.header.ra, "authoritative servers offer no recursion");
    assert_eq!(resp.authorities.len(), 1);
    assert_eq!(resp.authorities[0].rtype(), RType::Soa);
    assert!(
        resp.authorities[0].ttl <= 900,
        "SOA TTL must be capped at MINIMUM"
    );
}

#[test]
fn recursive_nxdomain_responses_are_strictly_clean() {
    let dns = world();
    let mut resolver = Resolver::new(ResolverConfig::default());
    let analyzer = Analyzer::new();
    let t = SimTime::ERA_START;

    // Fresh NXDOMAIN, then the cached replay one second later: both must
    // carry the SOA and pass strict mode.
    for dt in [0, 1] {
        let query = Message::query(0x55AA, n("nope.com"), RType::A);
        let wire = resolver
            .resolve_message(&dns, &query.encode().unwrap(), t + SimDuration::seconds(dt))
            .unwrap();
        let report = analyzer.analyze_bytes(&wire).unwrap();
        assert!(
            report.is_clean(),
            "recursive NXDOMAIN (dt={dt}): {}",
            report.to_text()
        );
        let resp = Message::decode(&wire).unwrap();
        assert!(resp.is_nxdomain());
        assert!(resp.header.ra, "recursive responses advertise recursion");
        assert_eq!(
            resp.authorities
                .iter()
                .filter(|r| r.rtype() == RType::Soa)
                .count(),
            1
        );
    }
}

#[test]
fn recursive_positive_and_nodata_responses_are_strictly_clean() {
    let dns = world();
    let mut resolver = Resolver::new(ResolverConfig::default());
    let analyzer = Analyzer::new();
    for (qname, qtype) in [
        ("www.example.com", RType::A),
        ("www.example.com", RType::Mx),
    ] {
        let query = Message::query(1, n(qname), qtype);
        let wire = resolver
            .resolve_message(&dns, &query.encode().unwrap(), SimTime::ERA_START)
            .unwrap();
        let report = analyzer.analyze_bytes(&wire).unwrap();
        assert!(report.is_clean(), "{qname}/{qtype}: {}", report.to_text());
    }
}

#[test]
fn every_simulated_zone_passes_the_zone_rules() {
    let dns = world();
    let analyzer = Analyzer::new();
    let mut checked = 0;
    for zone in dns.zones() {
        let report = analyzer.analyze_zone(zone);
        assert!(
            report.is_clean(),
            "zone {}: {}",
            zone.apex(),
            report.to_text()
        );
        checked += 1;
    }
    assert_eq!(checked, 5, "root + 2 TLDs + 2 auth zones");
}

#[test]
fn zones_stay_clean_across_lifecycle_transitions() {
    let mut dns = world();
    dns.tick(SimTime::ERA_START + SimDuration::days(366)); // example.com expires
    let analyzer = Analyzer::new();
    for zone in dns.zones() {
        let report = analyzer.analyze_zone(zone);
        assert!(
            report.is_clean(),
            "zone {}: {}",
            zone.apex(),
            report.to_text()
        );
    }
}

#[test]
fn resolver_trace_passes_strict_mode() {
    let dns = world();
    let mut resolver = Resolver::new(ResolverConfig {
        record_trace: true,
        ..Default::default()
    });
    let t = SimTime::ERA_START;
    // A workload with repeats inside and beyond the negative window.
    for (dt, qname) in [
        (0u64, "www.example.com"),
        (1, "dead.com"),
        (5, "dead.com"),
        (10, "www.example.com"),
        (901, "dead.com"),
        (950, "other-dead.net"),
        (960, "other-dead.net"),
    ] {
        resolver.resolve(&dns, &n(qname), RType::A, t + SimDuration::seconds(dt));
    }
    let trace = resolver.take_trace();
    assert_eq!(trace.len(), 7);
    let report = Analyzer::new().analyze_trace(&trace);
    report.assert_no_high("RFC 2308-conformant resolver trace");
    assert!(report.is_clean(), "{}", report.to_text());
}

#[test]
fn negative_cache_ablation_is_caught_by_trace_rules() {
    // The ablation knob (negative_cache: false) models exactly the paper's
    // amplification pathology; the trace pass must flag it.
    let dns = world();
    let mut resolver = Resolver::new(ResolverConfig {
        negative_cache: false,
        record_trace: true,
        ..Default::default()
    });
    let t = SimTime::ERA_START;
    resolver.resolve(&dns, &n("dead.com"), RType::A, t);
    resolver.resolve(&dns, &n("dead.com"), RType::A, t + SimDuration::seconds(5));
    let mut trace = resolver.take_trace();
    // The window is never cached, so negative_ttl is None; reconstruct what
    // the zone advertised (the analyzer sees sensor-side data in practice).
    for ev in &mut trace {
        if ev.rcode == RCode::NxDomain && !ev.from_cache {
            ev.negative_ttl = Some(900);
        }
    }
    let report = Analyzer::new().analyze_trace(&trace);
    assert_eq!(report.high_count(), 1, "{}", report.to_text());
    assert_eq!(report.diagnostics[0].rule.id, "NXD015");
}

#[test]
fn sinkhole_and_hijack_rewrites_pass_wire_strict_mode() {
    let dns = world();
    let mut resolver = Resolver::new(ResolverConfig::default());
    let analyzer = Analyzer::new();
    let t = SimTime::ERA_START;

    let mut sinkhole = Sinkhole::new(Ipv4Addr::new(198, 51, 100, 53));
    sinkhole.watch(n("dga-name.com"));
    let hijack = HijackPolicy {
        rate_permille: 1000,
        ad_server: Ipv4Addr::new(203, 0, 113, 80),
        salt: 1,
    };

    for qname in ["dga-name.com", "typo-name.com"] {
        let resolution = resolver.resolve(&dns, &n(qname), RType::A, t);
        let rewritten = sinkhole.apply(9, &n(qname), resolution, t);
        let rewritten = hijack.apply(&n(qname), rewritten);
        // Render the rewrite the way the resolver's wire path would.
        let query = Message::query(3, n(qname), RType::A);
        let mut resp = Message::response(&query, rewritten.rcode);
        resp.answers = rewritten.answers;
        resp.authorities = rewritten.authorities;
        let report = analyzer.analyze_message(&resp);
        report.assert_no_high(&format!("rewritten response for {qname}"));
        assert!(report.is_clean(), "{qname}: {}", report.to_text());
    }
}
