//! Zone passes: rules over an authoritative zone's records (NXD009–NXD014).
//!
//! The input is the zone apex plus a flat record list — either a live
//! [`nxd_dns_sim::Zone`] (via [`crate::Analyzer::analyze_zone`]) or the
//! output of the RFC 1035 §5 master-file parser, so zone files can be
//! linted before they are ever served.

use std::collections::{BTreeMap, BTreeSet};

use nxd_dns_wire::{Name, RData, RType, Record};

use crate::diagnostic::{Diagnostic, Location, RuleInfo, Severity};
use crate::rules::{Rule, ZoneRule};

/// Everything a zone rule can see: the apex and the zone's records, plus
/// owner/cut indexes shared by the rules so each pass stays linear.
pub struct ZoneCtx<'a> {
    pub apex: &'a Name,
    pub records: &'a [Record],
    /// Every owner name that holds at least one record.
    owners: BTreeSet<Name>,
    /// Delegation cuts: owners strictly below the apex holding NS records.
    cuts: Vec<Name>,
}

impl<'a> ZoneCtx<'a> {
    pub fn new(apex: &'a Name, records: &'a [Record]) -> Self {
        let owners: BTreeSet<Name> = records.iter().map(|r| r.name.clone()).collect();
        let cuts: Vec<Name> = owners
            .iter()
            .filter(|o| {
                *o != apex
                    && records
                        .iter()
                        .any(|r| r.name == **o && r.rtype() == RType::Ns)
            })
            .cloned()
            .collect();
        ZoneCtx {
            apex,
            records,
            owners,
            cuts,
        }
    }

    /// Whether any record exists at `name` or beneath it.
    fn node_exists(&self, name: &Name) -> bool {
        self.owners.iter().any(|o| o.is_subdomain_of(name))
    }

    /// Whether `name` sits at or below a delegation cut (authority for it
    /// belongs to a child zone, so absence here proves nothing).
    fn below_cut(&self, name: &Name) -> bool {
        self.cuts.iter().any(|cut| name.is_subdomain_of(cut))
    }

    fn loc(&self, owner: &Name) -> Location {
        Location::Zone {
            apex: self.apex.to_string(),
            owner: owner.to_string(),
        }
    }
}

/// NXD009: a CNAME must be the only record at its owner name.
pub struct CnameAndOtherData;

pub static NXD009: RuleInfo = RuleInfo {
    id: "NXD009",
    name: "cname-and-other-data",
    severity: Severity::High,
    rfc: "RFC 1034 §3.6.2",
    summary: "owner name holds a CNAME alongside other records",
};

impl Rule for CnameAndOtherData {
    fn info(&self) -> &'static RuleInfo {
        &NXD009
    }
}

impl ZoneRule for CnameAndOtherData {
    fn check_zone(&self, ctx: &ZoneCtx<'_>, out: &mut Vec<Diagnostic>) {
        let mut by_owner: BTreeMap<&Name, (usize, usize)> = BTreeMap::new();
        for rec in ctx.records {
            let entry = by_owner.entry(&rec.name).or_insert((0, 0));
            if rec.rtype() == RType::Cname {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
        for (owner, (cnames, others)) in by_owner {
            if cnames > 0 && (others > 0 || cnames > 1) {
                out.push(Diagnostic::new(
                    &NXD009,
                    ctx.loc(owner),
                    format!("{owner} holds {cnames} CNAME record(s) and {others} other record(s)"),
                    "an alias node must hold exactly one CNAME and nothing else",
                ));
            }
        }
    }
}

/// NXD010: an in-zone CNAME pointing at a nonexistent node guarantees an
/// NXDOMAIN for every query through the alias.
pub struct DanglingCname;

pub static NXD010: RuleInfo = RuleInfo {
    id: "NXD010",
    name: "dangling-cname",
    severity: Severity::Medium,
    rfc: "RFC 1034 §3.6.2",
    summary: "CNAME targets an in-zone name that does not exist",
};

impl Rule for DanglingCname {
    fn info(&self) -> &'static RuleInfo {
        &NXD010
    }
}

impl ZoneRule for DanglingCname {
    fn check_zone(&self, ctx: &ZoneCtx<'_>, out: &mut Vec<Diagnostic>) {
        for rec in ctx.records {
            let RData::Cname(target) = &rec.rdata else {
                continue;
            };
            if !target.is_subdomain_of(ctx.apex) || ctx.below_cut(target) {
                continue; // authority for the target lies elsewhere
            }
            if !ctx.node_exists(target) {
                out.push(Diagnostic::new(
                    &NXD010,
                    ctx.loc(&rec.name),
                    format!(
                        "CNAME {} points at {}, which has no records in this zone",
                        rec.name, target
                    ),
                    "repoint or remove the alias; every query through it now yields NXDOMAIN",
                ));
            }
        }
    }
}

/// NXD011: a delegation whose nameserver lives inside the delegated subtree
/// needs glue in the parent zone, or the child zone is unreachable.
pub struct DelegationWithoutGlue;

pub static NXD011: RuleInfo = RuleInfo {
    id: "NXD011",
    name: "delegation-missing-glue",
    severity: Severity::Medium,
    rfc: "RFC 1034 §4.2.1",
    summary: "in-bailiwick delegation NS has no glue address record",
};

impl Rule for DelegationWithoutGlue {
    fn info(&self) -> &'static RuleInfo {
        &NXD011
    }
}

impl ZoneRule for DelegationWithoutGlue {
    fn check_zone(&self, ctx: &ZoneCtx<'_>, out: &mut Vec<Diagnostic>) {
        for rec in ctx.records {
            if rec.name == *ctx.apex {
                continue; // apex NS is the zone's own server set, not a cut
            }
            let RData::Ns(nsdname) = &rec.rdata else {
                continue;
            };
            if !nsdname.is_subdomain_of(&rec.name) {
                continue; // out-of-bailiwick: resolved via its own zone
            }
            let has_glue = ctx
                .records
                .iter()
                .any(|r| r.name == *nsdname && matches!(r.rtype(), RType::A | RType::Aaaa));
            if !has_glue {
                out.push(Diagnostic::new(
                    &NXD011,
                    ctx.loc(&rec.name),
                    format!(
                        "delegation {} NS {} is in-bailiwick but the zone carries no A/AAAA glue for it",
                        rec.name, nsdname
                    ),
                    "add a glue address record for the nameserver below the cut",
                ));
            }
        }
    }
}

/// NXD012: every record of an RRset shares one TTL; mixed TTLs make caching
/// behaviour undefined.
pub struct RrsetTtlMismatch;

pub static NXD012: RuleInfo = RuleInfo {
    id: "NXD012",
    name: "rrset-ttl-mismatch",
    severity: Severity::Medium,
    rfc: "RFC 2181 §5.2",
    summary: "records of one RRset carry different TTLs",
};

impl Rule for RrsetTtlMismatch {
    fn info(&self) -> &'static RuleInfo {
        &NXD012
    }
}

impl ZoneRule for RrsetTtlMismatch {
    fn check_zone(&self, ctx: &ZoneCtx<'_>, out: &mut Vec<Diagnostic>) {
        let mut ttls: BTreeMap<(&Name, u16), BTreeSet<u32>> = BTreeMap::new();
        for rec in ctx.records {
            ttls.entry((&rec.name, rec.rtype().to_u16()))
                .or_default()
                .insert(rec.ttl);
        }
        for ((owner, rtype), set) in ttls {
            if set.len() > 1 {
                let listed: Vec<String> = set.iter().map(u32::to_string).collect();
                out.push(Diagnostic::new(
                    &NXD012,
                    ctx.loc(owner),
                    format!(
                        "RRset {owner}/{} mixes TTLs {{{}}}",
                        RType::from_u16(rtype),
                        listed.join(", ")
                    ),
                    "give every record of the RRset the same TTL",
                ));
            }
        }
    }
}

/// NXD013: zero TTLs are legal but defeat caching entirely; in a zone's
/// standing data they are almost always a mistake.
pub struct ZeroTtl;

pub static NXD013: RuleInfo = RuleInfo {
    id: "NXD013",
    name: "zero-ttl",
    severity: Severity::Low,
    rfc: "RFC 1035 §3.2.1",
    summary: "standing zone record has TTL 0",
};

impl Rule for ZeroTtl {
    fn info(&self) -> &'static RuleInfo {
        &NXD013
    }
}

impl ZoneRule for ZeroTtl {
    fn check_zone(&self, ctx: &ZoneCtx<'_>, out: &mut Vec<Diagnostic>) {
        for rec in ctx.records {
            if rec.ttl == 0 && rec.rtype() != RType::Soa {
                out.push(Diagnostic::new(
                    &NXD013,
                    ctx.loc(&rec.name),
                    format!(
                        "{}/{} has TTL 0 — every query goes upstream",
                        rec.name,
                        rec.rtype()
                    ),
                    "use a short positive TTL instead of 0 unless the data truly changes per query",
                ));
            }
        }
    }
}

/// NXD014: the SOA MINIMUM is the zone's negative TTL; 0 disables negative
/// caching and very large values pin denials long after re-registration.
pub struct NegativeTtlAnomaly;

pub static NXD014: RuleInfo = RuleInfo {
    id: "NXD014",
    name: "negative-ttl-anomaly",
    severity: Severity::Low,
    rfc: "RFC 2308 §5",
    summary: "SOA MINIMUM (negative TTL) is 0 or above one day",
};

impl Rule for NegativeTtlAnomaly {
    fn info(&self) -> &'static RuleInfo {
        &NXD014
    }
}

impl ZoneRule for NegativeTtlAnomaly {
    fn check_zone(&self, ctx: &ZoneCtx<'_>, out: &mut Vec<Diagnostic>) {
        const ONE_DAY: u32 = 86_400;
        for rec in ctx.records {
            let RData::Soa(soa) = &rec.rdata else {
                continue;
            };
            if soa.minimum == 0 {
                out.push(Diagnostic::new(
                    &NXD014,
                    ctx.loc(&rec.name),
                    "SOA MINIMUM is 0 — NXDOMAIN responses will never be cached".to_string(),
                    "set MINIMUM to a short window (minutes to hours) to bound repeat queries",
                ));
            } else if soa.minimum > ONE_DAY {
                out.push(Diagnostic::new(
                    &NXD014,
                    ctx.loc(&rec.name),
                    format!("SOA MINIMUM {} exceeds one day", soa.minimum),
                    "keep the negative TTL at one day or below so re-registrations propagate",
                ));
            }
        }
    }
}

/// All zone rules, in rule-ID order.
pub fn zone_rules() -> Vec<Box<dyn ZoneRule>> {
    vec![
        Box::new(CnameAndOtherData),
        Box::new(DanglingCname),
        Box::new(DelegationWithoutGlue),
        Box::new(RrsetTtlMismatch),
        Box::new(ZeroTtl),
        Box::new(NegativeTtlAnomaly),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::Soa;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn soa_record(owner: &str, minimum: u32) -> Record {
        Record::new(
            n(owner),
            minimum,
            RData::Soa(Soa {
                mname: n(&format!("ns1.{owner}")),
                rname: n(&format!("hostmaster.{owner}")),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum,
            }),
        )
    }

    /// A conformant small zone.
    fn clean_records() -> Vec<Record> {
        vec![
            soa_record("example.com", 900),
            Record::new(n("example.com"), 3600, RData::Ns(n("ns1.example.com"))),
            Record::new(
                n("ns1.example.com"),
                3600,
                RData::A(Ipv4Addr::new(192, 0, 2, 1)),
            ),
            Record::new(
                n("www.example.com"),
                300,
                RData::A(Ipv4Addr::new(192, 0, 2, 80)),
            ),
            Record::new(
                n("alias.example.com"),
                300,
                RData::Cname(n("www.example.com")),
            ),
        ]
    }

    fn run(rule: &dyn ZoneRule, records: &[Record]) -> Vec<Diagnostic> {
        let apex = n("example.com");
        let ctx = ZoneCtx::new(&apex, records);
        let mut out = Vec::new();
        rule.check_zone(&ctx, &mut out);
        out
    }

    #[test]
    fn clean_zone_passes_every_rule() {
        let records = clean_records();
        for rule in zone_rules() {
            let apex = n("example.com");
            let ctx = ZoneCtx::new(&apex, &records);
            let mut out = Vec::new();
            rule.check_zone(&ctx, &mut out);
            assert!(
                out.is_empty(),
                "{} fired on a clean zone: {out:?}",
                rule.info().id
            );
        }
    }

    #[test]
    fn nxd009_flags_cname_with_other_data() {
        let mut records = clean_records();
        records.push(Record::new(
            n("alias.example.com"),
            300,
            RData::A(Ipv4Addr::LOCALHOST),
        ));
        let diags = run(&CnameAndOtherData, &records);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD009");
        assert_eq!(diags[0].rule.severity, Severity::High);
    }

    #[test]
    fn nxd009_flags_duplicate_cnames() {
        let mut records = clean_records();
        records.push(Record::new(
            n("alias.example.com"),
            300,
            RData::Cname(n("ns1.example.com")),
        ));
        assert_eq!(run(&CnameAndOtherData, &records).len(), 1);
    }

    #[test]
    fn nxd010_flags_dangling_in_zone_target() {
        let mut records = clean_records();
        records.push(Record::new(
            n("old.example.com"),
            300,
            RData::Cname(n("gone.example.com")),
        ));
        let diags = run(&DanglingCname, &records);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD010");
    }

    #[test]
    fn nxd010_ignores_out_of_zone_and_delegated_targets() {
        let mut records = clean_records();
        // Out-of-zone target: not ours to judge.
        records.push(Record::new(
            n("ext.example.com"),
            300,
            RData::Cname(n("cdn.example.net")),
        ));
        // Target below a delegation cut: the child zone answers for it.
        records.push(Record::new(
            n("sub.example.com"),
            3600,
            RData::Ns(n("ns1.sub.example.com")),
        ));
        records.push(Record::new(
            n("ns1.sub.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 5)),
        ));
        records.push(Record::new(
            n("into.example.com"),
            300,
            RData::Cname(n("deep.sub.example.com")),
        ));
        assert!(run(&DanglingCname, &records).is_empty());
    }

    #[test]
    fn nxd011_flags_glueless_delegation() {
        let mut records = clean_records();
        records.push(Record::new(
            n("sub.example.com"),
            3600,
            RData::Ns(n("ns1.sub.example.com")),
        ));
        let diags = run(&DelegationWithoutGlue, &records);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD011");
    }

    #[test]
    fn nxd011_clean_with_glue_or_out_of_bailiwick_ns() {
        let mut records = clean_records();
        records.push(Record::new(
            n("sub.example.com"),
            3600,
            RData::Ns(n("ns1.sub.example.com")),
        ));
        records.push(Record::new(
            n("ns1.sub.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 5)),
        ));
        records.push(Record::new(
            n("other.example.com"),
            3600,
            RData::Ns(n("ns.hoster.net")),
        ));
        assert!(run(&DelegationWithoutGlue, &records).is_empty());
    }

    #[test]
    fn nxd012_flags_mixed_rrset_ttls() {
        let mut records = clean_records();
        records.push(Record::new(
            n("www.example.com"),
            600,
            RData::A(Ipv4Addr::new(192, 0, 2, 81)),
        ));
        let diags = run(&RrsetTtlMismatch, &records);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD012");
        assert!(diags[0].message.contains("300") && diags[0].message.contains("600"));
    }

    #[test]
    fn nxd012_clean_on_uniform_rrsets() {
        let mut records = clean_records();
        records.push(Record::new(
            n("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 81)),
        ));
        assert!(run(&RrsetTtlMismatch, &records).is_empty());
    }

    #[test]
    fn nxd013_flags_zero_ttl() {
        let mut records = clean_records();
        records.push(Record::new(
            n("hot.example.com"),
            0,
            RData::A(Ipv4Addr::LOCALHOST),
        ));
        let diags = run(&ZeroTtl, &records);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD013");
    }

    #[test]
    fn nxd014_flags_zero_and_huge_minimum() {
        let mut records = vec![soa_record("example.com", 0)];
        assert_eq!(run(&NegativeTtlAnomaly, &records).len(), 1);
        records = vec![soa_record("example.com", 172_800)];
        let diags = run(&NegativeTtlAnomaly, &records);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD014");
    }

    #[test]
    fn nxd014_clean_on_paper_default() {
        assert!(run(&NegativeTtlAnomaly, &clean_records()).is_empty());
    }
}
