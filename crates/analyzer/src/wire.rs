//! Wire passes: rules over a decoded [`Message`] (NXD001–NXD008).
//!
//! These rules police the negative-response conformance the paper's
//! measurements depend on — a resolver can only negative-cache an NXDOMAIN
//! (RFC 2308) if the authority section carries the zone SOA, and the
//! amplification the paper measures is exactly what happens when that
//! machinery is broken.

use nxd_dns_wire::{Message, RCode, RData, RType, Record};

use crate::diagnostic::{Diagnostic, Location, RuleInfo, Section, Severity};
use crate::rules::{Rule, WireRule};

/// Everything a wire rule can see: the decoded message plus, when the caller
/// has it, the raw wire length (needed for the truncation rule; computed by
/// re-encoding otherwise).
pub struct WireCtx<'a> {
    pub msg: &'a Message,
    /// Length of the original wire encoding, if the message came off a wire.
    pub wire_len: Option<usize>,
}

impl<'a> WireCtx<'a> {
    pub fn new(msg: &'a Message) -> Self {
        WireCtx {
            msg,
            wire_len: None,
        }
    }

    pub fn with_wire_len(msg: &'a Message, wire_len: usize) -> Self {
        WireCtx {
            msg,
            wire_len: Some(wire_len),
        }
    }

    fn is_response(&self) -> bool {
        self.msg.header.qr
    }

    fn soa_authorities(&self) -> impl Iterator<Item = (usize, &Record)> {
        self.msg
            .authorities
            .iter()
            .enumerate()
            .filter(|(_, r)| r.rtype() == RType::Soa)
    }

    /// NXDOMAIN, or NODATA (NOERROR with no answers but an SOA asserting the
    /// denial) — the two negative-response forms of RFC 2308.
    fn is_negative(&self) -> bool {
        self.is_response()
            && (self.msg.header.rcode == RCode::NxDomain
                || (self.msg.header.rcode == RCode::NoError
                    && self.msg.answers.is_empty()
                    && self.soa_authorities().next().is_some()))
    }
}

fn at(section: Section, index: Option<usize>) -> Location {
    Location::Message { section, index }
}

/// NXD001: an NXDOMAIN response must carry the zone SOA in its authority
/// section, otherwise resolvers cannot negative-cache it.
pub struct NxdomainMissingSoa;

pub static NXD001: RuleInfo = RuleInfo {
    id: "NXD001",
    name: "nxdomain-missing-soa",
    severity: Severity::High,
    rfc: "RFC 2308 §2.1",
    summary: "NXDOMAIN response carries no SOA record in the authority section",
};

impl Rule for NxdomainMissingSoa {
    fn info(&self) -> &'static RuleInfo {
        &NXD001
    }
}

impl WireRule for NxdomainMissingSoa {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.is_response()
            && ctx.msg.header.rcode == RCode::NxDomain
            && ctx.soa_authorities().next().is_none()
        {
            out.push(Diagnostic::new(
                &NXD001,
                at(Section::Authority, None),
                "NXDOMAIN response has no SOA record in the authority section",
                "attach the enclosing zone's SOA so resolvers can negative-cache the denial",
            ));
        }
    }
}

/// NXD002: an NXDOMAIN response asserts the name has no records, so the
/// answer section must not carry data for it (CNAME chain members excepted).
pub struct NxdomainWithAnswers;

pub static NXD002: RuleInfo = RuleInfo {
    id: "NXD002",
    name: "nxdomain-with-answers",
    severity: Severity::High,
    rfc: "RFC 2308 §2.1",
    summary: "NXDOMAIN response carries non-CNAME answer records",
};

impl Rule for NxdomainWithAnswers {
    fn info(&self) -> &'static RuleInfo {
        &NXD002
    }
}

impl WireRule for NxdomainWithAnswers {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>) {
        if !ctx.is_response() || ctx.msg.header.rcode != RCode::NxDomain {
            return;
        }
        for (i, rec) in ctx.msg.answers.iter().enumerate() {
            if rec.rtype() != RType::Cname {
                out.push(Diagnostic::new(
                    &NXD002,
                    at(Section::Answer, Some(i)),
                    format!(
                        "NXDOMAIN response carries a {} answer for {} — denial and data contradict",
                        rec.rtype(),
                        rec.name
                    ),
                    "drop the answer records (or return NOERROR if the name exists)",
                ));
            }
        }
    }
}

/// NXD003: a denial of existence must be vouched for by someone — either the
/// authority itself (AA) or a recursive resolver relaying it (RA).
pub struct DenialWithoutAuthority;

pub static NXD003: RuleInfo = RuleInfo {
    id: "NXD003",
    name: "denial-unattributed",
    severity: Severity::Medium,
    rfc: "RFC 1035 §4.1.1",
    summary: "NXDOMAIN response sets neither AA nor RA",
};

impl Rule for DenialWithoutAuthority {
    fn info(&self) -> &'static RuleInfo {
        &NXD003
    }
}

impl WireRule for DenialWithoutAuthority {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>) {
        let h = &ctx.msg.header;
        if ctx.is_response() && h.rcode == RCode::NxDomain && !h.aa && !h.ra {
            out.push(Diagnostic::new(
                &NXD003,
                at(Section::Header, None),
                "denial of existence with AA=0 and RA=0 — neither authoritative nor recursive",
                "set AA on authoritative denials, RA on responses from a recursive resolver",
            ));
        }
    }
}

/// NXD004: the effective negative TTL is min(SOA TTL, SOA MINIMUM); an SOA
/// TTL above MINIMUM advertises a window the resolver must not honor.
pub struct NegativeTtlAboveMinimum;

pub static NXD004: RuleInfo = RuleInfo {
    id: "NXD004",
    name: "negative-ttl-above-minimum",
    severity: Severity::Medium,
    rfc: "RFC 2308 §5",
    summary: "SOA record TTL in a negative response exceeds the SOA MINIMUM field",
};

impl Rule for NegativeTtlAboveMinimum {
    fn info(&self) -> &'static RuleInfo {
        &NXD004
    }
}

impl WireRule for NegativeTtlAboveMinimum {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>) {
        if !ctx.is_negative() {
            return;
        }
        for (i, rec) in ctx.soa_authorities() {
            if let RData::Soa(soa) = &rec.rdata {
                if rec.ttl > soa.minimum {
                    out.push(Diagnostic::new(
                        &NXD004,
                        at(Section::Authority, Some(i)),
                        format!(
                            "SOA record TTL {} exceeds SOA MINIMUM {}; the negative TTL is their minimum",
                            rec.ttl, soa.minimum
                        ),
                        "cap the SOA record TTL at the MINIMUM field when answering negatively",
                    ));
                }
            }
        }
    }
}

/// NXD005: responses echo the question so clients can match them up.
pub struct ResponseMissingQuestion;

pub static NXD005: RuleInfo = RuleInfo {
    id: "NXD005",
    name: "response-missing-question",
    severity: Severity::Medium,
    rfc: "RFC 1035 §4.1.1",
    summary: "response does not echo the question section",
};

impl Rule for ResponseMissingQuestion {
    fn info(&self) -> &'static RuleInfo {
        &NXD005
    }
}

impl WireRule for ResponseMissingQuestion {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>) {
        let h = &ctx.msg.header;
        if ctx.is_response()
            && matches!(h.rcode, RCode::NoError | RCode::NxDomain)
            && ctx.msg.questions.is_empty()
        {
            out.push(Diagnostic::new(
                &NXD005,
                at(Section::Question, None),
                format!("{} response has an empty question section", h.rcode),
                "echo the query's question so the client can associate the response",
            ));
        }
    }
}

/// NXD006: the SOA in a negative response names the zone that authoritatively
/// denies the name, so its owner must be the qname or an ancestor of it.
pub struct SoaOwnerNotAncestor;

pub static NXD006: RuleInfo = RuleInfo {
    id: "NXD006",
    name: "soa-owner-not-ancestor",
    severity: Severity::Medium,
    rfc: "RFC 2308 §2.1",
    summary: "SOA owner in a negative response does not enclose the queried name",
};

impl Rule for SoaOwnerNotAncestor {
    fn info(&self) -> &'static RuleInfo {
        &NXD006
    }
}

impl WireRule for SoaOwnerNotAncestor {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>) {
        if !ctx.is_negative() {
            return;
        }
        let Some(q) = ctx.msg.questions.first() else {
            return;
        };
        for (i, rec) in ctx.soa_authorities() {
            if !q.qname.is_subdomain_of(&rec.name) {
                out.push(Diagnostic::new(
                    &NXD006,
                    at(Section::Authority, Some(i)),
                    format!(
                        "SOA owner {} is not an ancestor of the queried name {}",
                        rec.name, q.qname
                    ),
                    "return the SOA of the zone actually containing (or denying) the qname",
                ));
            }
        }
    }
}

/// NXD007: TTLs are 31-bit; a set high bit must be treated as 0, so emitting
/// one advertises a TTL the peer will ignore.
pub struct TtlHighBitSet;

pub static NXD007: RuleInfo = RuleInfo {
    id: "NXD007",
    name: "ttl-high-bit",
    severity: Severity::Low,
    rfc: "RFC 2181 §8",
    summary: "record TTL has the high bit set (interpreted as 0 by receivers)",
};

impl Rule for TtlHighBitSet {
    fn info(&self) -> &'static RuleInfo {
        &NXD007
    }
}

impl WireRule for TtlHighBitSet {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>) {
        let sections = [
            (Section::Answer, &ctx.msg.answers),
            (Section::Authority, &ctx.msg.authorities),
            (Section::Additional, &ctx.msg.additionals),
        ];
        for (section, records) in sections {
            for (i, rec) in records.iter().enumerate() {
                // OPT records overload the TTL field (RFC 6891 §6.1.3).
                if rec.rtype() == RType::Opt {
                    continue;
                }
                if rec.ttl > i32::MAX as u32 {
                    out.push(Diagnostic::new(
                        &NXD007,
                        at(section, Some(i)),
                        format!("TTL {} on {} has the high bit set", rec.ttl, rec.name),
                        "use a TTL of at most 2^31-1; receivers treat larger values as 0",
                    ));
                }
            }
        }
    }
}

/// NXD008: a plain-DNS message longer than 512 octets must either be
/// truncated (TC) or negotiated via EDNS0 (an OPT record).
pub struct OversizeWithoutEdns;

pub static NXD008: RuleInfo = RuleInfo {
    id: "NXD008",
    name: "oversize-without-edns",
    severity: Severity::High,
    rfc: "RFC 1035 §4.2.1, RFC 6891 §6.2.5",
    summary: "message exceeds 512 octets without TC or an EDNS0 OPT record",
};

impl Rule for OversizeWithoutEdns {
    fn info(&self) -> &'static RuleInfo {
        &NXD008
    }
}

impl WireRule for OversizeWithoutEdns {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>) {
        let len = match ctx.wire_len {
            Some(len) => len,
            // Not off a wire: measure what the compressed encoding would be.
            None => match ctx.msg.encode() {
                Ok(buf) => buf.len(),
                Err(_) => return,
            },
        };
        let has_opt = ctx.msg.additionals.iter().any(|r| r.rtype() == RType::Opt);
        if len > 512 && !ctx.msg.header.tc && !has_opt {
            out.push(Diagnostic::new(
                &NXD008,
                at(Section::Header, None),
                format!(
                    "message is {len} octets, beyond the 512-octet UDP limit, with TC=0 and no OPT"
                ),
                "set TC so the client retries over TCP, or negotiate a larger size with EDNS0",
            ));
        }
    }
}

/// All wire rules, in rule-ID order.
pub fn wire_rules() -> Vec<Box<dyn WireRule>> {
    vec![
        Box::new(NxdomainMissingSoa),
        Box::new(NxdomainWithAnswers),
        Box::new(DenialWithoutAuthority),
        Box::new(NegativeTtlAboveMinimum),
        Box::new(ResponseMissingQuestion),
        Box::new(SoaOwnerNotAncestor),
        Box::new(TtlHighBitSet),
        Box::new(OversizeWithoutEdns),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::{Name, Soa};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn soa_record(owner: &str, ttl: u32, minimum: u32) -> Record {
        Record::new(
            n(owner),
            ttl,
            RData::Soa(Soa {
                mname: n(&format!("ns1.{owner}")),
                rname: n(&format!("hostmaster.{owner}")),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum,
            }),
        )
    }

    /// A conformant NXDOMAIN response: SOA in authority, RA set, TTL capped.
    fn clean_nxdomain() -> Message {
        let q = Message::query(1, n("ghost.example.com"), RType::A);
        let mut resp = Message::response(&q, RCode::NxDomain);
        resp.authorities.push(soa_record("example.com", 900, 900));
        resp
    }

    fn run(rule: &dyn WireRule, msg: &Message) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        rule.check_message(&WireCtx::new(msg), &mut out);
        out
    }

    #[test]
    fn nxd001_flags_missing_soa() {
        let mut msg = clean_nxdomain();
        msg.authorities.clear();
        let diags = run(&NxdomainMissingSoa, &msg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD001");
        assert_eq!(diags[0].rule.severity, Severity::High);
    }

    #[test]
    fn nxd001_clean_on_conformant_response() {
        assert!(run(&NxdomainMissingSoa, &clean_nxdomain()).is_empty());
        // Queries and positive responses are out of scope.
        let q = Message::query(1, n("a.com"), RType::A);
        assert!(run(&NxdomainMissingSoa, &q).is_empty());
    }

    #[test]
    fn nxd002_flags_answers_in_nxdomain() {
        let mut msg = clean_nxdomain();
        msg.answers.push(Record::new(
            n("ghost.example.com"),
            60,
            RData::A(Ipv4Addr::LOCALHOST),
        ));
        let diags = run(&NxdomainWithAnswers, &msg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD002");
    }

    #[test]
    fn nxd002_allows_cname_chain_members() {
        let mut msg = clean_nxdomain();
        msg.answers.push(Record::new(
            n("ghost.example.com"),
            60,
            RData::Cname(n("gone.example.com")),
        ));
        assert!(run(&NxdomainWithAnswers, &msg).is_empty());
    }

    #[test]
    fn nxd003_flags_unattributed_denial() {
        let mut msg = clean_nxdomain();
        msg.header.aa = false;
        msg.header.ra = false;
        let diags = run(&DenialWithoutAuthority, &msg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD003");
    }

    #[test]
    fn nxd003_clean_when_aa_or_ra() {
        let mut msg = clean_nxdomain();
        msg.header.ra = false;
        msg.header.aa = true;
        assert!(run(&DenialWithoutAuthority, &msg).is_empty());
        assert!(run(&DenialWithoutAuthority, &clean_nxdomain()).is_empty());
    }

    #[test]
    fn nxd004_flags_soa_ttl_above_minimum() {
        let mut msg = clean_nxdomain();
        msg.authorities[0] = soa_record("example.com", 86_400, 900);
        let diags = run(&NegativeTtlAboveMinimum, &msg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD004");
        assert!(diags[0].message.contains("86400"));
    }

    #[test]
    fn nxd004_clean_when_capped() {
        assert!(run(&NegativeTtlAboveMinimum, &clean_nxdomain()).is_empty());
    }

    #[test]
    fn nxd005_flags_missing_question() {
        let mut msg = clean_nxdomain();
        msg.questions.clear();
        let diags = run(&ResponseMissingQuestion, &msg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD005");
    }

    #[test]
    fn nxd005_clean_with_question() {
        assert!(run(&ResponseMissingQuestion, &clean_nxdomain()).is_empty());
    }

    #[test]
    fn nxd006_flags_unrelated_soa_owner() {
        let mut msg = clean_nxdomain();
        msg.authorities[0] = soa_record("other.net", 900, 900);
        let diags = run(&SoaOwnerNotAncestor, &msg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD006");
    }

    #[test]
    fn nxd006_clean_for_enclosing_zone() {
        assert!(run(&SoaOwnerNotAncestor, &clean_nxdomain()).is_empty());
    }

    #[test]
    fn nxd007_flags_high_bit_ttl() {
        let mut msg = clean_nxdomain();
        msg.authorities.push(Record::new(
            n("x.example.com"),
            0x8000_0001,
            RData::A(Ipv4Addr::LOCALHOST),
        ));
        let diags = run(&TtlHighBitSet, &msg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD007");
        assert_eq!(diags[0].rule.severity, Severity::Low);
    }

    #[test]
    fn nxd007_clean_on_sane_ttls() {
        assert!(run(&TtlHighBitSet, &clean_nxdomain()).is_empty());
    }

    #[test]
    fn nxd008_flags_oversize_without_edns() {
        let q = Message::query(1, n("big.example.com"), RType::Txt);
        let mut msg = Message::response(&q, RCode::NoError);
        msg.answers.push(Record::new(
            n("big.example.com"),
            60,
            RData::Txt(vec!["x".repeat(200), "y".repeat(200), "z".repeat(200)]),
        ));
        let diags = run(&OversizeWithoutEdns, &msg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD008");
    }

    #[test]
    fn nxd008_clean_with_tc_or_opt_or_small() {
        assert!(run(&OversizeWithoutEdns, &clean_nxdomain()).is_empty());
        let q = Message::query(1, n("big.example.com"), RType::Txt);
        let mut msg = Message::response(&q, RCode::NoError);
        msg.answers.push(Record::new(
            n("big.example.com"),
            60,
            RData::Txt(vec!["x".repeat(200), "y".repeat(200), "z".repeat(200)]),
        ));
        let mut with_tc = msg.clone();
        with_tc.header.tc = true;
        assert!(run(&OversizeWithoutEdns, &with_tc).is_empty());
        let mut with_opt = msg;
        with_opt
            .additionals
            .push(Record::new(Name::root(), 0, RData::Opt(Vec::new())));
        assert!(run(&OversizeWithoutEdns, &with_opt).is_empty());
    }
}
