//! Trace passes: rules over a resolver's [`ResolveEvent`] stream
//! (NXD015–NXD017).
//!
//! These rules check the dynamic negative-caching invariants the paper's
//! scale analysis rests on: once a resolver has a fresh NXDOMAIN for a name,
//! repeat queries inside the negative-TTL window must be absorbed by the
//! cache (RFC 2308 §5), and — for an RFC 8020-aware resolver — so must
//! queries for anything beneath the nonexistent name.

use std::collections::HashMap;

use nxd_dns_sim::resolver::ResolveEvent;
use nxd_dns_wire::{Name, RCode};

use crate::diagnostic::{Diagnostic, Location, RuleInfo, Severity};
use crate::rules::{Rule, TraceRule};

fn loc(index: usize, ev: &ResolveEvent) -> Location {
    Location::Trace { index, at: ev.at.0 }
}

/// The negative window opened by a fresh (non-cached) NXDOMAIN: it runs from
/// the answering event until `at + negative_ttl`. `source` is the index of
/// the event that opened it, so rules can avoid matching an event against
/// the window it opened itself.
#[derive(Debug, Clone, Copy)]
struct NegWindow {
    source: usize,
    opened_at: u64,
    expires: u64,
}

/// Fresh-NXDOMAIN windows per qname, built once and shared by the rules.
fn negative_windows(events: &[ResolveEvent]) -> HashMap<&Name, Vec<NegWindow>> {
    let mut windows: HashMap<&Name, Vec<NegWindow>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.rcode == RCode::NxDomain && !ev.from_cache {
            if let Some(ttl) = ev.negative_ttl {
                windows.entry(&ev.qname).or_default().push(NegWindow {
                    source: i,
                    opened_at: ev.at.0,
                    expires: ev.at.0 + ttl as u64,
                });
            }
        }
    }
    windows
}

/// NXD015: a query for a name whose NXDOMAIN is still within its negative
/// TTL must not reach upstream servers.
pub struct RequeryInsideNegativeTtl;

pub static NXD015: RuleInfo = RuleInfo {
    id: "NXD015",
    name: "requery-inside-negative-ttl",
    severity: Severity::High,
    rfc: "RFC 2308 §5",
    summary: "upstream re-query for a name inside its negative-TTL window",
};

impl Rule for RequeryInsideNegativeTtl {
    fn info(&self) -> &'static RuleInfo {
        &NXD015
    }
}

impl TraceRule for RequeryInsideNegativeTtl {
    fn check_trace(&self, events: &[ResolveEvent], out: &mut Vec<Diagnostic>) {
        let windows = negative_windows(events);
        for (i, ev) in events.iter().enumerate() {
            if ev.from_cache || ev.upstream_queries == 0 {
                continue;
            }
            let covering = windows.get(&ev.qname).and_then(|per_name| {
                per_name
                    .iter()
                    .find(|w| w.source != i && w.opened_at <= ev.at.0 && ev.at.0 < w.expires)
            });
            if let Some(w) = covering {
                out.push(Diagnostic::new(
                    &NXD015,
                    loc(i, ev),
                    format!(
                        "{} went upstream at t={} although its NXDOMAIN (cached at t={}) is valid until t={}",
                        ev.qname, ev.at.0, w.opened_at, w.expires
                    ),
                    "serve the denial from the negative cache until the window expires",
                ));
            }
        }
    }
}

/// NXD016: a cached negative answer must not outlive its TTL.
pub struct StaleNegativeServe;

pub static NXD016: RuleInfo = RuleInfo {
    id: "NXD016",
    name: "stale-negative-serve",
    severity: Severity::Medium,
    rfc: "RFC 2308 §5",
    summary: "negative answer served from cache after its TTL expired",
};

impl Rule for StaleNegativeServe {
    fn info(&self) -> &'static RuleInfo {
        &NXD016
    }
}

impl TraceRule for StaleNegativeServe {
    fn check_trace(&self, events: &[ResolveEvent], out: &mut Vec<Diagnostic>) {
        let windows = negative_windows(events);
        for (i, ev) in events.iter().enumerate() {
            if !(ev.from_cache && ev.rcode == RCode::NxDomain) {
                continue;
            }
            let Some(per_name) = windows.get(&ev.qname) else {
                continue;
            };
            let live = per_name
                .iter()
                .any(|w| w.opened_at <= ev.at.0 && ev.at.0 < w.expires);
            if !live {
                let last = per_name.iter().map(|w| w.expires).max().unwrap_or(0);
                out.push(Diagnostic::new(
                    &NXD016,
                    loc(i, ev),
                    format!(
                        "cached NXDOMAIN for {} served at t={} but every negative window ended by t={}",
                        ev.qname, ev.at.0, last
                    ),
                    "evict negative-cache entries at expiry and re-query upstream",
                ));
            }
        }
    }
}

/// NXD017: NXDOMAIN means nothing exists beneath the name either (RFC 8020),
/// so an upstream query for a subordinate name inside the window shows the
/// resolver is not cutting off the denied subtree.
pub struct SubtreeQueryAfterNxdomain;

pub static NXD017: RuleInfo = RuleInfo {
    id: "NXD017",
    name: "subtree-query-after-nxdomain",
    severity: Severity::Medium,
    rfc: "RFC 8020 §2",
    summary: "upstream query for a name below a domain known not to exist",
};

impl Rule for SubtreeQueryAfterNxdomain {
    fn info(&self) -> &'static RuleInfo {
        &NXD017
    }
}

impl TraceRule for SubtreeQueryAfterNxdomain {
    fn check_trace(&self, events: &[ResolveEvent], out: &mut Vec<Diagnostic>) {
        let windows = negative_windows(events);
        for (i, ev) in events.iter().enumerate() {
            if ev.from_cache || ev.upstream_queries == 0 {
                continue;
            }
            // Strict ancestors only: the exact name is NXD015's business.
            for (ancestor, per_name) in &windows {
                if **ancestor == ev.qname || !ev.qname.is_subdomain_of(ancestor) {
                    continue;
                }
                if let Some(w) = per_name
                    .iter()
                    .find(|w| w.opened_at < ev.at.0 && ev.at.0 < w.expires)
                {
                    out.push(Diagnostic::new(
                        &NXD017,
                        loc(i, ev),
                        format!(
                            "{} went upstream at t={} although ancestor {} was NXDOMAIN until t={}",
                            ev.qname, ev.at.0, ancestor, w.expires
                        ),
                        "apply RFC 8020 subtree semantics to the negative cache (deny descendants too)",
                    ));
                }
            }
        }
    }
}

/// All trace rules, in rule-ID order.
pub fn trace_rules() -> Vec<Box<dyn TraceRule>> {
    vec![
        Box::new(RequeryInsideNegativeTtl),
        Box::new(StaleNegativeServe),
        Box::new(SubtreeQueryAfterNxdomain),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_sim::SimTime;
    use nxd_dns_wire::RType;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ev(
        at: u64,
        qname: &str,
        rcode: RCode,
        from_cache: bool,
        upstream: u32,
        neg_ttl: Option<u32>,
    ) -> ResolveEvent {
        ResolveEvent {
            at: SimTime(at),
            qname: n(qname),
            qtype: RType::A,
            rcode,
            from_cache,
            upstream_queries: upstream,
            negative_ttl: neg_ttl,
        }
    }

    fn run(rule: &dyn TraceRule, events: &[ResolveEvent]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        rule.check_trace(events, &mut out);
        out
    }

    /// A well-behaved trace: fresh NXDOMAIN, cache hit inside the window,
    /// fresh re-query after expiry.
    fn clean_trace() -> Vec<ResolveEvent> {
        vec![
            ev(100, "ghost.com", RCode::NxDomain, false, 2, Some(900)),
            ev(200, "ghost.com", RCode::NxDomain, true, 0, None),
            ev(1100, "ghost.com", RCode::NxDomain, false, 2, Some(900)),
        ]
    }

    #[test]
    fn clean_trace_passes_every_rule() {
        for rule in trace_rules() {
            assert!(
                run(rule.as_ref(), &clean_trace()).is_empty(),
                "{} fired on a clean trace",
                rule.info().id
            );
        }
    }

    #[test]
    fn nxd015_flags_upstream_requery_in_window() {
        let events = vec![
            ev(100, "ghost.com", RCode::NxDomain, false, 2, Some(900)),
            // Negative cache ignored: the same name goes upstream again.
            ev(400, "ghost.com", RCode::NxDomain, false, 2, Some(900)),
        ];
        let diags = run(&RequeryInsideNegativeTtl, &events);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD015");
        assert_eq!(diags[0].rule.severity, Severity::High);
    }

    #[test]
    fn nxd015_clean_after_window_expiry() {
        assert!(run(&RequeryInsideNegativeTtl, &clean_trace()).is_empty());
    }

    #[test]
    fn nxd016_flags_stale_cache_serve() {
        let events = vec![
            ev(100, "ghost.com", RCode::NxDomain, false, 2, Some(900)),
            // Served from cache long after t=1000 expiry.
            ev(5000, "ghost.com", RCode::NxDomain, true, 0, None),
        ];
        let diags = run(&StaleNegativeServe, &events);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD016");
    }

    #[test]
    fn nxd016_clean_inside_window() {
        assert!(run(&StaleNegativeServe, &clean_trace()).is_empty());
    }

    #[test]
    fn nxd017_flags_subtree_query_in_window() {
        let events = vec![
            ev(100, "ghost.com", RCode::NxDomain, false, 2, Some(900)),
            ev(300, "www.ghost.com", RCode::NxDomain, false, 2, Some(900)),
        ];
        let diags = run(&SubtreeQueryAfterNxdomain, &events);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.id, "NXD017");
        assert!(diags[0].message.contains("ghost.com"));
    }

    #[test]
    fn nxd017_clean_outside_window_or_unrelated() {
        let events = vec![
            ev(100, "ghost.com", RCode::NxDomain, false, 2, Some(900)),
            // After expiry: allowed.
            ev(1200, "www.ghost.com", RCode::NxDomain, false, 2, Some(900)),
            // Unrelated name: allowed.
            ev(300, "other.com", RCode::NoError, false, 3, None),
        ];
        assert!(run(&SubtreeQueryAfterNxdomain, &events).is_empty());
    }
}
