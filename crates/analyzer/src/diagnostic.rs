//! Diagnostics: what a rule reports when an artifact violates an invariant.
//!
//! A [`Diagnostic`] ties a stable rule ID to a concrete location in the
//! analyzed artifact, the RFC section the artifact violates, and a suggested
//! fix. Reports render both as human-readable text and as machine-readable
//! JSON (hand-rolled here; the workspace has no serde runtime).

use std::fmt;

/// How severe a violation is.
///
/// `High` findings are protocol violations that break interoperability or
/// negative caching (the paper's subject); strict mode gates on them.
/// `Medium` findings degrade behaviour; `Low` findings are hygiene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Low,
    Medium,
    High,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Static description of one rule: stable ID, severity, and the RFC section
/// whose violation it detects. One instance per rule, `'static`, shared by
/// every diagnostic the rule emits.
#[derive(Debug, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable identifier in the `NXDnnn` namespace. Never reused.
    pub id: &'static str,
    /// Short machine-friendly name (kebab-case).
    pub name: &'static str,
    pub severity: Severity,
    /// The RFC section this rule enforces, e.g. `"RFC 2308 §2.1"`.
    pub rfc: &'static str,
    /// One-line summary for catalogs and `--help` output.
    pub summary: &'static str,
}

/// Message sections, for [`Location::Message`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    Header,
    Question,
    Answer,
    Authority,
    Additional,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Section::Header => "header",
            Section::Question => "question",
            Section::Answer => "answer",
            Section::Authority => "authority",
            Section::Additional => "additional",
        })
    }
}

/// Where in the analyzed artifact a violation sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A section of a wire message, optionally a specific record index.
    Message {
        section: Section,
        index: Option<usize>,
    },
    /// An owner name inside a zone.
    Zone { apex: String, owner: String },
    /// An event index in a resolver trace, with its simulated timestamp.
    Trace { index: usize, at: u64 },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Message {
                section,
                index: Some(i),
            } => write!(f, "message/{section}[{i}]"),
            Location::Message {
                section,
                index: None,
            } => write!(f, "message/{section}"),
            Location::Zone { apex, owner } => write!(f, "zone {apex}: {owner}"),
            Location::Trace { index, at } => write!(f, "trace[{index}] t={at}"),
        }
    }
}

/// One rule violation at one location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static RuleInfo,
    pub location: Location,
    /// What is wrong, with the concrete values involved.
    pub message: String,
    /// How to make the artifact conformant.
    pub suggestion: String,
}

impl Diagnostic {
    pub fn new(
        rule: &'static RuleInfo,
        location: Location,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            location,
            message: message.into(),
            suggestion: suggestion.into(),
        }
    }

    /// Single-line human rendering: `NXD001 high [RFC 2308 §2.1] at <loc>: <msg> (fix: ...)`.
    pub fn to_text(&self) -> String {
        format!(
            "{} {} [{}] at {}: {} (fix: {})",
            self.rule.id,
            self.rule.severity,
            self.rule.rfc,
            self.location,
            self.message,
            self.suggestion
        )
    }

    /// JSON object rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"name\":{},\"severity\":{},\"rfc\":{},\"location\":{},\"message\":{},\"suggestion\":{}}}",
            json_str(self.rule.id),
            json_str(self.rule.name),
            json_str(self.rule.severity.as_str()),
            json_str(self.rule.rfc),
            json_str(&self.location.to_string()),
            json_str(&self.message),
            json_str(&self.suggestion),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The outcome of running one or more passes: an ordered list of
/// diagnostics plus rendering and gating helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics at exactly `severity`.
    pub fn at_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.rule.severity == severity)
    }

    /// Number of `High` findings — the strict-mode gate.
    pub fn high_count(&self) -> usize {
        self.at_severity(Severity::High).count()
    }

    /// Absorbs another report's diagnostics.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Asserts strict conformance: panics with every `High` finding listed
    /// if any is present. Meant for tests gating simulated responders.
    pub fn assert_no_high(&self, context: &str) {
        let highs: Vec<String> = self
            .at_severity(Severity::High)
            .map(|d| d.to_text())
            .collect();
        assert!(
            highs.is_empty(),
            "strict mode: {} high-severity diagnostic(s) for {context}:\n{}",
            highs.len(),
            highs.join("\n")
        );
    }

    /// One line per diagnostic, sorted High→Low, stable within a severity.
    pub fn to_text(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        sorted.sort_by_key(|d| std::cmp::Reverse(d.rule.severity));
        sorted
            .iter()
            .map(|d| d.to_text())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// JSON rendering: `{"diagnostics":[...],"counts":{"high":n,...}}`.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(|d| d.to_json()).collect();
        format!(
            "{{\"diagnostics\":[{}],\"counts\":{{\"high\":{},\"medium\":{},\"low\":{}}}}}",
            items.join(","),
            self.high_count(),
            self.at_severity(Severity::Medium).count(),
            self.at_severity(Severity::Low).count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_RULE: RuleInfo = RuleInfo {
        id: "NXD999",
        name: "test-rule",
        severity: Severity::High,
        rfc: "RFC 0000 §0",
        summary: "a rule for tests",
    };

    fn diag() -> Diagnostic {
        Diagnostic::new(
            &TEST_RULE,
            Location::Message {
                section: Section::Authority,
                index: Some(0),
            },
            "something \"quoted\" broke",
            "fix it",
        )
    }

    #[test]
    fn severity_ordering_gates_on_high() {
        assert!(Severity::High > Severity::Medium);
        assert!(Severity::Medium > Severity::Low);
    }

    #[test]
    fn text_rendering_contains_all_parts() {
        let t = diag().to_text();
        assert!(t.contains("NXD999"));
        assert!(t.contains("high"));
        assert!(t.contains("RFC 0000 §0"));
        assert!(t.contains("message/authority[0]"));
        assert!(t.contains("fix it"));
    }

    #[test]
    fn json_rendering_escapes() {
        let j = diag().to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"id\":\"NXD999\""));
        let report = Report::new(vec![diag()]);
        let rj = report.to_json();
        assert!(rj.starts_with("{\"diagnostics\":["));
        assert!(rj.contains("\"high\":1"));
    }

    #[test]
    fn report_merge_and_counts() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.merge(Report::new(vec![diag(), diag()]));
        assert_eq!(r.len(), 2);
        assert_eq!(r.high_count(), 2);
        assert_eq!(r.at_severity(Severity::Low).count(), 0);
    }

    #[test]
    #[should_panic(expected = "strict mode")]
    fn assert_no_high_panics_on_high() {
        Report::new(vec![diag()]).assert_no_high("unit test");
    }

    #[test]
    fn assert_no_high_passes_when_clean() {
        Report::default().assert_no_high("unit test");
    }
}
