//! The [`Rule`] trait, its three pass-family sub-traits, and the full
//! rule catalog.
//!
//! Rule IDs live in the stable `NXDnnn` namespace: an ID is never reused or
//! renumbered once released, so downstream tooling can suppress or track
//! findings by ID across versions.

use nxd_dns_sim::resolver::ResolveEvent;

use crate::diagnostic::{Diagnostic, RuleInfo};
use crate::trace;
use crate::wire::{self, WireCtx};
use crate::zone::{self, ZoneCtx};

/// Common surface of every rule: its static metadata.
pub trait Rule {
    fn info(&self) -> &'static RuleInfo;
}

/// A rule over one decoded wire message.
pub trait WireRule: Rule {
    fn check_message(&self, ctx: &WireCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// A rule over one zone's records.
pub trait ZoneRule: Rule {
    fn check_zone(&self, ctx: &ZoneCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// A rule over a resolver's event trace.
pub trait TraceRule: Rule {
    fn check_trace(&self, events: &[ResolveEvent], out: &mut Vec<Diagnostic>);
}

/// Every rule's metadata, in rule-ID order — the machine-readable catalog
/// backing `nxd-analyze rules` and the README table.
pub fn catalog() -> Vec<&'static RuleInfo> {
    let mut infos: Vec<&'static RuleInfo> = Vec::new();
    infos.extend(wire::wire_rules().iter().map(|r| r.info()));
    infos.extend(zone::zone_rules().iter().map(|r| r.info()));
    infos.extend(trace::trace_rules().iter().map(|r| r.info()));
    infos
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_at_least_ten_rules_across_three_families() {
        let infos = catalog();
        assert!(infos.len() >= 10, "only {} rules", infos.len());
        assert_eq!(wire::wire_rules().len(), 8);
        assert_eq!(zone::zone_rules().len(), 6);
        assert_eq!(trace::trace_rules().len(), 3);
    }

    #[test]
    fn rule_ids_are_unique_well_formed_and_ordered() {
        let infos = catalog();
        let ids: Vec<&str> = infos.iter().map(|i| i.id).collect();
        let unique: HashSet<&&str> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate rule IDs: {ids:?}");
        for (n, info) in infos.iter().enumerate() {
            assert_eq!(
                info.id,
                format!("NXD{:03}", n + 1),
                "IDs must be dense and ordered"
            );
            assert!(info.rfc.starts_with("RFC "), "{} cites no RFC", info.id);
            assert!(!info.summary.is_empty());
            assert!(info
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }
}
