//! # nxd-analyzer
//!
//! A multi-pass, rule-based static analysis engine for the simulated DNS
//! ecosystem: it checks wire messages, authoritative zones, and resolver
//! traces against the RFC invariants the paper's NXDOMAIN measurements
//! assume (RFC 1034/1035 zone semantics, RFC 2308 negative caching,
//! RFC 2181 TTL rules, RFC 8020 subtree denial).
//!
//! Three pass families share one [`Diagnostic`] vocabulary:
//!
//! * **wire** — rules `NXD001`–`NXD008` over a decoded [`Message`];
//! * **zone** — rules `NXD009`–`NXD014` over a zone's records (live
//!   [`Zone`]s or parsed zone files);
//! * **trace** — rules `NXD015`–`NXD017` over a resolver's
//!   [`ResolveEvent`] stream.
//!
//! Every diagnostic carries a stable rule ID, a severity, the violated RFC
//! section, a location in the artifact, and a suggested fix; reports render
//! as text or JSON. `Report::assert_no_high` is the strict-mode gate used by
//! the responder conformance tests.
//!
//! ```
//! use nxd_analyzer::Analyzer;
//! use nxd_dns_wire::{Message, RCode, RType};
//!
//! let query = Message::query(7, "ghost.example".parse().unwrap(), RType::A);
//! let bare = Message::response(&query, RCode::NxDomain); // no SOA!
//! let report = Analyzer::new().analyze_message(&bare);
//! assert_eq!(report.high_count(), 1); // NXD001: missing SOA
//! assert!(report.to_text().contains("RFC 2308"));
//! ```

pub mod diagnostic;
pub mod rules;
pub mod trace;
pub mod wire;
pub mod zone;

use nxd_dns_sim::resolver::ResolveEvent;
use nxd_dns_sim::Zone;
use nxd_dns_wire::{Message, Name, Record, WireError};

pub use diagnostic::{Diagnostic, Location, Report, RuleInfo, Section, Severity};
pub use rules::{catalog, Rule, TraceRule, WireRule, ZoneRule};
pub use wire::WireCtx;
pub use zone::ZoneCtx;

/// The analysis engine: the full rule set, applied per artifact kind.
pub struct Analyzer {
    wire_rules: Vec<Box<dyn WireRule>>,
    zone_rules: Vec<Box<dyn ZoneRule>>,
    trace_rules: Vec<Box<dyn TraceRule>>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer {
    /// An analyzer running every registered rule.
    pub fn new() -> Self {
        Analyzer {
            wire_rules: wire::wire_rules(),
            zone_rules: zone::zone_rules(),
            trace_rules: trace::trace_rules(),
        }
    }

    /// Runs the wire passes over a decoded message.
    pub fn analyze_message(&self, msg: &Message) -> Report {
        self.run_wire(&WireCtx::new(msg))
    }

    /// Decodes `buf` and runs the wire passes with the true wire length
    /// (needed for the oversize rule, NXD008).
    pub fn analyze_bytes(&self, buf: &[u8]) -> Result<Report, WireError> {
        let msg = Message::decode(buf)?;
        Ok(self.run_wire(&WireCtx::with_wire_len(&msg, buf.len())))
    }

    fn run_wire(&self, ctx: &WireCtx<'_>) -> Report {
        let mut out = Vec::new();
        for rule in &self.wire_rules {
            rule.check_message(ctx, &mut out);
        }
        Report::new(out)
    }

    /// Runs the zone passes over a live zone.
    pub fn analyze_zone(&self, zone: &Zone) -> Report {
        let records: Vec<Record> = zone.iter().cloned().collect();
        self.analyze_records(zone.apex(), &records)
    }

    /// Runs the zone passes over a flat record list (e.g. a parsed zone
    /// file) rooted at `apex`.
    pub fn analyze_records(&self, apex: &Name, records: &[Record]) -> Report {
        let ctx = ZoneCtx::new(apex, records);
        let mut out = Vec::new();
        for rule in &self.zone_rules {
            rule.check_zone(&ctx, &mut out);
        }
        Report::new(out)
    }

    /// Runs the trace passes over a resolver event stream.
    pub fn analyze_trace(&self, events: &[ResolveEvent]) -> Report {
        let mut out = Vec::new();
        for rule in &self.trace_rules {
            rule.check_trace(events, &mut out);
        }
        Report::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::{RCode, RData, RType};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn analyze_bytes_uses_wire_length() {
        let q = Message::query(1, n("a.example.com"), RType::A);
        let wire = q.encode().unwrap();
        let report = Analyzer::new().analyze_bytes(&wire).unwrap();
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn analyze_bytes_propagates_decode_errors() {
        assert!(Analyzer::new().analyze_bytes(&[0xC0]).is_err());
    }

    #[test]
    fn bare_nxdomain_yields_missing_soa_high() {
        let q = Message::query(7, n("ghost.example"), RType::A);
        let resp = Message::response(&q, RCode::NxDomain);
        let report = Analyzer::new().analyze_message(&resp);
        assert_eq!(report.high_count(), 1);
        assert_eq!(report.diagnostics[0].rule.id, "NXD001");
    }

    #[test]
    fn zone_analysis_accepts_live_zone() {
        let apex = n("example.com");
        let mut zone = Zone::new(apex.clone(), Zone::default_soa(&apex, 900), 3600);
        zone.add(Record::new(
            apex.clone(),
            3600,
            RData::Ns(n("ns1.example.com")),
        ));
        zone.add(Record::new(
            n("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let report = Analyzer::new().analyze_zone(&zone);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn reports_merge_across_passes() {
        let q = Message::query(7, n("ghost.example"), RType::A);
        let resp = Message::response(&q, RCode::NxDomain);
        let mut combined = Analyzer::new().analyze_message(&resp);
        combined.merge(Analyzer::new().analyze_trace(&[]));
        assert_eq!(combined.high_count(), 1);
    }
}
