//! Property tests pinning the approximate plane's theoretical error
//! bounds against exact reference computations:
//!
//! * Space-saving top-k (Metwally et al.): estimates never under-count,
//!   over-count by at most N/k, and every item whose true weight exceeds
//!   N/k is present in the summary — for ANY stream.
//! * Distinct sketch (HLL-style): the estimate is within a small multiple
//!   of the `1.04/sqrt(2^p)` standard error across deterministic seeds,
//!   merging equals union, and memory never grows with the stream.

use std::collections::BTreeMap;

use nxd_passive_dns::stream::{DistinctSketch, SpaceSaving};
use proptest::prelude::*;

/// Streams where a handful of items dominate — the regime top-k is for.
fn arb_weighted_stream() -> impl Strategy<Value = Vec<(usize, u32)>> {
    proptest::collection::vec(
        (0usize..60, 1u32..50).prop_map(|(idx, w)| {
            // Skew: low indices get quadratically more weight.
            (idx, w * (1 + 60u32.saturating_sub(idx as u32) / 12))
        }),
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The three space-saving guarantees, for any stream and capacity.
    #[test]
    fn space_saving_bounds_hold(
        stream in arb_weighted_stream(),
        k in 1usize..32,
    ) {
        let mut ss = SpaceSaving::new(k);
        let mut truth: BTreeMap<String, u64> = BTreeMap::new();
        for &(idx, w) in &stream {
            let item = format!("item-{idx}");
            ss.offer(&item, u64::from(w));
            *truth.entry(item).or_insert(0) += u64::from(w);
        }
        let n: u64 = truth.values().sum();
        prop_assert_eq!(ss.total_weight(), n);
        let bound = ss.error_bound();
        prop_assert_eq!(bound, n / k as u64);

        for entry in ss.top(k) {
            let true_count = truth.get(&entry.item).copied().unwrap_or(0);
            // Never under-counts…
            prop_assert!(entry.count >= true_count);
            // …over-counts by at most N/k (and by at most its own error).
            prop_assert!(entry.count - true_count <= entry.error);
            prop_assert!(entry.error <= bound);
        }
        // Every true heavy hitter above N/k is tracked.
        for (item, &count) in &truth {
            if count > bound {
                prop_assert!(
                    ss.estimate(item) >= count,
                    "heavy hitter {} (true {}) missing or under-counted",
                    item, count
                );
            }
        }
    }

    /// Estimates are monotone in the tracked set: offering more weight to
    /// a tracked item raises its estimate by exactly that weight.
    #[test]
    fn space_saving_tracked_increments_are_exact(
        stream in arb_weighted_stream(),
        extra in 1u64..100,
    ) {
        let mut ss = SpaceSaving::new(8);
        for &(idx, w) in &stream {
            ss.offer(&format!("item-{idx}"), u64::from(w));
        }
        let top = ss.top(1);
        if let Some(heaviest) = top.first() {
            let before = ss.estimate(&heaviest.item);
            ss.offer(&heaviest.item, extra);
            prop_assert_eq!(ss.estimate(&heaviest.item), before + extra);
        }
    }
}

/// Deterministic (non-proptest) error-bound sweep: FNV-1a is a fixed
/// function, so for pinned seeds and cardinalities this either passes
/// forever or never — no flake window. 4σ of the theoretical standard
/// error is the acceptance band.
#[test]
fn distinct_estimate_within_bound_across_seeds_and_precisions() {
    for &precision in &[10u32, 12, 14] {
        let err_bound = 4.0 * DistinctSketch::new(precision, 0).standard_error();
        for salt in 0..5u64 {
            for &n in &[500u64, 5_000, 50_000] {
                let mut sketch = DistinctSketch::new(precision, salt);
                for i in 0..n {
                    sketch.insert(&format!("nx-{salt}-{i}.example.com"));
                }
                let est = sketch.estimate();
                let rel = (est as f64 - n as f64).abs() / n as f64;
                assert!(
                    rel <= err_bound,
                    "p={precision} salt={salt} n={n}: est {est}, rel err {rel:.4} > {err_bound:.4}"
                );
            }
        }
    }
}

#[test]
fn distinct_merge_is_union_and_memory_is_flat() {
    let salt = 0xFEED;
    let mut shards: Vec<DistinctSketch> = (0..8).map(|_| DistinctSketch::new(12, salt)).collect();
    let mut whole = DistinctSketch::new(12, salt);
    for i in 0..20_000u64 {
        let name = format!("shard-name-{i}.net");
        shards[(i % 8) as usize].insert(&name);
        whole.insert(&name);
    }
    let mut merged = DistinctSketch::new(12, salt);
    for s in &shards {
        merged.merge(s);
    }
    // Register-max merge is exactly the sketch of the union.
    assert_eq!(merged.estimate(), whole.estimate());
    // And memory is the register array, independent of insert count.
    assert_eq!(merged.heap_bytes(), 4096);
    assert_eq!(whole.heap_bytes(), 4096);
}

#[test]
fn distinct_estimate_is_exactish_at_tiny_cardinalities() {
    // Linear-counting regime: single-digit relative error down low.
    let mut sketch = DistinctSketch::new(12, 1);
    for i in 0..100u32 {
        sketch.insert(&format!("tiny-{i}.org"));
    }
    let est = sketch.estimate();
    assert!((90..=110).contains(&est), "est {est} far from 100");
}
