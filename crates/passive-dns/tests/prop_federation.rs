//! Property tests for the federation merge paths: federating K
//! independently collected shard stores must answer the trend, TLD, and
//! lifespan queries exactly like one combined store — including degenerate
//! shards (empty providers, single-observation providers).

use nxd_dns_wire::RCode;
use nxd_passive_dns::{query, Federation, PassiveDb};
use proptest::prelude::*;

const TLDS: [&str; 5] = ["com", "net", "ru", "cn", "org"];

type Obs = (usize, u32, u16, u32);

fn db_of(observations: &[Obs]) -> PassiveDb {
    let mut db = PassiveDb::new();
    for &(idx, day, sensor, count) in observations {
        db.record_str(
            &format!("name-{idx}.{}", TLDS[idx % TLDS.len()]),
            day,
            sensor,
            RCode::NxDomain,
            count,
        );
    }
    db
}

/// 1..=5 providers, each 0..30 observations — empty providers are common by
/// construction.
fn arb_providers() -> impl Strategy<Value = Vec<Vec<Obs>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..30, 16_000u32..18_000, 0u16..6, 1u32..8), 0..30),
        1..6,
    )
}

fn federation_of(providers: &[Vec<Obs>]) -> Federation {
    let mut f = Federation::new();
    for (i, obs) in providers.iter().enumerate() {
        f.add_provider(&format!("provider-{i}"), db_of(obs));
    }
    f
}

/// One store holding every provider's observations, ingested in order.
fn combined_of(providers: &[Vec<Obs>]) -> PassiveDb {
    let all: Vec<Obs> = providers.iter().flatten().copied().collect();
    db_of(&all)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Federation::merged` equals the combined store for the monthly
    /// trend, the TLD distribution, and the lifespan decay histogram.
    #[test]
    fn merged_equals_combined_store(providers in arb_providers()) {
        let merged = federation_of(&providers).merged();
        let combined = combined_of(&providers);
        prop_assert_eq!(
            query::monthly_nx_series(&merged),
            query::monthly_nx_series(&combined)
        );
        prop_assert_eq!(
            query::tld_distribution(&merged),
            query::tld_distribution(&combined)
        );
        prop_assert_eq!(
            query::lifespan_histogram(&merged, 60),
            query::lifespan_histogram(&combined, 60)
        );
        prop_assert_eq!(
            query::total_nx_responses(&merged),
            query::total_nx_responses(&combined)
        );
        prop_assert_eq!(
            query::distinct_nx_names(&merged),
            query::distinct_nx_names(&combined)
        );
    }

    /// Merge order does not matter: reversing the provider list gives the
    /// same analysis results.
    #[test]
    fn merge_is_order_independent(providers in arb_providers()) {
        let forward = federation_of(&providers).merged();
        let reversed: Vec<Vec<Obs>> = providers.iter().rev().cloned().collect();
        let backward = federation_of(&reversed).merged();
        prop_assert_eq!(
            query::monthly_nx_series(&forward),
            query::monthly_nx_series(&backward)
        );
        prop_assert_eq!(
            query::tld_distribution(&forward),
            query::tld_distribution(&backward)
        );
        prop_assert_eq!(
            query::lifespan_histogram(&forward, 60),
            query::lifespan_histogram(&backward, 60)
        );
    }

    /// Coverage accounting stays consistent for any provider mix: name
    /// counts bound unique counts, and the union view matches the merged
    /// store.
    #[test]
    fn coverage_is_consistent(providers in arb_providers()) {
        let f = federation_of(&providers);
        let merged = f.merged();
        let union_names = query::distinct_nx_names(&merged);
        let cov = f.coverage();
        prop_assert_eq!(cov.len(), providers.len());
        let unique_total: u64 = cov.iter().map(|c| c.unique_names).sum();
        prop_assert!(unique_total <= union_names);
        for c in &cov {
            prop_assert!(c.unique_names <= c.nx_names);
            prop_assert!((0.0..=1.0).contains(&c.jaccard_vs_union));
            prop_assert!((0.0..=2.0 + 1e-9).contains(&c.tld_bias_l1));
        }
        let responses_total: u64 = cov.iter().map(|c| c.nx_responses).sum();
        prop_assert_eq!(responses_total, query::total_nx_responses(&merged));
    }
}

/// The degenerate shapes named in the issue, pinned deterministically on
/// top of the random sweep: an empty provider and single-observation
/// providers.
#[test]
fn empty_and_single_observation_shards_merge_exactly() {
    let providers: Vec<Vec<Obs>> = vec![
        vec![],
        vec![(0, 17_000, 0, 3)],
        vec![(1, 17_100, 1, 1)],
        vec![],
        vec![(0, 17_200, 2, 2)],
    ];
    let merged = federation_of(&providers).merged();
    let combined = combined_of(&providers);
    assert_eq!(
        query::monthly_nx_series(&merged),
        query::monthly_nx_series(&combined)
    );
    assert_eq!(
        query::tld_distribution(&merged),
        query::tld_distribution(&combined)
    );
    assert_eq!(
        query::lifespan_histogram(&merged, 60),
        query::lifespan_histogram(&combined, 60)
    );
    assert_eq!(query::distinct_nx_names(&merged), 2);
    assert_eq!(query::total_nx_responses(&merged), 6);
}
