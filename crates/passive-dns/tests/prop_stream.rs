//! Property tests for the streaming engine's parity contract: for ANY
//! observation stream, ANY arrival order (including adversarial
//! out-of-order and late schedules), ANY producer count, and at EVERY
//! admitted-row prefix, the streaming snapshot must be bit-identical to
//! the batch query engine (`query.rs`, the pinned oracle) run over a
//! `PassiveDb` holding exactly the rows the watermark admitted — with
//! every late row exactly accounted on the side tally.

use nxd_dns_wire::RCode;
use nxd_passive_dns::stream::WindowConfig;
use nxd_passive_dns::{
    collect_stream, query, Admission, PassiveDb, SieProducer, StreamConfig, StreamEngine,
    StreamSnapshot,
};
use proptest::prelude::*;

const TLDS: [&str; 5] = ["com", "net", "ru", "cn", "org"];

/// One generated observation: name index into a small pool, day, sensor,
/// NXDomain-or-NoError, count.
type Obs = (usize, u32, u16, bool, u32);

fn name_of(idx: usize) -> String {
    format!("name-{idx}.{}", TLDS[idx % TLDS.len()])
}

fn rcode_of(nx: bool) -> RCode {
    if nx {
        RCode::NxDomain
    } else {
        RCode::NoError
    }
}

/// Day spans wide enough (16,000..18,500 ≈ mid-2013..mid-2020) that a
/// small lateness tolerance makes shuffled schedules genuinely late-heavy.
fn arb_observations() -> impl Strategy<Value = Vec<Obs>> {
    proptest::collection::vec(
        (0usize..40, 16_000u32..18_500, 0u16..8, 0u32..10, 1u32..10).prop_map(
            // 80% NXDomain, 20% NoError.
            |(idx, day, sensor, nx_sel, count)| (idx, day, sensor, nx_sel < 8, count),
        ),
        0..120,
    )
}

fn arb_config() -> impl Strategy<Value = StreamConfig> {
    (1u32..120, 0u32..2_000, 1u64..50).prop_map(|(window_days, lateness, sample_n)| StreamConfig {
        window: WindowConfig {
            window_days,
            allowed_lateness_days: lateness,
        },
        sample_n,
        ..Default::default()
    })
}

/// Asserts the snapshot ≡ the batch oracle over `admitted` rows.
fn assert_parity(snap: &StreamSnapshot, admitted: &PassiveDb, config: &StreamConfig) {
    assert_eq!(snap.rcode_breakdown, query::rcode_breakdown(admitted));
    assert_eq!(snap.total_nx_responses, query::total_nx_responses(admitted));
    assert_eq!(snap.distinct_nx_names, query::distinct_nx_names(admitted));
    assert_eq!(snap.monthly_nx, query::monthly_nx_series(admitted));
    // Bit-identical floats: both sides fold through yearly_from_monthly.
    assert_eq!(
        snap.yearly_avg_monthly_nx,
        query::yearly_avg_monthly_nx(admitted)
    );
    assert_eq!(snap.nx_by_sensor, query::nx_by_sensor(admitted));
    assert_eq!(snap.tld_distribution, query::tld_distribution(admitted));
    assert_eq!(
        snap.sample_nx_names,
        query::sample_nx_name_strings(admitted, config.sample_n, config.sample_salt)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial arrival: parity holds at EVERY prefix of the stream, and the
    /// admitted/late split exactly partitions the offered rows.
    #[test]
    fn snapshot_matches_oracle_at_every_prefix(
        observations in arb_observations(),
        config in arb_config(),
    ) {
        let engine = StreamEngine::new(config);
        let mut admitted = PassiveDb::new();
        let mut late_rows = 0u64;
        let mut late_responses = 0u64;
        for &(idx, day, sensor, nx, count) in &observations {
            let name = name_of(idx);
            let rcode = rcode_of(nx);
            match engine.offer_row(&name, day, sensor, rcode, count) {
                Admission::Admitted => {
                    admitted.record_str(&name, day, sensor, rcode, count);
                }
                Admission::Late => {
                    late_rows += 1;
                    late_responses += u64::from(count);
                }
            }
            let snap = engine.snapshot();
            prop_assert_eq!(snap.admitted_rows, admitted.row_count() as u64);
            prop_assert_eq!(snap.late.rows, late_rows);
            prop_assert_eq!(snap.late.responses, late_responses);
            prop_assert_eq!(snap.offered_rows, snap.admitted_rows + snap.late.rows);
            assert_parity(&snap, &admitted, &config);
        }
    }

    /// An adversarial arrival order (descending by day — the worst case
    /// for a watermark) still satisfies parity and exact late accounting.
    #[test]
    fn descending_day_order_is_late_heavy_but_exact(
        observations in arb_observations(),
        lateness in 0u32..30,
    ) {
        let config = StreamConfig {
            window: WindowConfig { window_days: 30, allowed_lateness_days: lateness },
            ..Default::default()
        };
        let mut sorted = observations;
        sorted.sort_by_key(|obs| std::cmp::Reverse(obs.1));
        let engine = StreamEngine::new(config);
        let mut admitted = PassiveDb::new();
        let mut late = Vec::new();
        for &(idx, day, sensor, nx, count) in &sorted {
            let name = name_of(idx);
            let rcode = rcode_of(nx);
            match engine.offer_row(&name, day, sensor, rcode, count) {
                Admission::Admitted => { admitted.record_str(&name, day, sensor, rcode, count); }
                Admission::Late => late.push((day, u64::from(count), nx)),
            }
        }
        // Everything within `lateness` days of the max is admitted by
        // construction; anything admitted is within tolerance of the max
        // day seen before it.
        if let Some(&(_, max_day, _, _, _)) = sorted.first() {
            for &(day, _, _) in &late {
                prop_assert!(day < max_day.saturating_sub(lateness));
            }
        }
        let snap = engine.snapshot();
        prop_assert_eq!(snap.late.rows, late.len() as u64);
        prop_assert_eq!(snap.late.responses, late.iter().map(|&(_, c, _)| c).sum::<u64>());
        prop_assert_eq!(
            snap.late.nx_responses,
            late.iter().filter(|&&(_, _, nx)| nx).map(|&(_, c, _)| c).sum::<u64>()
        );
        assert_parity(&snap, &admitted, &config);
    }

    /// The full pipeline: producers → bounded channel → collect_stream.
    /// For 1/2/4/8 producers the engine snapshot must equal the oracle
    /// over the admitted store, and store+late must hold every offered row.
    #[test]
    fn collect_stream_parity_across_producer_counts(
        observations in arb_observations(),
        lateness in 0u32..2_000,
        capacity in 1usize..4,
    ) {
        let total_rows = observations.len();
        for producer_count in [1usize, 2, 4, 8] {
            let config = StreamConfig {
                window: WindowConfig { window_days: 30, allowed_lateness_days: lateness },
                ..Default::default()
            };
            let engine = StreamEngine::new(config);
            // Round-robin rows across producers; each producer submits its
            // rows in several small batches to exercise interleaving.
            let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = (0..producer_count)
                .map(|p| {
                    let rows: Vec<Obs> = observations
                        .iter()
                        .copied()
                        .skip(p)
                        .step_by(producer_count)
                        .collect();
                    Box::new(move |producer: SieProducer| {
                        for chunk in rows.chunks(7) {
                            let mut shard = PassiveDb::new();
                            for &(idx, day, sensor, nx, count) in chunk {
                                shard.record_str(&name_of(idx), day, sensor, rcode_of(nx), count);
                            }
                            producer.submit(shard);
                        }
                    }) as Box<dyn FnOnce(SieProducer) + Send>
                })
                .collect();
            let outcome = collect_stream(producers, capacity, 4, &engine).expect("no panic");
            let snap = engine.snapshot();

            // Nothing dropped: admitted + late == offered.
            prop_assert_eq!(
                outcome.store.row_count() + outcome.late.row_count(),
                total_rows
            );
            prop_assert_eq!(snap.offered_rows, total_rows as u64);
            prop_assert_eq!(snap.admitted_rows, outcome.store.row_count() as u64);
            prop_assert_eq!(snap.late.rows, outcome.late.row_count() as u64);

            // Parity: snapshot ≡ oracle over the admitted rows. The store
            // is sharded; serialize it back to one PassiveDb for querying.
            let admitted = outcome.store.to_serial();
            assert_parity(&snap, &admitted, &config);

            // The sharded store's own query surface agrees too.
            prop_assert_eq!(snap.total_nx_responses, outcome.store.total_nx_responses());
            prop_assert_eq!(snap.distinct_nx_names, outcome.store.distinct_nx_names());
            prop_assert_eq!(snap.rcode_breakdown, outcome.store.rcode_breakdown());
        }
    }
}
