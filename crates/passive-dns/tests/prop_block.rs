//! Property tests for the compressed columnar layout: for ANY observation
//! stream and ANY block size, a store made of sealed compressed blocks
//! must be indistinguishable from the flat uncompressed layout — row
//! iteration, random access, and every query family bit-identical — and
//! the summary-accelerated `scan` kernels must agree with the scan-based
//! `query` engine on both layouts.

use std::collections::HashMap;

use nxd_dns_wire::RCode;
use nxd_passive_dns::{query, scan, PassiveDb, ShardedStore};
use proptest::prelude::*;

const TLDS: [&str; 5] = ["com", "net", "ru", "cn", "org"];

/// One generated observation: name index into a small pool, day, sensor,
/// NXDomain-or-NoError, count.
type Obs = (usize, u32, u16, bool, u32);

fn name_of(idx: usize) -> String {
    format!("name-{idx}.{}", TLDS[idx % TLDS.len()])
}

fn build(observations: &[Obs], block_rows: usize) -> PassiveDb {
    let mut db = PassiveDb::with_block_rows(block_rows);
    for &(idx, day, sensor, nx, count) in observations {
        let rcode = if nx { RCode::NxDomain } else { RCode::NoError };
        db.record_str(&name_of(idx), day, sensor, rcode, count);
    }
    db
}

fn flat(observations: &[Obs]) -> PassiveDb {
    let mut db = PassiveDb::uncompressed();
    for &(idx, day, sensor, nx, count) in observations {
        let rcode = if nx { RCode::NxDomain } else { RCode::NoError };
        db.record_str(&name_of(idx), day, sensor, rcode, count);
    }
    db
}

fn arb_observations() -> impl Strategy<Value = Vec<Obs>> {
    proptest::collection::vec(
        (0usize..40, 16_000u32..18_500, 0u16..8, 0u32..10, 1u32..10).prop_map(
            // 80% NXDomain, 20% NoError.
            |(idx, day, sensor, nx_sel, count)| (idx, day, sensor, nx_sel < 8, count),
        ),
        0..120,
    )
}

const BLOCK_SIZES: [usize; 4] = [1, 3, 7, 16];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Row iteration and random access see through compression: sealed
    /// blocks decode to exactly the rows that went in, in append order,
    /// for any block size (including 1-row blocks and an all-sealed store).
    #[test]
    fn rows_survive_sealing(observations in arb_observations()) {
        let reference = flat(&observations);
        let expect: Vec<_> = reference.rows().collect();
        for block_rows in BLOCK_SIZES {
            let db = build(&observations, block_rows);
            prop_assert_eq!(db.row_count(), reference.row_count());
            let got: Vec<_> = db.rows().collect();
            prop_assert_eq!(&got, &expect, "block_rows={}", block_rows);
            for i in 0..db.row_count() {
                prop_assert_eq!(db.row(i), reference.row(i), "row {}", i);
            }
            // Compression accounting: logical size is layout-independent,
            // resident size never exceeds it by more than the per-block
            // encoding headers on these tiny blocks.
            prop_assert_eq!(db.row_bytes(), reference.row_bytes());
            prop_assert_eq!(reference.compressed_bytes(), reference.row_bytes());
        }
    }

    /// Every query family is bit-identical across layouts — the compressed
    /// store drop-in-replaces the flat one under the scan-based engine.
    #[test]
    fn query_engine_is_layout_blind(observations in arb_observations()) {
        let reference = flat(&observations);
        let panel_ids: HashMap<_, _> = (0..40usize)
            .filter_map(|i| reference.interner().get(&name_of(i)).map(|id| (id, 17_000 + i as u32)))
            .collect();
        for block_rows in BLOCK_SIZES {
            let db = build(&observations, block_rows);
            // Interned ids are assigned in first-appearance order on both
            // sides, so id-keyed panels transfer directly.
            prop_assert_eq!(query::total_nx_responses(&db), query::total_nx_responses(&reference));
            prop_assert_eq!(
                query::total_responses(&db, RCode::NoError),
                query::total_responses(&reference, RCode::NoError)
            );
            prop_assert_eq!(query::distinct_nx_names(&db), query::distinct_nx_names(&reference));
            prop_assert_eq!(query::monthly_nx_series(&db), query::monthly_nx_series(&reference));
            prop_assert_eq!(
                query::yearly_avg_monthly_nx(&db),
                query::yearly_avg_monthly_nx(&reference)
            );
            prop_assert_eq!(query::tld_distribution(&db), query::tld_distribution(&reference));
            prop_assert_eq!(
                query::lifespan_histogram(&db, 60),
                query::lifespan_histogram(&reference, 60)
            );
            prop_assert_eq!(
                query::expiry_aligned_series(&db, &panel_ids, 30, 60),
                query::expiry_aligned_series(&reference, &panel_ids, 30, 60)
            );
            prop_assert_eq!(query::long_lived_nx(&db, 365), query::long_lived_nx(&reference, 365));
            prop_assert_eq!(query::rcode_breakdown(&db), query::rcode_breakdown(&reference));
            prop_assert_eq!(query::nxdomain_share(&db), query::nxdomain_share(&reference));
            prop_assert_eq!(query::nx_by_sensor(&db), query::nx_by_sensor(&reference));
            prop_assert_eq!(
                query::sample_nx_name_strings(&db, 3, 0xA5),
                query::sample_nx_name_strings(&reference, 3, 0xA5)
            );
        }
    }

    /// The summary-accelerated scan kernels agree with the scan-based query
    /// engine on both layouts (on compressed stores they fold pre-built
    /// block summaries; on flat stores they scan the tail).
    #[test]
    fn scan_kernels_match_query_engine(observations in arb_observations()) {
        let reference = flat(&observations);
        for db in BLOCK_SIZES
            .iter()
            .map(|&b| build(&observations, b))
            .chain(std::iter::once(flat(&observations)))
        {
            prop_assert_eq!(
                scan::total_responses(&db, RCode::NxDomain),
                query::total_nx_responses(&reference)
            );
            prop_assert_eq!(scan::rcode_breakdown(&db), query::rcode_breakdown(&reference));
            prop_assert_eq!(scan::monthly_nx_series(&db), query::monthly_nx_series(&reference));
            prop_assert_eq!(scan::nx_by_sensor(&db), query::nx_by_sensor(&reference));
            prop_assert_eq!(scan::tld_distribution(&db), query::tld_distribution(&reference));
            prop_assert_eq!(
                scan::lifespan_histogram(&db, 60),
                query::lifespan_histogram(&reference, 60)
            );
            let panel: Vec<_> = db
                .nx_names()
                .map(|(id, agg)| (id, agg.first_nx_day + 5))
                .collect();
            let panel_map: HashMap<_, _> = panel.iter().copied().collect();
            // De-normalize the query series back to raw totals (an empty
            // panel yields an empty series, i.e. all-zero totals).
            let expect: Vec<u64> = if panel_map.is_empty() {
                vec![0; 91]
            } else {
                query::expiry_aligned_series(&db, &panel_map, 30, 60)
                    .iter()
                    .map(|&(_, v)| (v * panel_map.len() as f64).round() as u64)
                    .collect()
            };
            prop_assert_eq!(scan::expiry_aligned_totals(&db, &panel, 30, 60), expect);
        }
    }

    /// The full sharded engine over compressed shards matches the serial
    /// uncompressed engine for every shard count — the end-to-end BENCH_6
    /// correctness claim.
    #[test]
    fn compressed_sharded_engine_matches_flat_serial(observations in arb_observations()) {
        let reference = flat(&observations);
        let panel_strings: HashMap<String, u32> = (0..40usize)
            .filter(|&i| reference.interner().get(&name_of(i)).is_some())
            .map(|i| (name_of(i), 17_000 + i as u32))
            .collect();
        let panel_ids: HashMap<_, _> = (0..40usize)
            .filter_map(|i| reference.interner().get(&name_of(i)).map(|id| (id, 17_000 + i as u32)))
            .collect();
        for shards in [1usize, 2, 4, 8] {
            let mut store = ShardedStore::with_block_rows(shards, 5);
            store.merge_db(&reference);
            prop_assert_eq!(store.total_nx_responses(), query::total_nx_responses(&reference));
            prop_assert_eq!(store.distinct_nx_names(), query::distinct_nx_names(&reference));
            prop_assert_eq!(store.monthly_nx_series(), query::monthly_nx_series(&reference));
            prop_assert_eq!(store.tld_distribution(), query::tld_distribution(&reference));
            prop_assert_eq!(
                store.lifespan_histogram(60),
                query::lifespan_histogram(&reference, 60)
            );
            prop_assert_eq!(
                store.expiry_aligned_series(&panel_strings, 30, 60),
                query::expiry_aligned_series(&reference, &panel_ids, 30, 60)
            );
            prop_assert_eq!(store.rcode_breakdown(), query::rcode_breakdown(&reference));
            prop_assert_eq!(store.nx_by_sensor(), query::nx_by_sensor(&reference));
            prop_assert_eq!(store.nxdomain_share(), query::nxdomain_share(&reference));
        }
    }
}
