//! Property tests for the sharded parallel engine: for ANY observation
//! stream and ANY shard count, every query family must return results
//! bit-identical to the serial engine — the invariant the whole scale
//! pipeline rests on.

use std::collections::HashMap;

use nxd_dns_wire::RCode;
use nxd_passive_dns::{query, shard_of, PassiveDb, ShardedStore};
use proptest::prelude::*;

const TLDS: [&str; 5] = ["com", "net", "ru", "cn", "org"];

/// One generated observation: name index into a small pool, day, sensor,
/// NXDomain-or-NoError, count.
type Obs = (usize, u32, u16, bool, u32);

fn name_of(idx: usize) -> String {
    format!("name-{idx}.{}", TLDS[idx % TLDS.len()])
}

fn db_of(observations: &[Obs]) -> PassiveDb {
    let mut db = PassiveDb::new();
    for &(idx, day, sensor, nx, count) in observations {
        let rcode = if nx { RCode::NxDomain } else { RCode::NoError };
        db.record_str(&name_of(idx), day, sensor, rcode, count);
    }
    db
}

fn arb_observations() -> impl Strategy<Value = Vec<Obs>> {
    proptest::collection::vec(
        (0usize..40, 16_000u32..18_500, 0u16..8, 0u32..10, 1u32..10).prop_map(
            // 80% NXDomain, 20% NoError.
            |(idx, day, sensor, nx_sel, count)| (idx, day, sensor, nx_sel < 8, count),
        ),
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar queries agree for every shard count.
    #[test]
    fn scalars_match_serial(observations in arb_observations()) {
        let db = db_of(&observations);
        for shards in [1usize, 2, 4, 8] {
            let store = ShardedStore::from_db(&db, shards);
            prop_assert_eq!(store.row_count(), db.row_count());
            prop_assert_eq!(store.distinct_names(), db.distinct_names());
            prop_assert_eq!(store.total_nx_responses(), query::total_nx_responses(&db));
            prop_assert_eq!(store.distinct_nx_names(), query::distinct_nx_names(&db));
            prop_assert_eq!(store.long_lived_nx(365), query::long_lived_nx(&db, 365));
            prop_assert_eq!(store.nxdomain_share(), query::nxdomain_share(&db));
        }
    }

    /// Keyed series (trend, rcode, per-sensor) agree for every shard count.
    #[test]
    fn series_match_serial(observations in arb_observations()) {
        let db = db_of(&observations);
        for shards in [1usize, 2, 4, 8] {
            let store = ShardedStore::from_db(&db, shards);
            prop_assert_eq!(store.monthly_nx_series(), query::monthly_nx_series(&db));
            prop_assert_eq!(
                store.yearly_avg_monthly_nx(),
                query::yearly_avg_monthly_nx(&db)
            );
            prop_assert_eq!(store.rcode_breakdown(), query::rcode_breakdown(&db));
            prop_assert_eq!(store.nx_by_sensor(), query::nx_by_sensor(&db));
        }
    }

    /// The figure queries — TLD distribution (Fig. 4), lifespan decay
    /// (Fig. 5), expiry alignment (Fig. 6) — agree, including tie-breaking
    /// order and f64 bit patterns.
    #[test]
    fn figures_match_serial(observations in arb_observations()) {
        let db = db_of(&observations);
        // The expiry panel: every pool name present in the store, pinned to
        // a mid-era day.
        let panel_ids: HashMap<_, _> = (0..40usize)
            .filter_map(|i| db.interner().get(&name_of(i)).map(|id| (id, 17_000 + i as u32)))
            .collect();
        let panel_strings: HashMap<String, u32> = (0..40usize)
            .filter(|&i| db.interner().get(&name_of(i)).is_some())
            .map(|i| (name_of(i), 17_000 + i as u32))
            .collect();
        for shards in [1usize, 2, 4, 8] {
            let store = ShardedStore::from_db(&db, shards);
            prop_assert_eq!(store.tld_distribution(), query::tld_distribution(&db));
            prop_assert_eq!(store.lifespan_histogram(60), query::lifespan_histogram(&db, 60));
            prop_assert_eq!(
                store.expiry_aligned_series(&panel_strings, 30, 60),
                query::expiry_aligned_series(&db, &panel_ids, 30, 60)
            );
            prop_assert_eq!(
                store.sample_nx_names(3, 0xA5),
                query::sample_nx_name_strings(&db, 3, 0xA5)
            );
        }
    }

    /// Structural invariants: every row lives in its name's home shard, and
    /// round-tripping through `to_serial` preserves all aggregates.
    #[test]
    fn rows_live_in_their_home_shard(observations in arb_observations()) {
        let db = db_of(&observations);
        for shards in [2usize, 4, 8] {
            let store = ShardedStore::from_db(&db, shards);
            for (idx, shard) in store.shards().iter().enumerate() {
                for obs in shard.rows() {
                    let name = shard.interner().resolve(obs.name);
                    prop_assert_eq!(shard_of(name, shards), idx, "misrouted {}", name);
                }
            }
            let round_trip = store.to_serial();
            prop_assert_eq!(round_trip.row_count(), db.row_count());
            prop_assert_eq!(
                query::tld_distribution(&round_trip),
                query::tld_distribution(&db)
            );
            prop_assert_eq!(
                query::monthly_nx_series(&round_trip),
                query::monthly_nx_series(&db)
            );
        }
    }

    /// Ingest equivalence: routing through `record_str` directly equals
    /// partitioning an already-built serial store.
    #[test]
    fn direct_ingest_equals_partitioning(observations in arb_observations()) {
        let db = db_of(&observations);
        let mut direct = ShardedStore::new(4);
        for &(idx, day, sensor, nx, count) in &observations {
            let rcode = if nx { RCode::NxDomain } else { RCode::NoError };
            direct.record_str(&name_of(idx), day, sensor, rcode, count);
        }
        let partitioned = ShardedStore::from_db(&db, 4);
        prop_assert_eq!(direct.row_count(), partitioned.row_count());
        prop_assert_eq!(direct.tld_distribution(), partitioned.tld_distribution());
        prop_assert_eq!(direct.monthly_nx_series(), partitioned.monthly_nx_series());
        prop_assert_eq!(
            direct.lifespan_histogram(60),
            partitioned.lifespan_histogram(60)
        );
    }
}
