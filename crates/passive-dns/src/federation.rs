//! Multi-provider federation — the paper's §7 "Database Coverage" plan:
//! complementing Farsight with CIRCL.lu, DNSIQ, Mnemonic, and regional
//! databases like 114DNS, and quantifying the contributor bias a single
//! provider introduces.
//!
//! A [`Federation`] holds independently collected [`PassiveDb`]s and
//! answers the coverage questions: how much does each provider see, how
//! much is unique to it, and how far its TLD mix deviates from the merged
//! view (the geolocation-bias diagnostic the paper wishes it could run).

use std::collections::HashSet;

use crate::store::PassiveDb;

/// Per-provider coverage statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    pub provider: String,
    /// Distinct NXDomain names this provider observed.
    pub nx_names: u64,
    /// NXDOMAIN responses this provider observed.
    pub nx_responses: u64,
    /// Names no other provider observed.
    pub unique_names: u64,
    /// Jaccard similarity of this provider's name set vs the union.
    pub jaccard_vs_union: f64,
    /// L1 distance between this provider's TLD share vector and the merged
    /// federation's (0 = identical mix, 2 = disjoint).
    pub tld_bias_l1: f64,
}

/// A federation of named passive-DNS providers.
#[derive(Default)]
pub struct Federation {
    providers: Vec<(String, PassiveDb)>,
}

impl Federation {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a provider's database.
    pub fn add_provider(&mut self, name: &str, db: PassiveDb) {
        self.providers.push((name.to_string(), db));
    }

    /// Splits one database into providers by sensor-id range — the
    /// simulation's stand-in for independent collection networks (each
    /// sensor contributes to exactly one provider).
    pub fn from_sensor_ranges(
        db: &PassiveDb,
        ranges: &[(&str, std::ops::Range<u16>)],
    ) -> Federation {
        let mut dbs: Vec<PassiveDb> = ranges.iter().map(|_| PassiveDb::new()).collect();
        for obs in db.rows() {
            if let Some(idx) = ranges.iter().position(|(_, r)| r.contains(&obs.sensor)) {
                let name = db.interner().resolve(obs.name);
                let id = dbs[idx].interner_mut().intern_str(name);
                dbs[idx].append(crate::store::Observation { name: id, ..obs });
            }
        }
        let mut f = Federation::new();
        for ((name, _), shard) in ranges.iter().zip(dbs) {
            f.add_provider(name, shard);
        }
        f
    }

    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    pub fn providers(&self) -> impl Iterator<Item = &str> {
        self.providers.iter().map(|(n, _)| n.as_str())
    }

    /// Merges every provider into one database (re-interning names).
    pub fn merged(&self) -> PassiveDb {
        let mut out = PassiveDb::new();
        for (_, db) in &self.providers {
            out.merge(db);
        }
        out
    }

    /// Name sets per provider (NXDomain names only), as strings.
    fn name_sets(&self) -> Vec<HashSet<String>> {
        self.providers
            .iter()
            .map(|(_, db)| {
                db.nx_names()
                    .map(|(id, _)| db.interner().resolve(id).to_string())
                    .collect()
            })
            .collect()
    }

    /// TLD share vector of a database (sorted by TLD name for stable
    /// comparison), as `(tld, share)`.
    fn tld_shares(db: &PassiveDb) -> Vec<(String, f64)> {
        let dist = crate::query::tld_distribution(db);
        let total: u64 = dist.iter().map(|t| t.nx_names).sum();
        if total == 0 {
            return Vec::new();
        }
        let mut shares: Vec<(String, f64)> = dist
            .into_iter()
            .map(|t| (t.tld, t.nx_names as f64 / total as f64))
            .collect();
        shares.sort_by(|a, b| a.0.cmp(&b.0));
        shares
    }

    fn l1_distance(a: &[(String, f64)], b: &[(String, f64)]) -> f64 {
        let mut dist = 0.0;
        let mut i = 0;
        let mut j = 0;
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) if x.0 == y.0 => {
                    dist += (x.1 - y.1).abs();
                    i += 1;
                    j += 1;
                }
                (Some(x), Some(y)) if x.0 < y.0 => {
                    dist += x.1;
                    i += 1;
                }
                (Some(_), Some(_)) => {
                    dist += b[j].1;
                    j += 1;
                }
                (Some(x), None) => {
                    dist += x.1;
                    i += 1;
                }
                (None, Some(y)) => {
                    dist += y.1;
                    j += 1;
                }
                (None, None) => break,
            }
        }
        dist
    }

    /// Computes the full coverage matrix.
    pub fn coverage(&self) -> Vec<Coverage> {
        let sets = self.name_sets();
        let union: HashSet<&String> = sets.iter().flatten().collect();
        let merged = self.merged();
        let merged_shares = Self::tld_shares(&merged);

        self.providers
            .iter()
            .enumerate()
            .map(|(i, (name, db))| {
                let mine = &sets[i];
                let unique = mine
                    .iter()
                    .filter(|n| {
                        sets.iter()
                            .enumerate()
                            .all(|(j, s)| j == i || !s.contains(*n))
                    })
                    .count() as u64;
                let jaccard = if union.is_empty() {
                    1.0
                } else {
                    mine.len() as f64 / union.len() as f64
                };
                Coverage {
                    provider: name.clone(),
                    nx_names: mine.len() as u64,
                    nx_responses: crate::query::total_nx_responses(db),
                    unique_names: unique,
                    jaccard_vs_union: jaccard,
                    tld_bias_l1: Self::l1_distance(&Self::tld_shares(db), &merged_shares),
                }
            })
            .collect()
    }

    /// Names observed by *every* provider (the high-confidence core).
    pub fn consensus_names(&self) -> Vec<String> {
        let sets = self.name_sets();
        let Some(first) = sets.first() else {
            return Vec::new();
        };
        let mut out: Vec<String> = first
            .iter()
            .filter(|n| sets.iter().all(|s| s.contains(*n)))
            .cloned()
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::RCode;

    fn db_with(names: &[&str]) -> PassiveDb {
        let mut db = PassiveDb::new();
        for (i, n) in names.iter().enumerate() {
            db.record_str(n, 17_000 + i as u32, 0, RCode::NxDomain, 2);
        }
        db
    }

    fn federation() -> Federation {
        let mut f = Federation::new();
        f.add_provider("farsight", db_with(&["a.com", "b.com", "c.ru", "d.cn"]));
        f.add_provider("circl", db_with(&["a.com", "b.com", "e.de"]));
        f.add_provider("114dns", db_with(&["d.cn", "f.cn", "g.cn"]));
        f
    }

    #[test]
    fn merged_covers_union() {
        let f = federation();
        let merged = f.merged();
        assert_eq!(crate::query::distinct_nx_names(&merged), 7);
        // a.com observed by two providers: counts add.
        assert_eq!(merged.aggregate_of("a.com").unwrap().nx_queries, 4);
    }

    #[test]
    fn coverage_counts() {
        let f = federation();
        let cov = f.coverage();
        assert_eq!(cov.len(), 3);
        let farsight = &cov[0];
        assert_eq!(farsight.provider, "farsight");
        assert_eq!(farsight.nx_names, 4);
        // a/b shared with circl, d.cn shared with 114dns → only c.ru unique.
        assert_eq!(farsight.unique_names, 1);
        assert!((farsight.jaccard_vs_union - 4.0 / 7.0).abs() < 1e-12);
        let regional = &cov[2];
        assert_eq!(regional.unique_names, 2); // f.cn, g.cn
    }

    #[test]
    fn regional_provider_shows_tld_bias() {
        let f = federation();
        let cov = f.coverage();
        let farsight_bias = cov[0].tld_bias_l1;
        let regional_bias = cov[2].tld_bias_l1;
        assert!(
            regional_bias > farsight_bias,
            "114dns (all .cn) must deviate more: {regional_bias} vs {farsight_bias}"
        );
    }

    #[test]
    fn consensus_requires_all_providers() {
        let f = federation();
        assert!(f.consensus_names().is_empty(), "no name is in all three");
        let mut f2 = Federation::new();
        f2.add_provider("x", db_with(&["shared.com", "only-x.com"]));
        f2.add_provider("y", db_with(&["shared.com"]));
        assert_eq!(f2.consensus_names(), vec!["shared.com".to_string()]);
    }

    #[test]
    fn empty_federation() {
        let f = Federation::new();
        assert_eq!(f.provider_count(), 0);
        assert!(f.coverage().is_empty());
        assert!(f.consensus_names().is_empty());
        assert_eq!(crate::query::distinct_nx_names(&f.merged()), 0);
    }

    #[test]
    fn l1_distance_bounds() {
        let a = vec![("com".to_string(), 1.0)];
        let b = vec![("ru".to_string(), 1.0)];
        assert!((Federation::l1_distance(&a, &b) - 2.0).abs() < 1e-12);
        assert_eq!(Federation::l1_distance(&a, &a), 0.0);
    }
}
