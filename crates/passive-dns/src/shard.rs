//! The sharded, parallel passive-DNS engine.
//!
//! [`ShardedStore`] partitions observations across N independent
//! [`PassiveDb`] shards by qname hash ([`crate::hash::shard_of`]). Because
//! *every row of a name lands in exactly one shard*, per-name aggregates
//! (first/last NX day, per-name query totals) are complete within their
//! shard, so every analysis of the paper's §4 scale leg decomposes into
//! independent per-shard scans plus an order-independent merge:
//!
//! * scalar totals merge by addition;
//! * keyed series (monthly trend, TLD distribution, rcode/sensor
//!   breakdowns) merge by summing values under equal keys;
//! * name-level results (distinct counts, samples, lifespan name counts)
//!   merge by disjoint union — the shard invariant guarantees no name is
//!   counted twice.
//!
//! The parallel executor fans each query out across scoped worker threads
//! (one per shard) and merges partials in shard order; since every merge is
//! commutative and associative over the partials, results are bit-identical
//! to the serial engine for any shard count — property-tested in
//! `tests/prop_shard.rs`.
//!
//! Each shard keeps its own intern tables and telemetry cells;
//! [`ShardedStore::attach_metrics`] labels them `shard="i"` so they roll up
//! through `nxd-telemetry`'s snapshot/merge algebra.

use std::collections::{BTreeMap, HashMap}; // nxd-lint: allow(NXL001, reason="HashMap is only the panel side-input type below; all merge state is BTreeMap")

use crossbeam::channel::bounded;
use nxd_dns_wire::{Name, RCode};
use nxd_telemetry::Registry;

use crate::hash::shard_of;
use crate::query::{self, LifespanBucket, TldStat};
use crate::scan;
use crate::store::{Observation, PassiveDb};

/// Rows per shard below which extra shards stop paying for themselves:
/// thread spawn/merge overhead dominates sub-256Ki-row scans (4 compressed
/// blocks). Tuned against the BENCH_4/BENCH_6 suites; see DESIGN §10.
const ROWS_PER_SHARD_TARGET: usize = 262_144;

/// Picks a shard count for a world of `rows` observations: one shard per
/// [`ROWS_PER_SHARD_TARGET`] rows, clamped to `[1, max_parallelism]` (and
/// `max_parallelism` itself clamped to the 1..=8 range the parity suites
/// exercise). Small worlds get 1 shard — the fan-out executor runs a single
/// shard inline, so auto-sharded small inputs behave exactly like the
/// serial engine instead of paying thread overhead.
#[must_use]
pub fn auto_shard_count(rows: usize, max_parallelism: usize) -> usize {
    (rows / ROWS_PER_SHARD_TARGET).clamp(1, max_parallelism.clamp(1, 8))
}

/// [`auto_shard_count`] against the machine's available parallelism.
#[must_use]
pub fn auto_shard_count_here(rows: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    auto_shard_count(rows, cores)
}

/// A hash-partitioned set of [`PassiveDb`] shards with a parallel query
/// executor.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<PassiveDb>,
}

impl ShardedStore {
    /// An empty store with `shards` partitions (clamped to at least 1),
    /// each a compressed-block [`PassiveDb`].
    pub fn new(shards: usize) -> Self {
        ShardedStore {
            shards: (0..shards.max(1)).map(|_| PassiveDb::new()).collect(),
        }
    }

    /// An empty store whose shards seal compressed blocks every
    /// `block_rows` rows — the knob the layout-equivalence property tests
    /// turn to force many tiny blocks.
    pub fn with_block_rows(shards: usize, block_rows: usize) -> Self {
        ShardedStore {
            shards: (0..shards.max(1))
                .map(|_| PassiveDb::with_block_rows(block_rows))
                .collect(),
        }
    }

    /// Re-partitions an existing serial database into `shards` partitions.
    pub fn from_db(db: &PassiveDb, shards: usize) -> Self {
        let mut out = Self::new(shards);
        out.merge_db(db);
        out
    }

    /// Re-partitions a serial database across [`auto_shard_count`] shards.
    pub fn from_db_auto(db: &PassiveDb, max_parallelism: usize) -> Self {
        Self::from_db(db, auto_shard_count(db.row_count(), max_parallelism))
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The individual shard stores, in shard order.
    pub fn shards(&self) -> &[PassiveDb] {
        &self.shards
    }

    /// The shard index a qname routes to.
    pub fn shard_of(&self, name: &str) -> usize {
        shard_of(name, self.shards.len())
    }

    /// Total rows across all shards.
    pub fn row_count(&self) -> usize {
        self.shards.iter().map(PassiveDb::row_count).sum()
    }

    /// Total distinct names across all shards. Exact, not approximate:
    /// hash partitioning makes the per-shard name sets disjoint.
    pub fn distinct_names(&self) -> usize {
        self.shards.iter().map(PassiveDb::distinct_names).sum()
    }

    /// Logical (uncompressed-layout) bytes of row storage across shards.
    pub fn row_bytes(&self) -> usize {
        self.shards.iter().map(PassiveDb::row_bytes).sum()
    }

    /// Resident bytes of row storage across shards: sealed compressed
    /// blocks plus uncompressed tails. `compressed_bytes() / row_bytes()`
    /// is the live compression ratio the byte gauges export.
    pub fn compressed_bytes(&self) -> usize {
        self.shards.iter().map(PassiveDb::compressed_bytes).sum()
    }

    /// Interns a name into its home shard and appends an observation.
    pub fn record(&mut self, name: &Name, day: u32, sensor: u16, rcode: RCode, count: u32) {
        self.record_str(name.as_str(), day, sensor, rcode, count);
    }

    /// Interns a pre-normalized name string into its home shard and appends
    /// an observation.
    pub fn record_str(&mut self, name: &str, day: u32, sensor: u16, rcode: RCode, count: u32) {
        let shard = self.shard_of(name);
        self.shards[shard].record_str(name, day, sensor, rcode, count);
    }

    /// Routes every row of a serial database into its home shard
    /// (re-interning by string). This is the batch-ingest path: SIE
    /// producer stores are distributed here instead of being collapsed
    /// into one serial store.
    pub fn merge_db(&mut self, other: &PassiveDb) {
        for obs in other.rows() {
            let name = other.interner().resolve(obs.name);
            let shard = self.shard_of(name);
            let id = self.shards[shard].interner_mut().intern_str(name);
            self.shards[shard].append(Observation { name: id, ..obs });
        }
    }

    /// Collapses the shards back into one serial database, merging in
    /// shard order (deterministic for a given shard count).
    pub fn to_serial(&self) -> PassiveDb {
        let mut out = PassiveDb::new();
        for shard in &self.shards {
            out.merge(shard);
        }
        out
    }

    /// The aggregate for a name, served by its home shard.
    pub fn aggregate_of(&self, name: &str) -> Option<&crate::store::NameAggregate> {
        self.shards[self.shard_of(name)].aggregate_of(name)
    }

    /// Attaches every shard's telemetry to `registry` with a `shard="i"`
    /// label, so per-shard `passive_*` series coexist and roll up via
    /// [`nxd_telemetry::Snapshot::counter_total`] /
    /// [`nxd_telemetry::Snapshot::histogram_total`].
    pub fn attach_metrics(&mut self, registry: &Registry) {
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let label = idx.to_string();
            shard.attach_metrics_labeled(registry, &[("shard", label.as_str())]);
        }
    }

    /// Runs `f` against every shard on scoped worker threads (one per
    /// shard) and returns the partial results in shard order. A single
    /// shard runs inline.
    ///
    /// This is the building block the parallel query methods below are made
    /// of, public so higher layers (e.g. the fused origin pipeline in
    /// `nxd-core`) can fan their own scans out over the same partitions.
    /// The explicit `'s` lifetime lets partials borrow from the shards —
    /// e.g. return interner-resolved `&'s str` names — instead of cloning.
    ///
    /// # Panics
    /// Propagates worker panics (queries over a well-formed store do not
    /// panic).
    pub fn par_map<'s, R, F>(&'s self, f: F) -> Vec<R>
    where
        F: Fn(&'s PassiveDb) -> R + Sync,
        R: Send,
    {
        if self.shards.len() == 1 {
            return vec![f(&self.shards[0])];
        }
        let (tx, rx) = bounded::<(usize, R)>(self.shards.len());
        let partials = crossbeam::thread::scope(|scope| {
            for (idx, shard) in self.shards.iter().enumerate() {
                let tx = tx.clone();
                let f = &f;
                scope.spawn(move |_| {
                    tx.send((idx, f(shard))).expect("query collector hung up");
                });
            }
            drop(tx);
            let mut out: Vec<Option<R>> = (0..self.shards.len()).map(|_| None).collect();
            for (idx, partial) in rx {
                out[idx] = Some(partial);
            }
            out
        })
        .expect("sharded query worker panicked");
        partials
            .into_iter()
            .map(|p| p.expect("worker exited without a partial"))
            .collect()
    }

    // ---- parallel query executor ---------------------------------------
    //
    // Each method fans the summary-accelerated `crate::scan` kernel (or,
    // for aggregate-index scans, the matching `crate::query` function) out
    // across the shards and merges the partials with a deterministic,
    // order-independent reduction. The scan kernels are property-tested
    // bit-identical to their `query` twins, so the merge algebra — and
    // therefore parity with the serial engine — is unchanged.

    /// Total responses carrying `rcode` (parallel [`scan::total_responses`]).
    pub fn total_responses(&self, rcode: RCode) -> u64 {
        self.par_map(|db| scan::total_responses(db, rcode))
            .into_iter()
            .sum()
    }

    /// Total NXDOMAIN responses (parallel [`query::total_nx_responses`]).
    pub fn total_nx_responses(&self) -> u64 {
        self.total_responses(RCode::NxDomain)
    }

    /// Distinct names that ever received an NXDOMAIN response (parallel
    /// [`query::distinct_nx_names`]).
    pub fn distinct_nx_names(&self) -> u64 {
        self.par_map(query::distinct_nx_names).into_iter().sum()
    }

    /// NXDOMAIN responses per calendar month (parallel
    /// [`scan::monthly_nx_series`]).
    pub fn monthly_nx_series(&self) -> Vec<(i64, u64)> {
        let mut merged: BTreeMap<i64, u64> = BTreeMap::new();
        for partial in self.par_map(scan::monthly_nx_series) {
            for (month, responses) in partial {
                *merged.entry(month).or_insert(0) += responses;
            }
        }
        merged.into_iter().collect()
    }

    /// Fig. 3's per-year monthly averages (parallel
    /// [`query::yearly_avg_monthly_nx`]).
    pub fn yearly_avg_monthly_nx(&self) -> Vec<(i32, f64)> {
        query::yearly_from_monthly(&self.monthly_nx_series())
    }

    /// Fig. 4's TLD distribution (parallel [`scan::tld_distribution`]).
    pub fn tld_distribution(&self) -> Vec<TldStat> {
        let mut merged: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for partial in self.par_map(scan::tld_distribution) {
            for stat in partial {
                let entry = merged.entry(stat.tld).or_insert((0, 0));
                entry.0 += stat.nx_names;
                entry.1 += stat.nx_queries;
            }
        }
        let mut out: Vec<TldStat> = merged
            .into_iter()
            .map(|(tld, (nx_names, nx_queries))| TldStat {
                tld,
                nx_names,
                nx_queries,
            })
            .collect();
        out.sort_by(|a, b| b.nx_names.cmp(&a.nx_names).then_with(|| a.tld.cmp(&b.tld)));
        out
    }

    /// Deterministic 1-in-`n` sample of NXDomain names, as sorted strings
    /// (parallel [`query::sample_nx_name_strings`]). Membership is a pure
    /// hash of the name, so the sample is identical for any shard count.
    pub fn sample_nx_names(&self, n: u64, salt: u64) -> Vec<String> {
        let mut out: Vec<String> = self
            .par_map(|db| query::sample_nx_name_strings(db, n, salt))
            .into_iter()
            .flatten()
            .collect();
        out.sort();
        out
    }

    /// Fig. 5's lifespan histogram (parallel [`scan::lifespan_histogram`]).
    /// Name counts add exactly because each name's rows — and therefore its
    /// first-NX-day anchor — live in a single shard.
    pub fn lifespan_histogram(&self, max_days: u32) -> Vec<LifespanBucket> {
        let mut merged: Vec<LifespanBucket> = (0..=max_days)
            .map(|d| LifespanBucket {
                day_offset: d,
                names: 0,
                queries: 0,
            })
            .collect();
        for partial in self.par_map(|db| scan::lifespan_histogram(db, max_days)) {
            for (slot, bucket) in merged.iter_mut().zip(partial) {
                slot.names += bucket.names;
                slot.queries += bucket.queries;
            }
        }
        merged
    }

    /// Fig. 6's expiry-aligned series (parallel
    /// [`query::expiry_aligned_series`]), with the panel keyed by name
    /// string (shard-local `NameId`s are meaningless across shards). Raw
    /// per-offset totals are summed across shards, then normalized once by
    /// the full panel size — the same division the serial engine performs.
    pub fn expiry_aligned_series(
        &self,
        expiry_day: &HashMap<String, u32>, // nxd-lint: allow(NXL001, reason="iterated only to bucket names by home shard; per-offset sums are order-free and the denominator is len()")
        before: u32,
        after: u32,
    ) -> Vec<(i32, f64)> {
        if expiry_day.is_empty() {
            return Vec::new();
        }
        // Split the panel by home shard, translating to shard-local ids.
        // Panel names the store never saw contribute no rows (exactly as in
        // the serial engine) but still count toward the denominator.
        let mut per_shard = vec![Vec::<(crate::intern::NameId, u32)>::new(); self.shards.len()];
        for (name, &day) in expiry_day {
            let shard = self.shard_of(name);
            if let Some(id) = self.shards[shard].interner().get(name) {
                per_shard[shard].push((id, day));
            }
        }
        let span = (before + after + 1) as usize;
        let mut totals = vec![0u64; span];
        let partials = self.par_map_indexed(|idx, db| {
            scan::expiry_aligned_totals(db, &per_shard[idx], before, after)
        });
        for partial in partials {
            for (slot, t) in totals.iter_mut().zip(partial) {
                *slot += t;
            }
        }
        let denom = expiry_day.len() as f64;
        totals
            .iter()
            .enumerate()
            .map(|(i, &t)| (query::day_offset(i, before), t as f64 / denom))
            .collect()
    }

    /// §4.4's long-lived NXDomain counts (parallel [`query::long_lived_nx`]).
    pub fn long_lived_nx(&self, min_days: u32) -> (u64, u64) {
        self.par_map(|db| query::long_lived_nx(db, min_days))
            .into_iter()
            .fold((0, 0), |(n, q), (pn, pq)| (n + pn, q + pq))
    }

    /// Responses per rcode (parallel [`scan::rcode_breakdown`]).
    pub fn rcode_breakdown(&self) -> Vec<(u8, u64)> {
        let mut merged: BTreeMap<u8, u64> = BTreeMap::new();
        for partial in self.par_map(scan::rcode_breakdown) {
            for (rcode, responses) in partial {
                *merged.entry(rcode).or_insert(0) += responses;
            }
        }
        merged.into_iter().collect()
    }

    /// The NXDOMAIN share of all responses (parallel
    /// [`query::nxdomain_share`]).
    pub fn nxdomain_share(&self) -> f64 {
        let breakdown = self.rcode_breakdown();
        let total: u64 = breakdown.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        let nx = breakdown
            .iter()
            .find(|&&(rc, _)| rc == RCode::NxDomain.to_u8())
            .map(|&(_, n)| n)
            .unwrap_or(0);
        nx as f64 / total as f64
    }

    /// NXDOMAIN responses per sensor (parallel [`scan::nx_by_sensor`]).
    pub fn nx_by_sensor(&self) -> BTreeMap<u16, u64> {
        let mut merged: BTreeMap<u16, u64> = BTreeMap::new();
        for partial in self.par_map(scan::nx_by_sensor) {
            for (sensor, responses) in partial {
                *merged.entry(sensor).or_insert(0) += responses;
            }
        }
        merged
    }

    /// [`ShardedStore::par_map`] with the shard index passed through, for
    /// closures that need per-shard side inputs (or per-shard telemetry
    /// labels).
    pub fn par_map_indexed<'s, R, F>(&'s self, f: F) -> Vec<R>
    where
        F: Fn(usize, &'s PassiveDb) -> R + Sync,
        R: Send,
    {
        if self.shards.len() == 1 {
            return vec![f(0, &self.shards[0])];
        }
        let (tx, rx) = bounded::<(usize, R)>(self.shards.len());
        let partials = crossbeam::thread::scope(|scope| {
            for (idx, shard) in self.shards.iter().enumerate() {
                let tx = tx.clone();
                let f = &f;
                scope.spawn(move |_| {
                    tx.send((idx, f(idx, shard)))
                        .expect("query collector hung up");
                });
            }
            drop(tx);
            let mut out: Vec<Option<R>> = (0..self.shards.len()).map(|_| None).collect();
            for (idx, partial) in rx {
                out[idx] = Some(partial);
            }
            out
        })
        .expect("sharded query worker panicked");
        partials
            .into_iter()
            .map(|p| p.expect("worker exited without a partial"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(shards: usize) -> (PassiveDb, ShardedStore) {
        let mut serial = PassiveDb::new();
        let mut sharded = ShardedStore::new(shards);
        let rows = [
            ("dead.com", 100u32, 0u16, RCode::NxDomain, 3u32),
            ("dead.com", 105, 1, RCode::NxDomain, 2),
            ("gone.ru", 101, 2, RCode::NxDomain, 7),
            ("alive.com", 102, 0, RCode::NoError, 10),
            ("flaky.net", 103, 1, RCode::ServFail, 1),
            ("gone.ru", 130, 2, RCode::NxDomain, 4),
        ];
        for (name, day, sensor, rcode, count) in rows {
            serial.record_str(name, day, sensor, rcode, count);
            sharded.record_str(name, day, sensor, rcode, count);
        }
        (serial, sharded)
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardedStore::new(0).shard_count(), 1);
        assert_eq!(ShardedStore::new(4).shard_count(), 4);
    }

    #[test]
    fn rows_route_to_home_shard_only() {
        let (_, sharded) = populated(4);
        assert_eq!(sharded.row_count(), 6);
        // dead.com has two rows; both must be in the same shard.
        let home = sharded.shard_of("dead.com");
        assert_eq!(
            sharded.shards()[home]
                .aggregate_of("dead.com")
                .unwrap()
                .nx_queries,
            5
        );
        for (idx, shard) in sharded.shards().iter().enumerate() {
            if idx != home {
                assert!(shard.aggregate_of("dead.com").is_none());
            }
        }
    }

    #[test]
    fn scalar_queries_match_serial() {
        for shards in [1, 2, 4, 8] {
            let (serial, sharded) = populated(shards);
            assert_eq!(
                sharded.total_nx_responses(),
                query::total_nx_responses(&serial)
            );
            assert_eq!(
                sharded.distinct_nx_names(),
                query::distinct_nx_names(&serial)
            );
            assert_eq!(sharded.long_lived_nx(20), query::long_lived_nx(&serial, 20));
            assert_eq!(sharded.rcode_breakdown(), query::rcode_breakdown(&serial));
            assert_eq!(sharded.nxdomain_share(), query::nxdomain_share(&serial));
            assert_eq!(sharded.nx_by_sensor(), query::nx_by_sensor(&serial));
        }
    }

    #[test]
    fn series_queries_match_serial() {
        for shards in [1, 2, 4, 8] {
            let (serial, sharded) = populated(shards);
            assert_eq!(
                sharded.monthly_nx_series(),
                query::monthly_nx_series(&serial)
            );
            assert_eq!(
                sharded.yearly_avg_monthly_nx(),
                query::yearly_avg_monthly_nx(&serial)
            );
            assert_eq!(sharded.tld_distribution(), query::tld_distribution(&serial));
            assert_eq!(
                sharded.lifespan_histogram(40),
                query::lifespan_histogram(&serial, 40)
            );
            assert_eq!(
                sharded.sample_nx_names(1, 7),
                query::sample_nx_name_strings(&serial, 1, 7)
            );
        }
    }

    #[test]
    fn expiry_series_matches_serial() {
        let (serial, sharded) = populated(4);
        let mut by_id = HashMap::new();
        let mut by_name = HashMap::new();
        for (name, day) in [("dead.com", 104u32), ("gone.ru", 110)] {
            by_id.insert(serial.interner().get(name).unwrap(), day);
            by_name.insert(name.to_string(), day);
        }
        assert_eq!(
            sharded.expiry_aligned_series(&by_name, 10, 30),
            query::expiry_aligned_series(&serial, &by_id, 10, 30)
        );
        assert!(sharded
            .expiry_aligned_series(&HashMap::new(), 10, 30)
            .is_empty());
    }

    #[test]
    fn panel_names_unknown_to_store_count_toward_denominator() {
        let (serial, sharded) = populated(4);
        let mut by_id = HashMap::new();
        let mut by_name = HashMap::new();
        by_id.insert(serial.interner().get("dead.com").unwrap(), 104u32);
        by_name.insert("dead.com".to_string(), 104u32);
        // A name with no rows anywhere: the serial engine cannot even name
        // it (no id), so it only affects the denominator — mirror that by
        // dividing the serial series' totals by the larger panel.
        by_name.insert("never-seen.example".to_string(), 104u32);
        let serial_series = query::expiry_aligned_series(&serial, &by_id, 5, 5);
        let sharded_series = sharded.expiry_aligned_series(&by_name, 5, 5);
        for ((o1, v1), (o2, v2)) in serial_series.iter().zip(&sharded_series) {
            assert_eq!(o1, o2);
            assert!((v1 / 2.0 - v2).abs() < 1e-12, "{v1} vs {v2}");
        }
    }

    #[test]
    fn from_db_and_to_serial_roundtrip() {
        let (serial, _) = populated(1);
        let sharded = ShardedStore::from_db(&serial, 4);
        assert_eq!(sharded.row_count(), serial.row_count());
        assert_eq!(sharded.distinct_names(), serial.distinct_names());
        let back = sharded.to_serial();
        assert_eq!(
            query::rcode_breakdown(&back),
            query::rcode_breakdown(&serial)
        );
        assert_eq!(
            query::tld_distribution(&back),
            query::tld_distribution(&serial)
        );
    }

    #[test]
    fn aggregate_of_routes_to_home_shard() {
        let (_, sharded) = populated(4);
        assert_eq!(sharded.aggregate_of("dead.com").unwrap().nx_queries, 5);
        assert_eq!(sharded.aggregate_of("gone.ru").unwrap().nx_queries, 11);
        assert!(sharded.aggregate_of("missing.com").is_none());
    }

    #[test]
    fn metrics_roll_up_across_shards() {
        use nxd_telemetry::Registry;
        let registry = Registry::new();
        let (_, mut sharded) = populated(4);
        sharded.attach_metrics(&registry);
        let _ = sharded.total_nx_responses();
        let snap = registry.snapshot();
        // Rollup across shard labels equals the store-wide truth.
        assert_eq!(snap.counter_total("passive_rows_ingested_total"), 6);
        assert_eq!(snap.counter_total("passive_nx_rows_total"), 4);
        // Every non-empty shard timed its partial scan.
        let latency = snap.histogram_total("passive_query_latency_us");
        assert_eq!(latency.count(), snap.counter_total("passive_queries_total"));
        assert!(latency.count() >= 1);
        // Per-shard series are genuinely distinct label sets.
        let shard_series = snap
            .counters
            .iter()
            .filter(|(id, _)| id.name() == "passive_rows_ingested_total")
            .count();
        assert_eq!(shard_series, 4);
    }

    #[test]
    fn row_bytes_sums_shards() {
        let (serial, sharded) = populated(4);
        assert_eq!(sharded.row_bytes(), serial.row_bytes());
    }

    #[test]
    fn auto_shard_count_scales_with_world_size() {
        // Small worlds stay serial: no thread overhead for toy inputs.
        assert_eq!(auto_shard_count(0, 8), 1);
        assert_eq!(auto_shard_count(100_000, 8), 1);
        assert_eq!(auto_shard_count(ROWS_PER_SHARD_TARGET - 1, 8), 1);
        // One extra shard per 256Ki rows…
        assert_eq!(auto_shard_count(ROWS_PER_SHARD_TARGET, 8), 1);
        assert_eq!(auto_shard_count(2 * ROWS_PER_SHARD_TARGET, 8), 2);
        assert_eq!(auto_shard_count(4 * ROWS_PER_SHARD_TARGET, 8), 4);
        // …capped by the machine and by the 8-shard parity ceiling.
        assert_eq!(auto_shard_count(100 * ROWS_PER_SHARD_TARGET, 4), 4);
        assert_eq!(auto_shard_count(100 * ROWS_PER_SHARD_TARGET, 64), 8);
        // Degenerate parallelism clamps to 1, never 0.
        assert_eq!(auto_shard_count(10 * ROWS_PER_SHARD_TARGET, 0), 1);
        assert!(auto_shard_count_here(0) >= 1);
    }

    #[test]
    fn from_db_auto_uses_one_shard_for_small_worlds() {
        let (serial, _) = populated(1);
        let auto = ShardedStore::from_db_auto(&serial, 8);
        assert_eq!(auto.shard_count(), 1);
        assert_eq!(
            auto.total_nx_responses(),
            query::total_nx_responses(&serial)
        );
    }

    #[test]
    fn tiny_blocks_match_serial_engine() {
        // Force a seal every 2 rows: queries must not notice the layout.
        for shards in [1, 3] {
            let (serial, _) = populated(1);
            let mut sharded = ShardedStore::with_block_rows(shards, 2);
            sharded.merge_db(&serial);
            assert_eq!(
                sharded.total_nx_responses(),
                query::total_nx_responses(&serial)
            );
            assert_eq!(sharded.rcode_breakdown(), query::rcode_breakdown(&serial));
            assert_eq!(sharded.tld_distribution(), query::tld_distribution(&serial));
            assert_eq!(
                sharded.lifespan_histogram(40),
                query::lifespan_histogram(&serial, 40)
            );
            assert!(sharded.compressed_bytes() > 0);
            assert_eq!(sharded.row_bytes(), serial.row_bytes());
        }
    }

    #[test]
    fn record_name_type_routes_like_str() {
        let mut sharded = ShardedStore::new(4);
        let name: Name = "MiXeD.CoM".parse().unwrap();
        sharded.record(&name, 10, 0, RCode::NxDomain, 2);
        assert_eq!(sharded.aggregate_of("mixed.com").unwrap().nx_queries, 2);
    }
}
