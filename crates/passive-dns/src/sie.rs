//! The SIE (Security Information Exchange) channel.
//!
//! Farsight distributes NXDomain observations over SIE channel 221 (paper
//! §4.1). Here the channel is a crossbeam MPSC pipe: any number of sensor
//! shards produce observation batches on worker threads; a single collector
//! drains the channel and merges shard-local stores into the final database.
//! Shards intern independently (no cross-thread locking on the hot path) and
//! are re-interned at merge time.

use crossbeam::channel::{bounded, Sender};

use crate::store::PassiveDb;

/// A batch of rows from one shard, carried with its shard-local interner via
/// a whole shard store.
pub struct ShardBatch(pub PassiveDb);

/// Handle used by producers to submit finished shards.
#[derive(Clone)]
pub struct SieProducer {
    tx: Sender<ShardBatch>,
}

impl SieProducer {
    /// Submits a shard. Blocks if the channel is full (backpressure).
    pub fn submit(&self, shard: PassiveDb) {
        // A closed channel means the collector is gone; losing data silently
        // would corrupt experiments, so fail loudly.
        self.tx
            .send(ShardBatch(shard))
            .expect("SIE collector hung up");
    }
}

/// Runs `producers` closures on worker threads, each building shard stores
/// and submitting them; returns the merged database.
///
/// `capacity` bounds in-flight shards to apply backpressure.
pub fn collect_parallel<F>(producers: Vec<F>, capacity: usize) -> PassiveDb
where
    F: FnOnce(SieProducer) + Send + 'static,
{
    let (tx, rx) = bounded::<ShardBatch>(capacity.max(1));
    crossbeam::thread::scope(|scope| {
        for p in producers {
            let producer = SieProducer { tx: tx.clone() };
            scope.spawn(move |_| p(producer));
        }
        drop(tx);
        let mut db = PassiveDb::new();
        for ShardBatch(shard) in rx {
            db.merge(&shard);
        }
        db
    })
    .expect("SIE worker thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::RCode;

    #[test]
    fn single_producer_collects() {
        let db = collect_parallel(
            vec![|p: SieProducer| {
                let mut shard = PassiveDb::new();
                shard.record_str("a.com", 1, 0, RCode::NxDomain, 2);
                p.submit(shard);
            }],
            4,
        );
        assert_eq!(db.row_count(), 1);
        assert_eq!(db.aggregate_of("a.com").unwrap().nx_queries, 2);
    }

    #[test]
    fn many_producers_merge_counts() {
        let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = (0..8)
            .map(|shard_id: u16| {
                Box::new(move |p: SieProducer| {
                    let mut shard = PassiveDb::new();
                    // Every shard sees the same name plus one unique name.
                    shard.record_str("shared.com", 10, shard_id, RCode::NxDomain, 1);
                    shard.record_str(
                        &format!("only-{shard_id}.com"),
                        10,
                        shard_id,
                        RCode::NxDomain,
                        1,
                    );
                    p.submit(shard);
                }) as Box<dyn FnOnce(SieProducer) + Send>
            })
            .collect();
        let db = collect_parallel(producers, 2);
        assert_eq!(db.aggregate_of("shared.com").unwrap().nx_queries, 8);
        assert_eq!(db.distinct_names(), 9);
        assert_eq!(db.row_count(), 16);
    }

    #[test]
    fn producer_can_submit_multiple_shards() {
        let db = collect_parallel(
            vec![|p: SieProducer| {
                for day in 0..3u32 {
                    let mut shard = PassiveDb::new();
                    shard.record_str("multi.com", day, 0, RCode::NxDomain, 1);
                    p.submit(shard);
                }
            }],
            1,
        );
        assert_eq!(db.aggregate_of("multi.com").unwrap().nx_queries, 3);
    }
}
