//! The SIE (Security Information Exchange) channel.
//!
//! Farsight distributes NXDomain observations over SIE channel 221 (paper
//! §4.1). Here the channel is a crossbeam MPSC pipe: any number of sensor
//! shards produce observation batches on worker threads; a single collector
//! drains the channel. Shards intern independently (no cross-thread locking
//! on the hot path) and are re-interned at merge time.
//!
//! Two collection modes:
//!
//! * [`collect_parallel`] — the original serial sink: every producer shard
//!   is merged into one [`PassiveDb`].
//! * [`collect_sharded`] — the scale path: producer shards are routed into
//!   a [`ShardedStore`]'s hash partitions instead of being collapsed into a
//!   single serial store, so the result is immediately queryable by the
//!   parallel executor.
//!
//! A worker panic surfaces as a typed [`SieError`] carrying the panic
//! payload, so a poisoned shard fails the pipeline with context instead of
//! aborting the process.

use std::any::Any;
use std::fmt;

use crossbeam::channel::{bounded, Sender};
use nxd_dns_wire::RCode;

use crate::shard::ShardedStore;
use crate::store::PassiveDb;
use crate::stream::{Admission, StreamEngine};

/// A batch of rows from one shard, carried with its shard-local interner via
/// a whole shard store.
pub struct ShardBatch(pub PassiveDb);

/// Failure of an SIE collection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SieError {
    /// A producer worker thread panicked; `detail` carries the panic
    /// payload (when it was a string) so the failing shard is identifiable.
    WorkerPanicked { detail: String },
    /// The bounded channel's consumer hung up while a producer still had
    /// data to submit — a shutdown/backpressure race, surfaced as an error
    /// instead of a producer-thread panic so streaming callers can drain
    /// gracefully.
    Disconnected,
}

impl fmt::Display for SieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SieError::WorkerPanicked { detail } => {
                write!(f, "SIE worker thread panicked: {detail}")
            }
            SieError::Disconnected => {
                write!(f, "SIE collector hung up with shards still in flight")
            }
        }
    }
}

impl std::error::Error for SieError {}

impl SieError {
    fn from_panic(payload: Box<dyn Any + Send>) -> Self {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        SieError::WorkerPanicked { detail }
    }
}

/// Handle used by producers to submit finished shards.
#[derive(Clone)]
pub struct SieProducer {
    tx: Sender<ShardBatch>,
}

impl SieProducer {
    /// Submits a shard. Blocks if the channel is full (backpressure).
    ///
    /// Panics if the collector hung up — batch producers treat a vanished
    /// sink as fatal. Streaming producers should prefer
    /// [`SieProducer::try_submit`], which surfaces the condition as
    /// [`SieError::Disconnected`] instead.
    pub fn submit(&self, shard: PassiveDb) {
        // A closed channel means the collector is gone; losing data silently
        // would corrupt experiments, so fail loudly.
        self.try_submit(shard).expect("SIE collector hung up");
    }

    /// Submits a shard, blocking on a full channel (backpressure), and
    /// returns [`SieError::Disconnected`] if the collector is gone instead
    /// of panicking the worker thread.
    pub fn try_submit(&self, shard: PassiveDb) -> Result<(), SieError> {
        self.tx
            .send(ShardBatch(shard))
            .map_err(|_| SieError::Disconnected)
    }
}

/// Runs `producers` closures on worker threads, each building shard stores
/// and submitting them; drains the channel through `sink`.
fn collect_with<F, T>(
    producers: Vec<F>,
    capacity: usize,
    sink: impl FnOnce(crossbeam::channel::Receiver<ShardBatch>) -> T,
) -> Result<T, SieError>
where
    F: FnOnce(SieProducer) + Send + 'static,
{
    let (tx, rx) = bounded::<ShardBatch>(capacity.max(1));
    crossbeam::thread::scope(|scope| {
        for p in producers {
            let producer = SieProducer { tx: tx.clone() };
            scope.spawn(move |_| p(producer));
        }
        drop(tx);
        sink(rx)
    })
    .map_err(SieError::from_panic)
}

/// Runs `producers` closures on worker threads, each building shard stores
/// and submitting them; returns the merged serial database.
///
/// `capacity` bounds in-flight shards to apply backpressure. A worker panic
/// discards the partial result and returns [`SieError::WorkerPanicked`].
pub fn collect_parallel<F>(producers: Vec<F>, capacity: usize) -> Result<PassiveDb, SieError>
where
    F: FnOnce(SieProducer) + Send + 'static,
{
    collect_with(producers, capacity, |rx| {
        let mut db = PassiveDb::new();
        for ShardBatch(shard) in rx {
            db.merge(&shard);
        }
        db
    })
}

/// Like [`collect_parallel`], but routes every producer shard into a
/// [`ShardedStore`] with `shards` hash partitions instead of collapsing
/// them into one serial store — the ingest half of the sharded scale
/// engine.
pub fn collect_sharded<F>(
    producers: Vec<F>,
    capacity: usize,
    shards: usize,
) -> Result<ShardedStore, SieError>
where
    F: FnOnce(SieProducer) + Send + 'static,
{
    collect_with(producers, capacity, |rx| {
        let mut store = ShardedStore::new(shards);
        for ShardBatch(shard) in rx {
            store.merge_db(&shard);
        }
        store
    })
}

/// Result of a streaming collection: the admitted rows, sealed into the
/// sharded scale store exactly as [`collect_sharded`] would have, plus a
/// side store holding every watermark-late row (so `admitted + late` is
/// the full offered stream — nothing is dropped).
#[derive(Debug)]
pub struct StreamOutcome {
    /// Rows the watermark admitted, immediately queryable.
    pub store: ShardedStore,
    /// Rows beyond the watermark, preserved verbatim for replay/audit.
    pub late: PassiveDb,
}

/// The streaming collection mode: like [`collect_sharded`], but every batch
/// is folded through `engine` *as it arrives*, so the exact incremental
/// aggregates and the approximate sketches are queryable mid-run — and the
/// `stream_queue_depth` gauge tracks the bounded channel's occupancy.
/// Watermark-late rows are routed to [`StreamOutcome::late`] instead of the
/// main store, which keeps the engine's snapshot bit-identical to the batch
/// query engine over [`StreamOutcome::store`].
pub fn collect_stream<F>(
    producers: Vec<F>,
    capacity: usize,
    shards: usize,
    engine: &StreamEngine,
) -> Result<StreamOutcome, SieError>
where
    F: FnOnce(SieProducer) + Send + 'static,
{
    let engine = engine.clone();
    collect_with(producers, capacity, move |rx| {
        let mut store = ShardedStore::new(shards);
        let mut late = PassiveDb::new();
        for ShardBatch(shard) in rx.iter() {
            engine.set_queue_depth(rx.len());
            let admissions = engine.offer_db_admissions(&shard);
            if admissions.iter().all(|&a| a == Admission::Admitted) {
                // Fast path: the whole batch was admitted, merge wholesale.
                store.merge_db(&shard);
                continue;
            }
            for (obs, admission) in shard.rows().zip(&admissions) {
                let name = shard.interner().resolve(obs.name);
                let rcode = RCode::from_u8(obs.rcode);
                match admission {
                    Admission::Admitted => {
                        store.record_str(name, obs.day, obs.sensor, rcode, obs.count);
                    }
                    Admission::Late => {
                        late.record_str(name, obs.day, obs.sensor, rcode, obs.count);
                    }
                }
            }
        }
        engine.set_queue_depth(0);
        StreamOutcome { store, late }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::RCode;

    #[test]
    fn single_producer_collects() {
        let db = collect_parallel(
            vec![|p: SieProducer| {
                let mut shard = PassiveDb::new();
                shard.record_str("a.com", 1, 0, RCode::NxDomain, 2);
                p.submit(shard);
            }],
            4,
        )
        .expect("no worker panicked");
        assert_eq!(db.row_count(), 1);
        assert_eq!(db.aggregate_of("a.com").unwrap().nx_queries, 2);
    }

    #[test]
    fn many_producers_merge_counts() {
        let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = (0..8)
            .map(|shard_id: u16| {
                Box::new(move |p: SieProducer| {
                    let mut shard = PassiveDb::new();
                    // Every shard sees the same name plus one unique name.
                    shard.record_str("shared.com", 10, shard_id, RCode::NxDomain, 1);
                    shard.record_str(
                        &format!("only-{shard_id}.com"),
                        10,
                        shard_id,
                        RCode::NxDomain,
                        1,
                    );
                    p.submit(shard);
                }) as Box<dyn FnOnce(SieProducer) + Send>
            })
            .collect();
        let db = collect_parallel(producers, 2).expect("no worker panicked");
        assert_eq!(db.aggregate_of("shared.com").unwrap().nx_queries, 8);
        assert_eq!(db.distinct_names(), 9);
        assert_eq!(db.row_count(), 16);
    }

    #[test]
    fn producer_can_submit_multiple_shards() {
        let db = collect_parallel(
            vec![|p: SieProducer| {
                for day in 0..3u32 {
                    let mut shard = PassiveDb::new();
                    shard.record_str("multi.com", day, 0, RCode::NxDomain, 1);
                    p.submit(shard);
                }
            }],
            1,
        )
        .expect("no worker panicked");
        assert_eq!(db.aggregate_of("multi.com").unwrap().nx_queries, 3);
    }

    #[test]
    fn worker_panic_is_a_typed_error_with_context() {
        let result = collect_parallel(
            vec![|_p: SieProducer| {
                panic!("sensor 7 fed us garbage");
            }],
            4,
        );
        match result {
            Err(SieError::WorkerPanicked { detail }) => {
                assert!(detail.contains("sensor 7"), "lost context: {detail}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn one_poisoned_shard_fails_the_whole_collection() {
        let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = vec![
            Box::new(|p: SieProducer| {
                let mut shard = PassiveDb::new();
                shard.record_str("fine.com", 1, 0, RCode::NxDomain, 1);
                p.submit(shard);
            }),
            Box::new(|_p: SieProducer| panic!("poisoned shard")),
        ];
        assert!(collect_parallel(producers, 4).is_err());
    }

    #[test]
    fn collect_sharded_keeps_shard_stores_alive() {
        let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = (0..4)
            .map(|shard_id: u16| {
                Box::new(move |p: SieProducer| {
                    let mut shard = PassiveDb::new();
                    shard.record_str("shared.com", 10, shard_id, RCode::NxDomain, 1);
                    shard.record_str(
                        &format!("only-{shard_id}.com"),
                        10 + shard_id as u32,
                        shard_id,
                        RCode::NxDomain,
                        2,
                    );
                    p.submit(shard);
                }) as Box<dyn FnOnce(SieProducer) + Send>
            })
            .collect();
        let store = collect_sharded(producers, 2, 4).expect("no worker panicked");
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.row_count(), 8);
        // shared.com's four rows all landed in its single home shard.
        assert_eq!(store.aggregate_of("shared.com").unwrap().nx_queries, 4);
        assert_eq!(store.total_nx_responses(), 12);
        assert_eq!(store.distinct_nx_names(), 5);
    }

    #[test]
    fn collect_sharded_propagates_panics() {
        let result = collect_sharded(vec![|_p: SieProducer| panic!("boom")], 1, 4);
        assert_eq!(
            result.err(),
            Some(SieError::WorkerPanicked {
                detail: "boom".to_string()
            })
        );
    }

    #[test]
    fn try_submit_surfaces_disconnect_instead_of_panicking() {
        // Regression: a vanished collector used to panic the producer
        // thread from inside `submit`; the streaming path needs the typed
        // error so a mid-run shutdown can drain gracefully.
        let (tx, rx) = bounded::<ShardBatch>(1);
        let producer = SieProducer { tx };
        drop(rx);
        let mut shard = PassiveDb::new();
        shard.record_str("orphan.com", 1, 0, RCode::NxDomain, 1);
        assert_eq!(
            producer.try_submit(shard).err(),
            Some(SieError::Disconnected)
        );
        assert_eq!(
            SieError::Disconnected.to_string(),
            "SIE collector hung up with shards still in flight"
        );
    }

    #[test]
    fn collect_stream_matches_collect_sharded_when_nothing_is_late() {
        use crate::stream::{StreamConfig, StreamEngine};

        fn producers() -> Vec<Box<dyn FnOnce(SieProducer) + Send>> {
            (0..4)
                .map(|shard_id: u16| {
                    Box::new(move |p: SieProducer| {
                        let mut shard = PassiveDb::new();
                        shard.record_str("shared.com", 10, shard_id, RCode::NxDomain, 1);
                        shard.record_str(
                            &format!("only-{shard_id}.com"),
                            u32::from(10 + shard_id),
                            shard_id,
                            RCode::NxDomain,
                            2,
                        );
                        p.submit(shard);
                    }) as Box<dyn FnOnce(SieProducer) + Send>
                })
                .collect()
        }

        let engine = StreamEngine::new(StreamConfig::default());
        let outcome = collect_stream(producers(), 2, 4, &engine).expect("no worker panicked");
        let batch = collect_sharded(producers(), 2, 4).expect("no worker panicked");

        // Default lateness (7 days) over a 4-day span: nothing is late,
        // and the streamed store is exactly the batch store.
        assert_eq!(outcome.late.row_count(), 0);
        assert_eq!(outcome.store.row_count(), batch.row_count());
        assert_eq!(
            outcome.store.total_nx_responses(),
            batch.total_nx_responses()
        );
        assert_eq!(outcome.store.rcode_breakdown(), batch.rcode_breakdown());

        // The engine saw the same rows the store sealed.
        let snap = engine.snapshot();
        assert_eq!(snap.admitted_rows, 8);
        assert_eq!(snap.late.rows, 0);
        assert_eq!(snap.total_nx_responses, outcome.store.total_nx_responses());
        assert_eq!(snap.distinct_nx_names, outcome.store.distinct_nx_names());
    }

    #[test]
    fn collect_stream_routes_late_rows_to_the_side_store() {
        use crate::stream::{StreamConfig, StreamEngine, WindowConfig};

        let engine = StreamEngine::new(StreamConfig {
            window: WindowConfig {
                window_days: 10,
                allowed_lateness_days: 0,
            },
            ..Default::default()
        });
        // One producer so batch arrival order is the submit order.
        let outcome = collect_stream(
            vec![|p: SieProducer| {
                let mut fresh = PassiveDb::new();
                fresh.record_str("fresh.com", 100, 0, RCode::NxDomain, 2);
                p.submit(fresh);
                let mut mixed = PassiveDb::new();
                mixed.record_str("straggler.com", 5, 1, RCode::NxDomain, 3);
                mixed.record_str("fresh2.com", 101, 0, RCode::NxDomain, 1);
                p.submit(mixed);
            }],
            2,
            2,
            &engine,
        )
        .expect("no worker panicked");

        assert_eq!(outcome.store.row_count(), 2);
        assert_eq!(outcome.late.row_count(), 1);
        assert_eq!(
            outcome
                .late
                .aggregate_of("straggler.com")
                .unwrap()
                .nx_queries,
            3
        );
        let snap = engine.snapshot();
        assert_eq!(snap.admitted_rows, 2);
        assert_eq!(snap.late.rows, 1);
        assert_eq!(snap.late.nx_responses, 3);
        // Parity holds over the *admitted* store.
        assert_eq!(snap.total_nx_responses, outcome.store.total_nx_responses());
    }
}
