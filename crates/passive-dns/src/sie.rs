//! The SIE (Security Information Exchange) channel.
//!
//! Farsight distributes NXDomain observations over SIE channel 221 (paper
//! §4.1). Here the channel is a crossbeam MPSC pipe: any number of sensor
//! shards produce observation batches on worker threads; a single collector
//! drains the channel. Shards intern independently (no cross-thread locking
//! on the hot path) and are re-interned at merge time.
//!
//! Two collection modes:
//!
//! * [`collect_parallel`] — the original serial sink: every producer shard
//!   is merged into one [`PassiveDb`].
//! * [`collect_sharded`] — the scale path: producer shards are routed into
//!   a [`ShardedStore`]'s hash partitions instead of being collapsed into a
//!   single serial store, so the result is immediately queryable by the
//!   parallel executor.
//!
//! A worker panic surfaces as a typed [`SieError`] carrying the panic
//! payload, so a poisoned shard fails the pipeline with context instead of
//! aborting the process.

use std::any::Any;
use std::fmt;

use crossbeam::channel::{bounded, Sender};

use crate::shard::ShardedStore;
use crate::store::PassiveDb;

/// A batch of rows from one shard, carried with its shard-local interner via
/// a whole shard store.
pub struct ShardBatch(pub PassiveDb);

/// Failure of an SIE collection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SieError {
    /// A producer worker thread panicked; `detail` carries the panic
    /// payload (when it was a string) so the failing shard is identifiable.
    WorkerPanicked { detail: String },
}

impl fmt::Display for SieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SieError::WorkerPanicked { detail } => {
                write!(f, "SIE worker thread panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for SieError {}

impl SieError {
    fn from_panic(payload: Box<dyn Any + Send>) -> Self {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        SieError::WorkerPanicked { detail }
    }
}

/// Handle used by producers to submit finished shards.
#[derive(Clone)]
pub struct SieProducer {
    tx: Sender<ShardBatch>,
}

impl SieProducer {
    /// Submits a shard. Blocks if the channel is full (backpressure).
    pub fn submit(&self, shard: PassiveDb) {
        // A closed channel means the collector is gone; losing data silently
        // would corrupt experiments, so fail loudly.
        self.tx
            .send(ShardBatch(shard))
            .expect("SIE collector hung up");
    }
}

/// Runs `producers` closures on worker threads, each building shard stores
/// and submitting them; drains the channel through `sink`.
fn collect_with<F, T>(
    producers: Vec<F>,
    capacity: usize,
    sink: impl FnOnce(crossbeam::channel::Receiver<ShardBatch>) -> T,
) -> Result<T, SieError>
where
    F: FnOnce(SieProducer) + Send + 'static,
{
    let (tx, rx) = bounded::<ShardBatch>(capacity.max(1));
    crossbeam::thread::scope(|scope| {
        for p in producers {
            let producer = SieProducer { tx: tx.clone() };
            scope.spawn(move |_| p(producer));
        }
        drop(tx);
        sink(rx)
    })
    .map_err(SieError::from_panic)
}

/// Runs `producers` closures on worker threads, each building shard stores
/// and submitting them; returns the merged serial database.
///
/// `capacity` bounds in-flight shards to apply backpressure. A worker panic
/// discards the partial result and returns [`SieError::WorkerPanicked`].
pub fn collect_parallel<F>(producers: Vec<F>, capacity: usize) -> Result<PassiveDb, SieError>
where
    F: FnOnce(SieProducer) + Send + 'static,
{
    collect_with(producers, capacity, |rx| {
        let mut db = PassiveDb::new();
        for ShardBatch(shard) in rx {
            db.merge(&shard);
        }
        db
    })
}

/// Like [`collect_parallel`], but routes every producer shard into a
/// [`ShardedStore`] with `shards` hash partitions instead of collapsing
/// them into one serial store — the ingest half of the sharded scale
/// engine.
pub fn collect_sharded<F>(
    producers: Vec<F>,
    capacity: usize,
    shards: usize,
) -> Result<ShardedStore, SieError>
where
    F: FnOnce(SieProducer) + Send + 'static,
{
    collect_with(producers, capacity, |rx| {
        let mut store = ShardedStore::new(shards);
        for ShardBatch(shard) in rx {
            store.merge_db(&shard);
        }
        store
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::RCode;

    #[test]
    fn single_producer_collects() {
        let db = collect_parallel(
            vec![|p: SieProducer| {
                let mut shard = PassiveDb::new();
                shard.record_str("a.com", 1, 0, RCode::NxDomain, 2);
                p.submit(shard);
            }],
            4,
        )
        .expect("no worker panicked");
        assert_eq!(db.row_count(), 1);
        assert_eq!(db.aggregate_of("a.com").unwrap().nx_queries, 2);
    }

    #[test]
    fn many_producers_merge_counts() {
        let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = (0..8)
            .map(|shard_id: u16| {
                Box::new(move |p: SieProducer| {
                    let mut shard = PassiveDb::new();
                    // Every shard sees the same name plus one unique name.
                    shard.record_str("shared.com", 10, shard_id, RCode::NxDomain, 1);
                    shard.record_str(
                        &format!("only-{shard_id}.com"),
                        10,
                        shard_id,
                        RCode::NxDomain,
                        1,
                    );
                    p.submit(shard);
                }) as Box<dyn FnOnce(SieProducer) + Send>
            })
            .collect();
        let db = collect_parallel(producers, 2).expect("no worker panicked");
        assert_eq!(db.aggregate_of("shared.com").unwrap().nx_queries, 8);
        assert_eq!(db.distinct_names(), 9);
        assert_eq!(db.row_count(), 16);
    }

    #[test]
    fn producer_can_submit_multiple_shards() {
        let db = collect_parallel(
            vec![|p: SieProducer| {
                for day in 0..3u32 {
                    let mut shard = PassiveDb::new();
                    shard.record_str("multi.com", day, 0, RCode::NxDomain, 1);
                    p.submit(shard);
                }
            }],
            1,
        )
        .expect("no worker panicked");
        assert_eq!(db.aggregate_of("multi.com").unwrap().nx_queries, 3);
    }

    #[test]
    fn worker_panic_is_a_typed_error_with_context() {
        let result = collect_parallel(
            vec![|_p: SieProducer| {
                panic!("sensor 7 fed us garbage");
            }],
            4,
        );
        match result {
            Err(SieError::WorkerPanicked { detail }) => {
                assert!(detail.contains("sensor 7"), "lost context: {detail}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn one_poisoned_shard_fails_the_whole_collection() {
        let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = vec![
            Box::new(|p: SieProducer| {
                let mut shard = PassiveDb::new();
                shard.record_str("fine.com", 1, 0, RCode::NxDomain, 1);
                p.submit(shard);
            }),
            Box::new(|_p: SieProducer| panic!("poisoned shard")),
        ];
        assert!(collect_parallel(producers, 4).is_err());
    }

    #[test]
    fn collect_sharded_keeps_shard_stores_alive() {
        let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = (0..4)
            .map(|shard_id: u16| {
                Box::new(move |p: SieProducer| {
                    let mut shard = PassiveDb::new();
                    shard.record_str("shared.com", 10, shard_id, RCode::NxDomain, 1);
                    shard.record_str(
                        &format!("only-{shard_id}.com"),
                        10 + shard_id as u32,
                        shard_id,
                        RCode::NxDomain,
                        2,
                    );
                    p.submit(shard);
                }) as Box<dyn FnOnce(SieProducer) + Send>
            })
            .collect();
        let store = collect_sharded(producers, 2, 4).expect("no worker panicked");
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.row_count(), 8);
        // shared.com's four rows all landed in its single home shard.
        assert_eq!(store.aggregate_of("shared.com").unwrap().nx_queries, 4);
        assert_eq!(store.total_nx_responses(), 12);
        assert_eq!(store.distinct_nx_names(), 5);
    }

    #[test]
    fn collect_sharded_propagates_panics() {
        let result = collect_sharded(vec![|_p: SieProducer| panic!("boom")], 1, 4);
        assert_eq!(
            result.err(),
            Some(SieError::WorkerPanicked {
                detail: "boom".to_string()
            })
        );
    }
}
