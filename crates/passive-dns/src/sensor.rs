//! Sensors and vantage points.
//!
//! Farsight's database is "contributed by collection servers from individuals
//! and organizations around the world" (§3.1) — ISPs, enterprises, academia,
//! and research organizations — placed *below* recursive resolvers, so
//! cache-hit suppression at the resolver is already reflected in what a
//! sensor sees. Each sensor stamps its observations with a vantage id so the
//! store can report coverage by contributor class.

use nxd_dns_wire::RCode;

use crate::store::Observation;

/// The contributor class a sensor belongs to (paper §1: "ISPs, enterprises,
/// academia, and research organizations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VantagePoint {
    Isp,
    Enterprise,
    Academia,
    Research,
}

impl VantagePoint {
    pub const ALL: [VantagePoint; 4] = [
        VantagePoint::Isp,
        VantagePoint::Enterprise,
        VantagePoint::Academia,
        VantagePoint::Research,
    ];

    pub fn label(self) -> &'static str {
        match self {
            VantagePoint::Isp => "ISP",
            VantagePoint::Enterprise => "Enterprise",
            VantagePoint::Academia => "Academia",
            VantagePoint::Research => "Research",
        }
    }
}

/// A passive-DNS collection sensor.
#[derive(Debug, Clone)]
pub struct Sensor {
    pub id: u16,
    pub vantage: VantagePoint,
}

impl Sensor {
    pub fn new(id: u16, vantage: VantagePoint) -> Self {
        Sensor { id, vantage }
    }

    /// Builds an observation row for a batch of identical responses seen on
    /// `day` (days since the Unix epoch).
    pub fn observe(
        &self,
        name: crate::intern::NameId,
        day: u32,
        rcode: RCode,
        count: u32,
    ) -> Observation {
        Observation {
            name,
            day,
            sensor: self.id,
            rcode: rcode.to_u8(),
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::NameId;

    #[test]
    fn observation_carries_sensor_id() {
        let s = Sensor::new(7, VantagePoint::Isp);
        let o = s.observe(NameId(3), 100, RCode::NxDomain, 5);
        assert_eq!(o.sensor, 7);
        assert_eq!(o.count, 5);
        assert_eq!(RCode::from_u8(o.rcode), RCode::NxDomain);
    }

    #[test]
    fn vantage_labels() {
        assert_eq!(VantagePoint::Isp.label(), "ISP");
        assert_eq!(VantagePoint::ALL.len(), 4);
    }
}
