//! The columnar passive-DNS store.
//!
//! Rows are pre-aggregated observations: `(name, day, sensor, rcode, count)`.
//! Columns are stored as parallel vectors (struct-of-arrays), which keeps the
//! resident size small and scans cache-friendly — the same reason the paper
//! mirrors Farsight into BigQuery. A per-name aggregate index is maintained
//! on ingest for O(1) lifespan lookups.

use std::collections::HashMap;

use nxd_dns_wire::{Name, RCode};
use nxd_telemetry::{Counter, Gauge, Histogram, Journal, Registry, Stopwatch};

use crate::intern::{Interner, NameId};

/// How often ingest emits a journal heartbeat: every this-many appended
/// rows (power of two so the check is a mask).
const INGEST_HEARTBEAT_ROWS: u64 = 65_536;

/// Borrowed column slices `(name, day, sensor, rcode, count)`, one row per index.
pub(crate) type RawColumns<'a> = (&'a [NameId], &'a [u32], &'a [u16], &'a [u8], &'a [u32]);

/// One pre-aggregated observation row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    pub name: NameId,
    /// Days since the Unix epoch.
    pub day: u32,
    pub sensor: u16,
    /// Wire rcode value ([`RCode::to_u8`]).
    pub rcode: u8,
    pub count: u32,
}

/// Per-name aggregate maintained during ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameAggregate {
    /// First day the name was observed with an NXDOMAIN response.
    pub first_nx_day: u32,
    /// Last day the name was observed with an NXDOMAIN response.
    pub last_nx_day: u32,
    /// Total NXDOMAIN responses observed.
    pub nx_queries: u64,
    /// Total responses of any rcode observed.
    pub total_queries: u64,
}

/// Ingest and query-engine telemetry for one [`PassiveDb`]. Detached cells
/// by default; [`PassiveDb::attach_metrics`] re-homes them onto a shared
/// registry as `passive_*` metrics.
#[derive(Debug, Default, Clone)]
struct StoreMetrics {
    rows_ingested: Counter,
    nx_rows: Counter,
    queries: Counter,
    query_latency_us: Histogram,
    intern_names: Gauge,
    intern_tlds: Gauge,
}

impl StoreMetrics {
    fn registered(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        StoreMetrics {
            rows_ingested: registry.counter_with("passive_rows_ingested_total", labels),
            nx_rows: registry.counter_with("passive_nx_rows_total", labels),
            queries: registry.counter_with("passive_queries_total", labels),
            query_latency_us: registry.histogram_with("passive_query_latency_us", labels),
            intern_names: registry.gauge_with("passive_intern_names", labels),
            intern_tlds: registry.gauge_with("passive_intern_tlds", labels),
        }
    }
}

/// The passive-DNS database (Farsight substitute).
#[derive(Debug, Default)]
pub struct PassiveDb {
    interner: Interner,
    // Struct-of-arrays row storage.
    col_name: Vec<NameId>,
    col_day: Vec<u32>,
    col_sensor: Vec<u16>,
    col_rcode: Vec<u8>,
    col_count: Vec<u32>,
    per_name: HashMap<NameId, NameAggregate>,
    metrics: StoreMetrics,
    /// Optional flight recorder ([`PassiveDb::attach_journal`]); ingest
    /// heartbeats every [`INGEST_HEARTBEAT_ROWS`] rows land here.
    journal: Option<Journal>,
}

impl PassiveDb {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Re-homes this store's telemetry onto `registry` (as
    /// `passive_rows_ingested_total`, `passive_nx_rows_total`,
    /// `passive_queries_total`, `passive_query_latency_us`,
    /// `passive_intern_names`, `passive_intern_tlds`), carrying counter and
    /// gauge values over. Latency samples recorded before attaching stay in
    /// the detached histogram, so attach before running queries.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.attach_metrics_labeled(registry, &[]);
    }

    /// [`PassiveDb::attach_metrics`] with a label set on every series —
    /// how a [`crate::ShardedStore`](crate::shard::ShardedStore) gives each
    /// shard its own `passive_*{shard="i"}` cells. Per-shard series roll up
    /// through the snapshot algebra: [`nxd_telemetry::Snapshot::counter_total`]
    /// sums across label sets and
    /// [`nxd_telemetry::Snapshot::histogram_total`] merges them.
    pub fn attach_metrics_labeled(&mut self, registry: &Registry, labels: &[(&str, &str)]) {
        let next = StoreMetrics::registered(registry, labels);
        next.rows_ingested.add(self.metrics.rows_ingested.get());
        next.nx_rows.add(self.metrics.nx_rows.get());
        next.queries.add(self.metrics.queries.get());
        next.intern_names.set(self.interner.len() as i64);
        next.intern_tlds.set(self.interner.tld_count() as i64);
        self.metrics = next;
    }

    /// Attaches a flight recorder: every [`INGEST_HEARTBEAT_ROWS`] appended
    /// rows emit one `store`-component heartbeat event (rows so far,
    /// distinct names), so a live observer sees ingest advance long before
    /// the batch completes.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Times one query-engine call: records latency (µs) and bumps the
    /// query counter when the returned guard drops.
    pub(crate) fn time_query(&self) -> QueryTimer<'_> {
        QueryTimer {
            metrics: &self.metrics,
            watch: Stopwatch::start(),
        }
    }

    /// Number of rows (pre-aggregated observations).
    pub fn row_count(&self) -> usize {
        self.col_name.len()
    }

    /// Number of distinct names ever observed.
    pub fn distinct_names(&self) -> usize {
        self.interner.len()
    }

    /// Interns a name and appends an observation in one step.
    pub fn record(
        &mut self,
        name: &Name,
        day: u32,
        sensor: u16,
        rcode: RCode,
        count: u32,
    ) -> NameId {
        let id = self.interner.intern(name);
        self.append(Observation {
            name: id,
            day,
            sensor,
            rcode: rcode.to_u8(),
            count,
        });
        id
    }

    /// Interns a pre-normalized name string and appends an observation.
    pub fn record_str(
        &mut self,
        name: &str,
        day: u32,
        sensor: u16,
        rcode: RCode,
        count: u32,
    ) -> NameId {
        let id = self.interner.intern_str(name);
        self.append(Observation {
            name: id,
            day,
            sensor,
            rcode: rcode.to_u8(),
            count,
        });
        id
    }

    /// Appends a row whose name id was produced by this store's interner.
    pub fn append(&mut self, obs: Observation) {
        debug_assert!(
            (obs.name.0 as usize) < self.interner.len(),
            "foreign NameId"
        );
        self.col_name.push(obs.name);
        self.col_day.push(obs.day);
        self.col_sensor.push(obs.sensor);
        self.col_rcode.push(obs.rcode);
        self.col_count.push(obs.count);
        self.metrics.rows_ingested.inc();
        if obs.rcode == RCode::NxDomain.to_u8() {
            self.metrics.nx_rows.inc();
        }
        if let Some(journal) = &self.journal {
            let rows = self.metrics.rows_ingested.get();
            if rows.is_multiple_of(INGEST_HEARTBEAT_ROWS) {
                journal.info(
                    "store",
                    "ingest heartbeat",
                    &[
                        ("rows", &rows.to_string()),
                        ("names", &self.interner.len().to_string()),
                    ],
                );
            }
        }
        self.metrics.intern_names.set(self.interner.len() as i64);
        self.metrics
            .intern_tlds
            .set(self.interner.tld_count() as i64);

        let agg = self.per_name.entry(obs.name).or_insert(NameAggregate {
            first_nx_day: u32::MAX,
            last_nx_day: 0,
            nx_queries: 0,
            total_queries: 0,
        });
        agg.total_queries += obs.count as u64;
        if obs.rcode == RCode::NxDomain.to_u8() {
            agg.nx_queries += obs.count as u64;
            agg.first_nx_day = agg.first_nx_day.min(obs.day);
            agg.last_nx_day = agg.last_nx_day.max(obs.day);
        }
    }

    /// The aggregate for a name id, if it has any rows.
    pub fn aggregate(&self, id: NameId) -> Option<&NameAggregate> {
        self.per_name.get(&id)
    }

    /// The aggregate for a name string.
    pub fn aggregate_of(&self, name: &str) -> Option<&NameAggregate> {
        self.interner
            .get(name)
            .and_then(|id| self.per_name.get(&id))
    }

    /// Iterates rows as [`Observation`]s.
    pub fn rows(&self) -> impl Iterator<Item = Observation> + '_ {
        (0..self.row_count()).map(move |i| self.row(i))
    }

    /// Fetches row `i`.
    ///
    /// # Panics
    /// Panics if `i >= row_count()`.
    pub fn row(&self, i: usize) -> Observation {
        Observation {
            name: self.col_name[i],
            day: self.col_day[i],
            sensor: self.col_sensor[i],
            rcode: self.col_rcode[i],
            count: self.col_count[i],
        }
    }

    /// Raw column access for the query engine's tight scans.
    pub(crate) fn columns(&self) -> RawColumns<'_> {
        (
            &self.col_name,
            &self.col_day,
            &self.col_sensor,
            &self.col_rcode,
            &self.col_count,
        )
    }

    /// Iterates `(id, aggregate)` for every name with at least one NXDOMAIN
    /// observation.
    pub fn nx_names(&self) -> impl Iterator<Item = (NameId, &NameAggregate)> {
        self.per_name
            .iter()
            .filter(|(_, a)| a.nx_queries > 0)
            .map(|(&id, a)| (id, a))
    }

    /// Merges another store built against the *same logical name space*
    /// (used by the parallel SIE ingest: shards intern independently, merge
    /// re-interns by string).
    pub fn merge(&mut self, other: &PassiveDb) {
        for i in 0..other.row_count() {
            let obs = other.row(i);
            let name = other.interner.resolve(obs.name);
            let id = self.interner.intern_str(name);
            self.append(Observation { name: id, ..obs });
        }
    }

    /// Approximate resident bytes of row storage (columns only).
    pub fn row_bytes(&self) -> usize {
        self.col_name.len() * (4 + 4 + 2 + 1 + 4)
    }
}

/// Drop guard for [`PassiveDb::time_query`].
pub(crate) struct QueryTimer<'a> {
    metrics: &'a StoreMetrics,
    watch: Stopwatch,
}

impl Drop for QueryTimer<'_> {
    fn drop(&mut self) {
        self.metrics.queries.inc();
        self.metrics
            .query_latency_us
            .record(self.watch.elapsed_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn record_and_aggregate() {
        let mut db = PassiveDb::new();
        db.record(&n("dead.com"), 100, 0, RCode::NxDomain, 3);
        db.record(&n("dead.com"), 105, 1, RCode::NxDomain, 2);
        db.record(&n("dead.com"), 90, 0, RCode::NoError, 7);
        let agg = db.aggregate_of("dead.com").unwrap();
        assert_eq!(agg.first_nx_day, 100);
        assert_eq!(agg.last_nx_day, 105);
        assert_eq!(agg.nx_queries, 5);
        assert_eq!(agg.total_queries, 12);
        assert_eq!(db.row_count(), 3);
        assert_eq!(db.distinct_names(), 1);
    }

    #[test]
    fn nx_names_filters_noerror_only() {
        let mut db = PassiveDb::new();
        db.record(&n("alive.com"), 10, 0, RCode::NoError, 4);
        db.record(&n("dead.com"), 10, 0, RCode::NxDomain, 1);
        let nx: Vec<_> = db.nx_names().collect();
        assert_eq!(nx.len(), 1);
        assert_eq!(db.interner().resolve(nx[0].0), "dead.com");
    }

    #[test]
    fn rows_roundtrip() {
        let mut db = PassiveDb::new();
        db.record_str("a.com", 1, 2, RCode::NxDomain, 9);
        let rows: Vec<_> = db.rows().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].day, 1);
        assert_eq!(rows[0].sensor, 2);
        assert_eq!(rows[0].count, 9);
    }

    #[test]
    fn merge_reinterns() {
        let mut a = PassiveDb::new();
        a.record_str("x.com", 1, 0, RCode::NxDomain, 1);
        let mut b = PassiveDb::new();
        b.record_str("y.com", 2, 1, RCode::NxDomain, 2);
        b.record_str("x.com", 3, 1, RCode::NxDomain, 4);
        a.merge(&b);
        assert_eq!(a.distinct_names(), 2);
        assert_eq!(a.aggregate_of("x.com").unwrap().nx_queries, 5);
        assert_eq!(a.aggregate_of("y.com").unwrap().nx_queries, 2);
    }

    #[test]
    fn aggregate_missing_name() {
        let db = PassiveDb::new();
        assert!(db.aggregate_of("nothing.com").is_none());
    }

    #[test]
    fn journal_heartbeat_fires_on_the_row_interval() {
        let mut db = PassiveDb::new();
        let journal = Journal::with_capacity(8);
        db.attach_journal(journal.clone());
        let id = db.interner_mut().intern_str("hb.com");
        let obs = Observation {
            name: id,
            day: 1,
            sensor: 0,
            rcode: RCode::NxDomain.to_u8(),
            count: 1,
        };
        for _ in 0..INGEST_HEARTBEAT_ROWS - 1 {
            db.append(obs);
        }
        assert!(journal.is_empty(), "heartbeat fired early");
        db.append(obs);
        let events = journal.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].component, "store");
        assert!(events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "rows" && v == &INGEST_HEARTBEAT_ROWS.to_string()));
    }

    #[test]
    fn attach_metrics_tracks_ingest() {
        let registry = Registry::new();
        let mut db = PassiveDb::new();
        db.record_str("early.com", 1, 0, RCode::NxDomain, 1);
        db.attach_metrics(&registry);
        // Pre-attach rows carried over.
        assert_eq!(
            registry
                .snapshot()
                .counter_total("passive_rows_ingested_total"),
            1
        );
        db.record_str("late.com", 2, 0, RCode::NxDomain, 2);
        db.record_str("fine.com", 2, 0, RCode::NoError, 3);
        {
            let _t = db.time_query();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("passive_rows_ingested_total"), 3);
        assert_eq!(snap.counter_total("passive_nx_rows_total"), 2);
        assert_eq!(snap.counter_total("passive_queries_total"), 1);
        assert_eq!(snap.gauge_value("passive_intern_names"), Some(3));
        assert_eq!(snap.gauge_value("passive_intern_tlds"), Some(1));
        assert_eq!(
            snap.histogram_named("passive_query_latency_us")
                .unwrap()
                .count(),
            1
        );
    }
}
