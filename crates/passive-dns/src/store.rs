//! The columnar passive-DNS store.
//!
//! Rows are pre-aggregated observations: `(name, day, sensor, rcode, count)`.
//! Ingest appends into uncompressed tail columns (struct-of-arrays); every
//! [`crate::block::BLOCK_ROWS`] rows the tail seals into a compressed,
//! immutable [`Block`](crate::block::Block) with per-block zone maps and
//! exact pre-aggregated summaries — the same reason the paper mirrors
//! Farsight into BigQuery, plus the columnar-compression trick BigQuery
//! applies under the hood. A per-name aggregate index is maintained on
//! ingest for O(1) lifespan lookups.
//!
//! [`PassiveDb::uncompressed`] builds a store that never seals — the
//! legacy flat layout, kept as the bit-identical reference the property
//! tests and benchmarks compare the compressed engine against.

use std::collections::HashMap;

use nxd_dns_wire::{Name, RCode};
use nxd_telemetry::{Counter, Gauge, Histogram, Journal, Registry, Stopwatch};

use crate::block::{Block, BlockScratch, BLOCK_ROWS};
use crate::intern::{Interner, NameId};

/// How often ingest emits a journal heartbeat: every this-many appended
/// rows (power of two so the check is a mask).
const INGEST_HEARTBEAT_ROWS: u64 = 65_536;

/// Logical bytes per row in the uncompressed layout
/// (`u32 + u32 + u16 + u8 + u32`).
pub(crate) const ROW_BYTES: usize = 4 + 4 + 2 + 1 + 4;

/// Borrowed column slices `(name, day, sensor, rcode, count)`, one row per index.
pub(crate) type RawColumns<'a> = (&'a [NameId], &'a [u32], &'a [u16], &'a [u8], &'a [u32]);

/// One pre-aggregated observation row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    pub name: NameId,
    /// Days since the Unix epoch.
    pub day: u32,
    pub sensor: u16,
    /// Wire rcode value ([`RCode::to_u8`]).
    pub rcode: u8,
    pub count: u32,
}

/// Per-name aggregate maintained during ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameAggregate {
    /// First day the name was observed with an NXDOMAIN response.
    pub first_nx_day: u32,
    /// Last day the name was observed with an NXDOMAIN response.
    pub last_nx_day: u32,
    /// Total NXDOMAIN responses observed.
    pub nx_queries: u64,
    /// Total responses of any rcode observed.
    pub total_queries: u64,
}

/// Block-skip predicate for [`PassiveDb::for_each_block`]: a scan whose
/// per-row predicate implies this filter may skip any sealed block whose
/// zone maps cannot match. The uncompressed tail is always visited — the
/// filter is a skip *hint*, never a correctness dependency.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScanFilter {
    pub day_min: u32,
    pub day_max: u32,
    /// Only rows with this rcode matter to the caller.
    pub rcode: Option<u8>,
}

impl ScanFilter {
    /// No skipping: every block is visited.
    pub fn all() -> Self {
        ScanFilter {
            day_min: 0,
            day_max: u32::MAX,
            rcode: None,
        }
    }

    /// Only rows carrying `rcode` matter.
    pub fn rcode(rcode: u8) -> Self {
        ScanFilter {
            rcode: Some(rcode),
            ..Self::all()
        }
    }

    /// Only rows with `day_min <= day <= day_max` matter.
    pub fn day_range(day_min: u32, day_max: u32) -> Self {
        ScanFilter {
            day_min,
            day_max,
            rcode: None,
        }
    }

    fn admits(&self, summary: &crate::block::BlockSummary) -> bool {
        if summary.max_day < self.day_min || summary.min_day > self.day_max {
            return false;
        }
        match self.rcode {
            Some(rc) => summary.has_rcode(rc),
            None => true,
        }
    }
}

/// Ingest and query-engine telemetry for one [`PassiveDb`]. Detached cells
/// by default; [`PassiveDb::attach_metrics`] re-homes them onto a shared
/// registry as `passive_*` metrics.
#[derive(Debug, Default, Clone)]
struct StoreMetrics {
    rows_ingested: Counter,
    nx_rows: Counter,
    queries: Counter,
    query_latency_us: Histogram,
    intern_names: Gauge,
    intern_tlds: Gauge,
    /// Logical row bytes (uncompressed layout) — `passive_dns_store_bytes`.
    store_bytes: Gauge,
    /// Resident row bytes after block compression —
    /// `passive_dns_compressed_bytes`.
    compressed_bytes: Gauge,
}

impl StoreMetrics {
    fn registered(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        StoreMetrics {
            rows_ingested: registry.counter_with("passive_rows_ingested_total", labels),
            nx_rows: registry.counter_with("passive_nx_rows_total", labels),
            queries: registry.counter_with("passive_queries_total", labels),
            query_latency_us: registry.histogram_with("passive_query_latency_us", labels),
            intern_names: registry.gauge_with("passive_intern_names", labels),
            intern_tlds: registry.gauge_with("passive_intern_tlds", labels),
            store_bytes: registry.gauge_with("passive_dns_store_bytes", labels),
            compressed_bytes: registry.gauge_with("passive_dns_compressed_bytes", labels),
        }
    }
}

/// The passive-DNS database (Farsight substitute).
#[derive(Debug)]
pub struct PassiveDb {
    interner: Interner,
    /// Sealed compressed blocks, each exactly `block_rows` rows.
    sealed: Vec<Block>,
    sealed_rows: usize,
    sealed_bytes: usize,
    /// Tail size that triggers a seal; `usize::MAX` = never (uncompressed).
    block_rows: usize,
    // Struct-of-arrays tail storage (rows not yet sealed).
    col_name: Vec<NameId>,
    col_day: Vec<u32>,
    col_sensor: Vec<u16>,
    col_rcode: Vec<u8>,
    col_count: Vec<u32>,
    per_name: HashMap<NameId, NameAggregate>,
    metrics: StoreMetrics,
    /// Optional flight recorder ([`PassiveDb::attach_journal`]); ingest
    /// heartbeats every [`INGEST_HEARTBEAT_ROWS`] rows land here.
    journal: Option<Journal>,
}

impl Default for PassiveDb {
    fn default() -> Self {
        Self::new()
    }
}

impl PassiveDb {
    /// A compressed store: seals a block every [`BLOCK_ROWS`] rows.
    pub fn new() -> Self {
        Self::with_block_rows(BLOCK_ROWS)
    }

    /// The legacy flat layout: rows stay in uncompressed columns forever.
    /// This is the reference engine for the compressed-vs-uncompressed
    /// property tests and the serial baseline in the big-world benchmark.
    pub fn uncompressed() -> Self {
        Self::with_block_rows(usize::MAX)
    }

    /// A compressed store sealing every `block_rows` rows (clamped to at
    /// least 1). Small values force many blocks on tiny inputs — the knob
    /// the property tests use to exercise the sealed path.
    pub fn with_block_rows(block_rows: usize) -> Self {
        PassiveDb {
            interner: Interner::default(),
            sealed: Vec::new(),
            sealed_rows: 0,
            sealed_bytes: 0,
            block_rows: block_rows.max(1),
            col_name: Vec::new(),
            col_day: Vec::new(),
            col_sensor: Vec::new(),
            col_rcode: Vec::new(),
            col_count: Vec::new(),
            per_name: HashMap::new(),
            metrics: StoreMetrics::default(),
            journal: None,
        }
    }

    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Re-homes this store's telemetry onto `registry` (as
    /// `passive_rows_ingested_total`, `passive_nx_rows_total`,
    /// `passive_queries_total`, `passive_query_latency_us`,
    /// `passive_intern_names`, `passive_intern_tlds`,
    /// `passive_dns_store_bytes`, `passive_dns_compressed_bytes`), carrying
    /// counter and gauge values over. Latency samples recorded before
    /// attaching stay in the detached histogram, so attach before running
    /// queries.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.attach_metrics_labeled(registry, &[]);
    }

    /// [`PassiveDb::attach_metrics`] with a label set on every series —
    /// how a [`crate::ShardedStore`](crate::shard::ShardedStore) gives each
    /// shard its own `passive_*{shard="i"}` cells. Per-shard series roll up
    /// through the snapshot algebra: [`nxd_telemetry::Snapshot::counter_total`]
    /// sums across label sets and
    /// [`nxd_telemetry::Snapshot::histogram_total`] merges them.
    pub fn attach_metrics_labeled(&mut self, registry: &Registry, labels: &[(&str, &str)]) {
        let next = StoreMetrics::registered(registry, labels);
        next.rows_ingested.add(self.metrics.rows_ingested.get());
        next.nx_rows.add(self.metrics.nx_rows.get());
        next.queries.add(self.metrics.queries.get());
        next.intern_names.set(self.interner.len() as i64);
        next.intern_tlds.set(self.interner.tld_count() as i64);
        next.store_bytes.set(self.row_bytes() as i64);
        next.compressed_bytes.set(self.compressed_bytes() as i64);
        self.metrics = next;
    }

    /// Attaches a flight recorder: every [`INGEST_HEARTBEAT_ROWS`] appended
    /// rows emit one `store`-component heartbeat event (rows so far,
    /// distinct names), and every sealed block emits a `store` event with
    /// its compression ratio, so a live observer sees ingest advance long
    /// before the batch completes.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Times one query-engine call: records latency (µs) and bumps the
    /// query counter when the returned guard drops.
    pub(crate) fn time_query(&self) -> QueryTimer<'_> {
        QueryTimer {
            metrics: &self.metrics,
            watch: Stopwatch::start(),
        }
    }

    /// Number of rows (pre-aggregated observations).
    pub fn row_count(&self) -> usize {
        self.sealed_rows + self.col_name.len()
    }

    /// Number of distinct names ever observed.
    pub fn distinct_names(&self) -> usize {
        self.interner.len()
    }

    /// Interns a name and appends an observation in one step.
    pub fn record(
        &mut self,
        name: &Name,
        day: u32,
        sensor: u16,
        rcode: RCode,
        count: u32,
    ) -> NameId {
        let id = self.interner.intern(name);
        self.append(Observation {
            name: id,
            day,
            sensor,
            rcode: rcode.to_u8(),
            count,
        });
        id
    }

    /// Interns a pre-normalized name string and appends an observation.
    pub fn record_str(
        &mut self,
        name: &str,
        day: u32,
        sensor: u16,
        rcode: RCode,
        count: u32,
    ) -> NameId {
        let id = self.interner.intern_str(name);
        self.append(Observation {
            name: id,
            day,
            sensor,
            rcode: rcode.to_u8(),
            count,
        });
        id
    }

    /// Appends a row whose name id was produced by this store's interner.
    pub fn append(&mut self, obs: Observation) {
        debug_assert!(
            (obs.name.0 as usize) < self.interner.len(),
            "foreign NameId"
        );
        self.col_name.push(obs.name);
        self.col_day.push(obs.day);
        self.col_sensor.push(obs.sensor);
        self.col_rcode.push(obs.rcode);
        self.col_count.push(obs.count);
        self.metrics.rows_ingested.inc();
        if obs.rcode == RCode::NxDomain.to_u8() {
            self.metrics.nx_rows.inc();
        }
        if let Some(journal) = &self.journal {
            let rows = self.metrics.rows_ingested.get();
            if rows.is_multiple_of(INGEST_HEARTBEAT_ROWS) {
                journal.info(
                    "store",
                    "ingest heartbeat",
                    &[
                        ("rows", &rows.to_string()),
                        ("names", &self.interner.len().to_string()),
                    ],
                );
            }
        }
        self.metrics.intern_names.set(self.interner.len() as i64);
        self.metrics
            .intern_tlds
            .set(self.interner.tld_count() as i64);

        let agg = self.per_name.entry(obs.name).or_insert(NameAggregate {
            first_nx_day: u32::MAX,
            last_nx_day: 0,
            nx_queries: 0,
            total_queries: 0,
        });
        agg.total_queries += obs.count as u64;
        if obs.rcode == RCode::NxDomain.to_u8() {
            agg.nx_queries += obs.count as u64;
            agg.first_nx_day = agg.first_nx_day.min(obs.day);
            agg.last_nx_day = agg.last_nx_day.max(obs.day);
        }

        if self.col_name.len() >= self.block_rows {
            self.seal_tail();
        }
        self.metrics.store_bytes.set(self.row_bytes() as i64);
        self.metrics
            .compressed_bytes
            .set(self.compressed_bytes() as i64);
    }

    /// Seals the current tail into a compressed block.
    fn seal_tail(&mut self) {
        let block = Block::seal(
            (
                &self.col_name,
                &self.col_day,
                &self.col_sensor,
                &self.col_rcode,
                &self.col_count,
            ),
            RCode::NxDomain.to_u8(),
            &self.interner,
        );
        debug_assert_eq!(block.summary().rows, block.rows());
        self.sealed_rows += block.rows();
        self.sealed_bytes += block.encoded_bytes();
        if let Some(journal) = &self.journal {
            journal.info(
                "store",
                "block sealed",
                &[
                    ("block", &self.sealed.len().to_string()),
                    ("rows", &block.rows().to_string()),
                    ("nx_rows", &block.summary().nx_rows.to_string()),
                    ("encoded_bytes", &block.encoded_bytes().to_string()),
                    ("raw_bytes", &(block.rows() * ROW_BYTES).to_string()),
                ],
            );
        }
        self.sealed.push(block);
        self.col_name.clear();
        self.col_day.clear();
        self.col_sensor.clear();
        self.col_rcode.clear();
        self.col_count.clear();
    }

    /// The aggregate for a name id, if it has any rows.
    pub fn aggregate(&self, id: NameId) -> Option<&NameAggregate> {
        self.per_name.get(&id)
    }

    /// The aggregate for a name string.
    pub fn aggregate_of(&self, name: &str) -> Option<&NameAggregate> {
        self.interner
            .get(name)
            .and_then(|id| self.per_name.get(&id))
    }

    /// Iterates rows as [`Observation`]s in append order (sealed blocks
    /// first — which *is* append order — then the tail).
    pub fn rows(&self) -> impl Iterator<Item = Observation> + '_ {
        self.sealed
            .iter()
            .flat_map(|b| {
                let mut scratch = BlockScratch::default();
                b.decode_into(&mut scratch);
                (0..b.rows())
                    .map(|i| Observation {
                        name: scratch.names[i],
                        day: scratch.days[i],
                        sensor: scratch.sensors[i],
                        rcode: scratch.rcodes[i],
                        count: scratch.counts[i],
                    })
                    .collect::<Vec<_>>()
            })
            .chain((0..self.col_name.len()).map(move |i| self.tail_row(i)))
    }

    fn tail_row(&self, i: usize) -> Observation {
        Observation {
            name: self.col_name[i],
            day: self.col_day[i],
            sensor: self.col_sensor[i],
            rcode: self.col_rcode[i],
            count: self.col_count[i],
        }
    }

    /// Fetches row `i`. Random access into a sealed block decodes that
    /// block (used by the traffic generators' spot checks; scans should
    /// use [`PassiveDb::rows`] or the query engine instead).
    ///
    /// # Panics
    /// Panics if `i >= row_count()`.
    pub fn row(&self, i: usize) -> Observation {
        if i < self.sealed_rows {
            // Every sealed block holds exactly `block_rows` rows.
            let block = &self.sealed[i / self.block_rows];
            let off = i % self.block_rows;
            let mut scratch = BlockScratch::default();
            block.decode_into(&mut scratch);
            Observation {
                name: scratch.names[off],
                day: scratch.days[off],
                sensor: scratch.sensors[off],
                rcode: scratch.rcodes[off],
                count: scratch.counts[off],
            }
        } else {
            self.tail_row(i - self.sealed_rows)
        }
    }

    /// The sealed compressed blocks, in append order.
    pub(crate) fn sealed_blocks(&self) -> &[Block] {
        &self.sealed
    }

    /// Raw column slices for the (uncompressed) tail.
    pub(crate) fn tail_columns(&self) -> RawColumns<'_> {
        (
            &self.col_name,
            &self.col_day,
            &self.col_sensor,
            &self.col_rcode,
            &self.col_count,
        )
    }

    /// Runs `f` over the column slices of every chunk of the store — each
    /// sealed block (decoded into a reused scratch) and then the tail —
    /// skipping sealed blocks whose zone maps cannot satisfy `filter`.
    /// Chunks arrive in append order, so a scan over them visits rows in
    /// exactly the order the flat layout would.
    pub(crate) fn for_each_block<F: FnMut(RawColumns<'_>)>(&self, filter: &ScanFilter, mut f: F) {
        let mut scratch = BlockScratch::default();
        for block in &self.sealed {
            if !filter.admits(block.summary()) {
                continue;
            }
            block.decode_into(&mut scratch);
            f((
                &scratch.names,
                &scratch.days,
                &scratch.sensors,
                &scratch.rcodes,
                &scratch.counts,
            ));
        }
        if !self.col_name.is_empty() {
            f(self.tail_columns());
        }
    }

    /// Iterates `(id, aggregate)` for every name with at least one NXDOMAIN
    /// observation.
    pub fn nx_names(&self) -> impl Iterator<Item = (NameId, &NameAggregate)> {
        self.per_name
            .iter()
            .filter(|(_, a)| a.nx_queries > 0)
            .map(|(&id, a)| (id, a))
    }

    /// Merges another store built against the *same logical name space*
    /// (used by the parallel SIE ingest: shards intern independently, merge
    /// re-interns by string).
    pub fn merge(&mut self, other: &PassiveDb) {
        for obs in other.rows() {
            let name = other.interner.resolve(obs.name);
            let id = self.interner.intern_str(name);
            self.append(Observation { name: id, ..obs });
        }
    }

    /// Logical bytes of row storage in the uncompressed layout — the
    /// "before" side of the compression ratio.
    pub fn row_bytes(&self) -> usize {
        self.row_count() * ROW_BYTES
    }

    /// Resident bytes of row storage: encoded sealed blocks plus the
    /// uncompressed tail — the "after" side of the compression ratio.
    pub fn compressed_bytes(&self) -> usize {
        self.sealed_bytes + self.col_name.len() * ROW_BYTES
    }
}

/// Drop guard for [`PassiveDb::time_query`].
pub(crate) struct QueryTimer<'a> {
    metrics: &'a StoreMetrics,
    watch: Stopwatch,
}

impl Drop for QueryTimer<'_> {
    fn drop(&mut self) {
        self.metrics.queries.inc();
        self.metrics
            .query_latency_us
            .record(self.watch.elapsed_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn record_and_aggregate() {
        let mut db = PassiveDb::new();
        db.record(&n("dead.com"), 100, 0, RCode::NxDomain, 3);
        db.record(&n("dead.com"), 105, 1, RCode::NxDomain, 2);
        db.record(&n("dead.com"), 90, 0, RCode::NoError, 7);
        let agg = db.aggregate_of("dead.com").unwrap();
        assert_eq!(agg.first_nx_day, 100);
        assert_eq!(agg.last_nx_day, 105);
        assert_eq!(agg.nx_queries, 5);
        assert_eq!(agg.total_queries, 12);
        assert_eq!(db.row_count(), 3);
        assert_eq!(db.distinct_names(), 1);
    }

    #[test]
    fn nx_names_filters_noerror_only() {
        let mut db = PassiveDb::new();
        db.record(&n("alive.com"), 10, 0, RCode::NoError, 4);
        db.record(&n("dead.com"), 10, 0, RCode::NxDomain, 1);
        let nx: Vec<_> = db.nx_names().collect();
        assert_eq!(nx.len(), 1);
        assert_eq!(db.interner().resolve(nx[0].0), "dead.com");
    }

    #[test]
    fn rows_roundtrip() {
        let mut db = PassiveDb::new();
        db.record_str("a.com", 1, 2, RCode::NxDomain, 9);
        let rows: Vec<_> = db.rows().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].day, 1);
        assert_eq!(rows[0].sensor, 2);
        assert_eq!(rows[0].count, 9);
    }

    #[test]
    fn sealed_blocks_preserve_rows_and_random_access() {
        let mut compressed = PassiveDb::with_block_rows(8);
        let mut flat = PassiveDb::uncompressed();
        for i in 0..37u32 {
            let name = format!("n{}.com", i % 11);
            let rc = if i % 3 == 0 {
                RCode::NxDomain
            } else {
                RCode::NoError
            };
            let sensor = u16::try_from(i % 4).unwrap();
            compressed.record_str(&name, 100 + i, sensor, rc, i + 1);
            flat.record_str(&name, 100 + i, sensor, rc, i + 1);
        }
        assert_eq!(compressed.sealed_blocks().len(), 4);
        assert_eq!(compressed.row_count(), flat.row_count());
        let a: Vec<_> = compressed.rows().collect();
        let b: Vec<_> = flat.rows().collect();
        assert_eq!(a, b);
        for i in [0usize, 7, 8, 15, 31, 32, 36] {
            assert_eq!(compressed.row(i), flat.row(i), "row {i}");
        }
        assert_eq!(compressed.row_bytes(), flat.row_bytes());
        assert_eq!(flat.compressed_bytes(), flat.row_bytes());
        assert!(compressed.compressed_bytes() > 0);
    }

    #[test]
    fn scan_filter_skips_blocks_outside_zone_maps() {
        let mut db = PassiveDb::with_block_rows(4);
        for i in 0..8u32 {
            // First block: days 100..104, all NoError. Second: 200..204, NX.
            let (day, rc) = if i < 4 {
                (100 + i, RCode::NoError)
            } else {
                (200 + i, RCode::NxDomain)
            };
            db.record_str(&format!("n{i}.com"), day, 0, rc, 1);
        }
        let mut chunks = 0;
        db.for_each_block(&ScanFilter::all(), |_| chunks += 1);
        assert_eq!(chunks, 2);
        let mut nx_chunks = 0;
        db.for_each_block(&ScanFilter::rcode(RCode::NxDomain.to_u8()), |cols| {
            nx_chunks += 1;
            assert!(cols.3.iter().all(|&rc| rc == RCode::NxDomain.to_u8()));
        });
        assert_eq!(nx_chunks, 1);
        let mut day_chunks = 0;
        db.for_each_block(&ScanFilter::day_range(0, 150), |_| day_chunks += 1);
        assert_eq!(day_chunks, 1);
    }

    #[test]
    fn merge_reinterns() {
        let mut a = PassiveDb::new();
        a.record_str("x.com", 1, 0, RCode::NxDomain, 1);
        let mut b = PassiveDb::with_block_rows(2);
        b.record_str("y.com", 2, 1, RCode::NxDomain, 2);
        b.record_str("x.com", 3, 1, RCode::NxDomain, 4);
        b.record_str("z.com", 4, 1, RCode::NoError, 8);
        a.merge(&b);
        assert_eq!(a.distinct_names(), 3);
        assert_eq!(a.aggregate_of("x.com").unwrap().nx_queries, 5);
        assert_eq!(a.aggregate_of("y.com").unwrap().nx_queries, 2);
        assert_eq!(a.aggregate_of("z.com").unwrap().total_queries, 8);
    }

    #[test]
    fn aggregate_missing_name() {
        let db = PassiveDb::new();
        assert!(db.aggregate_of("nothing.com").is_none());
    }

    #[test]
    fn journal_heartbeat_and_seal_fire_on_the_row_interval() {
        let mut db = PassiveDb::new();
        let journal = Journal::with_capacity(8);
        db.attach_journal(journal.clone());
        let id = db.interner_mut().intern_str("hb.com");
        let obs = Observation {
            name: id,
            day: 1,
            sensor: 0,
            rcode: RCode::NxDomain.to_u8(),
            count: 1,
        };
        for _ in 0..INGEST_HEARTBEAT_ROWS - 1 {
            db.append(obs);
        }
        assert!(journal.is_empty(), "heartbeat fired early");
        db.append(obs);
        let events = journal.snapshot();
        // Row 65,536 both heartbeats and seals the first block.
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.component == "store"));
        assert!(events.iter().any(|e| e
            .fields
            .iter()
            .any(|(k, v)| k == "rows" && v == &INGEST_HEARTBEAT_ROWS.to_string())));
        assert!(events.iter().any(|e| e.message == "block sealed"));
        assert_eq!(db.sealed_blocks().len(), 1);
        // One name repeated 64Ki times packs into ~1-byte-per-column codes.
        assert!(db.compressed_bytes() * 3 < db.row_bytes());
    }

    #[test]
    fn attach_metrics_tracks_ingest() {
        let registry = Registry::new();
        let mut db = PassiveDb::new();
        db.record_str("early.com", 1, 0, RCode::NxDomain, 1);
        db.attach_metrics(&registry);
        // Pre-attach rows carried over.
        assert_eq!(
            registry
                .snapshot()
                .counter_total("passive_rows_ingested_total"),
            1
        );
        db.record_str("late.com", 2, 0, RCode::NxDomain, 2);
        db.record_str("fine.com", 2, 0, RCode::NoError, 3);
        {
            let _t = db.time_query();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("passive_rows_ingested_total"), 3);
        assert_eq!(snap.counter_total("passive_nx_rows_total"), 2);
        assert_eq!(snap.counter_total("passive_queries_total"), 1);
        assert_eq!(snap.gauge_value("passive_intern_names"), Some(3));
        assert_eq!(snap.gauge_value("passive_intern_tlds"), Some(1));
        assert_eq!(
            snap.histogram_named("passive_query_latency_us")
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    fn byte_gauges_track_compression_live() {
        let registry = Registry::new();
        let mut db = PassiveDb::with_block_rows(16);
        db.attach_metrics(&registry);
        for i in 0..40u32 {
            db.record_str(&format!("g{}.com", i % 4), 500 + i, 0, RCode::NxDomain, 1);
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.gauge_value("passive_dns_store_bytes"),
            Some(db.row_bytes() as i64)
        );
        assert_eq!(
            snap.gauge_value("passive_dns_compressed_bytes"),
            Some(db.compressed_bytes() as i64)
        );
        // Two sealed blocks of tiny dictionaries beat the flat layout.
        assert!(db.compressed_bytes() < db.row_bytes());
    }
}
