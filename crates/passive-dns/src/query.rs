//! The analysis/query engine over [`PassiveDb`] — the stand-in for the
//! paper's BigQuery mirror (§3.1). Each function corresponds to a query the
//! paper runs: monthly NXDOMAIN series (Fig. 3), TLD group-by (Fig. 4),
//! lifespan decay (Fig. 5), expiry-aligned averages (Fig. 6), deterministic
//! 1/N sampling (§4.2), and long-lived NXDomain counts (§4.4).

use std::collections::{BTreeMap, HashMap};

use nxd_dns_sim::SimTime;
use nxd_dns_wire::RCode;

use crate::hash::fnv1a;
use crate::intern::NameId;
use crate::store::{PassiveDb, ScanFilter};

/// Row of the TLD distribution (Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "query results are pure; dropping them unread answers nothing"]
pub struct TldStat {
    pub tld: String,
    pub nx_names: u64,
    pub nx_queries: u64,
}

/// Row of the lifespan histogram (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "query results are pure; dropping them unread answers nothing"]
pub struct LifespanBucket {
    /// Days since the name was first seen as NXDomain.
    pub day_offset: u32,
    /// Names receiving at least one query at this offset.
    pub names: u64,
    /// Total NXDOMAIN responses at this offset.
    pub queries: u64,
}

/// Total responses carrying the given rcode.
#[must_use]
pub fn total_responses(db: &PassiveDb, rcode: RCode) -> u64 {
    let _t = db.time_query();
    let want = rcode.to_u8();
    let mut total = 0u64;
    db.for_each_block(&ScanFilter::rcode(want), |(_, _, _, rcodes, counts)| {
        total += rcodes
            .iter()
            .zip(counts)
            .filter(|(&rc, _)| rc == want)
            .map(|(_, &c)| c as u64)
            .sum::<u64>();
    });
    total
}

/// Total NXDOMAIN responses (the paper's 1,069,114,764,701 at full scale).
#[must_use]
pub fn total_nx_responses(db: &PassiveDb) -> u64 {
    total_responses(db, RCode::NxDomain)
}

/// Number of distinct names that ever received an NXDOMAIN response (the
/// paper's 146,363,745,785 at full scale).
#[must_use]
pub fn distinct_nx_names(db: &PassiveDb) -> u64 {
    let _t = db.time_query();
    db.nx_names().count() as u64
}

/// NXDOMAIN responses bucketed by calendar month.
///
/// Returns `(month_index, responses)` sorted by month, where `month_index`
/// counts months since January 2014 (matching [`SimTime::month_index`]).
#[must_use]
pub fn monthly_nx_series(db: &PassiveDb) -> Vec<(i64, u64)> {
    let _t = db.time_query();
    let want = RCode::NxDomain.to_u8();
    let mut buckets: HashMap<i64, u64> = HashMap::new();
    db.for_each_block(&ScanFilter::rcode(want), |(_, days, _, rcodes, counts)| {
        for i in 0..days.len() {
            if rcodes[i] == want {
                let t = SimTime(days[i] as u64 * nxd_dns_sim::SECONDS_PER_DAY);
                *buckets.entry(t.month_index()).or_insert(0) += counts[i] as u64;
            }
        }
    });
    let mut out: Vec<_> = buckets.into_iter().collect();
    out.sort();
    out
}

/// Average NXDOMAIN responses per month for each calendar year (the exact
/// series Fig. 3 plots).
#[must_use]
pub fn yearly_avg_monthly_nx(db: &PassiveDb) -> Vec<(i32, f64)> {
    yearly_from_monthly(&monthly_nx_series(db))
}

/// Folds a monthly series into per-year monthly averages. Shared by the
/// serial and sharded engines so both produce bit-identical floats from
/// the same monthly totals.
pub fn yearly_from_monthly(monthly: &[(i64, u64)]) -> Vec<(i32, f64)> {
    let mut per_year: HashMap<i32, (u64, u32)> = HashMap::new();
    for &(month_index, responses) in monthly {
        let year = i32::try_from(2014 + month_index.div_euclid(12)).unwrap_or(i32::MAX);
        let entry = per_year.entry(year).or_insert((0, 0));
        entry.0 += responses;
        entry.1 += 1;
    }
    let mut out: Vec<_> = per_year
        .into_iter()
        .map(|(y, (total, months))| (y, total as f64 / months.max(1) as f64))
        .collect();
    out.sort_by_key(|&(y, _)| y);
    out
}

/// NXDomain counts and query volumes grouped by TLD, sorted by descending
/// name count (Fig. 4 plots the top 20).
pub fn tld_distribution(db: &PassiveDb) -> Vec<TldStat> {
    let _t = db.time_query();
    // Names per TLD come from the aggregate index; queries need a scan.
    let mut names_by_tld: HashMap<u32, u64> = HashMap::new();
    for (id, _) in db.nx_names() {
        *names_by_tld.entry(db.interner().tld_id(id)).or_insert(0) += 1;
    }
    let want = RCode::NxDomain.to_u8();
    let mut queries_by_tld: HashMap<u32, u64> = HashMap::new();
    db.for_each_block(&ScanFilter::rcode(want), |(ids, _, _, rcodes, counts)| {
        for i in 0..ids.len() {
            if rcodes[i] == want {
                *queries_by_tld
                    .entry(db.interner().tld_id(ids[i]))
                    .or_insert(0) += counts[i] as u64;
            }
        }
    });
    let mut out: Vec<TldStat> = names_by_tld
        .into_iter()
        .map(|(tld_id, nx_names)| TldStat {
            tld: db.interner().resolve_tld(tld_id).to_string(),
            nx_names,
            nx_queries: queries_by_tld.get(&tld_id).copied().unwrap_or(0),
        })
        .collect();
    out.sort_by(|a, b| b.nx_names.cmp(&a.nx_names).then_with(|| a.tld.cmp(&b.tld)));
    out
}

/// Deterministic 1-in-`n` sample of NXDomain names (§4.2's 1/1,000
/// sampling). Stable across runs: membership is a salted hash of the name.
pub fn sample_nx_names(db: &PassiveDb, n: u64, salt: u64) -> Vec<NameId> {
    let _t = db.time_query();
    assert!(n > 0, "sampling ratio must be positive");
    let mut out: Vec<NameId> = db
        .nx_names()
        .filter(|(id, _)| fnv1a(db.interner().resolve(*id).as_bytes(), salt).is_multiple_of(n))
        .map(|(id, _)| id)
        .collect();
    out.sort();
    out
}

/// [`sample_nx_names`] resolved to name strings and sorted — the canonical,
/// interner-independent form a sharded engine can be compared against.
pub fn sample_nx_name_strings(db: &PassiveDb, n: u64, salt: u64) -> Vec<String> {
    let mut out: Vec<String> = sample_nx_names(db, n, salt)
        .into_iter()
        .map(|id| db.interner().resolve(id).to_string())
        .collect();
    out.sort();
    out
}

/// Fig. 5: for each day-offset since a name's first NXDOMAIN observation,
/// how many names still receive queries and how many responses they get.
pub fn lifespan_histogram(db: &PassiveDb, max_days: u32) -> Vec<LifespanBucket> {
    let _t = db.time_query();
    let want = RCode::NxDomain.to_u8();
    let mut queries = vec![0u64; max_days as usize + 1];
    let mut names: Vec<std::collections::HashSet<NameId>> =
        vec![std::collections::HashSet::new(); max_days as usize + 1];
    db.for_each_block(
        &ScanFilter::rcode(want),
        |(ids, days, _, rcodes, counts)| {
            for i in 0..ids.len() {
                if rcodes[i] != want {
                    continue;
                }
                let Some(agg) = db.aggregate(ids[i]) else {
                    continue;
                };
                let offset = days[i].saturating_sub(agg.first_nx_day);
                if offset <= max_days {
                    queries[offset as usize] += counts[i] as u64;
                    names[offset as usize].insert(ids[i]);
                }
            }
        },
    );
    (0..=max_days)
        .map(|d| LifespanBucket {
            day_offset: d,
            names: names[d as usize].len() as u64,
            queries: queries[d as usize],
        })
        .collect()
}

/// Fig. 6: average daily queries per domain, aligned on each domain's
/// status-change day (`expiry[name]`), from `before` days before to `after`
/// days after. Offsets with no observations report 0.
pub fn expiry_aligned_series(
    db: &PassiveDb,
    expiry_day: &HashMap<NameId, u32>,
    before: u32,
    after: u32,
) -> Vec<(i32, f64)> {
    let _t = db.time_query();
    if expiry_day.is_empty() {
        return Vec::new();
    }
    let totals = expiry_aligned_totals(db, expiry_day, before, after);
    let denom = expiry_day.len() as f64;
    totals
        .iter()
        .enumerate()
        .map(|(i, &t)| (day_offset(i, before), t as f64 / denom))
        .collect()
}

/// Slot index → signed day offset relative to expiry. Shared by the serial
/// and sharded engines so both label series identically; saturates instead
/// of truncating on (impossible in practice) >i32 spans.
pub(crate) fn day_offset(slot: usize, before: u32) -> i32 {
    i32::try_from(slot as i64 - i64::from(before)).unwrap_or(i32::MAX)
}

/// The un-normalized totals behind [`expiry_aligned_series`]: summed query
/// counts per day-offset, one slot per offset in `[-before, after]`. The
/// sharded engine sums these across shards before dividing once by the
/// full panel size, which keeps the division bit-identical to the serial
/// path.
pub(crate) fn expiry_aligned_totals(
    db: &PassiveDb,
    expiry_day: &HashMap<NameId, u32>,
    before: u32,
    after: u32,
) -> Vec<u64> {
    let span = (before + after + 1) as usize;
    let mut totals = vec![0u64; span];
    // Zone-map hint: only days within [min(e)-before, max(e)+after] over the
    // panel can contribute, so blocks wholly outside that window skip.
    let day_lo = expiry_day
        .values()
        .map(|&e| e.saturating_sub(before))
        .min()
        .unwrap_or(u32::MAX);
    let day_hi = expiry_day
        .values()
        .map(|&e| e.saturating_add(after))
        .max()
        .unwrap_or(0);
    db.for_each_block(
        &ScanFilter::day_range(day_lo, day_hi),
        |(ids, days, _, _, counts)| {
            for i in 0..ids.len() {
                let Some(&e) = expiry_day.get(&ids[i]) else {
                    continue;
                };
                let offset = days[i] as i64 - e as i64;
                if offset < -(before as i64) || offset > after as i64 {
                    continue;
                }
                totals[(offset + before as i64) as usize] += counts[i] as u64;
            }
        },
    );
    totals
}

/// Names that have been NXDomain for at least `min_days` (observed NX span),
/// with their total NXDOMAIN query volume — §4.4's "1,018,964 NXDomains
/// receiving 107,020,820 queries while non-existent for more than 5 years".
#[must_use]
pub fn long_lived_nx(db: &PassiveDb, min_days: u32) -> (u64, u64) {
    let _t = db.time_query();
    let mut names = 0u64;
    let mut queries = 0u64;
    for (_, agg) in db.nx_names() {
        if agg.last_nx_day.saturating_sub(agg.first_nx_day) >= min_days {
            names += 1;
            queries += agg.nx_queries;
        }
    }
    (names, queries)
}

/// Response counts per rcode — the denominator behind the related-work
/// statistic the paper opens with ("previous studies discovered that 10%
/// to 42% of DNS responses are NXDomain responses", Jung et al. / Plonka
/// et al.). Returns `(rcode wire value, responses)` sorted by rcode.
#[must_use]
pub fn rcode_breakdown(db: &PassiveDb) -> Vec<(u8, u64)> {
    let _t = db.time_query();
    let mut map: HashMap<u8, u64> = HashMap::new();
    db.for_each_block(&ScanFilter::all(), |(_, _, _, rcodes, counts)| {
        for i in 0..rcodes.len() {
            *map.entry(rcodes[i]).or_insert(0) += counts[i] as u64;
        }
    });
    let mut out: Vec<_> = map.into_iter().collect();
    out.sort();
    out
}

/// The NXDOMAIN share of all responses (0.0–1.0).
#[must_use]
pub fn nxdomain_share(db: &PassiveDb) -> f64 {
    let breakdown = rcode_breakdown(db);
    let total: u64 = breakdown.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return 0.0;
    }
    let nx = breakdown
        .iter()
        .find(|&&(rc, _)| rc == RCode::NxDomain.to_u8())
        .map(|&(_, n)| n)
        .unwrap_or(0);
    nx as f64 / total as f64
}

/// NXDOMAIN responses grouped by sensor id (coverage diagnostics). A
/// `BTreeMap` so the serial and sharded engines agree element-for-element
/// under iteration, not just as sets.
#[must_use]
pub fn nx_by_sensor(db: &PassiveDb) -> BTreeMap<u16, u64> {
    let _t = db.time_query();
    let want = RCode::NxDomain.to_u8();
    let mut out = BTreeMap::new();
    db.for_each_block(
        &ScanFilter::rcode(want),
        |(_, _, sensors, rcodes, counts)| {
            for i in 0..sensors.len() {
                if rcodes[i] == want {
                    *out.entry(sensors[i]).or_insert(0) += counts[i] as u64;
                }
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_sim::SimTime;

    fn day(y: i32, m: u32, d: u32) -> u32 {
        SimTime::from_ymd(y, m, d).day_number() as u32
    }

    fn sample_db() -> PassiveDb {
        let mut db = PassiveDb::new();
        db.record_str("dead.com", day(2014, 1, 1), 0, RCode::NxDomain, 10);
        db.record_str("dead.com", day(2014, 1, 15), 0, RCode::NxDomain, 5);
        db.record_str("dead.com", day(2014, 2, 1), 1, RCode::NxDomain, 2);
        db.record_str("gone.ru", day(2014, 1, 2), 1, RCode::NxDomain, 7);
        db.record_str("alive.com", day(2014, 1, 3), 0, RCode::NoError, 100);
        db
    }

    #[test]
    fn totals() {
        let db = sample_db();
        assert_eq!(total_nx_responses(&db), 24);
        assert_eq!(total_responses(&db, RCode::NoError), 100);
        assert_eq!(distinct_nx_names(&db), 2);
    }

    #[test]
    fn monthly_series_buckets_correctly() {
        let db = sample_db();
        let series = monthly_nx_series(&db);
        assert_eq!(series, vec![(0, 22), (1, 2)]);
    }

    #[test]
    fn yearly_average() {
        let db = sample_db();
        let yearly = yearly_avg_monthly_nx(&db);
        assert_eq!(yearly.len(), 1);
        assert_eq!(yearly[0].0, 2014);
        assert!((yearly[0].1 - 12.0).abs() < 1e-9); // (22 + 2) / 2 months
    }

    #[test]
    fn tld_distribution_sorted() {
        let db = sample_db();
        let dist = tld_distribution(&db);
        assert_eq!(dist.len(), 2);
        // .com and .ru both have 1 NX name; ties break alphabetically.
        assert_eq!(dist[0].tld, "com");
        assert_eq!(dist[0].nx_queries, 17);
        assert_eq!(dist[1].tld, "ru");
        assert_eq!(dist[1].nx_queries, 7);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let mut db = PassiveDb::new();
        for i in 0..10_000 {
            db.record_str(&format!("d{i}.com"), 16_000, 0, RCode::NxDomain, 1);
        }
        let s1 = sample_nx_names(&db, 100, 42);
        let s2 = sample_nx_names(&db, 100, 42);
        assert_eq!(s1, s2);
        // Expect ~100 of 10k; allow generous slack.
        assert!((50..200).contains(&s1.len()), "got {}", s1.len());
        let s3 = sample_nx_names(&db, 100, 43);
        assert_ne!(s1, s3);
    }

    #[test]
    fn lifespan_histogram_offsets() {
        let db = sample_db();
        let hist = lifespan_histogram(&db, 60);
        // dead.com first NX at 2014-01-01: offsets 0, 14, 31. gone.ru: offset 0.
        assert_eq!(hist[0].names, 2);
        assert_eq!(hist[0].queries, 17);
        assert_eq!(hist[14].names, 1);
        assert_eq!(hist[14].queries, 5);
        assert_eq!(hist[31].queries, 2);
        assert_eq!(hist[1].names, 0);
    }

    #[test]
    fn expiry_alignment() {
        let mut db = PassiveDb::new();
        let e = day(2015, 6, 1);
        let id = db.record_str("exp.com", e - 10, 0, RCode::NoError, 8);
        db.record_str("exp.com", e + 5, 0, RCode::NxDomain, 4);
        let mut expiry = HashMap::new();
        expiry.insert(id, e);
        let series = expiry_aligned_series(&db, &expiry, 60, 120);
        let at = |off: i32| series.iter().find(|&&(o, _)| o == off).unwrap().1;
        assert!((at(-10) - 8.0).abs() < 1e-9);
        assert!((at(5) - 4.0).abs() < 1e-9);
        assert_eq!(at(0), 0.0);
        assert_eq!(series.len(), 181);
    }

    #[test]
    fn long_lived_threshold() {
        let db = sample_db();
        // dead.com spans 31 days of NX observations; gone.ru spans 0.
        assert_eq!(long_lived_nx(&db, 30), (1, 17));
        assert_eq!(long_lived_nx(&db, 0), (2, 24));
        assert_eq!(long_lived_nx(&db, 100), (0, 0));
    }

    #[test]
    fn rcode_breakdown_and_share() {
        let db = sample_db();
        let breakdown = rcode_breakdown(&db);
        // NOERROR (0) = 100, NXDOMAIN (3) = 24.
        assert_eq!(breakdown, vec![(0, 100), (3, 24)]);
        let share = nxdomain_share(&db);
        assert!((share - 24.0 / 124.0).abs() < 1e-12);
        assert_eq!(nxdomain_share(&PassiveDb::new()), 0.0);
    }

    #[test]
    fn sensor_grouping() {
        let db = sample_db();
        let by_sensor = nx_by_sensor(&db);
        assert_eq!(by_sensor[&0], 15);
        assert_eq!(by_sensor[&1], 9);
    }

    #[test]
    fn empty_expiry_map() {
        let db = sample_db();
        assert!(expiry_aligned_series(&db, &HashMap::new(), 10, 10).is_empty());
    }
}
