//! Compressed columnar blocks — the sealed, immutable storage unit behind
//! [`crate::store::PassiveDb`].
//!
//! Ingest appends into uncompressed tail columns; every [`BLOCK_ROWS`]
//! rows the tail is sealed into a [`Block`] whose five columns are encoded
//! independently, each with the cheapest of a few simple schemes:
//!
//! * **names** — already dictionary-encoded store-wide (the interner maps
//!   every qname to a dense `u32`); per block the encoder picks the
//!   smallest of a per-block dictionary (sorted distinct ids + packed
//!   indexes), a packed offset-from-min column, or a zigzag delta +
//!   varint stream.
//! * **days** — delta + varint (zigzag LEB128): day-ordered ingest
//!   collapses to one byte per row.
//! * **sensors** — per-block dictionary (sorted distinct ids + packed
//!   indexes); sensor fleets are small, so indexes are usually one byte.
//! * **rcodes** — run-length encoding when runs are long, raw bytes when
//!   they are not (the encoder compares exact sizes).
//! * **counts** — packed to the narrowest of 1/2/4 bytes.
//!
//! Each block also carries a [`BlockSummary`]: min/max day zone maps plus
//! exact per-rcode, per-sensor, per-month, and per-TLD NXDOMAIN totals.
//! Query kernels answer most of the §4 scale families from summaries
//! alone and use the zone maps to skip blocks a filter can never match;
//! decoding only happens for the row-level families (lifespan, expiry
//! alignment) and for `rows()` iteration. All summary tallies are exact
//! integer sums accumulated through `BTreeMap`, so merge results stay
//! bit-identical to the uncompressed engine.

use std::collections::BTreeMap;

use nxd_dns_sim::{SimTime, SECONDS_PER_DAY};

use crate::intern::{Interner, NameId};
use crate::store::RawColumns;

/// Rows per sealed block (~64 Ki). Power of two so `row / BLOCK_ROWS`
/// stays a shift in the random-access path.
pub const BLOCK_ROWS: usize = 65_536;

// ---- varint primitives -------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let low = v & 0x7F;
        v >>= 7;
        let byte = if v == 0 { low } else { low | 0x80 };
        out.push(byte.to_le_bytes()[0]);
        if v == 0 {
            break;
        }
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    v
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---- packed fixed-width column -----------------------------------------

/// A `u32` column packed at a fixed byte width of 1, 2, or 4.
#[derive(Debug, Clone)]
struct Packed {
    width: usize,
    bytes: Vec<u8>,
}

impl Packed {
    /// Narrowest width that represents every value `<= max`.
    fn width_for(max: u32) -> usize {
        if max < 1 << 8 {
            1
        } else if max < 1 << 16 {
            2
        } else {
            4
        }
    }

    fn encode(values: impl Iterator<Item = u32>, width: usize) -> Packed {
        let mut bytes = Vec::new();
        for v in values {
            let le = v.to_le_bytes();
            bytes.extend_from_slice(&le[..width]);
        }
        Packed { width, bytes }
    }

    fn get(&self, i: usize) -> u32 {
        let at = i * self.width;
        match self.width {
            1 => u32::from(self.bytes[at]),
            2 => u32::from(u16::from_le_bytes([self.bytes[at], self.bytes[at + 1]])),
            _ => u32::from_le_bytes([
                self.bytes[at],
                self.bytes[at + 1],
                self.bytes[at + 2],
                self.bytes[at + 3],
            ]),
        }
    }

    fn len(&self) -> usize {
        self.bytes.len() / self.width
    }

    fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

// ---- per-column encodings ----------------------------------------------

/// Name column: the encoder picks the smallest of three layouts.
#[derive(Debug, Clone)]
enum NameCol {
    /// Sorted distinct ids + packed dictionary indexes.
    Dict { dict: Vec<NameId>, idx: Packed },
    /// Packed offsets from the block's minimum id.
    Direct { min: u32, off: Packed },
    /// Zigzag delta + varint stream (first id stored raw).
    Delta {
        first: u32,
        stream: Vec<u8>,
        rows: usize,
    },
}

impl NameCol {
    fn encode(ids: &[NameId]) -> NameCol {
        let min = ids.iter().map(|id| id.0).min().unwrap_or(0);
        let max = ids.iter().map(|id| id.0).max().unwrap_or(0);

        let mut dict: Vec<NameId> = ids.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let dict_idx_width =
            Packed::width_for(u32::try_from(dict.len().saturating_sub(1)).unwrap_or(u32::MAX));
        let dict_size = dict.len() * 4 + ids.len() * dict_idx_width;

        let direct_width = Packed::width_for(max - min);
        let direct_size = ids.len() * direct_width;

        let mut stream = Vec::new();
        let mut prev = i64::from(ids.first().map_or(0, |id| id.0));
        for id in ids.iter().skip(1) {
            let v = i64::from(id.0);
            push_varint(&mut stream, zigzag(v - prev));
            prev = v;
        }
        let delta_size = 4 + stream.len();

        if delta_size <= dict_size && delta_size <= direct_size {
            NameCol::Delta {
                first: ids.first().map_or(0, |id| id.0),
                stream,
                rows: ids.len(),
            }
        } else if dict_size <= direct_size {
            let idx = Packed::encode(
                ids.iter().map(|id| {
                    let pos = dict.binary_search(id).expect("id is in its own dictionary");
                    u32::try_from(pos).expect("dictionary fits u32")
                }),
                dict_idx_width,
            );
            NameCol::Dict { dict, idx }
        } else {
            NameCol::Direct {
                min,
                off: Packed::encode(ids.iter().map(|id| id.0 - min), direct_width),
            }
        }
    }

    fn decode_into(&self, out: &mut Vec<NameId>) {
        out.clear();
        match self {
            NameCol::Dict { dict, idx } => {
                out.extend((0..idx.len()).map(|i| dict[idx.get(i) as usize]));
            }
            NameCol::Direct { min, off } => {
                out.extend((0..off.len()).map(|i| NameId(min + off.get(i))));
            }
            NameCol::Delta {
                first,
                stream,
                rows,
            } => {
                if *rows == 0 {
                    return;
                }
                out.push(NameId(*first));
                let mut prev = i64::from(*first);
                let mut pos = 0usize;
                for _ in 1..*rows {
                    prev += unzigzag(read_varint(stream, &mut pos));
                    out.push(NameId(
                        u32::try_from(prev).expect("name ids round-trip as u32"),
                    ));
                }
            }
        }
    }

    fn byte_len(&self) -> usize {
        match self {
            NameCol::Dict { dict, idx } => dict.len() * 4 + idx.byte_len(),
            NameCol::Direct { off, .. } => 4 + off.byte_len(),
            NameCol::Delta { stream, .. } => 4 + stream.len(),
        }
    }
}

/// Day column: delta + varint (zigzag), first day stored raw.
#[derive(Debug, Clone)]
struct DayCol {
    first: u32,
    stream: Vec<u8>,
    rows: usize,
}

impl DayCol {
    fn encode(days: &[u32]) -> DayCol {
        let mut stream = Vec::new();
        let mut prev = i64::from(days.first().copied().unwrap_or(0));
        for &d in days.iter().skip(1) {
            let v = i64::from(d);
            push_varint(&mut stream, zigzag(v - prev));
            prev = v;
        }
        DayCol {
            first: days.first().copied().unwrap_or(0),
            stream,
            rows: days.len(),
        }
    }

    fn decode_into(&self, out: &mut Vec<u32>) {
        out.clear();
        if self.rows == 0 {
            return;
        }
        out.push(self.first);
        let mut prev = i64::from(self.first);
        let mut pos = 0usize;
        for _ in 1..self.rows {
            prev += unzigzag(read_varint(&self.stream, &mut pos));
            out.push(u32::try_from(prev).expect("days round-trip as u32"));
        }
    }

    fn byte_len(&self) -> usize {
        4 + self.stream.len()
    }
}

/// Rcode column: RLE runs or raw bytes, whichever is smaller.
#[derive(Debug, Clone)]
enum RcodeCol {
    /// `(value, run length)` pairs, run lengths varint-encoded on seal.
    Rle {
        runs: Vec<(u8, u32)>,
    },
    Raw {
        bytes: Vec<u8>,
    },
}

impl RcodeCol {
    fn encode(rcodes: &[u8]) -> RcodeCol {
        let mut runs: Vec<(u8, u32)> = Vec::new();
        for &rc in rcodes {
            match runs.last_mut() {
                Some((v, n)) if *v == rc => *n += 1,
                _ => runs.push((rc, 1)),
            }
        }
        // A run costs ~2 bytes (value + short varint length); raw costs one
        // byte per row.
        if runs.len() * 2 <= rcodes.len() {
            RcodeCol::Rle { runs }
        } else {
            RcodeCol::Raw {
                bytes: rcodes.to_vec(),
            }
        }
    }

    fn decode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            RcodeCol::Rle { runs } => {
                for &(v, n) in runs {
                    out.resize(out.len() + n as usize, v);
                }
            }
            RcodeCol::Raw { bytes } => out.extend_from_slice(bytes),
        }
    }

    fn byte_len(&self) -> usize {
        match self {
            RcodeCol::Rle { runs } => runs.len() * 2,
            RcodeCol::Raw { bytes } => bytes.len(),
        }
    }
}

// ---- block summary ------------------------------------------------------

/// Zone maps and exact pre-aggregated totals for one sealed block.
///
/// Built once at seal time with `BTreeMap` accumulators (sorted output,
/// integer sums), so any merge over summaries is order-independent and
/// bit-identical to scanning the decoded rows.
#[derive(Debug, Clone)]
pub(crate) struct BlockSummary {
    pub rows: usize,
    /// Zone map: minimum day in the block.
    pub min_day: u32,
    /// Zone map: maximum day in the block.
    pub max_day: u32,
    /// Rows carrying NXDOMAIN.
    pub nx_rows: usize,
    /// Summed `count` per rcode, sorted by rcode.
    pub rcode_totals: Vec<(u8, u64)>,
    /// Summed NXDOMAIN `count` per sensor, sorted by sensor.
    pub nx_by_sensor: Vec<(u16, u64)>,
    /// Summed NXDOMAIN `count` per month index, sorted by month.
    pub nx_by_month: Vec<(i64, u64)>,
    /// Summed NXDOMAIN `count` per TLD id, sorted by TLD id.
    pub nx_by_tld: Vec<(u32, u64)>,
}

impl BlockSummary {
    /// Summed `count` for one rcode (0 when the block has none).
    pub fn rcode_total(&self, rcode: u8) -> u64 {
        match self
            .rcode_totals
            .binary_search_by_key(&rcode, |&(rc, _)| rc)
        {
            Ok(i) => self.rcode_totals[i].1,
            Err(_) => 0,
        }
    }

    /// Whether the block contains any row with `rcode`.
    pub fn has_rcode(&self, rcode: u8) -> bool {
        self.rcode_totals
            .binary_search_by_key(&rcode, |&(rc, _)| rc)
            .is_ok()
    }

    fn byte_len(&self) -> usize {
        self.rcode_totals.len() * 9
            + self.nx_by_sensor.len() * 10
            + self.nx_by_month.len() * 16
            + self.nx_by_tld.len() * 12
            + 24
    }
}

/// Month index (months since 2014-01) for a day number — the same
/// conversion `query::monthly_nx_series` applies per row.
pub(crate) fn month_of_day(day: u32) -> i64 {
    SimTime(u64::from(day) * SECONDS_PER_DAY).month_index()
}

// ---- the block ----------------------------------------------------------

/// One sealed, compressed, immutable run of [`BLOCK_ROWS`] rows.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    rows: usize,
    names: NameCol,
    days: DayCol,
    sensor_dict: Vec<u16>,
    sensor_idx: Packed,
    rcodes: RcodeCol,
    counts: Packed,
    summary: BlockSummary,
}

/// Reusable decode buffers; one per scanning thread.
#[derive(Debug, Default)]
pub(crate) struct BlockScratch {
    pub names: Vec<NameId>,
    pub days: Vec<u32>,
    pub sensors: Vec<u16>,
    pub rcodes: Vec<u8>,
    pub counts: Vec<u32>,
}

impl Block {
    /// Seals raw tail columns into a compressed block. The interner is
    /// only consulted for the per-TLD summary.
    pub fn seal(cols: RawColumns<'_>, nx_rcode: u8, interner: &Interner) -> Block {
        let (names, days, sensors, rcodes, counts) = cols;
        let rows = names.len();

        let mut sensor_dict: Vec<u16> = sensors.to_vec();
        sensor_dict.sort_unstable();
        sensor_dict.dedup();
        let sensor_width = Packed::width_for(
            u32::try_from(sensor_dict.len().saturating_sub(1)).unwrap_or(u32::MAX),
        );
        let sensor_idx = Packed::encode(
            sensors.iter().map(|s| {
                let pos = sensor_dict
                    .binary_search(s)
                    .expect("sensor is in its own dictionary");
                u32::try_from(pos).expect("sensor dictionary fits u32")
            }),
            sensor_width,
        );

        let count_width = Packed::width_for(counts.iter().copied().max().unwrap_or(0));
        let counts_packed = Packed::encode(counts.iter().copied(), count_width);

        let mut rcode_totals: BTreeMap<u8, u64> = BTreeMap::new();
        let mut nx_by_sensor: BTreeMap<u16, u64> = BTreeMap::new();
        let mut nx_by_month: BTreeMap<i64, u64> = BTreeMap::new();
        let mut nx_by_tld: BTreeMap<u32, u64> = BTreeMap::new();
        let mut nx_rows = 0usize;
        for i in 0..rows {
            let c = u64::from(counts[i]);
            *rcode_totals.entry(rcodes[i]).or_insert(0) += c;
            if rcodes[i] == nx_rcode {
                nx_rows += 1;
                *nx_by_sensor.entry(sensors[i]).or_insert(0) += c;
                *nx_by_month.entry(month_of_day(days[i])).or_insert(0) += c;
                *nx_by_tld.entry(interner.tld_id(names[i])).or_insert(0) += c;
            }
        }
        let summary = BlockSummary {
            rows,
            min_day: days.iter().copied().min().unwrap_or(0),
            max_day: days.iter().copied().max().unwrap_or(0),
            nx_rows,
            rcode_totals: rcode_totals.into_iter().collect(),
            nx_by_sensor: nx_by_sensor.into_iter().collect(),
            nx_by_month: nx_by_month.into_iter().collect(),
            nx_by_tld: nx_by_tld.into_iter().collect(),
        };

        Block {
            rows,
            names: NameCol::encode(names),
            days: DayCol::encode(days),
            sensor_dict,
            sensor_idx,
            rcodes: RcodeCol::encode(rcodes),
            counts: counts_packed,
            summary,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn summary(&self) -> &BlockSummary {
        &self.summary
    }

    /// Encoded footprint in bytes (columns + summary).
    pub fn encoded_bytes(&self) -> usize {
        self.names.byte_len()
            + self.days.byte_len()
            + self.sensor_dict.len() * 2
            + self.sensor_idx.byte_len()
            + self.rcodes.byte_len()
            + self.counts.byte_len()
            + self.summary.byte_len()
    }

    /// Decodes all five columns into `scratch`, preserving row order.
    pub fn decode_into(&self, scratch: &mut BlockScratch) {
        self.names.decode_into(&mut scratch.names);
        self.days.decode_into(&mut scratch.days);
        scratch.sensors.clear();
        scratch
            .sensors
            .extend((0..self.rows).map(|i| self.sensor_dict[self.sensor_idx.get(i) as usize]));
        self.rcodes.decode_into(&mut scratch.rcodes);
        scratch.counts.clear();
        scratch
            .counts
            .extend((0..self.rows).map(|i| self.counts.get(i)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(names: &[u32], days: &[u32], sensors: &[u16], rcodes: &[u8], counts: &[u32]) {
        // nx_rcode 99 never matches, so the TLD summary (the only interner
        // consumer) stays empty and synthetic ids need no backing strings.
        let interner = Interner::new();
        let ids: Vec<NameId> = names.iter().map(|&n| NameId(n)).collect();
        let block = Block::seal((&ids, days, sensors, rcodes, counts), 99, &interner);
        let mut s = BlockScratch::default();
        block.decode_into(&mut s);
        assert_eq!(s.names, ids);
        assert_eq!(s.days, days);
        assert_eq!(s.sensors, sensors);
        assert_eq!(s.rcodes, rcodes);
        assert_eq!(s.counts, counts);
    }

    #[test]
    fn roundtrip_repeat_heavy_block_uses_dictionary() {
        // Few distinct ids, many rows: the dictionary layout wins.
        let names: Vec<u32> = (0..1000).map(|i| i % 7).collect();
        let days: Vec<u32> = (0..1000).map(|i| 16_000 + i / 100).collect();
        let sensors: Vec<u16> = (0..1000).map(|i| u16::try_from(i % 3).unwrap()).collect();
        let rcodes: Vec<u8> = (0..1000).map(|i| if i < 700 { 0 } else { 3 }).collect();
        let counts: Vec<u32> = (0..1000).map(|i| i % 50 + 1).collect();
        roundtrip(&names, &days, &sensors, &rcodes, &counts);
    }

    #[test]
    fn roundtrip_wide_id_range_and_alternating_rcodes() {
        // Ids spread over a huge sparse range with alternating rcodes: the
        // encoder must fall back to delta/direct names and raw rcodes.
        let names: Vec<u32> = (0..500).map(|i| i * 8_191 + (i % 13) * 1_000_000).collect();
        let days: Vec<u32> = (0..500).map(|i| 20_000 - i % 97).collect();
        let sensors: Vec<u16> = (0..500).map(|i| u16::try_from(i % 300).unwrap()).collect();
        let rcodes: Vec<u8> = (0..500).map(|i| u8::try_from(i % 4).unwrap()).collect();
        let counts: Vec<u32> = (0..500).map(|i| i * 1000).collect();
        roundtrip(&names, &days, &sensors, &rcodes, &counts);
    }

    #[test]
    fn roundtrip_single_row_and_extremes() {
        roundtrip(&[0], &[0], &[0], &[0], &[0]);
        roundtrip(
            &[u32::MAX - 7],
            &[u32::MAX],
            &[u16::MAX],
            &[255],
            &[u32::MAX],
        );
    }

    #[test]
    fn summary_totals_are_exact() {
        let mut interner = Interner::new();
        let a = interner.intern_str("a.com");
        let b = interner.intern_str("b.ru");
        let ids = vec![a, b, a, b];
        let days = vec![10, 10, 40, 70];
        let sensors = vec![0u16, 1, 0, 1];
        let rcodes = vec![3u8, 0, 3, 3];
        let counts = vec![5u32, 100, 7, 11];
        let block = Block::seal((&ids, &days, &sensors, &rcodes, &counts), 3, &interner);
        let s = block.summary();
        assert_eq!(s.rows, 4);
        assert_eq!((s.min_day, s.max_day), (10, 70));
        assert_eq!(s.nx_rows, 3);
        assert_eq!(s.rcode_total(3), 23);
        assert_eq!(s.rcode_total(0), 100);
        assert_eq!(s.rcode_total(2), 0);
        assert!(s.has_rcode(0) && !s.has_rcode(2));
        assert_eq!(s.nx_by_sensor, vec![(0, 12), (1, 11)]);
        assert_eq!(
            s.nx_by_tld,
            vec![(interner.tld_id(a), 12), (interner.tld_id(b), 11),]
        );
        // Days 10/40 are January 1970-epoch months 0/1 relative to the sim
        // calendar — just assert consistency with the shared conversion.
        let mut want: BTreeMap<i64, u64> = BTreeMap::new();
        for i in [0usize, 2, 3] {
            *want.entry(month_of_day(days[i])).or_insert(0) += u64::from(counts[i]);
        }
        assert_eq!(s.nx_by_month, want.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn compressed_beats_raw_on_ordered_data() {
        // Day-ordered, rcode-grouped, small counts: the shape SIE exports
        // arrive in. 15 bytes/row raw must compress well below half.
        let rows = 4096usize;
        let names: Vec<u32> = (0..rows).map(|i| u32::try_from(i % 512).unwrap()).collect();
        let days: Vec<u32> = (0..rows)
            .map(|i| u32::try_from(16_000 + i / 64).unwrap())
            .collect();
        let sensors: Vec<u16> = (0..rows).map(|i| u16::try_from(i % 16).unwrap()).collect();
        let rcodes: Vec<u8> = (0..rows)
            .map(|i| if (i / 64) % 2 == 0 { 0 } else { 3 })
            .collect();
        let counts: Vec<u32> = (0..rows)
            .map(|i| u32::try_from(i % 200 + 1).unwrap())
            .collect();
        let mut interner = Interner::new();
        for i in 0..512 {
            interner.intern_str(&format!("n{i}.com"));
        }
        let ids: Vec<NameId> = names.iter().map(|&n| NameId(n)).collect();
        let block = Block::seal((&ids, &days, &sensors, &rcodes, &counts), 3, &interner);
        let raw = rows * 15;
        assert!(
            block.encoded_bytes() * 2 < raw,
            "encoded {} vs raw {raw}",
            block.encoded_bytes()
        );
        let mut s = BlockScratch::default();
        block.decode_into(&mut s);
        assert_eq!(s.days, days);
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::from(i32::MAX), i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
