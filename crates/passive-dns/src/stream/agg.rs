//! The exact incremental plane: §4 scale aggregates as running state.
//!
//! [`StreamAggregates`] maintains the same answers `query.rs` computes by
//! scanning a [`crate::PassiveDb`](crate::store::PassiveDb) — rcode
//! breakdown, monthly NXDOMAIN series (Fig. 3), NX-by-sensor, TLD
//! distribution (Fig. 4), the deterministic 1/N name sample (§4.2) — but
//! updated O(log n) per row instead of O(store) per refresh. The parity
//! contract (pinned by `tests/prop_stream.rs`): after admitting any row
//! multiset, every accessor here is **bit-identical** to the matching
//! `query.rs` function over a `PassiveDb` holding the same rows.
//!
//! Bit-parity is engineered, not hoped for:
//! * month bucketing delegates to [`crate::block::month_of_day`], the same
//!   helper the columnar zone-maps use;
//! * yearly averages delegate to [`crate::query::yearly_from_monthly`], so
//!   the one float division happens in shared code;
//! * TLD extraction mirrors [`crate::intern::Interner::intern_str`]
//!   (`rsplit('.')`), and the Fig. 4 sort uses the identical comparator;
//! * `BTreeMap` iteration is ascending, which is exactly the sort order
//!   the batch engine applies to its `HashMap`-built vectors.

use std::collections::{BTreeMap, BTreeSet};

use nxd_dns_wire::RCode;

use crate::block::month_of_day;
use crate::hash::fnv1a;
use crate::query::{yearly_from_monthly, TldStat};

/// The last DNS label of `name` — the TLD key the interner uses
/// ([`crate::intern::Interner::intern_str`]).
pub(crate) fn tld_of(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or("")
}

/// Running exact aggregates over the admitted row stream.
#[derive(Debug, Clone)]
pub struct StreamAggregates {
    /// Count-weighted responses per rcode (ascending = batch sort order).
    rcodes: BTreeMap<u8, u64>,
    /// Count-weighted NXDOMAIN responses per sensor.
    nx_by_sensor: BTreeMap<u16, u64>,
    /// Count-weighted NXDOMAIN responses per month-since-2014-01.
    monthly_nx: BTreeMap<i64, u64>,
    /// Distinct names with at least one NXDOMAIN response.
    nx_names: BTreeSet<String>,
    /// Distinct NX names per TLD (bumped on first sighting of a name).
    tld_names: BTreeMap<String, u64>,
    /// Count-weighted NXDOMAIN responses per TLD.
    tld_queries: BTreeMap<String, u64>,
    /// §4.2 deterministic 1/N sample of NX names.
    sample: BTreeSet<String>,
    sample_n: u64,
    sample_salt: u64,
}

impl StreamAggregates {
    /// `sample_n` is the §4.2 sampling ratio (1-in-n, must be positive);
    /// `sample_salt` folds into the membership hash.
    pub fn new(sample_n: u64, sample_salt: u64) -> Self {
        assert!(sample_n > 0, "sampling ratio must be positive");
        StreamAggregates {
            rcodes: BTreeMap::new(),
            nx_by_sensor: BTreeMap::new(),
            monthly_nx: BTreeMap::new(),
            nx_names: BTreeSet::new(),
            tld_names: BTreeMap::new(),
            tld_queries: BTreeMap::new(),
            sample: BTreeSet::new(),
            sample_n,
            sample_salt,
        }
    }

    /// Folds one admitted row in. Returns whether the row was NXDOMAIN.
    pub fn observe(&mut self, name: &str, day: u32, sensor: u16, rcode: u8, count: u64) -> bool {
        *self.rcodes.entry(rcode).or_insert(0) += count;
        let nx = rcode == RCode::NxDomain.to_u8();
        if nx {
            *self.nx_by_sensor.entry(sensor).or_insert(0) += count;
            *self.monthly_nx.entry(month_of_day(day)).or_insert(0) += count;
            *self
                .tld_queries
                .entry(tld_of(name).to_string())
                .or_insert(0) += count;
            if self.nx_names.insert(name.to_string()) {
                *self.tld_names.entry(tld_of(name).to_string()).or_insert(0) += 1;
                if fnv1a(name.as_bytes(), self.sample_salt).is_multiple_of(self.sample_n) {
                    self.sample.insert(name.to_string());
                }
            }
        }
        nx
    }

    /// ≡ [`crate::query::rcode_breakdown`].
    pub fn rcode_breakdown(&self) -> Vec<(u8, u64)> {
        self.rcodes.iter().map(|(&rc, &n)| (rc, n)).collect()
    }

    /// ≡ [`crate::query::total_responses`] for `rcode`.
    pub fn total_responses(&self, rcode: RCode) -> u64 {
        self.rcodes.get(&rcode.to_u8()).copied().unwrap_or(0)
    }

    /// ≡ [`crate::query::total_nx_responses`].
    pub fn total_nx_responses(&self) -> u64 {
        self.total_responses(RCode::NxDomain)
    }

    /// ≡ [`crate::query::distinct_nx_names`].
    pub fn distinct_nx_names(&self) -> u64 {
        self.nx_names.len() as u64
    }

    /// ≡ [`crate::query::monthly_nx_series`].
    pub fn monthly_nx_series(&self) -> Vec<(i64, u64)> {
        self.monthly_nx.iter().map(|(&m, &n)| (m, n)).collect()
    }

    /// ≡ [`crate::query::yearly_avg_monthly_nx`] — same floats, because the
    /// division happens in the shared [`yearly_from_monthly`] fold.
    pub fn yearly_avg_monthly_nx(&self) -> Vec<(i32, f64)> {
        yearly_from_monthly(&self.monthly_nx_series())
    }

    /// ≡ [`crate::query::nx_by_sensor`].
    pub fn nx_by_sensor(&self) -> BTreeMap<u16, u64> {
        self.nx_by_sensor.clone()
    }

    /// ≡ [`crate::query::tld_distribution`] — identical comparator
    /// (descending name count, ascending TLD on ties).
    pub fn tld_distribution(&self) -> Vec<TldStat> {
        let mut out: Vec<TldStat> = self
            .tld_names
            .iter()
            .map(|(tld, &nx_names)| TldStat {
                tld: tld.clone(),
                nx_names,
                nx_queries: self.tld_queries.get(tld).copied().unwrap_or(0),
            })
            .collect();
        out.sort_by(|a, b| b.nx_names.cmp(&a.nx_names).then_with(|| a.tld.cmp(&b.tld)));
        out
    }

    /// ≡ [`crate::query::sample_nx_name_strings`] with the configured
    /// (n, salt).
    pub fn sample_nx_name_strings(&self) -> Vec<String> {
        self.sample.iter().cloned().collect()
    }

    pub fn sample_n(&self) -> u64 {
        self.sample_n
    }

    pub fn sample_salt(&self) -> u64 {
        self.sample_salt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use crate::store::PassiveDb;
    use nxd_dns_sim::SimTime;

    fn day(y: i32, m: u32, d: u32) -> u32 {
        SimTime::from_ymd(y, m, d).day_number() as u32
    }

    /// The same fixture `query.rs` tests against.
    fn rows() -> Vec<(&'static str, u32, u16, RCode, u32)> {
        vec![
            ("dead.com", day(2014, 1, 1), 0, RCode::NxDomain, 10),
            ("dead.com", day(2014, 1, 15), 0, RCode::NxDomain, 5),
            ("dead.com", day(2014, 2, 1), 1, RCode::NxDomain, 2),
            ("gone.ru", day(2014, 1, 2), 1, RCode::NxDomain, 7),
            ("alive.com", day(2014, 1, 3), 0, RCode::NoError, 100),
        ]
    }

    fn both() -> (StreamAggregates, PassiveDb) {
        let mut agg = StreamAggregates::new(1, 42);
        let mut db = PassiveDb::new();
        for (name, day, sensor, rcode, count) in rows() {
            agg.observe(name, day, sensor, rcode.to_u8(), u64::from(count));
            db.record_str(name, day, sensor, rcode, count);
        }
        (agg, db)
    }

    #[test]
    fn parity_with_the_batch_engine_on_the_query_fixture() {
        let (agg, db) = both();
        assert_eq!(agg.total_nx_responses(), query::total_nx_responses(&db));
        assert_eq!(
            agg.total_responses(RCode::NoError),
            query::total_responses(&db, RCode::NoError)
        );
        assert_eq!(agg.distinct_nx_names(), query::distinct_nx_names(&db));
        assert_eq!(agg.monthly_nx_series(), query::monthly_nx_series(&db));
        assert_eq!(
            agg.yearly_avg_monthly_nx(),
            query::yearly_avg_monthly_nx(&db)
        );
        assert_eq!(agg.rcode_breakdown(), query::rcode_breakdown(&db));
        assert_eq!(agg.nx_by_sensor(), query::nx_by_sensor(&db));
        assert_eq!(agg.tld_distribution(), query::tld_distribution(&db));
        assert_eq!(
            agg.sample_nx_name_strings(),
            query::sample_nx_name_strings(&db, 1, 42)
        );
    }

    #[test]
    fn sample_respects_ratio_and_salt() {
        let mut agg = StreamAggregates::new(100, 7);
        let mut db = PassiveDb::new();
        for i in 0..5_000 {
            let name = format!("d{i}.com");
            agg.observe(&name, 16_000, 0, RCode::NxDomain.to_u8(), 1);
            db.record_str(&name, 16_000, 0, RCode::NxDomain, 1);
        }
        let streamed = agg.sample_nx_name_strings();
        assert_eq!(streamed, query::sample_nx_name_strings(&db, 100, 7));
        assert!(!streamed.is_empty());
        assert!(streamed.len() < 500);
    }

    #[test]
    fn tld_matches_interner_rules() {
        assert_eq!(tld_of("a.b.com"), "com");
        assert_eq!(tld_of("nodots"), "nodots");
        assert_eq!(tld_of(""), "");
        assert_eq!(tld_of("trailing."), "");
    }

    #[test]
    #[should_panic(expected = "sampling ratio must be positive")]
    fn zero_sample_ratio_rejected() {
        let _ = StreamAggregates::new(0, 0);
    }
}
