//! Event-time windows, watermarks, and the late-row side tally.
//!
//! The streaming engine processes rows in *arrival* order but reasons in
//! *event* time (the observation's `day`). A watermark trails the maximum
//! event day seen by a configurable out-of-order tolerance: rows at or
//! above the watermark are admitted, rows strictly below it are **late**
//! — counted into a [`LateTally`] and routed to a side store by the
//! caller, never silently dropped. Tumbling event-time windows close as
//! the watermark passes their end, which is the engine's heartbeat: each
//! close increments `stream_windows_closed_total` and emits a journal
//! event.
//!
//! Invariant linking admission and window close: an admitted row's day is
//! `>= watermark`, and a window only closes once its (exclusive) end is
//! `<= watermark` — so admitted rows never land in a closed window, and a
//! closed window's tally is final.

use std::collections::BTreeMap;

/// Event-time windowing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one tumbling event-time window, in days (clamped to >= 1).
    pub window_days: u32,
    /// Out-of-order tolerance: the watermark is
    /// `max_event_day - allowed_lateness_days`.
    pub allowed_lateness_days: u32,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            // One calendar-ish month per window, one week of disorder —
            // the shape of the paper's monthly Fig. 3 series over a
            // sensor federation with stragglers.
            window_days: 30,
            allowed_lateness_days: 7,
        }
    }
}

/// Integral per-window tallies (floats are derived by callers, once).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowTally {
    /// Rows admitted into the window.
    pub rows: u64,
    /// Count-weighted responses (all rcodes).
    pub responses: u64,
    /// Count-weighted NXDOMAIN responses.
    pub nx_responses: u64,
}

impl WindowTally {
    fn admit(&mut self, count: u64, nx: bool) {
        self.rows += 1;
        self.responses += count;
        if nx {
            self.nx_responses += count;
        }
    }
}

/// One window the watermark has passed; final and immutable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedWindow {
    /// First day inside the window.
    pub start_day: u32,
    /// First day *after* the window (exclusive end).
    pub end_day: u32,
    pub tally: WindowTally,
}

/// Rows that arrived beyond the watermark: counted exactly, never
/// silently dropped. `admitted + late == offered` at every moment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LateTally {
    /// Late rows.
    pub rows: u64,
    /// Count-weighted responses on late rows (all rcodes).
    pub responses: u64,
    /// Count-weighted NXDOMAIN responses on late rows.
    pub nx_responses: u64,
    /// Count-weighted responses on late rows, by rcode.
    pub by_rcode: BTreeMap<u8, u64>,
}

/// Watermark state plus open- and closed-window tallies.
#[derive(Debug)]
pub struct WindowState {
    config: WindowConfig,
    /// Maximum event day seen so far (watermark basis).
    max_day: Option<u32>,
    /// Open tumbling windows, keyed by start day.
    open: BTreeMap<u32, WindowTally>,
    /// Closed (final) windows, keyed by start day.
    closed: BTreeMap<u32, WindowTally>,
    closed_count: u64,
}

impl WindowState {
    pub fn new(config: WindowConfig) -> Self {
        let config = WindowConfig {
            window_days: config.window_days.max(1),
            allowed_lateness_days: config.allowed_lateness_days,
        };
        WindowState {
            config,
            max_day: None,
            open: BTreeMap::new(),
            closed: BTreeMap::new(),
            closed_count: 0,
        }
    }

    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Maximum event day observed so far.
    pub fn max_day(&self) -> Option<u32> {
        self.max_day
    }

    /// The current watermark: event days strictly below it are late.
    /// `None` until the first row arrives (nothing can be late yet).
    pub fn watermark(&self) -> Option<u32> {
        self.max_day
            .map(|d| d.saturating_sub(self.config.allowed_lateness_days))
    }

    /// Days the watermark trails the freshest event seen.
    pub fn watermark_lag_days(&self) -> u64 {
        match (self.max_day, self.watermark()) {
            (Some(max), Some(wm)) => u64::from(max - wm),
            _ => 0,
        }
    }

    /// Whether a row with event day `day` would be late right now.
    pub fn is_late(&self, day: u32) -> bool {
        matches!(self.watermark(), Some(wm) if day < wm)
    }

    /// Offers one row. Returns `false` if the row is late (the caller
    /// tallies it into a [`LateTally`]); otherwise admits the row into
    /// its tumbling window, advances the watermark, and appends every
    /// window the new watermark closed onto `closed_out`.
    pub fn offer(
        &mut self,
        day: u32,
        nx: bool,
        count: u64,
        closed_out: &mut Vec<ClosedWindow>,
    ) -> bool {
        if self.is_late(day) {
            return false;
        }
        let start = day - day % self.config.window_days;
        self.open.entry(start).or_default().admit(count, nx);
        self.max_day = Some(self.max_day.map_or(day, |d| d.max(day)));
        if let Some(wm) = self.watermark() {
            // Close every open window whose exclusive end the watermark
            // has passed. Admitted rows have day >= watermark, so closed
            // tallies are final.
            while let Some((&start, &tally)) = self.open.first_key_value() {
                let end = start.saturating_add(self.config.window_days);
                if end > wm {
                    break;
                }
                self.open.remove(&start);
                self.closed.insert(start, tally);
                self.closed_count += 1;
                closed_out.push(ClosedWindow {
                    start_day: start,
                    end_day: end,
                    tally,
                });
            }
        }
        true
    }

    /// Open windows in start-day order.
    pub fn open_windows(&self) -> impl Iterator<Item = (u32, WindowTally)> + '_ {
        self.open.iter().map(|(&s, &t)| (s, t))
    }

    /// Closed (final) windows in start-day order.
    pub fn closed_windows(&self) -> impl Iterator<Item = (u32, WindowTally)> + '_ {
        self.closed.iter().map(|(&s, &t)| (s, t))
    }

    /// Total windows closed so far.
    pub fn closed_count(&self) -> u64 {
        self.closed_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(window: u32, lateness: u32) -> WindowState {
        WindowState::new(WindowConfig {
            window_days: window,
            allowed_lateness_days: lateness,
        })
    }

    #[test]
    fn nothing_is_late_before_the_first_row() {
        let s = state(10, 0);
        assert!(!s.is_late(0));
        assert_eq!(s.watermark(), None);
        assert_eq!(s.watermark_lag_days(), 0);
    }

    #[test]
    fn watermark_trails_max_day_by_the_tolerance() {
        let mut s = state(10, 3);
        let mut closed = Vec::new();
        assert!(s.offer(20, true, 1, &mut closed));
        assert_eq!(s.max_day(), Some(20));
        assert_eq!(s.watermark(), Some(17));
        assert_eq!(s.watermark_lag_days(), 3);
        // Out-of-order but within tolerance: admitted.
        assert!(s.offer(18, true, 1, &mut closed));
        // Beyond the watermark: late, and max_day is untouched.
        assert!(!s.offer(16, true, 1, &mut closed));
        assert_eq!(s.max_day(), Some(20));
    }

    #[test]
    fn windows_close_as_the_watermark_passes_their_end() {
        let mut s = state(10, 0);
        let mut closed = Vec::new();
        assert!(s.offer(5, true, 2, &mut closed));
        assert!(s.offer(9, false, 1, &mut closed));
        assert!(closed.is_empty());
        // Day 10 starts window [10,20) and closes [0,10) exactly.
        assert!(s.offer(10, true, 4, &mut closed));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].start_day, 0);
        assert_eq!(closed[0].end_day, 10);
        assert_eq!(
            closed[0].tally,
            WindowTally {
                rows: 2,
                responses: 3,
                nx_responses: 2,
            }
        );
        assert_eq!(s.closed_count(), 1);
        assert_eq!(s.open_windows().count(), 1);
    }

    #[test]
    fn a_jump_closes_every_passed_window() {
        let mut s = state(10, 5);
        let mut closed = Vec::new();
        assert!(s.offer(0, true, 1, &mut closed));
        assert!(s.offer(12, true, 1, &mut closed));
        assert!(s.offer(47, true, 1, &mut closed));
        // Watermark 42: closes [0,10), [10,20); [40,50) stays open.
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].start_day, 0);
        assert_eq!(closed[1].start_day, 10);
        assert_eq!(s.closed_count(), 2);
        let open: Vec<u32> = s.open_windows().map(|(d, _)| d).collect();
        assert_eq!(open, vec![40]);
    }

    #[test]
    fn admitted_rows_never_touch_closed_windows() {
        let mut s = state(10, 2);
        let mut closed = Vec::new();
        assert!(s.offer(25, true, 1, &mut closed));
        // Watermark 23: [0,10) and [10,20) would be closed had they been
        // open; any admitted day is >= 23, inside open/future windows.
        for day in 0..23 {
            assert!(s.is_late(day), "day {day} should be late");
        }
        assert!(!s.is_late(23));
    }

    #[test]
    fn zero_width_window_is_clamped() {
        let s = state(0, 0);
        assert_eq!(s.config().window_days, 1);
    }
}
