//! Bounded-memory approximate companions to the exact streaming plane.
//!
//! Two sketches with *provable* error bounds, both deterministic (salted
//! FNV-1a from [`crate::hash`], no process state):
//!
//! * [`SpaceSaving`] — Metwally et al.'s top-k heavy-hitter summary. With
//!   capacity `k` over a stream of total weight `N`: every reported
//!   estimate over-counts by at most `N/k`, estimates never under-count,
//!   and any item whose true weight exceeds `N/k` is guaranteed present.
//!   Backs the streaming TLD table (Fig. 4) and the Fig. 8 sample feed.
//! * [`DistinctSketch`] — an HLL-style register sketch with a fixed
//!   `2^p` byte registers. Standard error is `1.04 / sqrt(2^p)` relative;
//!   small cardinalities fall back to linear counting. Backs the
//!   streaming distinct-NX-name estimate (Fig. 3's name axis).
//!
//! Memory is `O(k + 2^p)` regardless of stream length — the whole point:
//! the approximate plane never grows with the firehose.
//!
//! Register updates accumulate the harmonic denominator as an exact
//! fixed-point `u128` (`sum of 2^(64-rank)` in units of `2^-64`), so the
//! only floating-point work is a single expression at estimate time —
//! no float accumulation anywhere (NXL004).

use std::collections::{BTreeMap, BTreeSet};

use crate::hash::fnv1a;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SsCounter {
    count: u64,
    /// Maximum possible over-count (the evicted minimum absorbed at entry).
    error: u64,
}

/// One reported heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopEntry {
    pub item: String,
    /// Estimated weight; `true_weight <= count <= true_weight + error`.
    pub count: u64,
    /// Upper bound on the over-count for this entry.
    pub error: u64,
}

/// Space-saving top-k summary (Metwally, Agrawal, El Abbadi 2005).
#[derive(Debug, Clone, Default)]
pub struct SpaceSaving {
    capacity: usize,
    counters: BTreeMap<String, SsCounter>,
    /// Min-heap stand-in: ordered (count, item) pairs mirroring `counters`.
    by_count: BTreeSet<(u64, String)>,
    /// Total offered weight N (the `N` in the `N/k` bound).
    weight: u64,
}

impl SpaceSaving {
    pub fn new(capacity: usize) -> Self {
        SpaceSaving {
            capacity: capacity.max(1),
            ..Default::default()
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total weight offered so far.
    pub fn total_weight(&self) -> u64 {
        self.weight
    }

    /// Offers `weight` occurrences of `item`.
    pub fn offer(&mut self, item: &str, weight: u64) {
        self.weight += weight;
        if let Some(counter) = self.counters.get_mut(item) {
            assert!(self.by_count.remove(&(counter.count, item.to_string())));
            counter.count += weight;
            self.by_count.insert((counter.count, item.to_string()));
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(
                item.to_string(),
                SsCounter {
                    count: weight,
                    error: 0,
                },
            );
            self.by_count.insert((weight, item.to_string()));
            return;
        }
        // Full: the new item inherits (and absorbs) the minimum counter.
        let (min_count, min_item) = self
            .by_count
            .first()
            .cloned()
            .expect("capacity >= 1, so a full summary has a minimum");
        self.by_count.remove(&(min_count, min_item.clone()));
        self.counters.remove(&min_item);
        let counter = SsCounter {
            count: min_count + weight,
            error: min_count,
        };
        self.by_count.insert((counter.count, item.to_string()));
        self.counters.insert(item.to_string(), counter);
    }

    /// Estimated weight of `item` (0 if not tracked). Never under-counts
    /// a tracked item.
    pub fn estimate(&self, item: &str) -> u64 {
        self.counters.get(item).map_or(0, |c| c.count)
    }

    /// The tracked entries, heaviest first; ties break on the item string
    /// ascending so output is deterministic.
    pub fn top(&self, n: usize) -> Vec<TopEntry> {
        let mut entries: Vec<TopEntry> = self
            .counters
            .iter()
            .map(|(item, c)| TopEntry {
                item: item.clone(),
                count: c.count,
                error: c.error,
            })
            .collect();
        entries.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.item.cmp(&b.item)));
        entries.truncate(n);
        entries
    }

    /// The worst-case over-count across tracked items: `N / k`.
    pub fn error_bound(&self) -> u64 {
        self.weight / self.capacity as u64
    }

    /// Approximate heap footprint in bytes (strings + tree nodes).
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.counters.keys().map(|k| 2 * k.len()).sum();
        strings
            + self.counters.len() * std::mem::size_of::<(String, SsCounter)>()
            + self.by_count.len() * std::mem::size_of::<(u64, String)>()
    }
}

/// HLL-style distinct-count sketch with `2^p` one-byte registers.
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    precision: u32,
    salt: u64,
    registers: Vec<u8>,
}

impl DistinctSketch {
    /// `precision` is clamped into `[4, 16]` (16..65536 registers).
    pub fn new(precision: u32, salt: u64) -> Self {
        let precision = precision.clamp(4, 16);
        DistinctSketch {
            precision,
            salt,
            registers: vec![0u8; 1usize << precision],
        }
    }

    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Register count `m = 2^p`.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Inserts one item (idempotent — duplicates never change the state).
    pub fn insert(&mut self, item: &str) {
        let h = fnv1a(item.as_bytes(), self.salt);
        let idx = (h >> (64 - self.precision)) as usize;
        let tail = h << self.precision;
        let rank = if tail == 0 {
            65 - self.precision
        } else {
            tail.leading_zeros() + 1
        };
        let rank = u8::try_from(rank).expect("rank <= 61 for p >= 4");
        if self.registers[idx] < rank {
            self.registers[idx] = rank;
        }
    }

    /// Register-wise max merge. Panics if the precisions or salts differ
    /// (merging incompatible sketches is a logic error, not data).
    pub fn merge(&mut self, other: &DistinctSketch) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        assert_eq!(self.salt, other.salt, "salt mismatch");
        for (r, &o) in self.registers.iter_mut().zip(&other.registers) {
            if *r < o {
                *r = o;
            }
        }
    }

    /// Estimated distinct count. Relative standard error `1.04/sqrt(2^p)`;
    /// the small-range regime uses linear counting over empty registers.
    pub fn estimate(&self) -> u64 {
        let m = self.registers.len();
        // Exact fixed-point harmonic denominator in units of 2^-64:
        // each register contributes 2^(64 - rank). Ranks are <= 61 for
        // p >= 4, so each term and the 2^16-term sum fit comfortably in
        // u128 — no float accumulation.
        let mut denom_fixed: u128 = 0;
        let mut zeros: u64 = 0;
        for &r in &self.registers {
            denom_fixed += 1u128 << (64 - u32::from(r));
            if r == 0 {
                zeros += 1;
            }
        }
        let m_f = m as f64;
        let alpha = match m {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m_f),
        };
        let denom = (denom_fixed as f64) / 18_446_744_073_709_551_616.0;
        let raw = alpha * m_f * m_f / denom;
        let estimate = if raw <= 2.5 * m_f && zeros > 0 {
            // Linear counting: much tighter when most registers are empty.
            m_f * (m_f / zeros as f64).ln()
        } else {
            raw
        };
        if estimate <= 0.0 {
            0
        } else {
            // Round-half-up without a lossy cast chain.
            (estimate + 0.5).floor() as u64
        }
    }

    /// Theoretical relative standard error for this precision.
    pub fn standard_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// Exact register-array footprint in bytes: `2^p`, independent of how
    /// many items were inserted.
    pub fn heap_bytes(&self) -> usize {
        self.registers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for (item, n) in [("com", 5u64), ("net", 3), ("org", 2)] {
            ss.offer(item, n);
        }
        assert_eq!(ss.estimate("com"), 5);
        assert_eq!(ss.estimate("net"), 3);
        assert_eq!(ss.estimate("org"), 2);
        assert_eq!(ss.estimate("xyz"), 0);
        let top = ss.top(2);
        assert_eq!(top[0].item, "com");
        assert_eq!(top[0].error, 0);
        assert_eq!(top[1].item, "net");
    }

    #[test]
    fn space_saving_never_undercounts_and_respects_n_over_k() {
        // Zipf-ish stream of 40 distinct items through a k=8 summary.
        let mut ss = SpaceSaving::new(8);
        let mut truth: BTreeMap<String, u64> = BTreeMap::new();
        for i in 0..40u64 {
            let item = format!("tld-{i}");
            let weight = 1 + 400 / (i + 1);
            ss.offer(&item, weight);
            *truth.entry(item).or_insert(0) += weight;
        }
        let n: u64 = truth.values().sum();
        assert_eq!(ss.total_weight(), n);
        let bound = ss.error_bound();
        assert_eq!(bound, n / 8);
        for entry in ss.top(8) {
            let true_count = truth[&entry.item];
            assert!(entry.count >= true_count, "under-count on {}", entry.item);
            assert!(
                entry.count - true_count <= bound,
                "over-count beyond N/k on {}",
                entry.item
            );
        }
        // Any item heavier than N/k must be tracked.
        for (item, &count) in &truth {
            if count > bound {
                assert!(ss.estimate(item) > 0, "heavy hitter {item} evicted");
            }
        }
    }

    #[test]
    fn space_saving_ties_break_deterministically() {
        let mut ss = SpaceSaving::new(4);
        for item in ["b", "a", "d", "c"] {
            ss.offer(item, 7);
        }
        let items: Vec<String> = ss.top(4).into_iter().map(|e| e.item).collect();
        assert_eq!(items, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn distinct_sketch_is_idempotent_and_deterministic() {
        let mut a = DistinctSketch::new(10, 7);
        let mut b = DistinctSketch::new(10, 7);
        for i in 0..500 {
            a.insert(&format!("name-{i}.com"));
            b.insert(&format!("name-{i}.com"));
            b.insert(&format!("name-{i}.com"));
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn distinct_sketch_tracks_cardinality_within_bound() {
        let sketch_err = DistinctSketch::new(12, 0xD15C).standard_error();
        for &n in &[100u64, 1_000, 10_000] {
            let mut s = DistinctSketch::new(12, 0xD15C);
            for i in 0..n {
                s.insert(&format!("host-{i}.example.net"));
            }
            let est = s.estimate();
            let err = (est as f64 - n as f64).abs() / n as f64;
            // 4 sigma of the theoretical standard error: deterministic
            // hashing means this either passes forever or never.
            assert!(
                err <= 4.0 * sketch_err,
                "n={n} est={est} err={err:.4} bound={:.4}",
                4.0 * sketch_err
            );
        }
    }

    #[test]
    fn distinct_sketch_merge_equals_union() {
        let mut left = DistinctSketch::new(10, 3);
        let mut right = DistinctSketch::new(10, 3);
        let mut both = DistinctSketch::new(10, 3);
        for i in 0..300 {
            left.insert(&format!("l-{i}"));
            both.insert(&format!("l-{i}"));
        }
        for i in 0..300 {
            right.insert(&format!("r-{i}"));
            both.insert(&format!("r-{i}"));
        }
        left.merge(&right);
        assert_eq!(left.estimate(), both.estimate());
    }

    #[test]
    fn distinct_sketch_memory_is_fixed() {
        let mut s = DistinctSketch::new(12, 0);
        assert_eq!(s.heap_bytes(), 4096);
        for i in 0..100_000 {
            s.insert(&format!("flood-{i}"));
        }
        assert_eq!(s.heap_bytes(), 4096, "sketch grew with the stream");
    }

    #[test]
    fn precision_is_clamped() {
        assert_eq!(DistinctSketch::new(0, 0).register_count(), 16);
        assert_eq!(DistinctSketch::new(30, 0).register_count(), 65_536);
    }
}
