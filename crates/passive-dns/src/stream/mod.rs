//! # nxd-stream — streaming ingest over the SIE channel
//!
//! The paper's scale leg (§4) is measured over a 1.07 T-response Farsight
//! SIE firehose — traffic that arrives continuously, bursty, and out of
//! order, not as a batch you get to scan after the fact. This module tree
//! turns the repo's SIE channel into a continuously-queryable engine with
//! three planes folded per row under one lock:
//!
//! * **Windows & watermarks** ([`window`]) — event-time tumbling windows
//!   with bounded out-of-order tolerance. Rows beyond the watermark are
//!   *late*: exactly tallied on a side ledger, never silently dropped.
//! * **Exact incremental aggregates** ([`agg`]) — the §4 answers (rcode
//!   breakdown, monthly NXDOMAIN, NX-by-sensor, TLD distribution, the
//!   1/N name sample; Figs. 3–6 + 8) as running state, bit-identical to
//!   the batch `query.rs` engine over the rows admitted so far. Pinned by
//!   `tests/prop_stream.rs` with `query.rs` as the oracle.
//! * **Approximate companions** ([`sketch`]) — a space-saving top-k TLD
//!   summary (over-count ≤ N/k, no under-count, heavy hitters guaranteed)
//!   and an HLL-style distinct-name sketch (relative error
//!   `1.04/sqrt(2^p)`), in O(k + 2^p) memory regardless of stream length.
//!   Pinned by `tests/prop_sketch.rs`.
//!
//! Producers reach the engine two ways: `sie::collect_stream` drains the
//! bounded SIE channel through [`StreamEngine::offer_db`] batch-by-batch
//! while still sealing rows into the sharded store for exact replay, and
//! the nxd-serve sensor sink offers each recorded live query row. Either
//! way `/metrics` and `/snapshot.json` show the aggregates move mid-run.

pub mod agg;
pub mod engine;
pub mod sketch;
pub mod window;

pub use agg::StreamAggregates;
pub use engine::{Admission, StreamConfig, StreamEngine, StreamSnapshot};
pub use sketch::{DistinctSketch, SpaceSaving, TopEntry};
pub use window::{ClosedWindow, LateTally, WindowConfig, WindowState, WindowTally};
