//! The streaming core: one row in, every plane updated, snapshot out.
//!
//! [`StreamCore`] owns the three planes — watermarked windows
//! ([`super::window`]), exact incremental aggregates ([`super::agg`]), and
//! the bounded approximate companions ([`super::sketch`]) — and folds each
//! offered row into all of them under a single lock acquisition.
//! [`StreamEngine`] is the shareable handle: a `Clone`-able
//! `Arc<Mutex<StreamCore>>` the SIE collector threads, the nxd-serve
//! sensor sink, and the snapshot scraper all hold simultaneously.
//!
//! Telemetry: [`StreamEngine::attach_metrics`] registers the
//! `stream_queue_depth` / `stream_watermark_lag_days` gauges and the
//! `stream_late_rows_total` / `stream_windows_closed_total` counters on a
//! shared registry (carrying over any pre-attach state, like
//! `PassiveDb::attach_metrics`), and every window close heartbeats the
//! flight-recorder journal with the closed window's tally.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use nxd_dns_wire::RCode;
use nxd_telemetry::{Counter, Gauge, Journal, Registry};

use super::agg::{tld_of, StreamAggregates};
use super::sketch::{DistinctSketch, SpaceSaving, TopEntry};
use super::window::{ClosedWindow, LateTally, WindowConfig, WindowState};
use crate::query::TldStat;
use crate::store::PassiveDb;

/// What happened to an offered row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Folded into the exact and approximate planes.
    Admitted,
    /// Beyond the watermark: tallied into the late side, not aggregated.
    Late,
}

/// Streaming engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    pub window: WindowConfig,
    /// Space-saving capacity k (error bound N/k on the TLD table).
    pub top_k: usize,
    /// Distinct-sketch precision p (2^p registers, clamped to [4, 16]).
    pub sketch_precision: u32,
    /// Salt for the distinct sketch's hashing.
    pub sketch_salt: u64,
    /// §4.2 sampling ratio (1-in-n) for the exact name sample.
    pub sample_n: u64,
    /// Salt for sampling membership.
    pub sample_salt: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: WindowConfig::default(),
            top_k: 64,
            sketch_precision: 12,
            sketch_salt: 0x5EE_D15C,
            sample_n: 1_000,
            sample_salt: 0,
        }
    }
}

/// Live gauge/counter handles. Until [`StreamEngine::attach_metrics`] runs
/// they are free-floating (updates go nowhere visible but stay counted,
/// then carry over on attach).
#[derive(Debug, Clone, Default)]
struct StreamMetrics {
    queue_depth: Gauge,
    watermark_lag_days: Gauge,
    late_rows: Counter,
    windows_closed: Counter,
}

impl StreamMetrics {
    fn registered(registry: &Registry) -> Self {
        registry.describe(
            "stream_queue_depth",
            "Batches waiting in the bounded ingest queue",
        );
        registry.describe(
            "stream_watermark_lag_days",
            "Days the event-time watermark trails the freshest row",
        );
        registry.describe(
            "stream_late_rows_total",
            "Rows beyond the watermark, tallied to the late side",
        );
        registry.describe(
            "stream_windows_closed_total",
            "Event-time windows finalized by watermark advance",
        );
        StreamMetrics {
            queue_depth: registry.gauge("stream_queue_depth"),
            watermark_lag_days: registry.gauge("stream_watermark_lag_days"),
            late_rows: registry.counter("stream_late_rows_total"),
            windows_closed: registry.counter("stream_windows_closed_total"),
        }
    }
}

/// A point-in-time view of every plane. Exact fields are bit-identical to
/// the batch query engine over the admitted rows (`tests/prop_stream.rs`
/// pins this); approximate fields carry their error bounds alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// Rows offered = admitted + late.
    pub offered_rows: u64,
    pub admitted_rows: u64,
    /// The late side: exact accounting of everything beyond the watermark.
    pub late: LateTally,
    pub max_day: Option<u32>,
    pub watermark: Option<u32>,
    pub windows_open: u64,
    pub windows_closed: u64,
    // Exact plane (≡ crate::query over the admitted rows).
    pub rcode_breakdown: Vec<(u8, u64)>,
    pub total_nx_responses: u64,
    pub distinct_nx_names: u64,
    pub monthly_nx: Vec<(i64, u64)>,
    pub yearly_avg_monthly_nx: Vec<(i32, f64)>,
    pub nx_by_sensor: BTreeMap<u16, u64>,
    pub tld_distribution: Vec<TldStat>,
    pub sample_nx_names: Vec<String>,
    // Approximate plane (bounded memory, bounded error).
    pub top_tlds: Vec<TopEntry>,
    /// Worst-case over-count on any `top_tlds` entry: N/k.
    pub topk_error_bound: u64,
    pub distinct_nx_estimate: u64,
    /// Theoretical relative standard error of the distinct estimate.
    pub distinct_standard_error: f64,
    /// Current heap footprint of the approximate plane — O(k + 2^p).
    pub approx_heap_bytes: usize,
}

/// The single-threaded core behind [`StreamEngine`].
#[derive(Debug)]
pub struct StreamCore {
    config: StreamConfig,
    windows: WindowState,
    late: LateTally,
    agg: StreamAggregates,
    top_tlds: SpaceSaving,
    distinct: DistinctSketch,
    metrics: StreamMetrics,
    journal: Option<Journal>,
    offered: u64,
    admitted: u64,
    /// Scratch for window closes (avoids an alloc per offered row).
    closed_scratch: Vec<ClosedWindow>,
}

impl StreamCore {
    pub fn new(config: StreamConfig) -> Self {
        StreamCore {
            config,
            windows: WindowState::new(config.window),
            late: LateTally::default(),
            agg: StreamAggregates::new(config.sample_n, config.sample_salt),
            top_tlds: SpaceSaving::new(config.top_k),
            distinct: DistinctSketch::new(config.sketch_precision, config.sketch_salt),
            metrics: StreamMetrics::default(),
            journal: None,
            offered: 0,
            admitted: 0,
            closed_scratch: Vec::new(),
        }
    }

    fn offer(&mut self, name: &str, day: u32, sensor: u16, rcode: u8, count: u64) -> Admission {
        self.offered += 1;
        let nx = rcode == RCode::NxDomain.to_u8();
        self.closed_scratch.clear();
        if !self.windows.offer(day, nx, count, &mut self.closed_scratch) {
            self.late.rows += 1;
            self.late.responses += count;
            if nx {
                self.late.nx_responses += count;
            }
            *self.late.by_rcode.entry(rcode).or_insert(0) += count;
            self.metrics.late_rows.inc();
            return Admission::Late;
        }
        self.admitted += 1;
        self.agg.observe(name, day, sensor, rcode, count);
        if nx {
            self.top_tlds.offer(tld_of(name), count);
            self.distinct.insert(name);
        }
        self.metrics
            .watermark_lag_days
            .set(i64::try_from(self.windows.watermark_lag_days()).unwrap_or(i64::MAX));
        for w in &self.closed_scratch {
            self.metrics.windows_closed.inc();
            if let Some(journal) = &self.journal {
                journal.info(
                    "stream",
                    "window closed",
                    &[
                        ("start_day", &w.start_day.to_string()),
                        ("end_day", &w.end_day.to_string()),
                        ("rows", &w.tally.rows.to_string()),
                        ("nx_responses", &w.tally.nx_responses.to_string()),
                        (
                            "watermark",
                            &self.windows.watermark().unwrap_or(0).to_string(),
                        ),
                    ],
                );
            }
        }
        Admission::Admitted
    }

    fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot {
            offered_rows: self.offered,
            admitted_rows: self.admitted,
            late: self.late.clone(),
            max_day: self.windows.max_day(),
            watermark: self.windows.watermark(),
            windows_open: self.windows.open_windows().count() as u64,
            windows_closed: self.windows.closed_count(),
            rcode_breakdown: self.agg.rcode_breakdown(),
            total_nx_responses: self.agg.total_nx_responses(),
            distinct_nx_names: self.agg.distinct_nx_names(),
            monthly_nx: self.agg.monthly_nx_series(),
            yearly_avg_monthly_nx: self.agg.yearly_avg_monthly_nx(),
            nx_by_sensor: self.agg.nx_by_sensor(),
            tld_distribution: self.agg.tld_distribution(),
            sample_nx_names: self.agg.sample_nx_name_strings(),
            top_tlds: self.top_tlds.top(self.config.top_k),
            topk_error_bound: self.top_tlds.error_bound(),
            distinct_nx_estimate: self.distinct.estimate(),
            distinct_standard_error: self.distinct.standard_error(),
            approx_heap_bytes: self.top_tlds.heap_bytes() + self.distinct.heap_bytes(),
        }
    }
}

/// Shareable streaming-engine handle (clones share one core).
#[derive(Debug, Clone)]
pub struct StreamEngine {
    core: Arc<Mutex<StreamCore>>,
}

impl Default for StreamEngine {
    fn default() -> Self {
        StreamEngine::new(StreamConfig::default())
    }
}

impl StreamEngine {
    pub fn new(config: StreamConfig) -> Self {
        StreamEngine {
            core: Arc::new(Mutex::new(StreamCore::new(config))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StreamCore> {
        self.core.lock().expect("stream engine lock poisoned")
    }

    pub fn config(&self) -> StreamConfig {
        self.lock().config
    }

    /// Offers one observation row.
    pub fn offer_row(
        &self,
        name: &str,
        day: u32,
        sensor: u16,
        rcode: RCode,
        count: u32,
    ) -> Admission {
        self.lock()
            .offer(name, day, sensor, rcode.to_u8(), u64::from(count))
    }

    /// Folds a whole batch (e.g. one SIE [`crate::sie::ShardBatch`]) in
    /// under a single lock acquisition. Returns `(admitted, late)` rows.
    pub fn offer_db(&self, db: &PassiveDb) -> (u64, u64) {
        let mut core = self.lock();
        let mut admitted = 0u64;
        let mut late = 0u64;
        for obs in db.rows() {
            let name = db.interner().resolve(obs.name);
            match core.offer(name, obs.day, obs.sensor, obs.rcode, u64::from(obs.count)) {
                Admission::Admitted => admitted += 1,
                Admission::Late => late += 1,
            }
        }
        (admitted, late)
    }

    /// Like [`StreamEngine::offer_db`] but returns the per-row admission
    /// verdicts in row order, so a caller can route late rows to a side
    /// store while admitted rows proceed to the main one.
    pub fn offer_db_admissions(&self, db: &PassiveDb) -> Vec<Admission> {
        let mut core = self.lock();
        db.rows()
            .map(|obs| {
                let name = db.interner().resolve(obs.name);
                core.offer(name, obs.day, obs.sensor, obs.rcode, u64::from(obs.count))
            })
            .collect()
    }

    /// Reports the ingest queue's current depth on `stream_queue_depth`.
    pub fn set_queue_depth(&self, depth: usize) {
        self.lock()
            .metrics
            .queue_depth
            .set(i64::try_from(depth).unwrap_or(i64::MAX));
    }

    /// Point-in-time view of every plane.
    pub fn snapshot(&self) -> StreamSnapshot {
        self.lock().snapshot()
    }

    /// Registers the stream gauges/counters on `registry`, carrying over
    /// state accumulated before attachment.
    pub fn attach_metrics(&self, registry: &Registry) {
        let mut core = self.lock();
        let next = StreamMetrics::registered(registry);
        next.late_rows.add(core.metrics.late_rows.get());
        next.windows_closed.add(core.metrics.windows_closed.get());
        next.queue_depth.set(core.metrics.queue_depth.get());
        next.watermark_lag_days
            .set(core.metrics.watermark_lag_days.get());
        core.metrics = next;
    }

    /// Attaches the flight recorder: every window close emits one
    /// `stream` heartbeat event.
    pub fn attach_journal(&self, journal: Journal) {
        self.lock().journal = Some(journal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use nxd_telemetry::Telemetry;

    fn engine(lateness: u32) -> StreamEngine {
        StreamEngine::new(StreamConfig {
            window: WindowConfig {
                window_days: 10,
                allowed_lateness_days: lateness,
            },
            ..Default::default()
        })
    }

    #[test]
    fn admitted_rows_match_the_batch_oracle() {
        let e = engine(1_000_000); // nothing late
        let mut db = PassiveDb::new();
        let rows = [
            ("dead.com", 10u32, 0u16, RCode::NxDomain, 3u32),
            ("gone.ru", 11, 1, RCode::NxDomain, 7),
            ("alive.com", 12, 0, RCode::NoError, 5),
            ("dead.com", 40, 1, RCode::NxDomain, 2),
        ];
        for (name, day, sensor, rcode, count) in rows {
            assert_eq!(
                e.offer_row(name, day, sensor, rcode, count),
                Admission::Admitted
            );
            db.record_str(name, day, sensor, rcode, count);
        }
        let snap = e.snapshot();
        assert_eq!(snap.offered_rows, 4);
        assert_eq!(snap.admitted_rows, 4);
        assert_eq!(snap.late.rows, 0);
        assert_eq!(snap.total_nx_responses, query::total_nx_responses(&db));
        assert_eq!(snap.rcode_breakdown, query::rcode_breakdown(&db));
        assert_eq!(snap.monthly_nx, query::monthly_nx_series(&db));
        assert_eq!(snap.nx_by_sensor, query::nx_by_sensor(&db));
        assert_eq!(snap.tld_distribution, query::tld_distribution(&db));
    }

    #[test]
    fn late_rows_are_tallied_not_aggregated() {
        let e = engine(0);
        assert_eq!(
            e.offer_row("a.com", 100, 0, RCode::NxDomain, 4),
            Admission::Admitted
        );
        assert_eq!(
            e.offer_row("b.com", 5, 0, RCode::NxDomain, 6),
            Admission::Late
        );
        assert_eq!(
            e.offer_row("c.com", 5, 0, RCode::NoError, 1),
            Admission::Late
        );
        let snap = e.snapshot();
        assert_eq!(snap.admitted_rows, 1);
        assert_eq!(snap.late.rows, 2);
        assert_eq!(snap.late.responses, 7);
        assert_eq!(snap.late.nx_responses, 6);
        assert_eq!(snap.late.by_rcode[&RCode::NxDomain.to_u8()], 6);
        // The aggregates saw only the admitted row.
        assert_eq!(snap.total_nx_responses, 4);
        assert_eq!(snap.distinct_nx_names, 1);
        assert_eq!(snap.offered_rows, snap.admitted_rows + snap.late.rows);
    }

    #[test]
    fn offer_db_resolves_names_through_the_interner() {
        let e = engine(1_000_000);
        let mut db = PassiveDb::new();
        db.record_str("x.com", 1, 0, RCode::NxDomain, 2);
        db.record_str("y.net", 2, 1, RCode::NoError, 3);
        let (admitted, late) = e.offer_db(&db);
        assert_eq!((admitted, late), (2, 0));
        let snap = e.snapshot();
        assert_eq!(snap.total_nx_responses, 2);
        assert_eq!(snap.tld_distribution[0].tld, "com");
    }

    #[test]
    fn metrics_attach_carries_state_and_tracks_live() {
        let telemetry = Telemetry::wall();
        let e = engine(0);
        // Pre-attach late row…
        e.offer_row("a.com", 100, 0, RCode::NxDomain, 1);
        e.offer_row("b.com", 1, 0, RCode::NxDomain, 1);
        e.attach_metrics(&telemetry.registry);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter_total("stream_late_rows_total"), 1);
        // …and post-attach ones land on the registry directly.
        e.offer_row("c.com", 2, 0, RCode::NxDomain, 1);
        e.set_queue_depth(17);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter_total("stream_late_rows_total"), 2);
        assert_eq!(snap.gauge_value("stream_queue_depth"), Some(17));
        assert_eq!(snap.gauge_value("stream_watermark_lag_days"), Some(0));
    }

    #[test]
    fn window_close_heartbeats_the_journal() {
        let telemetry = Telemetry::wall();
        let e = engine(0);
        e.attach_metrics(&telemetry.registry);
        e.attach_journal(telemetry.journal.clone());
        e.offer_row("a.com", 5, 0, RCode::NxDomain, 1);
        assert!(telemetry.journal.is_empty());
        // Day 25 closes [0,10); day 45 closes [20,30). Never-opened
        // windows ([10,20), [30,40)) have nothing to close.
        e.offer_row("b.com", 25, 0, RCode::NxDomain, 1);
        e.offer_row("c.com", 45, 0, RCode::NxDomain, 1);
        let events = telemetry.journal.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|ev| ev.component == "stream"));
        assert!(events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "start_day" && v == "0"));
        assert_eq!(
            telemetry
                .snapshot()
                .counter_total("stream_windows_closed_total"),
            2
        );
        assert_eq!(e.snapshot().windows_closed, 2);
    }

    #[test]
    fn approx_plane_memory_is_bounded() {
        let e = StreamEngine::new(StreamConfig {
            top_k: 16,
            sketch_precision: 10,
            ..Default::default()
        });
        for i in 0..20_000u32 {
            e.offer_row(&format!("n{i}.tld{}", i % 97), 100, 0, RCode::NxDomain, 1);
        }
        let snap = e.snapshot();
        // 2^10 registers + at most 16 short TLD counters.
        assert!(
            snap.approx_heap_bytes < 1024 + 16 * 256,
            "approx plane grew: {} bytes",
            snap.approx_heap_bytes
        );
        assert_eq!(snap.distinct_nx_names, 20_000);
        let est = snap.distinct_nx_estimate as f64;
        assert!((est - 20_000.0).abs() / 20_000.0 <= 4.0 * snap.distinct_standard_error);
    }
}
