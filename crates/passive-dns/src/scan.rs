//! Summary-accelerated scans over the compressed block layout.
//!
//! Each function here answers the same question as its [`crate::query`]
//! twin and is property-tested to return bit-identical results; the
//! difference is *how*. Sealed blocks carry exact pre-aggregated
//! summaries ([`crate::block::BlockSummary`]) built at seal time, so the
//! whole-store group-bys (rcode breakdown, monthly NXDOMAIN series,
//! per-sensor and per-TLD totals) fold summaries instead of decoding
//! rows — the analogue of BigQuery answering an aggregate from column
//! statistics. Scans that need per-row context (lifespan offsets,
//! expiry alignment) still decode, but replace per-row hash-map traffic
//! with dense arrays indexed by the interner's dense [`NameId`]s.
//!
//! These kernels power [`crate::ShardedStore`]'s fan-out; the serial
//! [`crate::query`] engine over an uncompressed store is the pinned
//! reference both for correctness (prop_block.rs) and for the BENCH_6
//! speedup gate.

use std::collections::BTreeMap;

use nxd_dns_wire::RCode;

use crate::block::month_of_day;
use crate::intern::NameId;
use crate::query::{LifespanBucket, TldStat};
use crate::store::{PassiveDb, ScanFilter};

/// Total responses carrying `rcode`: summary fold over sealed blocks plus
/// a scalar pass over the tail. Never decodes a block.
#[must_use]
pub fn total_responses(db: &PassiveDb, rcode: RCode) -> u64 {
    let _t = db.time_query();
    let want = rcode.to_u8();
    let mut total: u64 = db
        .sealed_blocks()
        .iter()
        .map(|b| b.summary().rcode_total(want))
        .sum();
    let (_, _, _, rcodes, counts) = db.tail_columns();
    for i in 0..rcodes.len() {
        if rcodes[i] == want {
            total += counts[i] as u64;
        }
    }
    total
}

/// Response counts per rcode, `(wire value, responses)` sorted by rcode.
/// Summary fold; never decodes a block.
#[must_use]
pub fn rcode_breakdown(db: &PassiveDb) -> Vec<(u8, u64)> {
    let _t = db.time_query();
    let mut map: BTreeMap<u8, u64> = BTreeMap::new();
    for block in db.sealed_blocks() {
        for &(rc, n) in &block.summary().rcode_totals {
            *map.entry(rc).or_insert(0) += n;
        }
    }
    let (_, _, _, rcodes, counts) = db.tail_columns();
    for i in 0..rcodes.len() {
        *map.entry(rcodes[i]).or_insert(0) += counts[i] as u64;
    }
    map.into_iter().collect()
}

/// NXDOMAIN responses per calendar month, `(month_index, responses)`
/// sorted by month. Summary fold; never decodes a block.
#[must_use]
pub fn monthly_nx_series(db: &PassiveDb) -> Vec<(i64, u64)> {
    let _t = db.time_query();
    let want = RCode::NxDomain.to_u8();
    let mut map: BTreeMap<i64, u64> = BTreeMap::new();
    for block in db.sealed_blocks() {
        for &(month, n) in &block.summary().nx_by_month {
            *map.entry(month).or_insert(0) += n;
        }
    }
    let (_, days, _, rcodes, counts) = db.tail_columns();
    for i in 0..days.len() {
        if rcodes[i] == want {
            *map.entry(month_of_day(days[i])).or_insert(0) += counts[i] as u64;
        }
    }
    map.into_iter().collect()
}

/// NXDOMAIN responses grouped by sensor id. Summary fold; never decodes
/// a block.
#[must_use]
pub fn nx_by_sensor(db: &PassiveDb) -> BTreeMap<u16, u64> {
    let _t = db.time_query();
    let want = RCode::NxDomain.to_u8();
    let mut out: BTreeMap<u16, u64> = BTreeMap::new();
    for block in db.sealed_blocks() {
        for &(sensor, n) in &block.summary().nx_by_sensor {
            *out.entry(sensor).or_insert(0) += n;
        }
    }
    let (_, _, sensors, rcodes, counts) = db.tail_columns();
    for i in 0..sensors.len() {
        if rcodes[i] == want {
            *out.entry(sensors[i]).or_insert(0) += counts[i] as u64;
        }
    }
    out
}

/// NXDomain names and query volumes per TLD, sorted like
/// [`crate::query::tld_distribution`] (descending name count, then TLD).
/// Name counts come from the aggregate index; query volumes fold the
/// per-block `nx_by_tld` summaries plus the tail — dense arrays indexed
/// by the interner's dense TLD ids, no hashing.
#[must_use]
pub fn tld_distribution(db: &PassiveDb) -> Vec<TldStat> {
    let _t = db.time_query();
    let tlds = db.interner().tld_count();
    let mut names_by_tld = vec![0u64; tlds];
    for (id, _) in db.nx_names() {
        names_by_tld[db.interner().tld_id(id) as usize] += 1;
    }
    let mut queries_by_tld = vec![0u64; tlds];
    for block in db.sealed_blocks() {
        for &(tld_id, n) in &block.summary().nx_by_tld {
            queries_by_tld[tld_id as usize] += n;
        }
    }
    let want = RCode::NxDomain.to_u8();
    let (ids, _, _, rcodes, counts) = db.tail_columns();
    for i in 0..ids.len() {
        if rcodes[i] == want {
            queries_by_tld[db.interner().tld_id(ids[i]) as usize] += counts[i] as u64;
        }
    }
    let mut out: Vec<TldStat> = (0..tlds)
        .filter(|&t| names_by_tld[t] > 0)
        .map(|t| TldStat {
            tld: db
                .interner()
                .resolve_tld(u32::try_from(t).unwrap_or(u32::MAX))
                .to_string(),
            nx_names: names_by_tld[t],
            nx_queries: queries_by_tld[t],
        })
        .collect();
    out.sort_by(|a, b| b.nx_names.cmp(&a.nx_names).then_with(|| a.tld.cmp(&b.tld)));
    out
}

/// Fig. 5 lifespan histogram, identical to
/// [`crate::query::lifespan_histogram`] but hash-free: first-NX days live
/// in a dense array indexed by [`NameId`], and distinct names per offset
/// are counted by sorting packed `(name, offset)` pairs instead of
/// filling a `HashSet` per bucket.
#[must_use]
pub fn lifespan_histogram(db: &PassiveDb, max_days: u32) -> Vec<LifespanBucket> {
    let _t = db.time_query();
    let want = RCode::NxDomain.to_u8();
    // Dense first-NX-day per name; u32::MAX = never NX.
    let mut first_nx = vec![u32::MAX; db.distinct_names()];
    for (id, agg) in db.nx_names() {
        first_nx[id.0 as usize] = agg.first_nx_day;
    }
    let mut queries = vec![0u64; max_days as usize + 1];
    let mut pairs: Vec<u64> = Vec::new();
    db.for_each_block(
        &ScanFilter::rcode(want),
        |(ids, days, _, rcodes, counts)| {
            for i in 0..ids.len() {
                if rcodes[i] != want {
                    continue;
                }
                let first = first_nx[ids[i].0 as usize];
                if first == u32::MAX {
                    continue;
                }
                let offset = days[i].saturating_sub(first);
                if offset <= max_days {
                    queries[offset as usize] += counts[i] as u64;
                    pairs.push(u64::from(ids[i].0) << 32 | u64::from(offset));
                }
            }
        },
    );
    pairs.sort_unstable();
    pairs.dedup();
    let mut names = vec![0u64; max_days as usize + 1];
    for p in pairs {
        names[(p & 0xFFFF_FFFF) as usize] += 1;
    }
    (0..=max_days)
        .map(|d| LifespanBucket {
            day_offset: d,
            names: names[d as usize],
            queries: queries[d as usize],
        })
        .collect()
}

/// Fig. 6 expiry-aligned averages over a `(name, expiry day)` panel —
/// the sharded engines' slice-friendly twin of
/// [`crate::query::expiry_aligned_series`]. Divides summed totals once by
/// `panel_names`, the full cross-shard panel size, so per-shard series
/// sum to the serial result bit-for-bit.
#[must_use]
pub fn expiry_aligned_series(
    db: &PassiveDb,
    panel: &[(NameId, u32)],
    panel_names: usize,
    before: u32,
    after: u32,
) -> Vec<(i32, f64)> {
    let _t = db.time_query();
    if panel_names == 0 {
        return Vec::new();
    }
    let totals = expiry_aligned_totals(db, panel, before, after);
    let denom = panel_names as f64;
    totals
        .iter()
        .enumerate()
        .map(|(i, &t)| (crate::query::day_offset(i, before), t as f64 / denom))
        .collect()
}

/// The un-normalized totals behind [`expiry_aligned_series`]: summed
/// query counts per day-offset slot. Expiry days live in a dense array
/// indexed by [`NameId`] (u32::MAX = not in panel), and blocks wholly
/// outside the panel's day window skip via zone maps.
#[must_use]
pub fn expiry_aligned_totals(
    db: &PassiveDb,
    panel: &[(NameId, u32)],
    before: u32,
    after: u32,
) -> Vec<u64> {
    let span = (before + after + 1) as usize;
    let mut totals = vec![0u64; span];
    if panel.is_empty() {
        return totals;
    }
    let mut expiry = vec![u32::MAX; db.distinct_names()];
    let mut day_lo = u32::MAX;
    let mut day_hi = 0u32;
    for &(id, e) in panel {
        if (id.0 as usize) < expiry.len() {
            expiry[id.0 as usize] = e;
        }
        day_lo = day_lo.min(e.saturating_sub(before));
        day_hi = day_hi.max(e.saturating_add(after));
    }
    db.for_each_block(
        &ScanFilter::day_range(day_lo, day_hi),
        |(ids, days, _, _, counts)| {
            for i in 0..ids.len() {
                let e = expiry[ids[i].0 as usize];
                if e == u32::MAX {
                    continue;
                }
                let offset = days[i] as i64 - e as i64;
                if offset < -(before as i64) || offset > after as i64 {
                    continue;
                }
                totals[(offset + before as i64) as usize] += counts[i] as u64;
            }
        },
    );
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use nxd_dns_sim::SimTime;

    fn day(y: i32, m: u32, d: u32) -> u32 {
        SimTime::from_ymd(y, m, d).day_number() as u32
    }

    /// Mixed workload across two calendar months, three sensors, two
    /// TLDs, and both rcodes, built at the given block size.
    fn mixed_db(block_rows: usize) -> PassiveDb {
        let mut db = PassiveDb::with_block_rows(block_rows);
        for i in 0..100u32 {
            let name = format!("n{}.{}", i % 17, if i % 3 == 0 { "com" } else { "ru" });
            let rc = if i % 4 == 0 {
                RCode::NoError
            } else {
                RCode::NxDomain
            };
            let sensor = u16::try_from(i % 3).unwrap();
            db.record_str(&name, day(2015, 1, 1) + i / 2, sensor, rc, i + 1);
        }
        db
    }

    #[test]
    fn summary_scans_match_query_engine() {
        for block_rows in [7, 16, usize::MAX] {
            let db = mixed_db(block_rows);
            assert_eq!(
                total_responses(&db, RCode::NxDomain),
                query::total_responses(&db, RCode::NxDomain)
            );
            assert_eq!(
                total_responses(&db, RCode::NoError),
                query::total_responses(&db, RCode::NoError)
            );
            assert_eq!(rcode_breakdown(&db), query::rcode_breakdown(&db));
            assert_eq!(monthly_nx_series(&db), query::monthly_nx_series(&db));
            assert_eq!(nx_by_sensor(&db), query::nx_by_sensor(&db));
            assert_eq!(tld_distribution(&db), query::tld_distribution(&db));
            assert_eq!(
                lifespan_histogram(&db, 40),
                query::lifespan_histogram(&db, 40)
            );
        }
    }

    #[test]
    fn expiry_kernel_matches_query_engine() {
        for block_rows in [5, usize::MAX] {
            let db = mixed_db(block_rows);
            let panel: Vec<(NameId, u32)> = db
                .nx_names()
                .map(|(id, agg)| (id, agg.first_nx_day + 3))
                .collect();
            let map: std::collections::HashMap<NameId, u32> = panel.iter().copied().collect();
            let fast = expiry_aligned_series(&db, &panel, map.len(), 10, 20);
            let slow = query::expiry_aligned_series(&db, &map, 10, 20);
            assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.0, s.0);
                assert_eq!(f.1.to_bits(), s.1.to_bits(), "offset {}", f.0);
            }
        }
    }

    #[test]
    fn empty_panel_is_empty_series() {
        let db = mixed_db(8);
        assert!(expiry_aligned_series(&db, &[], 0, 5, 5).is_empty());
        assert_eq!(expiry_aligned_totals(&db, &[], 5, 5), vec![0u64; 11]);
    }
}
