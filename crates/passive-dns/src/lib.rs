//! # nxd-passive-dns
//!
//! The passive-DNS substrate standing in for the Farsight database the paper
//! analyzes (§3.1–§3.2): interned columnar storage of pre-aggregated
//! `(name, day, sensor, rcode, count)` observations, an SIE-style parallel
//! ingest channel, and a query engine implementing every analysis the paper
//! runs against its BigQuery mirror.
//!
//! ```
//! use nxd_passive_dns::{PassiveDb, query};
//! use nxd_dns_wire::RCode;
//!
//! let mut db = PassiveDb::new();
//! db.record_str("expired-shop.com", 16_071, 0, RCode::NxDomain, 12);
//! db.record_str("expired-shop.com", 16_072, 1, RCode::NxDomain, 3);
//! assert_eq!(query::total_nx_responses(&db), 15);
//! assert_eq!(query::distinct_nx_names(&db), 1);
//! ```

pub(crate) mod block;
pub mod federation;
pub mod hash;
pub mod intern;
pub mod query;
pub mod scan;
pub mod sensor;
pub mod shard;
pub mod sie;
pub mod store;
pub mod stream;

pub use federation::{Coverage, Federation};
pub use hash::shard_of;
pub use intern::{Interner, NameId};
pub use sensor::{Sensor, VantagePoint};
pub use shard::{auto_shard_count, auto_shard_count_here, ShardedStore};
pub use sie::{collect_parallel, collect_sharded, collect_stream, SieError, SieProducer};
pub use store::{NameAggregate, Observation, PassiveDb};
pub use stream::{Admission, StreamConfig, StreamEngine, StreamSnapshot};
