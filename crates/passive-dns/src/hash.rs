//! Deterministic name hashing shared by the sampling query and the sharded
//! engine.
//!
//! Both consumers need the same property: a pure function of the name's
//! bytes, stable across runs, platforms, and shard counts, so that sampling
//! membership (§4.2) and shard placement never depend on interning order or
//! process state.

/// FNV-1a over `bytes`, with `salt` folded into the offset basis.
pub fn fnv1a(bytes: &[u8], salt: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Salt reserved for shard placement so it can never collide with a
/// user-chosen sampling salt.
const SHARD_SALT: u64 = 0x5AAD_0000_0000_0001;

/// The shard a qname belongs to among `shards` partitions.
///
/// This is *the* invariant the sharded engine is built on: every row for a
/// given name lands in exactly one shard, so per-name aggregates
/// (first/last NX day, lifespans, per-name query totals) are complete
/// within their shard and never need cross-shard reconciliation.
pub fn shard_of(name: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    (fnv1a(name.as_bytes(), SHARD_SALT) % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Known-answer: hashing must never change across refactors, or
        // sampling membership and shard placement silently shift.
        assert_eq!(fnv1a(b"", 0), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"example.com", 0), fnv1a(b"example.com", 0));
        assert_ne!(fnv1a(b"example.com", 0), fnv1a(b"example.com", 1));
    }

    #[test]
    fn shard_of_is_in_range_and_deterministic() {
        for shards in [1usize, 2, 4, 8, 16] {
            for name in ["a.com", "b.net", "very-long-name.example.org", ""] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards));
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        for name in ["a.com", "b.net", "c.ru"] {
            assert_eq!(shard_of(name, 1), 0);
        }
    }

    #[test]
    fn shards_spread_names() {
        // 1000 distinct names over 8 shards: every shard gets something.
        let mut seen = [false; 8];
        for i in 0..1000 {
            seen[shard_of(&format!("name-{i}.com"), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "a shard received no names");
    }
}
