//! Domain-name interning for the columnar store.
//!
//! The passive database holds hundreds of thousands of distinct names, each
//! referenced by many rows. Interning collapses every occurrence to a `u32`
//! id and keeps one canonical string, cutting row width and making group-bys
//! integer comparisons. The ablation bench `interning` quantifies the win.

use std::collections::HashMap;

use nxd_dns_wire::Name;

/// Identifier of an interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// An append-only name interner.
///
/// Also memoizes each name's TLD as an interned id of its own, so TLD
/// group-bys never re-parse strings.
#[derive(Debug, Default)]
pub struct Interner {
    lookup: HashMap<Box<str>, NameId>,
    names: Vec<Box<str>>,
    /// Parallel to `names`: index into `tlds`.
    tld_of: Vec<u32>,
    tlds: Vec<Box<str>>,
    tld_lookup: HashMap<Box<str>, u32>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a [`Name`] (normalized already).
    pub fn intern(&mut self, name: &Name) -> NameId {
        self.intern_str(name.as_str())
    }

    /// Interns a pre-normalized (lowercase, no trailing dot) name string.
    pub fn intern_str(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.lookup.insert(boxed.clone(), id);
        self.names.push(boxed);
        let tld = name.rsplit('.').next().unwrap_or("");
        let tld_id = match self.tld_lookup.get(tld) {
            Some(&t) => t,
            None => {
                let t = self.tlds.len() as u32;
                let b: Box<str> = tld.into();
                self.tld_lookup.insert(b.clone(), t);
                self.tlds.push(b);
                t
            }
        };
        self.tld_of.push(tld_id);
        id
    }

    /// Returns the id of an already-interned name, if present.
    pub fn get(&self, name: &str) -> Option<NameId> {
        self.lookup.get(name).copied()
    }

    /// The string for an id.
    ///
    /// # Panics
    /// Panics on an id not produced by this interner.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The TLD id of an interned name.
    pub fn tld_id(&self, id: NameId) -> u32 {
        self.tld_of[id.0 as usize]
    }

    /// The TLD string for a TLD id.
    pub fn resolve_tld(&self, tld_id: u32) -> &str {
        &self.tlds[tld_id as usize]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of distinct TLDs seen.
    pub fn tld_count(&self) -> usize {
        self.tlds.len()
    }

    /// Iterates `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (NameId(i as u32), s.as_ref()))
    }

    /// Approximate heap footprint in bytes (for the interning ablation).
    pub fn heap_bytes(&self) -> usize {
        self.names
            .iter()
            .map(|s| s.len() + std::mem::size_of::<Box<str>>())
            .sum::<usize>()
            + self.tld_of.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern_str("example.com");
        let b = i.intern_str("example.com");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern_str("a.com");
        let b = i.intern_str("b.com");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "a.com");
        assert_eq!(i.resolve(b), "b.com");
    }

    #[test]
    fn tlds_are_shared() {
        let mut i = Interner::new();
        let a = i.intern_str("a.com");
        let b = i.intern_str("b.com");
        let c = i.intern_str("c.ru");
        assert_eq!(i.tld_id(a), i.tld_id(b));
        assert_ne!(i.tld_id(a), i.tld_id(c));
        assert_eq!(i.resolve_tld(i.tld_id(c)), "ru");
        assert_eq!(i.tld_count(), 2);
    }

    #[test]
    fn get_without_interning() {
        let mut i = Interner::new();
        assert_eq!(i.get("x.com"), None);
        let id = i.intern_str("x.com");
        assert_eq!(i.get("x.com"), Some(id));
    }

    #[test]
    fn intern_name_type() {
        let mut i = Interner::new();
        let n: Name = "MiXeD.CoM".parse().unwrap();
        let id = i.intern(&n);
        assert_eq!(i.resolve(id), "mixed.com");
    }

    #[test]
    fn iter_in_order() {
        let mut i = Interner::new();
        i.intern_str("one.com");
        i.intern_str("two.com");
        let all: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(all, vec!["one.com", "two.com"]);
    }
}
