//! Minimal HTTP/1.1 request parsing and response writing — just enough
//! wire handling for the GET-only observability plane, written to the
//! workspace's hostile-input rules (NXL002: no panics or indexing in
//! parse paths; malformed requests surface as `Err`).

use std::io::{self, BufRead, Write};

/// Upper bound on the request head (request line + headers) this server
/// will buffer; longer heads are rejected rather than accumulated.
pub const MAX_HEAD_BYTES: u64 = 16 * 1024;

/// One parsed request line: method, decoded path, and query pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// The path component of the target, without the query string.
    pub path: String,
    /// Query pairs in target order; a key without `=` maps to `""`.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// The first query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request head from `reader` (bounded by [`MAX_HEAD_BYTES`]),
/// parses the request line, and discards the headers — the plane is
/// GET-only, so no body follows. Malformed or oversized heads are
/// [`io::ErrorKind::InvalidData`] errors, never panics.
pub fn read_request<R: BufRead>(reader: R) -> io::Result<Request> {
    let mut head = reader.take(MAX_HEAD_BYTES);
    let mut line = String::new();
    head.read_line(&mut line)?;
    let request = parse_request_line(&line)?;
    // Drain headers up to the blank line so the response is not written
    // into the middle of an unread request on keep-alive-ish clients.
    loop {
        let mut header = String::new();
        let n = head.read_line(&mut header)?;
        if n == 0 || header.trim_end_matches(['\r', '\n']).is_empty() {
            break;
        }
    }
    Ok(request)
}

/// Parses `"GET /journal?since=42 HTTP/1.1"` into a [`Request`].
pub fn parse_request_line(line: &str) -> io::Result<Request> {
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| bad("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/") {
        return Err(bad("request line has no HTTP version"));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
    })
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Prometheus text exposition content type.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";
/// Plain text content type for `/healthz`-style endpoints.
pub const TEXT_CONTENT_TYPE: &str = "text/plain; charset=utf-8";
/// JSON content type for `/snapshot.json` and `/spans`.
pub const JSON_CONTENT_TYPE: &str = "application/json";
/// JSON-lines content type for `/journal`.
pub const JSONL_CONTENT_TYPE: &str = "application/x-ndjson";

/// One complete response: status, content type, body. Always
/// `Connection: close` — the plane trades keep-alive for simplicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    /// 200 with an arbitrary content type.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// 200 `text/plain`.
    pub fn text(body: &str) -> Self {
        Response::ok(TEXT_CONTENT_TYPE, body.to_string())
    }

    /// 200 `application/json`.
    pub fn json(body: String) -> Self {
        Response::ok(JSON_CONTENT_TYPE, body)
    }

    /// 400 for unparsable requests.
    pub fn bad_request() -> Self {
        Response {
            status: 400,
            content_type: TEXT_CONTENT_TYPE,
            body: "bad request\n".into(),
        }
    }

    /// 404 for unknown paths.
    pub fn not_found() -> Self {
        Response {
            status: 404,
            content_type: TEXT_CONTENT_TYPE,
            body: "not found\n".into(),
        }
    }

    /// 405 for anything that is not a GET.
    pub fn method_not_allowed() -> Self {
        Response {
            status: 405,
            content_type: TEXT_CONTENT_TYPE,
            body: "only GET is supported\n".into(),
        }
    }

    /// 503 while the pipeline has not completed its first phase.
    pub fn service_unavailable(body: &str) -> Self {
        Response {
            status: 503,
            content_type: TEXT_CONTENT_TYPE,
            body: body.to_string(),
        }
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body to `w` and flushes.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        )?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_plain_target() {
        let req = parse_request_line("GET /metrics HTTP/1.1\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.query.is_empty());
        assert_eq!(req.query_param("since"), None);
    }

    #[test]
    fn parses_query_pairs() {
        let req = parse_request_line("GET /journal?since=42&flat&k=v HTTP/1.1\r\n").unwrap();
        assert_eq!(req.path, "/journal");
        assert_eq!(req.query_param("since"), Some("42"));
        assert_eq!(req.query_param("flat"), Some(""));
        assert_eq!(req.query_param("k"), Some("v"));
    }

    #[test]
    fn hostile_request_lines_are_errors_not_panics() {
        for bad in ["", "\r\n", "GET", "GET /x FTP/9", "?? ?? ??\r\n"] {
            assert!(parse_request_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn read_request_drains_headers() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let req = read_request(BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn oversized_head_is_bounded() {
        let mut raw = b"GET /ok HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 2 * MAX_HEAD_BYTES as usize));
        // The parse either succeeds (request line fit) without buffering
        // the rest, or errors — it must not run away; Take caps it.
        let _ = read_request(BufReader::new(&raw[..]));
    }

    #[test]
    fn response_wire_shape() {
        let mut out = Vec::new();
        Response::text("ok\n").write_to(&mut out).unwrap();
        let raw = String::from_utf8(out).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(raw.contains("Content-Length: 3\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(Response::not_found().reason(), "Not Found");
        assert_eq!(Response::method_not_allowed().status, 405);
        assert_eq!(Response::bad_request().status, 400);
        assert_eq!(Response::service_unavailable("starting\n").status, 503);
    }
}
