//! A tiny blocking HTTP/1.1 GET client — enough to scrape the plane from
//! `nxdctl obs scrape`, the integration tests, and the example, without a
//! curl dependency. Hostile responses surface as `Err`, never panics.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long a scrape will wait on connect-adjacent socket operations.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(10);

/// One scraped response: status code and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeResult {
    pub status: u16,
    pub body: String,
}

/// Blocking `GET {path}` against `addr` (`host:port`). The connection is
/// `Connection: close`, so the body is everything after the header block.
pub fn http_get(addr: &str, path: &str) -> io::Result<ScrapeResult> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(SCRAPE_TIMEOUT))?;
    stream.set_write_timeout(Some(SCRAPE_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))
}

/// Splits a raw `Connection: close` response into status and body.
pub fn parse_response(raw: &str) -> Option<ScrapeResult> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status_line = head.lines().next()?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    let status = parts.next()?.parse::<u16>().ok()?;
    Some(ScrapeResult {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "hello\n");
    }

    #[test]
    fn body_may_contain_blank_lines() {
        let raw = "HTTP/1.1 200 OK\r\n\r\nline1\r\n\r\nline2";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.body, "line1\r\n\r\nline2");
    }

    #[test]
    fn hostile_responses_are_none() {
        for bad in ["", "garbage", "HTTP/1.1\r\n\r\n", "STATUS 200\r\n\r\nx"] {
            assert!(parse_response(bad).is_none(), "accepted {bad:?}");
        }
    }
}
