//! # nxd-obs
//!
//! The live observability plane: a minimal, zero-dependency HTTP/1.1
//! server that exposes a running pipeline's [`nxd_telemetry`] state —
//! Prometheus exposition, JSON snapshots, the flight-recorder journal,
//! and Chrome trace spans — while the run is still in flight.
//!
//! The paper's pipelines operate at Farsight scale (1.07 T responses),
//! where operators watch systems live rather than reading post-hoc dumps.
//! Batch experiments gain that visibility through `repro --serve <addr>`;
//! the planned `nxd-serve` front-end reuses the same plane as its
//! admin/metrics endpoint.
//!
//! | Endpoint | Content | Semantics |
//! |---|---|---|
//! | `GET /metrics` | Prometheus text | live [`Registry`] snapshot |
//! | `GET /healthz` | `ok` | liveness: the server answers |
//! | `GET /readyz` | `ready`/`starting` | 503 until the first phase completes |
//! | `GET /snapshot.json` | JSON | the same snapshot, structured |
//! | `GET /journal?since=N` | JSON lines | journal events with `seq > N` |
//! | `GET /spans` | Chrome trace JSON | finished tracer spans |
//!
//! [`Registry`]: nxd_telemetry::Registry
//!
//! ```
//! use std::sync::Arc;
//! use nxd_obs::{client, ObsServer};
//! use nxd_telemetry::Telemetry;
//!
//! let telemetry = Arc::new(Telemetry::wall());
//! telemetry.registry.counter("demo_total").inc();
//! let server = ObsServer::bind("127.0.0.1:0", telemetry).unwrap();
//! let addr = server.local_addr().to_string();
//! let scrape = client::http_get(&addr, "/metrics").unwrap();
//! assert_eq!(scrape.status, 200);
//! assert!(scrape.body.contains("demo_total 1"));
//! server.shutdown();
//! ```

pub mod client;
pub mod http;
pub mod server;

pub use client::{http_get, ScrapeResult};
pub use http::{Request, Response};
pub use server::{ObsServer, DEFAULT_WORKERS};
