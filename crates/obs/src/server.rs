//! The observability HTTP server: a bounded worker pool over
//! `std::net::TcpListener` serving the endpoint table in the crate docs,
//! with graceful shutdown (shutdown flag + connect-to-self wakeup, then
//! join every thread).
//!
//! Threading model: one acceptor thread pushes accepted connections into a
//! bounded channel; N worker threads pull and answer them. The workspace's
//! NXL005 invariant (worker panics must surface as typed data, not die
//! silently) is preserved differently than in the compute pipelines:
//! server threads must outlive the function that binds them, so instead of
//! a crossbeam scope each connection is handled under `catch_unwind` and a
//! panic becomes an [`EventLevel::Error`](nxd_telemetry::EventLevel)
//! journal event — observable on the very plane this crate serves.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nxd_telemetry::Telemetry;

use crate::http::{read_request, Request, Response, JSONL_CONTENT_TYPE, PROMETHEUS_CONTENT_TYPE};

/// Default worker-pool size: an admin plane is scraped by one Prometheus
/// and the odd operator curl, not by production traffic.
pub const DEFAULT_WORKERS: usize = 4;

/// Accepted-but-unserved connections the acceptor will queue before
/// exerting backpressure (further accepts block in `send`).
const PENDING_CONNECTIONS: usize = 64;

/// Per-connection socket timeouts so a stalled peer cannot pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// State shared by the acceptor, the workers, and the owning handle.
struct Shared {
    telemetry: Arc<Telemetry>,
    ready: AtomicBool,
    shutdown: AtomicBool,
}

/// A running observability server. Dropping the handle shuts it down;
/// call [`ObsServer::shutdown`] to do so explicitly.
pub struct ObsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds on `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor plus [`DEFAULT_WORKERS`] workers. The server answers
    /// `/healthz` immediately; `/readyz` stays 503 until
    /// [`ObsServer::set_ready`].
    pub fn bind(addr: impl ToSocketAddrs, telemetry: Arc<Telemetry>) -> std::io::Result<Self> {
        Self::bind_with(addr, telemetry, DEFAULT_WORKERS)
    }

    /// [`ObsServer::bind`] with an explicit worker count (clamped to 1..=16).
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        telemetry: Arc<Telemetry>,
        workers: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            telemetry,
            ready: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let worker_count = workers.clamp(1, 16);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(PENDING_CONNECTIONS);
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            let rx = rx.clone();
            let shared = shared.clone();
            worker_handles.push(spawn_detached(move || worker_loop(index, &rx, &shared)));
        }
        let acceptor_shared = shared.clone();
        let acceptor = spawn_detached(move || accept_loop(&listener, &tx, &acceptor_shared));
        shared.telemetry.journal.info(
            "obs",
            "server listening",
            &[
                ("addr", &local.to_string()),
                ("workers", &worker_count.to_string()),
            ],
        );
        Ok(ObsServer {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address — with port 0 binds, the port the OS picked.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flips `/readyz` from 503 to 200. Idempotent; the first flip is
    /// recorded in the journal. Call when the pipeline's first phase
    /// completes, per the readiness contract in the crate docs.
    pub fn set_ready(&self) {
        if !self.shared.ready.swap(true, Ordering::SeqCst) {
            self.shared
                .telemetry
                .journal
                .info("obs", "readiness flipped", &[]);
        }
    }

    /// Current `/readyz` state.
    pub fn is_ready(&self) -> bool {
        self.shared.ready.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: raises the shutdown flag, wakes the acceptor
    /// with a connect-to-self, and joins every thread. In-flight
    /// responses complete; queued connections are answered before the
    /// workers observe the closed channel and exit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // accept() has no timeout; a throwaway connection unblocks it so
        // it can observe the flag.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared
            .telemetry
            .journal
            .info("obs", "server stopped", &[]);
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .field("ready", &self.is_ready())
            .finish_non_exhaustive()
    }
}

/// The workspace's one sanctioned detached-spawn site. Server threads must
/// outlive the function that binds them (a crossbeam scope would join
/// before `bind` returned), every handle is joined in shutdown, and worker
/// panics are caught per-connection and journaled — the invariant NXL005
/// protects (panics surface as typed data) holds by other means.
fn spawn_detached(f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::spawn(f) // nxd-lint: allow(NXL005, reason="server threads outlive bind(); all handles joined in shutdown(); per-connection panics are caught and recorded as journal error events")
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wakeup connection itself; nothing to serve.
            break;
        }
        if tx.send(stream).is_err() {
            break;
        }
    }
    // Dropping tx here closes the channel; workers drain it and exit.
}

fn worker_loop(index: usize, rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Arc<Shared>) {
    loop {
        // Lock only around recv: dequeueing is serialized, handling is
        // concurrent across workers.
        let stream = {
            let Ok(guard) = rx.lock() else { break };
            match guard.recv() {
                Ok(stream) => stream,
                Err(_) => break,
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_connection(stream, shared)));
        if outcome.is_err() {
            shared.telemetry.journal.error(
                "obs",
                "connection handler panicked",
                &[("worker", &index.to_string())],
            );
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(request) => route(&request, shared),
        Err(_) => Response::bad_request(),
    };
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
}

fn route(request: &Request, shared: &Shared) -> Response {
    if request.method != "GET" {
        return Response::method_not_allowed();
    }
    let response = match request.path.as_str() {
        "/" => Response::text(
            "nxd-obs: /metrics /healthz /readyz /snapshot.json /journal?since=<seq> /spans\n",
        ),
        "/metrics" => Response::ok(
            PROMETHEUS_CONTENT_TYPE,
            shared.telemetry.registry.snapshot().to_prometheus(),
        ),
        "/healthz" => Response::text("ok\n"),
        "/readyz" => {
            if shared.ready.load(Ordering::SeqCst) {
                Response::text("ready\n")
            } else {
                Response::service_unavailable("starting\n")
            }
        }
        "/snapshot.json" => Response::json(shared.telemetry.registry.snapshot().to_json()),
        "/journal" => {
            let since = request
                .query_param("since")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            Response::ok(
                JSONL_CONTENT_TYPE,
                nxd_telemetry::journal::jsonl(&shared.telemetry.journal.since(since)),
            )
        }
        "/spans" => Response::json(shared.telemetry.tracer.to_chrome_trace()),
        _ => Response::not_found(),
    };
    // Route-label cardinality stays bounded: unknown paths count as one
    // "other" series rather than echoing attacker-controlled strings.
    let label = if response.status == 404 {
        "other"
    } else {
        request.path.as_str()
    };
    shared
        .telemetry
        .registry
        .counter_with("obs_http_requests_total", &[("path", label)])
        .inc();
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_get;

    fn server() -> (ObsServer, String) {
        let telemetry = Arc::new(Telemetry::wall());
        telemetry.registry.counter("seed_total").add(5);
        telemetry.journal.info("test", "seeded", &[("k", "v")]);
        let server = ObsServer::bind("127.0.0.1:0", telemetry).unwrap();
        let addr = server.local_addr().to_string();
        (server, addr)
    }

    #[test]
    fn serves_metrics_health_and_snapshot() {
        let (server, addr) = server();
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("seed_total 5"));

        let health = http_get(&addr, "/healthz").unwrap();
        assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

        let snapshot = http_get(&addr, "/snapshot.json").unwrap();
        assert_eq!(snapshot.status, 200);
        assert!(snapshot.body.contains("\"name\":\"seed_total\""));

        let spans = http_get(&addr, "/spans").unwrap();
        assert!(spans.body.starts_with("{\"traceEvents\":["));
        server.shutdown();
    }

    #[test]
    fn readiness_flips_once() {
        let (server, addr) = server();
        assert_eq!(http_get(&addr, "/readyz").unwrap().status, 503);
        assert!(!server.is_ready());
        server.set_ready();
        server.set_ready();
        assert_eq!(http_get(&addr, "/readyz").unwrap().status, 200);
        assert!(server.is_ready());
        server.shutdown();
    }

    #[test]
    fn journal_since_is_a_cursor() {
        let (server, addr) = server();
        let full = http_get(&addr, "/journal").unwrap();
        assert!(full.body.contains("\"message\":\"seeded\""));
        // The highest seq seen so far filters everything out...
        let empty = http_get(&addr, "/journal?since=1000000").unwrap();
        assert_eq!(empty.body, "");
        // ...and garbage cursors fall back to the full tail.
        let fallback = http_get(&addr, "/journal?since=bogus").unwrap();
        assert_eq!(fallback.body, full.body);
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let (server, addr) = server();
        assert_eq!(http_get(&addr, "/nope").unwrap().status, 404);
        // Requests counter groups 404s under "other".
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics
            .body
            .contains("obs_http_requests_total{path=\"other\"} 1"));
        server.shutdown();
    }

    #[test]
    fn shutdown_frees_the_port_and_joins() {
        let telemetry = Arc::new(Telemetry::wall());
        let server = ObsServer::bind_with("127.0.0.1:0", telemetry.clone(), 2).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The port is free again and the journal recorded the lifecycle.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
        let events = telemetry.journal.snapshot();
        assert!(events.iter().any(|e| e.message == "server listening"));
        assert!(events.iter().any(|e| e.message == "server stopped"));
    }
}
