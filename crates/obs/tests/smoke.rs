//! CI observability smoke test: start the plane on an ephemeral port,
//! scrape it with the crate's own client (no curl dependency), and assert
//! the exposition and journal wire formats are well formed.

use std::sync::Arc;

use nxd_obs::{client, ObsServer};
use nxd_telemetry::Telemetry;

fn well_formed_prometheus(body: &str) {
    assert!(!body.is_empty(), "empty exposition");
    for line in body.lines() {
        if line.starts_with('#') {
            let mut parts = line.split_whitespace();
            assert_eq!(parts.next(), Some("#"), "bad comment line: {line}");
            let kind = parts.next().unwrap_or("");
            assert!(
                kind == "TYPE" || kind == "HELP",
                "unknown comment kind in: {line}"
            );
            assert!(
                parts.next().is_some(),
                "comment without metric name: {line}"
            );
        } else {
            // `name{labels} value` or `name value`; the value parses as a
            // number.
            let value = line.rsplit(' ').next().unwrap_or("");
            assert!(
                value.parse::<f64>().is_ok(),
                "series line without numeric value: {line}"
            );
        }
    }
}

fn well_formed_jsonl(body: &str) {
    for line in body.lines() {
        assert!(
            line.starts_with("{\"seq\":") && line.ends_with("}}"),
            "bad JSONL line: {line}"
        );
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced JSONL line: {line}"
        );
        for key in ["\"t_us\":", "\"level\":", "\"component\":", "\"message\":"] {
            assert!(line.contains(key), "JSONL line missing {key}: {line}");
        }
    }
}

#[test]
fn smoke_scrape_all_endpoints() {
    let telemetry = Arc::new(Telemetry::wall());
    telemetry
        .registry
        .describe("smoke_rows_total", "Rows seen by the smoke test");
    telemetry
        .registry
        .counter_with("smoke_rows_total", &[("stage", "ingest")])
        .add(7);
    telemetry.registry.histogram("smoke_latency_us").record(42);
    telemetry
        .journal
        .info("smoke", "phase start", &[("phase", "ingest")]);

    let server = ObsServer::bind("127.0.0.1:0", telemetry.clone()).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    let health = client::http_get(&addr, "/healthz").expect("healthz");
    assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

    let metrics = client::http_get(&addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    well_formed_prometheus(&metrics.body);
    assert!(metrics
        .body
        .contains("# HELP smoke_rows_total Rows seen by the smoke test"));
    assert!(metrics
        .body
        .contains("smoke_rows_total{stage=\"ingest\"} 7"));
    assert!(metrics.body.contains("smoke_latency_us_count 1"));

    let journal = client::http_get(&addr, "/journal").expect("journal");
    assert_eq!(journal.status, 200);
    well_formed_jsonl(&journal.body);
    assert!(journal.body.contains("\"message\":\"phase start\""));

    // The cursor protocol: events after `since` only.
    let cursor = telemetry.journal.last_seq();
    telemetry.journal.warn("smoke", "late event", &[]);
    let tail = client::http_get(&addr, &format!("/journal?since={cursor}")).expect("journal tail");
    well_formed_jsonl(&tail.body);
    assert_eq!(tail.body.lines().count(), 1);
    assert!(tail.body.contains("\"message\":\"late event\""));

    // Metrics move between scrapes while the "pipeline" works.
    telemetry
        .registry
        .counter_with("smoke_rows_total", &[("stage", "ingest")])
        .add(3);
    let rescrape = client::http_get(&addr, "/metrics").expect("metrics rescrape");
    assert!(rescrape
        .body
        .contains("smoke_rows_total{stage=\"ingest\"} 10"));
    assert_ne!(metrics.body, rescrape.body);

    server.shutdown();
}

#[test]
fn smoke_readiness_protocol() {
    let telemetry = Arc::new(Telemetry::wall());
    let server = ObsServer::bind("127.0.0.1:0", telemetry).expect("bind");
    let addr = server.local_addr().to_string();
    assert_eq!(
        client::http_get(&addr, "/readyz").expect("readyz").status,
        503
    );
    server.set_ready();
    assert_eq!(
        client::http_get(&addr, "/readyz").expect("readyz").status,
        200
    );
    server.shutdown();
}
