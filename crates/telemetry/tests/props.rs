//! Property-based tests for the histogram snapshot algebra: the bucket
//! bookkeeping, the merge monoid, and the snapshot/delta roundtrip the
//! `repro` binary relies on for per-experiment metric deltas.

use nxd_telemetry::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

// Values span 49 of the 65 log2 buckets while keeping any sum of a few
// hundred samples far below u64::MAX — `merge` adds sums without widening,
// which is sound for the microsecond/count magnitudes the pipeline records.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..(1u64 << 48), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The total count always equals the sum of the per-bucket counts, and
    /// the sum equals the sum of the recorded values.
    #[test]
    fn count_is_sum_of_buckets(values in arb_values()) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.count(), snap.buckets.iter().sum::<u64>());
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min(), values.iter().min().copied());
        prop_assert_eq!(snap.max(), values.iter().max().copied());
    }

    /// Merge is commutative: a ∪ b == b ∪ a.
    #[test]
    fn merge_commutes(a in arb_values(), b in arb_values()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_associates(a in arb_values(), b in arb_values(), c in arb_values()) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    /// The empty snapshot is the merge identity.
    #[test]
    fn empty_is_identity(values in arb_values()) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.merge(&HistogramSnapshot::empty()), snap.clone());
        prop_assert_eq!(HistogramSnapshot::empty().merge(&snap), snap);
    }

    /// Merging a snapshot of the combined stream equals recording both
    /// streams into one histogram.
    #[test]
    fn merge_matches_combined_recording(a in arb_values(), b in arb_values()) {
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        let combined: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, snapshot_of(&combined));
    }

    /// Snapshot-then-delta roundtrip: for a live histogram observed at two
    /// points, `earlier.merge(&later.delta(&earlier)) == later` — the law
    /// that makes per-experiment deltas in `repro --metrics` exact.
    #[test]
    fn delta_roundtrips(first in arb_values(), second in arb_values()) {
        let h = Histogram::new();
        for &v in &first {
            h.record(v);
        }
        let earlier = h.snapshot();
        for &v in &second {
            h.record(v);
        }
        let later = h.snapshot();
        let delta = later.delta(&earlier);
        prop_assert_eq!(delta.count(), second.len() as u64);
        prop_assert_eq!(earlier.merge(&delta), later);
    }
}
