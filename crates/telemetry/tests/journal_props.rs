//! Property-based tests for the flight-recorder journal ring: bounded
//! capacity, strictly monotonic sequence numbers, cursor semantics of
//! `since`, and FIFO eviction — the invariants the `/journal?since=<seq>`
//! polling protocol depends on.

use std::sync::Arc;

use nxd_telemetry::{EventLevel, Journal, JournalEvent, ManualClock};
use proptest::prelude::*;

/// A scripted recording: (level index, component index, clock advance).
fn arb_script() -> impl Strategy<Value = Vec<(u8, u8, u64)>> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u64..1000), 0..200)
}

fn arb_capacity() -> impl Strategy<Value = usize> {
    1usize..32
}

const COMPONENTS: [&str; 3] = ["store", "pipeline", "traffic"];

fn level_of(i: u8) -> EventLevel {
    match i % 4 {
        0 => EventLevel::Debug,
        1 => EventLevel::Info,
        2 => EventLevel::Warn,
        _ => EventLevel::Error,
    }
}

/// Replays a script into a fresh manual-clock journal.
fn replay(capacity: usize, script: &[(u8, u8, u64)]) -> (Journal, Vec<u64>) {
    let clock = Arc::new(ManualClock::new());
    let journal = Journal::with_time(capacity, clock.clone());
    let mut seqs = Vec::with_capacity(script.len());
    for &(level, component, advance) in script {
        clock.advance_micros(advance);
        let idx = usize::from(component) % COMPONENTS.len();
        seqs.push(journal.record(
            level_of(level),
            COMPONENTS[idx],
            "scripted event",
            &[("step", "replay")],
        ));
    }
    (journal, seqs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The ring never retains more than `capacity` events, and the evicted
    /// counter accounts for every overflow exactly.
    #[test]
    fn capacity_is_never_exceeded(cap in arb_capacity(), script in arb_script()) {
        let (journal, _) = replay(cap, &script);
        prop_assert!(journal.len() <= cap);
        prop_assert_eq!(journal.len(), script.len().min(cap));
        prop_assert_eq!(
            journal.evicted(),
            script.len().saturating_sub(cap) as u64
        );
    }

    /// Sequence numbers are strictly monotonic from 1 with no gaps, both in
    /// the values `record` returns and in the retained snapshot.
    #[test]
    fn seq_is_strictly_monotonic(cap in arb_capacity(), script in arb_script()) {
        let (journal, seqs) = replay(cap, &script);
        let expected: Vec<u64> = (1..=script.len() as u64).collect();
        prop_assert_eq!(seqs, expected);
        let snapshot = journal.snapshot();
        for pair in snapshot.windows(2) {
            prop_assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
        prop_assert_eq!(journal.last_seq(), script.len() as u64);
    }

    /// `since(s)` equals filtering the full snapshot by `seq > s`, for any
    /// cursor including 0, mid-ring, and beyond the newest event.
    #[test]
    fn since_equals_filtered_snapshot(
        cap in arb_capacity(),
        script in arb_script(),
        cursor in 0u64..256,
    ) {
        let (journal, _) = replay(cap, &script);
        let filtered: Vec<JournalEvent> = journal
            .snapshot()
            .into_iter()
            .filter(|e| e.seq > cursor)
            .collect();
        prop_assert_eq!(journal.since(cursor), filtered);
        prop_assert_eq!(journal.since(journal.last_seq()), vec![]);
    }

    /// Eviction is FIFO: the retained window is exactly the newest
    /// `min(len, capacity)` events, oldest first, timestamps non-decreasing.
    #[test]
    fn eviction_is_fifo(cap in arb_capacity(), script in arb_script()) {
        let (journal, _) = replay(cap, &script);
        let snapshot = journal.snapshot();
        let retained = script.len().min(cap);
        let first_kept = script.len() - retained;
        let expected_seqs: Vec<u64> =
            (first_kept as u64 + 1..=script.len() as u64).collect();
        let got_seqs: Vec<u64> = snapshot.iter().map(|e| e.seq).collect();
        prop_assert_eq!(got_seqs, expected_seqs);
        for pair in snapshot.windows(2) {
            prop_assert!(pair[0].t_us <= pair[1].t_us);
        }
    }
}
