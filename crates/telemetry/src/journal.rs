//! The flight-recorder event journal: a fixed-capacity ring buffer of
//! structured events that live observers (the `nxd-obs` HTTP plane's
//! `/journal` endpoint, `nxdctl obs journal`) can tail incrementally.
//!
//! Metrics answer *how much*; the journal answers *what just happened*.
//! A stuck shard, a degraded detector, or a phase transition shows up here
//! as a timestamped event with key/value fields while the run is still in
//! flight — the paper's pipelines run at Farsight scale (1.07 T responses),
//! where operators watch systems live rather than reading post-hoc dumps.
//!
//! Design points:
//!
//! * **Bounded**: at most `capacity` events are retained; the oldest are
//!   evicted FIFO and counted in [`Journal::evicted`]. Recording is O(1)
//!   and never allocates beyond the event itself.
//! * **Strictly monotonic `seq`** starting at 1, so `/journal?since=<seq>`
//!   polling never re-reads or misses an un-evicted event:
//!   [`Journal::since`] returns exactly the events newer than the cursor.
//! * **Time via [`TimeSource`]**: wall clock in binaries, [`ManualClock`]
//!   in tests — journal timestamps are as replayable as span timings
//!   (`ManualClock` is re-exported from [`crate::span`]).
//!
//! ```
//! use nxd_telemetry::{EventLevel, Journal};
//!
//! let journal = Journal::with_capacity(128);
//! journal.info("ingest", "shard complete", &[("shard", "3"), ("rows", "1024")]);
//! let cursor = journal.last_seq();
//! journal.warn("ingest", "sensor gap", &[("sensor", "7")]);
//! let newer = journal.since(cursor);
//! assert_eq!(newer.len(), 1);
//! assert_eq!(newer[0].message, "sensor gap");
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::export::json_string;
use crate::span::{TimeSource, WallClock};

/// Default ring capacity for [`Journal::new`] and the [`crate::Telemetry`]
/// bundle: generous enough to hold a full repro run's phase events, small
/// enough to be snapshot-cheap.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventLevel {
    Debug,
    Info,
    Warn,
    Error,
}

impl EventLevel {
    /// Lowercase wire label (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn label(self) -> &'static str {
        match self {
            EventLevel::Debug => "debug",
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
            EventLevel::Error => "error",
        }
    }
}

impl fmt::Display for EventLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Strictly monotonic sequence number, starting at 1.
    pub seq: u64,
    /// [`TimeSource`] reading (microseconds) when the event was recorded.
    pub t_us: u64,
    pub level: EventLevel,
    /// Which stage emitted the event (`"obs"`, `"traffic.era"`, ...).
    pub component: String,
    pub message: String,
    /// Free-form key/value context (`("shard", "3")`).
    pub fields: Vec<(String, String)>,
}

impl JournalEvent {
    /// One JSON object (one JSONL line, without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.message.len());
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_us\":{},\"level\":\"{}\",\"component\":{},\"message\":{},\"fields\":{{",
            self.seq,
            self.t_us,
            self.level.label(),
            json_string(&self.component),
            json_string(&self.message),
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_string(v));
        }
        out.push_str("}}");
        out
    }
}

#[derive(Debug, Default)]
struct JournalState {
    events: VecDeque<JournalEvent>,
    /// Sequence number the next event will get (first event gets 1).
    next_seq: u64,
    evicted: u64,
}

struct JournalInner {
    time: Arc<dyn TimeSource>,
    capacity: usize,
    state: Mutex<JournalState>,
}

/// The flight recorder. Clones share the same ring, like metric handles, so
/// a component can hold its own handle while the HTTP plane snapshots the
/// same buffer.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl Journal {
    /// A wall-clock journal with [`DEFAULT_JOURNAL_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A wall-clock journal holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_time(capacity, Arc::new(WallClock::new()))
    }

    /// A journal over an explicit time source — tests drive a
    /// [`crate::ManualClock`] for deterministic timestamps.
    pub fn with_time(capacity: usize, time: Arc<dyn TimeSource>) -> Self {
        Journal {
            inner: Arc::new(JournalInner {
                time,
                capacity: capacity.max(1),
                state: Mutex::new(JournalState {
                    events: VecDeque::new(),
                    next_seq: 1,
                    evicted: 0,
                }),
            }),
        }
    }

    /// Records one event; returns its sequence number. The oldest event is
    /// evicted when the ring is full.
    pub fn record(
        &self,
        level: EventLevel,
        component: &str,
        message: &str,
        fields: &[(&str, &str)],
    ) -> u64 {
        let t_us = self.inner.time.now_micros();
        let mut state = self.inner.state.lock().expect("journal poisoned");
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.inner.capacity {
            state.events.pop_front();
            state.evicted += 1;
        }
        state.events.push_back(JournalEvent {
            seq,
            t_us,
            level,
            component: component.to_string(),
            message: message.to_string(),
            fields: fields
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
        seq
    }

    /// [`Journal::record`] at [`EventLevel::Debug`].
    pub fn debug(&self, component: &str, message: &str, fields: &[(&str, &str)]) -> u64 {
        self.record(EventLevel::Debug, component, message, fields)
    }

    /// [`Journal::record`] at [`EventLevel::Info`].
    pub fn info(&self, component: &str, message: &str, fields: &[(&str, &str)]) -> u64 {
        self.record(EventLevel::Info, component, message, fields)
    }

    /// [`Journal::record`] at [`EventLevel::Warn`].
    pub fn warn(&self, component: &str, message: &str, fields: &[(&str, &str)]) -> u64 {
        self.record(EventLevel::Warn, component, message, fields)
    }

    /// [`Journal::record`] at [`EventLevel::Error`].
    pub fn error(&self, component: &str, message: &str, fields: &[(&str, &str)]) -> u64 {
        self.record(EventLevel::Error, component, message, fields)
    }

    /// Copies of every retained event, oldest first.
    pub fn snapshot(&self) -> Vec<JournalEvent> {
        let state = self.inner.state.lock().expect("journal poisoned");
        state.events.iter().cloned().collect()
    }

    /// Retained events with `seq > cursor`, oldest first — the incremental
    /// tail behind `/journal?since=<seq>`. `since(0)` is the full snapshot.
    pub fn since(&self, cursor: u64) -> Vec<JournalEvent> {
        let state = self.inner.state.lock().expect("journal poisoned");
        state
            .events
            .iter()
            .filter(|e| e.seq > cursor)
            .cloned()
            .collect()
    }

    /// Number of events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("journal poisoned")
            .events
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Events evicted FIFO since construction.
    pub fn evicted(&self) -> u64 {
        self.inner.state.lock().expect("journal poisoned").evicted
    }

    /// Sequence number of the newest recorded event (0 if none was ever
    /// recorded) — the cursor to pass to [`Journal::since`].
    pub fn last_seq(&self) -> u64 {
        self.inner.state.lock().expect("journal poisoned").next_seq - 1
    }

    /// Every retained event as JSON lines (one object per line, trailing
    /// newline when non-empty) — the `/journal` wire format.
    pub fn to_jsonl(&self) -> String {
        jsonl(&self.snapshot())
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

/// Renders events as JSON lines (shared by [`Journal::to_jsonl`] and the
/// `/journal?since=` endpoint, which filters before rendering).
pub fn jsonl(events: &[JournalEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::ManualClock;

    fn manual() -> (Arc<ManualClock>, Journal) {
        let clock = Arc::new(ManualClock::new());
        let journal = Journal::with_time(4, clock.clone());
        (clock, journal)
    }

    #[test]
    fn seq_and_timestamps() {
        let (clock, j) = manual();
        clock.set_micros(10);
        assert_eq!(j.info("a", "first", &[]), 1);
        clock.advance_micros(5);
        assert_eq!(j.warn("a", "second", &[("k", "v")]), 2);
        let events = j.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_us, 10);
        assert_eq!(events[1].t_us, 15);
        assert_eq!(events[1].level, EventLevel::Warn);
        assert_eq!(events[1].fields, vec![("k".to_string(), "v".to_string())]);
        assert_eq!(j.last_seq(), 2);
    }

    #[test]
    fn ring_evicts_fifo() {
        let (_, j) = manual();
        for i in 0..6u64 {
            j.info("c", &format!("event-{i}"), &[]);
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.capacity(), 4);
        assert_eq!(j.evicted(), 2);
        let seqs: Vec<u64> = j.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
    }

    #[test]
    fn since_is_an_exact_cursor() {
        let (_, j) = manual();
        j.info("c", "one", &[]);
        let cursor = j.info("c", "two", &[]);
        j.info("c", "three", &[]);
        let newer = j.since(cursor);
        assert_eq!(newer.len(), 1);
        assert_eq!(newer[0].message, "three");
        assert_eq!(j.since(j.last_seq()), vec![]);
        assert_eq!(j.since(0).len(), 3);
    }

    #[test]
    fn jsonl_shape() {
        let (clock, j) = manual();
        clock.set_micros(42);
        j.error("obs", "worker \"panicked\"", &[("thread", "obs-worker-0")]);
        let line = j.to_jsonl();
        assert!(line.ends_with('\n'));
        let body = line.trim_end();
        assert!(body.starts_with("{\"seq\":1,\"t_us\":42,\"level\":\"error\""));
        assert!(body.contains("\"component\":\"obs\""));
        assert!(body.contains("\\\"panicked\\\""));
        assert!(body.contains("\"thread\":\"obs-worker-0\""));
        assert_eq!(body.matches('{').count(), body.matches('}').count());
    }

    #[test]
    fn clones_share_the_ring() {
        let (_, j) = manual();
        let handle = j.clone();
        handle.info("x", "via clone", &[]);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let j = Journal::with_capacity(0);
        j.info("c", "a", &[]);
        j.info("c", "b", &[]);
        assert_eq!(j.capacity(), 1);
        assert_eq!(j.len(), 1);
        assert_eq!(j.snapshot()[0].message, "b");
    }
}
