//! # nxd-telemetry
//!
//! The observability layer of the reproduction: a zero-dependency metrics
//! registry plus a hierarchical span tracer, cheap enough for the hot paths
//! the paper's pipeline runs at scale (sensor ingest, resolver cache
//! lookups, honeypot categorization).
//!
//! The paper's measurement chain — workload generation → sensor ingest →
//! column store → scale/origin analyses → honeypot filter/categorizer — can
//! only be trusted end to end when every stage reports what it actually
//! processed; the B-Root query-composition and DNS-abuse measurement
//! literature both lean on exactly this kind of per-stage accounting.
//!
//! Three building blocks:
//!
//! * [`Registry`] — labeled [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s behind lock-free atomic handles. Increments are a
//!   single relaxed `fetch_add` (single-digit nanoseconds; the
//!   `telemetry` bench in `nxd-bench` checks the claim). Snapshots are
//!   point-in-time copies with [`Snapshot::delta`] support, so the `repro`
//!   binary can print per-experiment deltas from one shared registry.
//! * [`Tracer`] — hierarchical spans driven by a pluggable [`TimeSource`]:
//!   sim-clock components stay deterministic by driving a [`ManualClock`],
//!   while the `repro` binary records wall-clock stage timings with
//!   [`WallClock`]. Finished spans export as Chrome trace-event JSON
//!   (`chrome://tracing` / Perfetto loadable).
//! * Exporters — human text table, JSON, and Prometheus text format on
//!   [`Snapshot`]; Chrome trace-event JSON on [`Tracer`].
//!
//! ```
//! use nxd_telemetry::{Registry, Telemetry};
//!
//! let telemetry = Telemetry::wall();
//! let queries = telemetry.registry.counter("resolver_queries_total");
//! {
//!     let _span = telemetry.tracer.span("resolve");
//!     queries.inc();
//! }
//! let snapshot = telemetry.registry.snapshot();
//! assert_eq!(snapshot.counter_total("resolver_queries_total"), 1);
//! assert!(snapshot.to_prometheus().contains("resolver_queries_total 1"));
//! ```

pub mod export;
pub mod histogram;
pub mod journal;
pub mod metrics;
pub mod span;

pub use histogram::{Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use journal::{EventLevel, Journal, JournalEvent, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{Counter, Gauge, MetricId, Registry, Snapshot};
pub use span::{ManualClock, SpanGuard, SpanRecord, Stopwatch, TimeSource, Tracer, WallClock};

use std::sync::Arc;

/// A registry, a tracer, and a flight-recorder journal sharing one time
/// source — the bundle the pipeline components accept.
pub struct Telemetry {
    pub registry: Registry,
    pub tracer: Tracer,
    pub journal: Journal,
}

impl Telemetry {
    /// Wall-clock telemetry for real binaries (`repro`).
    pub fn wall() -> Self {
        Telemetry::with_time(Arc::new(WallClock::new()))
    }

    /// Telemetry over an explicit time source (e.g. a [`ManualClock`]
    /// advanced in lockstep with a simulated clock). The tracer and the
    /// journal share the source, so span timings and event timestamps stay
    /// on one axis.
    pub fn with_time(time: Arc<dyn TimeSource>) -> Self {
        Telemetry {
            registry: Registry::new(),
            tracer: Tracer::new(time.clone()),
            journal: Journal::with_time(DEFAULT_JOURNAL_CAPACITY, time),
        }
    }

    /// Shorthand for [`Tracer::span`].
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.tracer.span(name)
    }

    /// Shorthand for [`Registry::snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_roundtrip() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_time(clock.clone());
        let c = t.registry.counter("pipeline_items_total");
        {
            let _outer = t.span("stage");
            clock.advance_micros(250);
            c.add(3);
        }
        assert_eq!(t.snapshot().counter_total("pipeline_items_total"), 3);
        let spans = t.tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur_us, 250);
    }

    #[test]
    fn journal_shares_the_bundle_clock() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_time(clock.clone());
        clock.set_micros(77);
        t.journal.info("stage", "checkpoint", &[]);
        let events = t.journal.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t_us, 77);
        assert_eq!(events[0].seq, 1);
    }
}
