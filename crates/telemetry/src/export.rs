//! Exporters: human text table, JSON, and Prometheus text format for
//! [`Snapshot`]; Chrome trace-event JSON for [`Tracer`] span timelines
//! (loadable in `chrome://tracing` / Perfetto).

use std::fmt::Write as _;

use crate::histogram::bucket_upper_bound;
use crate::metrics::{MetricId, Snapshot};
use crate::span::Tracer;

impl Snapshot {
    /// Fixed-width table for terminals — the `repro --metrics` rendering.
    pub fn to_text_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (id, v) in &self.counters {
            rows.push((id.to_string(), v.to_string()));
        }
        for (id, v) in &self.gauges {
            rows.push((id.to_string(), v.to_string()));
        }
        for (id, h) in &self.histograms {
            rows.push((
                id.to_string(),
                format!(
                    "count {} sum {} mean {:.1} p50 {} p99 {} max {}",
                    h.count(),
                    h.sum,
                    h.mean(),
                    h.quantile(0.5).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max().unwrap_or(0),
                ),
            ));
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            let _ = writeln!(out, "{k:<width$}  {v}");
        }
        out
    }

    /// JSON document: `{"counters": [...], "gauges": [...],
    /// "histograms": [...]}` with per-metric name/labels/value objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{{},\"value\":{v}}}", json_id(id));
        }
        out.push_str("],\"gauges\":[");
        for (i, (id, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{{},\"value\":{v}}}", json_id(id));
        }
        out.push_str("],\"histograms\":[");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                json_id(id),
                h.count(),
                h.sum,
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
            );
            // Only non-empty buckets, as [upper_bound, count] pairs.
            let mut first = true;
            for (b, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{count}]", bucket_upper_bound(b));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition format (counters as `# TYPE counter`,
    /// histograms with cumulative `_bucket{le=...}` series).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (id, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {} counter", id.name());
            let _ = writeln!(out, "{id} {v}");
        }
        for (id, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {} gauge", id.name());
            let _ = writeln!(out, "{id} {v}");
        }
        for (id, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {} histogram", id.name());
            let mut cumulative = 0u64;
            for (b, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{} {cumulative}",
                    prometheus_series(id, &[("le", &bucket_upper_bound(b).to_string())], "_bucket")
                );
            }
            let _ = writeln!(
                out,
                "{} {cumulative}",
                prometheus_series(id, &[("le", "+Inf")], "_bucket")
            );
            let _ = writeln!(out, "{} {}", prometheus_series(id, &[], "_sum"), h.sum);
            let _ = writeln!(
                out,
                "{} {}",
                prometheus_series(id, &[], "_count"),
                h.count()
            );
        }
        out
    }
}

/// `"name":"...","labels":{...}` (no braces) for one metric id.
fn json_id(id: &MetricId) -> String {
    let mut out = format!("\"name\":{}", json_string(id.name()));
    out.push_str(",\"labels\":{");
    for (i, (k, v)) in id.labels().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(k), json_string(v));
    }
    out.push('}');
    out
}

fn prometheus_series(id: &MetricId, extra: &[(&str, &str)], suffix: &str) -> String {
    let mut labels: Vec<(String, String)> = id.labels().to_vec();
    for (k, v) in extra {
        labels.push((k.to_string(), v.to_string()));
    }
    let mut out = format!("{}{suffix}", id.name());
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Tracer {
    /// Chrome trace-event JSON: one complete (`"ph":"X"`) event per span.
    /// Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":1,\"args\":{{\"depth\":{}}}}}",
                json_string(&span.name),
                span.start_us,
                span.dur_us,
                span.depth
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::ManualClock;
    use std::sync::Arc;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter_with("stage_items_total", &[("stage", "ingest")])
            .add(42);
        r.gauge("intern_names").set(7);
        let h = r.histogram("latency_us");
        h.record(3);
        h.record(100);
        r.snapshot()
    }

    #[test]
    fn text_table_lists_everything() {
        let text = sample().to_text_table();
        assert!(text.contains("stage_items_total{stage=\"ingest\"}  42"));
        assert!(text.contains("intern_names"));
        assert!(text.contains("count 2 sum 103"));
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.contains("\"name\":\"stage_items_total\""));
        assert!(json.contains("\"stage\":\"ingest\""));
        assert!(json.contains("\"count\":2"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE latency_us histogram"));
        assert!(prom.contains("latency_us_bucket{le=\"3\"} 1"));
        assert!(prom.contains("latency_us_bucket{le=\"127\"} 2"));
        assert!(prom.contains("latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("latency_us_sum 103"));
        assert!(prom.contains("latency_us_count 2"));
        assert!(prom.contains("stage_items_total{stage=\"ingest\"} 42"));
    }

    #[test]
    fn chrome_trace_shape() {
        let clock = Arc::new(ManualClock::new());
        let t = Tracer::new(clock.clone());
        {
            let _a = t.span("stage \"one\"");
            clock.advance_micros(9);
        }
        let trace = t.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"dur\":9"));
        assert!(trace.contains("stage \\\"one\\\""));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }
}
