//! Exporters: human text table, JSON, and Prometheus text format for
//! [`Snapshot`]; Chrome trace-event JSON for [`Tracer`] span timelines
//! (loadable in `chrome://tracing` / Perfetto).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::histogram::bucket_upper_bound;
use crate::metrics::{MetricId, Snapshot};
use crate::span::Tracer;

impl Snapshot {
    /// Fixed-width table for terminals — the `repro --metrics` rendering.
    pub fn to_text_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (id, v) in &self.counters {
            rows.push((id.to_string(), v.to_string()));
        }
        for (id, v) in &self.gauges {
            rows.push((id.to_string(), v.to_string()));
        }
        for (id, h) in &self.histograms {
            rows.push((
                id.to_string(),
                format!(
                    "count {} sum {} mean {:.1} p50 {} p99 {} max {}",
                    h.count(),
                    h.sum,
                    h.mean(),
                    h.quantile(0.5).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max().unwrap_or(0),
                ),
            ));
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            let _ = writeln!(out, "{k:<width$}  {v}");
        }
        out
    }

    /// JSON document: `{"counters": [...], "gauges": [...],
    /// "histograms": [...]}` with per-metric name/labels/value objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{{},\"value\":{v}}}", json_id(id));
        }
        out.push_str("],\"gauges\":[");
        for (i, (id, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{{},\"value\":{v}}}", json_id(id));
        }
        out.push_str("],\"histograms\":[");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                json_id(id),
                h.count(),
                h.sum,
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
            );
            // Only non-empty buckets, as [upper_bound, count] pairs.
            let mut first = true;
            for (b, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{count}]", bucket_upper_bound(b));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition format (counters as `# TYPE counter`,
    /// histograms with cumulative `_bucket{le=...}` series). Names with a
    /// registered description ([`crate::Registry::describe`]) get a
    /// `# HELP` line before their first `# TYPE`; without descriptions the
    /// output is byte-identical to the pre-`describe` format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut helped: BTreeSet<String> = BTreeSet::new();
        for (id, v) in &self.counters {
            self.prometheus_help(&mut out, &mut helped, id.name());
            let _ = writeln!(out, "# TYPE {} counter", id.name());
            let _ = writeln!(out, "{} {v}", prometheus_series(id, &[], ""));
        }
        for (id, v) in &self.gauges {
            self.prometheus_help(&mut out, &mut helped, id.name());
            let _ = writeln!(out, "# TYPE {} gauge", id.name());
            let _ = writeln!(out, "{} {v}", prometheus_series(id, &[], ""));
        }
        for (id, h) in &self.histograms {
            self.prometheus_help(&mut out, &mut helped, id.name());
            let _ = writeln!(out, "# TYPE {} histogram", id.name());
            let mut cumulative = 0u64;
            for (b, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{} {cumulative}",
                    prometheus_series(id, &[("le", &bucket_upper_bound(b).to_string())], "_bucket")
                );
            }
            let _ = writeln!(
                out,
                "{} {cumulative}",
                prometheus_series(id, &[("le", "+Inf")], "_bucket")
            );
            let _ = writeln!(out, "{} {}", prometheus_series(id, &[], "_sum"), h.sum);
            let _ = writeln!(
                out,
                "{} {}",
                prometheus_series(id, &[], "_count"),
                h.count()
            );
        }
        out
    }

    /// Writes `# HELP name text` once per name, and only when a
    /// description was registered — absent descriptions add zero bytes.
    fn prometheus_help(&self, out: &mut String, helped: &mut BTreeSet<String>, name: &str) {
        if let Some(text) = self.help_for(name) {
            if helped.insert(name.to_string()) {
                let _ = writeln!(out, "# HELP {name} {}", prometheus_help_text(text));
            }
        }
    }
}

/// `"name":"...","labels":{...}` (no braces) for one metric id.
fn json_id(id: &MetricId) -> String {
    let mut out = format!("\"name\":{}", json_string(id.name()));
    out.push_str(",\"labels\":{");
    for (i, (k, v)) in id.labels().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(k), json_string(v));
    }
    out.push('}');
    out
}

fn prometheus_series(id: &MetricId, extra: &[(&str, &str)], suffix: &str) -> String {
    let mut labels: Vec<(String, String)> = id.labels().to_vec();
    for (k, v) in extra {
        labels.push((k.to_string(), v.to_string()));
    }
    let mut out = format!("{}{suffix}", id.name());
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", prometheus_label_value(v));
        }
        out.push('}');
    }
    out
}

/// Label-value escaping per the Prometheus text exposition format:
/// backslash, double-quote, and newline must be escaped inside the quoted
/// value; everything else passes through verbatim.
fn prometheus_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `# HELP` text escaping: the exposition format escapes backslash and
/// newline in help lines (quotes are legal verbatim there).
fn prometheus_help_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Tracer {
    /// Chrome trace-event JSON: one complete (`"ph":"X"`) event per span.
    /// Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":1,\"args\":{{\"depth\":{}}}}}",
                json_string(&span.name),
                span.start_us,
                span.dur_us,
                span.depth
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::ManualClock;
    use std::sync::Arc;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter_with("stage_items_total", &[("stage", "ingest")])
            .add(42);
        r.gauge("intern_names").set(7);
        let h = r.histogram("latency_us");
        h.record(3);
        h.record(100);
        r.snapshot()
    }

    #[test]
    fn text_table_lists_everything() {
        let text = sample().to_text_table();
        assert!(text.contains("stage_items_total{stage=\"ingest\"}  42"));
        assert!(text.contains("intern_names"));
        assert!(text.contains("count 2 sum 103"));
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.contains("\"name\":\"stage_items_total\""));
        assert!(json.contains("\"stage\":\"ingest\""));
        assert!(json.contains("\"count\":2"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE latency_us histogram"));
        assert!(prom.contains("latency_us_bucket{le=\"3\"} 1"));
        assert!(prom.contains("latency_us_bucket{le=\"127\"} 2"));
        assert!(prom.contains("latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("latency_us_sum 103"));
        assert!(prom.contains("latency_us_count 2"));
        assert!(prom.contains("stage_items_total{stage=\"ingest\"} 42"));
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        let r = Registry::new();
        r.counter_with("lookups_total", &[("qname", "evil\"dom\\ain\ncom")])
            .inc();
        let prom = r.snapshot().to_prometheus();
        assert!(
            prom.contains(r#"lookups_total{qname="evil\"dom\\ain\ncom"} 1"#),
            "unescaped exposition: {prom}"
        );
        // A raw newline in a label value would split the series line in two.
        let series: Vec<&str> = prom.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(series.len(), 1, "series line split by raw newline: {prom}");
    }

    #[test]
    fn prometheus_help_lines_are_optional_and_byte_stable() {
        let r = Registry::new();
        r.counter_with("stage_items_total", &[("stage", "ingest")])
            .add(1);
        r.counter_with("stage_items_total", &[("stage", "scan")])
            .add(2);
        r.gauge("intern_names").set(7);
        let plain = r.snapshot().to_prometheus();
        assert!(
            !plain.contains("# HELP"),
            "undesired HELP without describe: {plain}"
        );

        r.describe(
            "stage_items_total",
            "Items processed per stage\nline2 \\ end",
        );
        let helped = r.snapshot().to_prometheus();
        assert_eq!(
            helped
                .matches("# HELP stage_items_total Items processed per stage\\nline2 \\\\ end")
                .count(),
            1,
            "HELP once per name, escaped: {helped}"
        );
        // The undescribed metric's section is untouched.
        assert!(!helped.contains("# HELP intern_names"));
        // Removing the HELP line recovers the describe-free exposition.
        let stripped: String = helped
            .lines()
            .filter(|l| !l.starts_with("# HELP"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, plain);
        // HELP precedes the first TYPE of its name.
        let help_at = helped.find("# HELP stage_items_total").unwrap();
        let type_at = helped.find("# TYPE stage_items_total").unwrap();
        assert!(help_at < type_at);
    }

    #[test]
    fn chrome_trace_shape() {
        let clock = Arc::new(ManualClock::new());
        let t = Tracer::new(clock.clone());
        {
            let _a = t.span("stage \"one\"");
            clock.advance_micros(9);
        }
        let trace = t.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"dur\":9"));
        assert!(trace.contains("stage \\\"one\\\""));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }
}
