//! The labeled metrics registry: atomic counters, gauges, and histograms
//! behind cloneable handles, plus point-in-time snapshots with delta
//! support.
//!
//! The registry itself is only touched at registration and snapshot time;
//! every hot-path operation goes through a handle holding an `Arc` to the
//! atomic cell, so instrumented components pay one relaxed atomic op per
//! event regardless of how many metrics the registry holds.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A metric's identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    pub fn new(name: &str) -> Self {
        MetricId {
            name: name.to_string(),
            labels: Vec::new(),
        }
    }

    /// Adds a label, keeping pairs sorted so equal label sets compare equal
    /// regardless of insertion order.
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        let pair = (key.to_string(), value.to_string());
        let at = self.labels.partition_point(|p| *p < pair);
        self.labels.insert(at, pair);
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<MetricId, Counter>,
    gauges: BTreeMap<MetricId, Gauge>,
    histograms: BTreeMap<MetricId, Histogram>,
    /// Optional per-name descriptions, exported as `# HELP` lines.
    help: BTreeMap<String, String>,
}

/// The labeled metrics registry. Get-or-create semantics: asking twice for
/// the same id returns handles to the same cell, so independent components
/// naming the same metric aggregate into it.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter with no labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// A counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = id_of(name, labels);
        self.inner
            .lock()
            .expect("registry poisoned")
            .counters
            .entry(id)
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = id_of(name, labels);
        self.inner
            .lock()
            .expect("registry poisoned")
            .gauges
            .entry(id)
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = id_of(name, labels);
        self.inner
            .lock()
            .expect("registry poisoned")
            .histograms
            .entry(id)
            .or_default()
            .clone()
    }

    /// Registers a description for a metric *name* (across all label
    /// sets), exported as a Prometheus `# HELP` line. Describing a name
    /// twice keeps the latest text; names without a description export
    /// byte-identically to a registry that never called `describe`.
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .lock()
            .expect("registry poisoned")
            .help
            .insert(name.to_string(), help.to_string());
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| (id.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| (id.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
            help: inner
                .help
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

fn id_of(name: &str, labels: &[(&str, &str)]) -> MetricId {
    let mut id = MetricId::new(name);
    for (k, v) in labels {
        id = id.with_label(k, v);
    }
    id
}

/// A point-in-time copy of a registry's metrics, sorted by id.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a snapshot is a pure copy; dropping it unread observes nothing"]
pub struct Snapshot {
    pub counters: Vec<(MetricId, u64)>,
    pub gauges: Vec<(MetricId, i64)>,
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
    /// Per-name `# HELP` descriptions ([`Registry::describe`]), sorted.
    pub help: Vec<(String, String)>,
}

impl Snapshot {
    /// A snapshot with no metrics at all.
    pub fn empty() -> Self {
        Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            help: Vec::new(),
        }
    }

    /// The registered description for a metric name, if any.
    pub fn help_for(&self, name: &str) -> Option<&str> {
        self.help
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.help[i].1.as_str())
    }

    /// True when no metric is registered OR every registered metric is
    /// still at zero (nothing was observed).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&(_, v)| v == 0)
            && self.gauges.iter().all(|&(_, v)| v == 0)
            && self.histograms.iter().all(|(_, h)| h.is_empty())
    }

    /// Sum of every counter sharing `name`, across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| id.name() == name)
            .map(|&(_, v)| v)
            .sum()
    }

    /// The value of a gauge by name (first label set wins).
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(id, _)| id.name() == name)
            .map(|&(_, v)| v)
    }

    /// The histogram snapshot for a name (first label set wins).
    pub fn histogram_named(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(id, _)| id.name() == name)
            .map(|(_, h)| h)
    }

    /// The merge of every histogram sharing `name`, across label sets —
    /// the rollup view of per-shard (or otherwise labeled) series. Empty
    /// if no histogram carries the name.
    pub fn histogram_total(&self, name: &str) -> HistogramSnapshot {
        self.histograms
            .iter()
            .filter(|(id, _)| id.name() == name)
            .fold(HistogramSnapshot::empty(), |acc, (_, h)| acc.merge(h))
    }

    /// Pointwise union of two snapshots, matching series by full metric id:
    /// counters and histogram buckets add, gauges add (levels of disjoint
    /// components sum to the whole — e.g. per-shard intern sizes). With
    /// [`Snapshot::empty`] as identity this makes snapshots a commutative
    /// monoid, mirroring [`HistogramSnapshot::merge`] one level up.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut counters: BTreeMap<MetricId, u64> = self.counters.iter().cloned().collect();
        for (id, v) in &other.counters {
            *counters.entry(id.clone()).or_insert(0) += v;
        }
        let mut gauges: BTreeMap<MetricId, i64> = self.gauges.iter().cloned().collect();
        for (id, v) in &other.gauges {
            *gauges.entry(id.clone()).or_insert(0) += v;
        }
        let mut histograms: BTreeMap<MetricId, HistogramSnapshot> =
            self.histograms.iter().cloned().collect();
        for (id, h) in &other.histograms {
            let entry = histograms
                .entry(id.clone())
                .or_insert_with(HistogramSnapshot::empty);
            *entry = entry.merge(h);
        }
        let mut help: BTreeMap<String, String> = self.help.iter().cloned().collect();
        for (name, text) in &other.help {
            help.entry(name.clone()).or_insert_with(|| text.clone());
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
            help: help.into_iter().collect(),
        }
    }

    /// What happened between `earlier` and `self` (both from the same
    /// registry): counter and histogram differences; gauges keep their
    /// current value (they are levels, not flows). Metrics registered
    /// after `earlier` were taken appear with their full value.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let was_counter: BTreeMap<&MetricId, u64> =
            earlier.counters.iter().map(|(id, v)| (id, *v)).collect();
        let was_hist: BTreeMap<&MetricId, &HistogramSnapshot> =
            earlier.histograms.iter().map(|(id, h)| (id, h)).collect();
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(id, v)| {
                    (
                        id.clone(),
                        v.saturating_sub(was_counter.get(id).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(id, h)| {
                    let d = match was_hist.get(id) {
                        Some(was) => h.delta(was),
                        None => h.clone(),
                    };
                    (id.clone(), d)
                })
                .collect(),
            help: self.help.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_cells() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counter_total("x_total"), 3);
    }

    #[test]
    fn labels_distinguish_and_sort() {
        let r = Registry::new();
        r.counter_with("hits_total", &[("b", "2"), ("a", "1")])
            .inc();
        r.counter_with("hits_total", &[("a", "1"), ("b", "2")])
            .inc();
        r.counter_with("hits_total", &[("a", "other")]).add(5);
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 2);
        assert_eq!(s.counter_total("hits_total"), 7);
        let id = MetricId::new("hits_total")
            .with_label("b", "2")
            .with_label("a", "1");
        assert_eq!(id.to_string(), "hits_total{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(r.snapshot().gauge_value("depth"), Some(7));
    }

    #[test]
    fn snapshot_delta_counters_and_histograms() {
        let r = Registry::new();
        let c = r.counter("events_total");
        let h = r.histogram("latency_us");
        c.add(4);
        h.record(100);
        let before = r.snapshot();
        c.add(6);
        h.record(200);
        h.record(300);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter_total("events_total"), 6);
        assert_eq!(d.histogram_named("latency_us").unwrap().count(), 2);
        assert_eq!(d.histogram_named("latency_us").unwrap().sum, 500);
    }

    #[test]
    fn empty_detection() {
        let r = Registry::new();
        assert!(r.snapshot().is_empty());
        r.counter("a_total"); // registered but never incremented
        assert!(r.snapshot().is_empty());
        r.counter("a_total").inc();
        assert!(!r.snapshot().is_empty());
    }

    #[test]
    fn histogram_total_merges_label_sets() {
        let r = Registry::new();
        r.histogram_with("latency_us", &[("shard", "0")]).record(10);
        r.histogram_with("latency_us", &[("shard", "1")]).record(20);
        r.histogram_with("latency_us", &[("shard", "1")]).record(30);
        let s = r.snapshot();
        let total = s.histogram_total("latency_us");
        assert_eq!(total.count(), 3);
        assert_eq!(total.sum, 60);
        // First-label-set accessor still sees only one series.
        assert_eq!(s.histogram_named("latency_us").unwrap().count(), 1);
        assert!(s.histogram_total("absent_us").is_empty());
    }

    #[test]
    fn snapshot_merge_is_a_commutative_monoid() {
        let build = |shard: &str, c: u64, g: i64, h: u64| {
            let r = Registry::new();
            r.counter_with("rows_total", &[("shard", shard)]).add(c);
            r.gauge_with("names", &[("shard", shard)]).set(g);
            r.histogram_with("lat_us", &[("shard", shard)]).record(h);
            r.snapshot()
        };
        let a = build("0", 3, 10, 100);
        let b = build("1", 5, 7, 200);
        let ab = a.merge(&b);
        assert_eq!(ab.counter_total("rows_total"), 8);
        assert_eq!(ab.histogram_total("lat_us").count(), 2);
        assert_eq!(ab, b.merge(&a));
        assert_eq!(a.merge(&Snapshot::empty()), a);
        assert_eq!(Snapshot::empty().merge(&a), a);
        // Same id on both sides: values add instead of duplicating series.
        let twice = a.merge(&a);
        assert_eq!(twice.counters.len(), a.counters.len());
        assert_eq!(twice.counter_total("rows_total"), 6);
        assert_eq!(twice.gauge_value("names"), Some(20));
    }

    #[test]
    fn delta_with_late_registration() {
        let r = Registry::new();
        let before = r.snapshot();
        r.counter("late_total").add(9);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.counter_total("late_total"), 9);
    }
}
