//! Hierarchical spans over a pluggable time source.
//!
//! The pipeline mixes two notions of time: simulated components step a
//! [`crate::ManualClock`] (deterministic, reproducible traces), while the
//! `repro` binary measures real stage cost with [`WallClock`]. The tracer
//! itself never reads the OS clock directly — whoever constructs it decides.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where "now" comes from, in microseconds since an arbitrary origin.
pub trait TimeSource: Send + Sync {
    fn now_micros(&self) -> u64;

    /// Nanosecond reading; sources without sub-µs resolution inherit this
    /// µs-derived default.
    fn now_nanos(&self) -> u64 {
        self.now_micros().saturating_mul(1_000)
    }
}

/// Monotonic wall clock anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A clock advanced explicitly — the deterministic option for sim-clock
/// components (step it alongside `SimTime`).
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set_micros(&self, micros: u64) {
        self.micros.store(micros, Ordering::Relaxed);
    }

    pub fn advance_micros(&self, by: u64) {
        self.micros.fetch_add(by, Ordering::Relaxed);
    }
}

impl TimeSource for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

/// A started measurement over a [`TimeSource`] — the sanctioned way to
/// time an operation outside a [`Tracer`].
///
/// Library code must not call `Instant::now()` directly (lint rule
/// `NXL003`): a raw clock read can't be replayed. A `Stopwatch` defaults
/// to a wall clock but accepts any `TimeSource`, so tests drive it with a
/// [`ManualClock`].
#[derive(Clone)]
pub struct Stopwatch {
    time: Arc<dyn TimeSource>,
    start_ns: u64,
}

impl Stopwatch {
    /// Starts a wall-clock stopwatch.
    pub fn start() -> Self {
        Stopwatch::with_source(Arc::new(WallClock::new()))
    }

    /// Starts a stopwatch over an explicit time source.
    pub fn with_source(time: Arc<dyn TimeSource>) -> Self {
        let start_ns = time.now_nanos();
        Stopwatch { time, start_ns }
    }

    /// Nanoseconds since the stopwatch started (µs resolution on sources
    /// that don't override [`TimeSource::now_nanos`]).
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        self.time.now_nanos().saturating_sub(self.start_ns)
    }

    /// Microseconds since the stopwatch started.
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        self.elapsed_nanos() / 1_000
    }

    /// Elapsed time as a `Duration`.
    #[must_use]
    pub fn elapsed(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.elapsed_nanos())
    }

    /// Restarts the measurement from the source's current reading.
    pub fn restart(&mut self) {
        self.start_ns = self.time.now_nanos();
    }
}

impl std::fmt::Debug for Stopwatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stopwatch")
            .field("start_ns", &self.start_ns)
            .finish_non_exhaustive()
    }
}

/// One finished (or still-open, `dur_us == 0`) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    /// Start instant, microseconds on the tracer's time source.
    pub start_us: u64,
    /// Duration in microseconds (0 while the span is open).
    pub dur_us: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
}

#[derive(Debug, Default)]
struct TracerInner {
    spans: Vec<SpanRecord>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<usize>,
}

/// Records hierarchical spans; export with [`Tracer::to_chrome_trace`].
pub struct Tracer {
    time: Arc<dyn TimeSource>,
    inner: Mutex<TracerInner>,
}

impl Tracer {
    pub fn new(time: Arc<dyn TimeSource>) -> Self {
        Tracer {
            time,
            inner: Mutex::new(TracerInner::default()),
        }
    }

    /// A tracer over a fresh wall clock.
    pub fn wall() -> Self {
        Tracer::new(Arc::new(WallClock::new()))
    }

    /// Opens a span; it closes (and records its duration) when the guard
    /// drops. Nest guards lexically — innermost guard drops first.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let start_us = self.time.now_micros();
        let mut inner = self.inner.lock().expect("tracer poisoned");
        let depth = inner.stack.len() as u32;
        let index = inner.spans.len();
        inner.spans.push(SpanRecord {
            name: name.to_string(),
            start_us,
            dur_us: 0,
            depth,
        });
        inner.stack.push(index);
        SpanGuard {
            tracer: self,
            index,
        }
    }

    /// Copies of every recorded span, in open order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.lock().expect("tracer poisoned").spans.clone()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("tracer poisoned").spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn close(&self, index: usize) {
        let end = self.time.now_micros();
        let mut inner = self.inner.lock().expect("tracer poisoned");
        if let Some(rec) = inner.spans.get_mut(index) {
            rec.dur_us = end.saturating_sub(rec.start_us);
        }
        if let Some(pos) = inner.stack.iter().rposition(|&i| i == index) {
            inner.stack.remove(pos);
        }
    }
}

/// Closes its span on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    index: usize,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.close(self.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depths() {
        let clock = Arc::new(ManualClock::new());
        let t = Tracer::new(clock.clone());
        {
            let _a = t.span("outer");
            clock.advance_micros(10);
            {
                let _b = t.span("inner");
                clock.advance_micros(5);
            }
            clock.advance_micros(1);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].dur_us, 16);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].dur_us, 5);
        assert_eq!(spans[1].start_us, 10);
    }

    #[test]
    fn sibling_spans_share_depth() {
        let t = Tracer::new(Arc::new(ManualClock::new()));
        {
            let _a = t.span("first");
        }
        {
            let _b = t.span("second");
        }
        let spans = t.spans();
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 0);
    }

    #[test]
    fn stopwatch_over_manual_clock() {
        let clock = Arc::new(ManualClock::new());
        let mut sw = Stopwatch::with_source(clock.clone());
        assert_eq!(sw.elapsed_micros(), 0);
        clock.advance_micros(250);
        assert_eq!(sw.elapsed_micros(), 250);
        assert_eq!(sw.elapsed(), std::time::Duration::from_micros(250));
        sw.restart();
        assert_eq!(sw.elapsed_micros(), 0);
        clock.advance_micros(7);
        assert_eq!(sw.elapsed_micros(), 7);
    }

    #[test]
    fn stopwatch_wall_default_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_micros();
        let b = sw.elapsed_micros();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_moves_forward() {
        let t = Tracer::wall();
        let _ = t.span("tick");
        assert_eq!(t.len(), 1);
    }
}
