//! Log-bucketed histograms cheap enough for hot paths.
//!
//! Values land in power-of-two buckets (`bucket 0` holds the value 0,
//! bucket *k* holds `[2^(k-1), 2^k)`), so recording is a `leading_zeros`
//! plus one relaxed `fetch_add` — no locks, no floats. Snapshots carry the
//! full bucket vector and merge associatively, which is what lets shard
//! snapshots and delta windows compose.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket 0 for the value 0, then one bucket per power of two up to 2^63.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a value lands in.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (for exporter `le` labels).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A cloneable handle to a shared histogram; clones record into the same
/// underlying buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Hot-path cheap: one `leading_zeros`, four relaxed
    /// atomic ops.
    pub fn record(&self, value: u64) {
        let core = &self.0;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        HistogramSnapshot {
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: core.sum.load(Ordering::Relaxed),
            min: core.min.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a histogram's state. Merge is associative and
/// commutative with [`HistogramSnapshot::empty`] as the identity, and
/// [`HistogramSnapshot::delta`] inverts merge for monotonically grown
/// histograms — the property tests in `tests/props.rs` pin all three laws.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a snapshot is a pure copy; dropping it unread observes nothing"]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`BUCKET_COUNT` entries).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// The identity element for [`merge`](Self::merge).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total observations — always equal to the sum of the bucket counts.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.max)
        }
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0.0–1.0).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Combines two snapshots of disjoint observation sets.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(&a, &b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The observations recorded after `earlier` was taken (both snapshots
    /// must come from the same growing histogram). The round-trip law
    /// `earlier.merge(&later.delta(&earlier)) == later` holds because a
    /// growing histogram's min/max already cover every earlier sample.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let grown = self.count() > earlier.count();
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(&now, &was)| now.saturating_sub(was))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            min: if grown { self.min } else { u64::MAX },
            max: if grown { self.max } else { 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_and_stats() {
        let h = Histogram::new();
        for v in [0, 1, 5, 5, 900] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 911);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(900));
        assert!((s.mean() - 911.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn clones_share_state() {
        let h = Histogram::new();
        let h2 = h.clone();
        h.record(7);
        h2.record(9);
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    fn quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Median of 1..=100 lands in the [64,127] bucket, capped at max.
        let p50 = s.quantile(0.5).unwrap();
        assert!((63..=100).contains(&p50), "p50 {p50}");
        assert_eq!(s.quantile(1.0), Some(100));
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
    }

    #[test]
    fn merge_identity_and_delta_roundtrip() {
        let h = Histogram::new();
        h.record(3);
        let early = h.snapshot();
        h.record(1);
        h.record(4000);
        let late = h.snapshot();
        let delta = late.delta(&early);
        assert_eq!(delta.count(), 2);
        assert_eq!(early.merge(&delta), late);
        assert_eq!(early.merge(&HistogramSnapshot::empty()), early);
        // No growth → empty delta.
        assert!(late.delta(&late).is_empty());
    }
}
