//! # nxd-swar
//!
//! SWAR (SIMD-within-a-register) byte-classification kernels for the DNS
//! label hot loops: the DGA feature extractor, the squat edit-distance
//! band, blocklist lookups, and the passive-DNS ingest path all spend
//! their time asking tiny questions about short ASCII strings ("is this
//! all lowercase?", "how many digits?", "where do these two labels
//! diverge?"). Answering them one byte at a time costs a branch per byte;
//! these kernels answer eight bytes per iteration with plain `u64`
//! arithmetic — std-only, no nightly `std::simd`, no `unsafe`.
//!
//! Every kernel has a scalar twin in [`scalar`] with the obvious
//! byte-at-a-time implementation; property tests in `tests/props.rs` pin
//! kernel ≡ scalar on arbitrary inputs, including non-ASCII bytes.
//!
//! ## The tricks
//!
//! All kernels work on 8-byte little-endian lanes (`u64::from_le_bytes`)
//! and keep one boolean per byte in that byte's **high bit** (mask
//! `0x80…80`, [`HI`] below):
//!
//! * *range check* `x' ≥ L` for 7-bit `x'`: `x' + (0x80 - L)` overflows
//!   into bit 7 exactly when `x' ≥ L`, and the per-byte sum never carries
//!   into the neighbouring lane because both operands fit in 7 bits + 1.
//! * *equality* `x == c`: XOR makes matching bytes zero, then
//!   `!((y | HI) - 0x01…01) & !y & HI` has bit 7 set exactly on zero
//!   bytes (the `| HI` keeps the per-byte subtraction borrow-free, the
//!   `& !y` rejects `y == 0x80`).
//! * *divergence*: XOR two lanes; `trailing_zeros / 8` (or
//!   `leading_zeros / 8` from the string tail) is the number of equal
//!   bytes before the first mismatch.
//!
//! Non-ASCII bytes (high bit already set) are masked out of every
//! classification so the kernels agree with the scalar `u8::is_ascii_*`
//! helpers on arbitrary byte strings, not just clean hostnames.

/// One `0x01` per byte lane.
const LO: u64 = 0x0101_0101_0101_0101;
/// One `0x80` per byte lane — the per-byte boolean bit.
const HI: u64 = 0x8080_8080_8080_8080;

/// Load an 8-byte chunk as a little-endian lane.
#[inline]
fn lane(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8-byte chunks"))
}

/// Per-byte mask (in bit 7) of bytes `>= bound` — valid only for lanes
/// whose high bits have been cleared (`low7 = lane & !HI`).
#[inline]
fn ge_mask(low7: u64, bound: u8) -> u64 {
    low7.wrapping_add(u64::from(0x80 - bound) * LO) & HI
}

/// True if every byte is ASCII (`< 0x80`).
#[inline]
pub fn is_ascii(bytes: &[u8]) -> bool {
    let mut chunks = bytes.chunks_exact(8);
    let mut acc = 0u64;
    for c in chunks.by_ref() {
        acc |= lane(c);
    }
    acc & HI == 0 && chunks.remainder().iter().all(|b| b.is_ascii())
}

/// True if every byte is an ASCII lowercase letter (`a-z`).
///
/// Empty input is `true`, matching `iter().all(..)`.
#[inline]
pub fn all_ascii_lowercase(bytes: &[u8]) -> bool {
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let x = lane(c);
        if x & HI != 0 {
            return false; // non-ASCII byte in this lane
        }
        // All bytes >= 'a' and none > 'z'.
        if ge_mask(x, b'a') != HI || ge_mask(x, b'z' + 1) != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|b| b.is_ascii_lowercase())
}

/// True if any byte is an ASCII uppercase letter (`A-Z`).
#[inline]
pub fn has_ascii_uppercase(bytes: &[u8]) -> bool {
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        if upper_mask(lane(c)) != 0 {
            return true;
        }
    }
    chunks.remainder().iter().any(|b| b.is_ascii_uppercase())
}

/// Per-byte mask (bit 7) of ASCII uppercase bytes in a lane.
#[inline]
fn upper_mask(x: u64) -> u64 {
    let low7 = x & !HI;
    // >= 'A', not > 'Z', and not a non-ASCII byte.
    ge_mask(low7, b'A') & !ge_mask(low7, b'Z' + 1) & !x & HI
}

/// ASCII-lowercase `src` into `buf` without allocating; returns the
/// lowercased prefix of `buf` as `&str`, or `None` if `buf` is too small.
///
/// Byte-for-byte equivalent to `str::to_ascii_lowercase`: only `A-Z`
/// change, so UTF-8 validity is preserved.
#[inline]
pub fn lowercase_into<'a>(src: &str, buf: &'a mut [u8]) -> Option<&'a str> {
    let bytes = src.as_bytes();
    if buf.len() < bytes.len() {
        return None;
    }
    let mut chunks = bytes.chunks_exact(8);
    let mut written = 0usize;
    for c in chunks.by_ref() {
        let x = lane(c);
        // 0x80 marker >> 2 = 0x20, the case bit.
        let lowered = x | (upper_mask(x) >> 2);
        buf[written..written + 8].copy_from_slice(&lowered.to_le_bytes());
        written += 8;
    }
    for &b in chunks.remainder() {
        buf[written] = b.to_ascii_lowercase();
        written += 1;
    }
    // A-Z → a-z only touches single-byte code points, so this never fails.
    std::str::from_utf8(&buf[..written]).ok()
}

/// Count of ASCII digit bytes (`0-9`).
#[inline]
pub fn count_digits(bytes: &[u8]) -> usize {
    let mut chunks = bytes.chunks_exact(8);
    let mut n = 0usize;
    for c in chunks.by_ref() {
        let x = lane(c);
        let low7 = x & !HI;
        let digit = ge_mask(low7, b'0') & !ge_mask(low7, b'9' + 1) & !x & HI;
        n += digit.count_ones() as usize;
    }
    n + chunks
        .remainder()
        .iter()
        .filter(|b| b.is_ascii_digit())
        .count()
}

/// Per-byte mask (bit 7) of bytes equal to `c` (`c` must be ASCII).
#[inline]
fn eq_mask(x: u64, c: u8) -> u64 {
    let y = x ^ (u64::from(c) * LO);
    !((y | HI).wrapping_sub(LO)) & !y & HI
}

/// Count of ASCII vowel bytes (`a e i o u`, lowercase).
#[inline]
pub fn count_vowels(bytes: &[u8]) -> usize {
    let mut chunks = bytes.chunks_exact(8);
    let mut n = 0usize;
    for c in chunks.by_ref() {
        let x = lane(c);
        let m = eq_mask(x, b'a')
            | eq_mask(x, b'e')
            | eq_mask(x, b'i')
            | eq_mask(x, b'o')
            | eq_mask(x, b'u');
        n += m.count_ones() as usize;
    }
    n + chunks
        .remainder()
        .iter()
        .filter(|b| matches!(**b, b'a' | b'e' | b'i' | b'o' | b'u'))
        .count()
}

/// Length of the longest common prefix of `a` and `b`, in bytes.
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 8 <= n {
        let x = lane(&a[i..i + 8]) ^ lane(&b[i..i + 8]);
        if x != 0 {
            return i + x.trailing_zeros() as usize / 8;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Length of the longest common suffix of `a` and `b`, in bytes.
#[inline]
pub fn common_suffix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize; // matched suffix bytes so far
    while i + 8 <= n {
        let ax = lane(&a[a.len() - i - 8..a.len() - i]);
        let bx = lane(&b[b.len() - i - 8..b.len() - i]);
        let x = ax ^ bx;
        if x != 0 {
            // The chunk's last byte is the lane's most significant byte,
            // so matching suffix bytes show up as leading zero bytes.
            return i + x.leading_zeros() as usize / 8;
        }
        i += 8;
    }
    while i < n && a[a.len() - i - 1] == b[b.len() - i - 1] {
        i += 1;
    }
    i
}

/// Byte-at-a-time reference implementations, used by the equivalence
/// property tests and kept `pub` so callers can spot-check in debug builds.
pub mod scalar {
    /// Reference for [`super::is_ascii`].
    pub fn is_ascii(bytes: &[u8]) -> bool {
        bytes.iter().all(|b| b.is_ascii())
    }

    /// Reference for [`super::all_ascii_lowercase`].
    pub fn all_ascii_lowercase(bytes: &[u8]) -> bool {
        bytes.iter().all(|b| b.is_ascii_lowercase())
    }

    /// Reference for [`super::has_ascii_uppercase`].
    pub fn has_ascii_uppercase(bytes: &[u8]) -> bool {
        bytes.iter().any(|b| b.is_ascii_uppercase())
    }

    /// Reference for [`super::lowercase_into`].
    pub fn lowercase(src: &str) -> String {
        src.to_ascii_lowercase()
    }

    /// Reference for [`super::count_digits`].
    pub fn count_digits(bytes: &[u8]) -> usize {
        bytes.iter().filter(|b| b.is_ascii_digit()).count()
    }

    /// Reference for [`super::count_vowels`].
    pub fn count_vowels(bytes: &[u8]) -> usize {
        bytes
            .iter()
            .filter(|b| matches!(**b, b'a' | b'e' | b'i' | b'o' | b'u'))
            .count()
    }

    /// Reference for [`super::common_prefix_len`].
    pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
        a.iter().zip(b).take_while(|(x, y)| x == y).count()
    }

    /// Reference for [`super::common_suffix_len`].
    pub fn common_suffix_len(a: &[u8], b: &[u8]) -> usize {
        a.iter()
            .rev()
            .zip(b.iter().rev())
            .take_while(|(x, y)| x == y)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_boundaries() {
        assert!(is_ascii(b"abcdefgh0123"));
        assert!(is_ascii(b""));
        assert!(!is_ascii("héllo-world".as_bytes()));
        assert!(!is_ascii(&[0x7F, 0x80]));
    }

    #[test]
    fn lowercase_detection_boundaries() {
        assert!(all_ascii_lowercase(b"abcdefghijklmnop"));
        assert!(all_ascii_lowercase(b""));
        // One past each end of a-z, in every lane position.
        for (i, bad) in [(0, b'`'), (7, b'{'), (8, b'A'), (3, b'0')] {
            let mut s = *b"abcdefghijklmnop";
            s[i] = bad;
            assert!(!all_ascii_lowercase(&s), "byte {bad:#x} at {i}");
        }
        assert!(!all_ascii_lowercase("abcdéfgh".as_bytes()));
    }

    #[test]
    fn uppercase_detection() {
        assert!(!has_ascii_uppercase(b"example.com-0123"));
        assert!(has_ascii_uppercase(b"exampleZ.com0123"));
        assert!(has_ascii_uppercase(b"Zz"));
        // 0xC1 = 'A' | 0x80 must not register as uppercase.
        assert!(!has_ascii_uppercase(&[0xC1; 16]));
    }

    #[test]
    fn lowercase_into_roundtrip() {
        let mut buf = [0u8; 64];
        assert_eq!(
            lowercase_into("ExAmPlE.COM-0123", &mut buf),
            Some("example.com-0123")
        );
        assert_eq!(lowercase_into("", &mut buf), Some(""));
        let mut tiny = [0u8; 4];
        assert_eq!(lowercase_into("toolong", &mut tiny), None);
    }

    #[test]
    fn counting_kernels() {
        assert_eq!(count_digits(b"a1b2c3d4e5f6g7h8i9"), 9);
        assert_eq!(count_digits(&[b'0' - 1, b'9' + 1, 0x80 | b'5']), 0);
        assert_eq!(count_vowels(b"the-quick-brown-fox-jumps"), 6);
        // 0xE1 = 'a' | 0x80 must not count as a vowel.
        assert_eq!(count_vowels(&[0xE1; 16]), 0);
    }

    #[test]
    fn prefix_suffix_lengths() {
        assert_eq!(common_prefix_len(b"exampleaa", b"examplebb"), 7);
        assert_eq!(common_prefix_len(b"same-string!", b"same-string!"), 12);
        assert_eq!(common_prefix_len(b"", b"x"), 0);
        assert_eq!(common_suffix_len(b"aaexample.com", b"bbexample.com"), 11);
        assert_eq!(common_suffix_len(b"abc", b"xyz"), 0);
        assert_eq!(common_suffix_len(b"longer-tail-shared", b"tail-shared"), 11);
    }
}
