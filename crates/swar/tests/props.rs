//! Scalar-equivalence property tests: every SWAR kernel must agree with
//! its byte-at-a-time reference on arbitrary inputs — including non-ASCII
//! bytes, empty strings, and lengths that straddle the 8-byte lane
//! boundary (the regex strategies below deliberately cover 0..=20 bytes).

use nxd_swar as swar;
use proptest::prelude::*;

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..21)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn is_ascii_matches_scalar(bytes in arb_bytes()) {
        prop_assert_eq!(swar::is_ascii(&bytes), swar::scalar::is_ascii(&bytes));
    }

    #[test]
    fn all_ascii_lowercase_matches_scalar(bytes in arb_bytes()) {
        prop_assert_eq!(
            swar::all_ascii_lowercase(&bytes),
            swar::scalar::all_ascii_lowercase(&bytes)
        );
    }

    #[test]
    fn all_ascii_lowercase_on_labels(label in "[a-z0-9.-]{0,20}") {
        prop_assert_eq!(
            swar::all_ascii_lowercase(label.as_bytes()),
            swar::scalar::all_ascii_lowercase(label.as_bytes())
        );
    }

    #[test]
    fn has_ascii_uppercase_matches_scalar(bytes in arb_bytes()) {
        prop_assert_eq!(
            swar::has_ascii_uppercase(&bytes),
            swar::scalar::has_ascii_uppercase(&bytes)
        );
    }

    #[test]
    fn lowercase_into_matches_to_ascii_lowercase(s in "\\PC{0,20}") {
        let mut buf = [0u8; 128];
        let expect = swar::scalar::lowercase(&s);
        prop_assert_eq!(swar::lowercase_into(&s, &mut buf), Some(expect.as_str()));
    }

    #[test]
    fn count_digits_matches_scalar(bytes in arb_bytes()) {
        prop_assert_eq!(swar::count_digits(&bytes), swar::scalar::count_digits(&bytes));
    }

    #[test]
    fn count_vowels_matches_scalar(bytes in arb_bytes()) {
        prop_assert_eq!(swar::count_vowels(&bytes), swar::scalar::count_vowels(&bytes));
    }

    #[test]
    fn common_prefix_matches_scalar(a in arb_bytes(), b in arb_bytes()) {
        prop_assert_eq!(
            swar::common_prefix_len(&a, &b),
            swar::scalar::common_prefix_len(&a, &b)
        );
    }

    #[test]
    fn common_suffix_matches_scalar(a in arb_bytes(), b in arb_bytes()) {
        prop_assert_eq!(
            swar::common_suffix_len(&a, &b),
            swar::scalar::common_suffix_len(&a, &b)
        );
    }

    #[test]
    fn prefix_suffix_on_shared_stem(stem in "[a-z]{0,12}", ta in "[a-z]{0,6}", tb in "[a-z]{0,6}") {
        // Strings built to share a real prefix: the kernel must report at
        // least the constructed stem.
        let a = format!("{stem}{ta}");
        let b = format!("{stem}{tb}");
        prop_assert!(swar::common_prefix_len(a.as_bytes(), b.as_bytes()) >= stem.len());
        let c = format!("{ta}{stem}");
        let d = format!("{tb}{stem}");
        prop_assert!(swar::common_suffix_len(c.as_bytes(), d.as_bytes()) >= stem.len());
    }
}
