//! Error type for wire-format encoding and decoding.

use std::fmt;

/// Errors produced while building, encoding, or decoding DNS data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A label of zero length appeared outside the root terminator.
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// A character not representable in a label.
    InvalidLabelChar(char),
    /// A name's wire encoding exceeded 255 octets.
    NameTooLong(usize),
    /// The buffer ended before a complete value could be read.
    Truncated { needed: usize, available: usize },
    /// A compression pointer pointed at or after its own position, or the
    /// pointer chain exceeded the hop budget.
    BadPointer(usize),
    /// An unknown or unsupported label type (top bits `01`/`10`).
    BadLabelType(u8),
    /// An RDATA length disagreed with the parsed record data.
    RdataLengthMismatch { declared: usize, parsed: usize },
    /// A numeric field held a value outside its enum's domain.
    InvalidValue(&'static str, u32),
    /// The message exceeded the 64 KiB transport limit while encoding.
    MessageTooLong(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::EmptyLabel => write!(f, "empty label"),
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::InvalidLabelChar(c) => write!(f, "invalid character {c:?} in label"),
            WireError::NameTooLong(n) => write!(f, "name encodes to {n} octets, exceeds 255"),
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated input: needed {needed} octets, {available} available"
                )
            }
            WireError::BadPointer(at) => write!(f, "invalid compression pointer at offset {at}"),
            WireError::BadLabelType(b) => write!(f, "unsupported label type bits {b:#04x}"),
            WireError::RdataLengthMismatch { declared, parsed } => {
                write!(
                    f,
                    "RDLENGTH {declared} disagrees with parsed length {parsed}"
                )
            }
            WireError::InvalidValue(what, v) => write!(f, "invalid {what} value {v}"),
            WireError::MessageTooLong(n) => write!(f, "message of {n} octets exceeds 65535"),
        }
    }
}

impl std::error::Error for WireError {}
