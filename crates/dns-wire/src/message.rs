//! DNS message: header, question, resource records, full encode/decode.

use crate::codec::{WireReader, WireWriter};
use crate::error::WireError;
use crate::name::Name;
use crate::rdata::RData;
use crate::types::{OpCode, RClass, RCode, RType};

/// Message header flags and counts (RFC 1035 §4.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    pub id: u16,
    /// Query (false) or response (true).
    pub qr: bool,
    pub opcode: OpCode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncation.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    pub rcode: RCode,
}

impl Header {
    /// A recursive query header.
    pub fn query(id: u16) -> Self {
        Header {
            id,
            qr: false,
            opcode: OpCode::Query,
            aa: false,
            tc: false,
            rd: true,
            ra: false,
            rcode: RCode::NoError,
        }
    }

    /// A response header answering `query` with `rcode`.
    pub fn response_to(query: &Header, rcode: RCode) -> Self {
        Header {
            id: query.id,
            qr: true,
            opcode: query.opcode,
            aa: false,
            tc: false,
            rd: query.rd,
            ra: true,
            rcode,
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    pub qname: Name,
    pub qtype: RType,
    pub qclass: RClass,
}

impl Question {
    pub fn new(qname: Name, qtype: RType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RClass::In,
        }
    }
}

/// A resource record in the answer/authority/additional sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub name: Name,
    pub class: RClass,
    pub ttl: u32,
    pub rdata: RData,
}

impl Record {
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            class: RClass::In,
            ttl,
            rdata,
        }
    }

    pub fn rtype(&self) -> RType {
        self.rdata.rtype()
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<Record>,
    pub authorities: Vec<Record>,
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a single-question recursive query.
    pub fn query(id: u16, qname: Name, qtype: RType) -> Self {
        Message {
            header: Header::query(id),
            questions: vec![Question::new(qname, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Builds a response to `query` carrying `rcode`, echoing the question.
    pub fn response(query: &Message, rcode: RCode) -> Self {
        Message {
            header: Header::response_to(&query.header, rcode),
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Whether this is an NXDOMAIN response.
    pub fn is_nxdomain(&self) -> bool {
        self.header.qr && self.header.rcode.is_nxdomain()
    }

    /// Encodes to wire format with name compression.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        self.encode_with(WireWriter::new())
    }

    /// Encodes without compression (for size-comparison benches/tests).
    pub fn encode_uncompressed(&self) -> Result<Vec<u8>, WireError> {
        self.encode_with(WireWriter::without_compression())
    }

    fn encode_with(&self, mut w: WireWriter) -> Result<Vec<u8>, WireError> {
        let h = &self.header;
        w.put_u16(h.id);
        let mut flags: u16 = 0;
        if h.qr {
            flags |= 0x8000;
        }
        flags |= (h.opcode.to_u8() as u16) << 11;
        if h.aa {
            flags |= 0x0400;
        }
        if h.tc {
            flags |= 0x0200;
        }
        if h.rd {
            flags |= 0x0100;
        }
        if h.ra {
            flags |= 0x0080;
        }
        flags |= h.rcode.to_u8() as u16 & 0x000F;
        w.put_u16(flags);
        w.put_u16(self.questions.len() as u16);
        w.put_u16(self.answers.len() as u16);
        w.put_u16(self.authorities.len() as u16);
        w.put_u16(self.additionals.len() as u16);

        for q in &self.questions {
            w.put_name(&q.qname)?;
            w.put_u16(q.qtype.to_u16());
            w.put_u16(q.qclass.to_u16());
        }
        for section in [&self.answers, &self.authorities, &self.additionals] {
            for rec in section {
                w.put_name(&rec.name)?;
                w.put_u16(rec.rtype().to_u16());
                w.put_u16(rec.class.to_u16());
                w.put_u32(rec.ttl);
                let len_at = w.len();
                w.put_u16(0);
                let before = w.len();
                rec.rdata.encode(&mut w)?;
                let rdlen = w.len() - before;
                if rdlen > u16::MAX as usize {
                    return Err(WireError::MessageTooLong(rdlen));
                }
                w.patch_u16(len_at, rdlen as u16)?;
            }
        }
        w.finish()
    }

    /// Decodes a full message from wire format.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let id = r.read_u16()?;
        let flags = r.read_u16()?;
        let header = Header {
            id,
            qr: flags & 0x8000 != 0,
            opcode: OpCode::from_u8(((flags >> 11) & 0x0F) as u8)?,
            aa: flags & 0x0400 != 0,
            tc: flags & 0x0200 != 0,
            rd: flags & 0x0100 != 0,
            ra: flags & 0x0080 != 0,
            rcode: RCode::from_u8((flags & 0x000F) as u8),
        };
        let qdcount = r.read_u16()? as usize;
        let ancount = r.read_u16()? as usize;
        let nscount = r.read_u16()? as usize;
        let arcount = r.read_u16()? as usize;

        let mut questions = Vec::with_capacity(qdcount.min(32));
        for _ in 0..qdcount {
            questions.push(Question {
                qname: r.read_name()?,
                qtype: RType::from_u16(r.read_u16()?),
                qclass: RClass::from_u16(r.read_u16()?),
            });
        }
        let read_section =
            |count: usize, r: &mut WireReader<'_>| -> Result<Vec<Record>, WireError> {
                let mut out = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    let name = r.read_name()?;
                    let rtype = RType::from_u16(r.read_u16()?);
                    let class = RClass::from_u16(r.read_u16()?);
                    let ttl = r.read_u32()?;
                    let rdlength = r.read_u16()? as usize;
                    let rdata = RData::decode(rtype, rdlength, r)?;
                    out.push(Record {
                        name,
                        class,
                        ttl,
                        rdata,
                    });
                }
                Ok(out)
            };
        let answers = read_section(ancount, &mut r)?;
        let authorities = read_section(nscount, &mut r)?;
        let additionals = read_section(arcount, &mut r)?;
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::Soa;
    use std::net::Ipv4Addr;

    fn qname() -> Name {
        "www.example.com".parse().unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let msg = Message::query(0x1234, qname(), RType::A);
        let buf = msg.encode().unwrap();
        let back = Message::decode(&buf).unwrap();
        assert_eq!(back, msg);
        assert!(!back.header.qr);
        assert!(back.header.rd);
    }

    #[test]
    fn nxdomain_response_roundtrip() {
        let q = Message::query(7, "no-such-name.example".parse().unwrap(), RType::A);
        let mut resp = Message::response(&q, RCode::NxDomain);
        // RFC 2308: NXDOMAIN responses carry the zone SOA in authority.
        resp.authorities.push(Record::new(
            "example".parse().unwrap(),
            900,
            RData::Soa(Soa {
                mname: "ns1.example".parse().unwrap(),
                rname: "host.example".parse().unwrap(),
                serial: 1,
                refresh: 2,
                retry: 3,
                expire: 4,
                minimum: 900,
            }),
        ));
        let buf = resp.encode().unwrap();
        let back = Message::decode(&buf).unwrap();
        assert!(back.is_nxdomain());
        assert_eq!(back.authorities.len(), 1);
        assert_eq!(back, resp);
    }

    #[test]
    fn full_response_with_all_sections() {
        let q = Message::query(99, qname(), RType::A);
        let mut resp = Message::response(&q, RCode::NoError);
        resp.header.aa = true;
        resp.answers.push(Record::new(
            qname(),
            300,
            RData::A(Ipv4Addr::new(93, 184, 216, 34)),
        ));
        resp.authorities.push(Record::new(
            "example.com".parse().unwrap(),
            86400,
            RData::Ns("ns1.example.com".parse().unwrap()),
        ));
        resp.additionals.push(Record::new(
            "ns1.example.com".parse().unwrap(),
            86400,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let buf = resp.encode().unwrap();
        let back = Message::decode(&buf).unwrap();
        assert_eq!(back, resp);
        assert!(back.header.aa);
    }

    #[test]
    fn compression_shrinks_messages() {
        let q = Message::query(5, qname(), RType::A);
        let mut resp = Message::response(&q, RCode::NoError);
        for i in 0..4 {
            resp.answers.push(Record::new(
                qname(),
                300,
                RData::A(Ipv4Addr::new(192, 0, 2, i)),
            ));
        }
        let compressed = resp.encode().unwrap();
        let plain = resp.encode_uncompressed().unwrap();
        assert!(compressed.len() < plain.len());
        assert_eq!(
            Message::decode(&compressed).unwrap(),
            Message::decode(&plain).unwrap()
        );
    }

    #[test]
    fn header_flag_bits_roundtrip() {
        for qr in [false, true] {
            for aa in [false, true] {
                for tc in [false, true] {
                    for rd in [false, true] {
                        for ra in [false, true] {
                            let msg = Message {
                                header: Header {
                                    id: 42,
                                    qr,
                                    opcode: OpCode::Query,
                                    aa,
                                    tc,
                                    rd,
                                    ra,
                                    rcode: RCode::Refused,
                                },
                                questions: vec![],
                                answers: vec![],
                                authorities: vec![],
                                additionals: vec![],
                            };
                            let back = Message::decode(&msg.encode().unwrap()).unwrap();
                            assert_eq!(back, msg);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn response_echoes_question_and_id() {
        let q = Message::query(0xABCD, qname(), RType::Aaaa);
        let resp = Message::response(&q, RCode::NxDomain);
        assert_eq!(resp.header.id, 0xABCD);
        assert_eq!(resp.questions, q.questions);
        assert!(resp.header.ra);
    }

    #[test]
    fn decode_rejects_truncated_message() {
        let msg = Message::query(1, qname(), RType::A);
        let buf = msg.encode().unwrap();
        for cut in [0, 5, 11, buf.len() - 1] {
            assert!(
                Message::decode(&buf[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_garbage_never_panics() {
        // A tiny deterministic fuzz: mutate one byte at every position.
        let msg = Message::query(3, qname(), RType::A);
        let buf = msg.encode().unwrap();
        for i in 0..buf.len() {
            for delta in [1u8, 0x80, 0xC0] {
                let mut m = buf.clone();
                m[i] = m[i].wrapping_add(delta);
                let _ = Message::decode(&m); // must not panic
            }
        }
    }
}
