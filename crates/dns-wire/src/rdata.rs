//! Typed RDATA payloads.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::codec::{WireReader, WireWriter};
use crate::error::WireError;
use crate::name::Name;
use crate::types::RType;

/// SOA record fields (RFC 1035 §3.3.13). The `minimum` field doubles as the
/// negative-caching TTL per RFC 2308, which the resolver simulation honours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    pub mname: Name,
    pub rname: Name,
    pub serial: u32,
    pub refresh: u32,
    pub retry: u32,
    pub expire: u32,
    pub minimum: u32,
}

/// A decoded RDATA value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Ns(Name),
    Cname(Name),
    Ptr(Name),
    Mx {
        preference: u16,
        exchange: Name,
    },
    /// One or more character-strings.
    Txt(Vec<String>),
    Soa(Soa),
    /// EDNS(0) OPT payload, kept opaque.
    Opt(Vec<u8>),
    /// Anything else, kept as raw octets with its numeric type.
    Unknown(u16, Vec<u8>),
}

impl RData {
    /// The record type this payload corresponds to.
    pub fn rtype(&self) -> RType {
        match self {
            RData::A(_) => RType::A,
            RData::Aaaa(_) => RType::Aaaa,
            RData::Ns(_) => RType::Ns,
            RData::Cname(_) => RType::Cname,
            RData::Ptr(_) => RType::Ptr,
            RData::Mx { .. } => RType::Mx,
            RData::Txt(_) => RType::Txt,
            RData::Soa(_) => RType::Soa,
            RData::Opt(_) => RType::Opt,
            RData::Unknown(t, _) => RType::from_u16(*t),
        }
    }

    /// Encodes the payload. Name-bearing RDATA participates in message
    /// compression via the shared writer.
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            RData::A(ip) => w.put_slice(&ip.octets()),
            RData::Aaaa(ip) => w.put_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => w.put_name(n)?,
            RData::Mx {
                preference,
                exchange,
            } => {
                w.put_u16(*preference);
                w.put_name(exchange)?;
            }
            RData::Txt(strings) => {
                for s in strings {
                    let bytes = s.as_bytes();
                    let len = bytes.len().min(255);
                    w.put_u8(len as u8);
                    w.put_slice(bytes.get(..len).unwrap_or(bytes));
                }
            }
            RData::Soa(soa) => {
                w.put_name(&soa.mname)?;
                w.put_name(&soa.rname)?;
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            RData::Opt(raw) | RData::Unknown(_, raw) => w.put_slice(raw),
        }
        Ok(())
    }

    /// Decodes `rdlength` octets of payload for record type `rtype`.
    pub fn decode(
        rtype: RType,
        rdlength: usize,
        r: &mut WireReader<'_>,
    ) -> Result<Self, WireError> {
        let start = r.position();
        let value = match rtype {
            RType::A => match *r.read_slice(4)? {
                [a, b, c, d] => RData::A(Ipv4Addr::new(a, b, c, d)),
                _ => {
                    return Err(WireError::Truncated {
                        needed: 4,
                        available: 0,
                    })
                }
            },
            RType::Aaaa => {
                let o = r.read_slice(16)?;
                let mut b = [0u8; 16];
                b.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(b))
            }
            RType::Ns => RData::Ns(r.read_name()?),
            RType::Cname => RData::Cname(r.read_name()?),
            RType::Ptr => RData::Ptr(r.read_name()?),
            RType::Mx => RData::Mx {
                preference: r.read_u16()?,
                exchange: r.read_name()?,
            },
            RType::Txt => {
                let mut strings = Vec::new();
                while r.position() - start < rdlength {
                    let len = r.read_u8()? as usize;
                    let raw = r.read_slice(len)?;
                    strings.push(String::from_utf8_lossy(raw).into_owned());
                }
                RData::Txt(strings)
            }
            RType::Soa => RData::Soa(Soa {
                mname: r.read_name()?,
                rname: r.read_name()?,
                serial: r.read_u32()?,
                refresh: r.read_u32()?,
                retry: r.read_u32()?,
                expire: r.read_u32()?,
                minimum: r.read_u32()?,
            }),
            RType::Opt => RData::Opt(r.read_slice(rdlength)?.to_vec()),
            other => RData::Unknown(other.to_u16(), r.read_slice(rdlength)?.to_vec()),
        };
        let parsed = r.position() - start;
        if parsed != rdlength {
            return Err(WireError::RdataLengthMismatch {
                declared: rdlength,
                parsed,
            });
        }
        Ok(value)
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(ip) => write!(f, "{ip}"),
            RData::Aaaa(ip) => write!(f, "{ip}"),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Cname(n) => write!(f, "{n}"),
            RData::Ptr(n) => write!(f, "{n}"),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::Txt(strings) => {
                for (i, s) in strings.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{s:?}")?;
                }
                Ok(())
            }
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Opt(raw) => write!(f, "OPT({} octets)", raw.len()),
            RData::Unknown(t, raw) => write!(f, "TYPE{t}({} octets)", raw.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rd: &RData) -> RData {
        let mut w = WireWriter::new();
        // length placeholder then payload, like the message encoder does
        w.put_u16(0);
        rd.encode(&mut w).unwrap();
        let len = w.len() - 2;
        w.patch_u16(0, len as u16).unwrap();
        let buf = w.finish().unwrap();
        let mut r = WireReader::new(&buf);
        let rdlength = r.read_u16().unwrap() as usize;
        RData::decode(rd.rtype(), rdlength, &mut r).unwrap()
    }

    #[test]
    fn roundtrip_all_types() {
        let name: Name = "ns1.example.com".parse().unwrap();
        let cases = vec![
            RData::A(Ipv4Addr::new(93, 184, 216, 34)),
            RData::Aaaa("2606:2800:220:1::1946".parse().unwrap()),
            RData::Ns(name.clone()),
            RData::Cname(name.clone()),
            RData::Ptr(name.clone()),
            RData::Mx {
                preference: 10,
                exchange: name.clone(),
            },
            RData::Txt(vec!["hello".into(), "world".into()]),
            RData::Soa(Soa {
                mname: name.clone(),
                rname: "hostmaster.example.com".parse().unwrap(),
                serial: 20_231_024,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 900,
            }),
            RData::Opt(vec![1, 2, 3]),
            RData::Unknown(99, vec![4, 5, 6, 7]),
        ];
        for rd in cases {
            assert_eq!(roundtrip(&rd), rd, "roundtrip failed for {rd}");
        }
    }

    #[test]
    fn declared_length_must_match() {
        // A record with rdlength 3 instead of 4.
        let buf = [1, 2, 3];
        let mut r = WireReader::new(&buf);
        assert!(RData::decode(RType::A, 3, &mut r).is_err());
    }

    #[test]
    fn txt_respects_255_byte_limit() {
        let long = "x".repeat(300);
        let rd = RData::Txt(vec![long]);
        let got = roundtrip(&rd);
        match got {
            RData::Txt(v) => assert_eq!(v[0].len(), 255),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rtype_mapping() {
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).rtype(), RType::A);
        assert_eq!(RData::Unknown(200, vec![]).rtype(), RType::Other(200));
    }

    #[test]
    fn empty_txt_roundtrips() {
        assert_eq!(roundtrip(&RData::Txt(vec![])), RData::Txt(vec![]));
    }
}
