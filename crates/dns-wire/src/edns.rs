//! EDNS(0) — RFC 6891 OPT pseudo-record support.
//!
//! The OPT record repurposes its fixed fields: CLASS carries the requester's
//! UDP payload size, TTL packs the extended RCODE, EDNS version, and the
//! DO bit, and RDATA holds a list of `(option-code, option-data)` pairs.
//! The simulation uses EDNS for realistic message-size negotiation (large
//! responses fit without truncation when the client advertises > 512).

use crate::message::{Message, Record};
use crate::name::Name;
use crate::rdata::RData;
use crate::types::{RClass, RType};

/// Default UDP payload size without EDNS (RFC 1035).
pub const CLASSIC_UDP_LIMIT: usize = 512;
/// Common EDNS advertised payload size.
pub const DEFAULT_EDNS_PAYLOAD: u16 = 1232;

/// One EDNS option (kept opaque; cookies and padding round-trip).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdnsOption {
    pub code: u16,
    pub data: Vec<u8>,
}

/// Decoded view of an OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Requester's maximum UDP payload size.
    pub udp_payload: u16,
    /// Upper 8 bits of the extended RCODE.
    pub extended_rcode: u8,
    pub version: u8,
    /// DNSSEC OK bit.
    pub dnssec_ok: bool,
    pub options: Vec<EdnsOption>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload: DEFAULT_EDNS_PAYLOAD,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// Builds the OPT record encoding this EDNS state.
    pub fn to_record(&self) -> Record {
        let mut rdata = Vec::new();
        for opt in &self.options {
            rdata.extend_from_slice(&opt.code.to_be_bytes());
            rdata.extend_from_slice(&(opt.data.len() as u16).to_be_bytes());
            rdata.extend_from_slice(&opt.data);
        }
        let ttl = ((self.extended_rcode as u32) << 24)
            | ((self.version as u32) << 16)
            | if self.dnssec_ok { 0x8000 } else { 0 };
        Record {
            name: Name::root(),
            class: RClass::Other(self.udp_payload),
            ttl,
            rdata: RData::Opt(rdata),
        }
    }

    /// Decodes an OPT record; `None` if the record is not OPT or its RDATA
    /// is malformed.
    pub fn from_record(record: &Record) -> Option<Edns> {
        let RData::Opt(raw) = &record.rdata else {
            return None;
        };
        let udp_payload = record.class.to_u16();
        let extended_rcode = (record.ttl >> 24) as u8;
        let version = (record.ttl >> 16) as u8;
        let dnssec_ok = record.ttl & 0x8000 != 0;
        let mut options = Vec::new();
        let mut i = 0;
        while let Some(&[c0, c1, l0, l1]) = raw.get(i..i + 4) {
            let code = u16::from_be_bytes([c0, c1]);
            let len = u16::from_be_bytes([l0, l1]) as usize;
            let data = raw.get(i + 4..i + 4 + len)?;
            options.push(EdnsOption {
                code,
                data: data.to_vec(),
            });
            i += 4 + len;
        }
        if i != raw.len() {
            return None;
        }
        Some(Edns {
            udp_payload,
            extended_rcode,
            version,
            dnssec_ok,
            options,
        })
    }
}

/// Message-level EDNS helpers.
pub trait EdnsMessage {
    /// The message's EDNS state, if it carries an OPT record.
    fn edns(&self) -> Option<Edns>;
    /// Attaches (or replaces) the OPT record in the additional section.
    fn set_edns(&mut self, edns: Edns);
    /// The effective UDP payload limit this message's sender can accept.
    fn udp_limit(&self) -> usize;
}

impl EdnsMessage for Message {
    fn edns(&self) -> Option<Edns> {
        self.additionals
            .iter()
            .find(|r| r.rtype() == RType::Opt)
            .and_then(Edns::from_record)
    }

    fn set_edns(&mut self, edns: Edns) {
        self.additionals.retain(|r| r.rtype() != RType::Opt);
        self.additionals.push(edns.to_record());
    }

    fn udp_limit(&self) -> usize {
        self.edns()
            .map(|e| (e.udp_payload as usize).max(CLASSIC_UDP_LIMIT))
            .unwrap_or(CLASSIC_UDP_LIMIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RCode;

    #[test]
    fn record_roundtrip() {
        let edns = Edns {
            udp_payload: 4096,
            extended_rcode: 1,
            version: 0,
            dnssec_ok: true,
            options: vec![EdnsOption {
                code: 10,
                data: vec![1, 2, 3, 4, 5, 6, 7, 8],
            }],
        };
        let record = edns.to_record();
        assert_eq!(record.rtype(), RType::Opt);
        assert_eq!(Edns::from_record(&record), Some(edns));
    }

    #[test]
    fn message_roundtrip_through_wire() {
        let mut msg = Message::query(7, "edns-test.com".parse().unwrap(), RType::A);
        msg.set_edns(Edns {
            udp_payload: 1400,
            ..Default::default()
        });
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        let edns = back.edns().expect("OPT survived the wire");
        assert_eq!(edns.udp_payload, 1400);
        assert_eq!(back.udp_limit(), 1400);
    }

    #[test]
    fn no_opt_means_classic_limit() {
        let msg = Message::query(7, "plain.com".parse().unwrap(), RType::A);
        assert_eq!(msg.edns(), None);
        assert_eq!(msg.udp_limit(), CLASSIC_UDP_LIMIT);
    }

    #[test]
    fn tiny_advertised_payload_clamps_to_classic() {
        let mut msg = Message::query(7, "tiny.com".parse().unwrap(), RType::A);
        msg.set_edns(Edns {
            udp_payload: 100,
            ..Default::default()
        });
        assert_eq!(msg.udp_limit(), CLASSIC_UDP_LIMIT);
    }

    #[test]
    fn set_edns_replaces_existing() {
        let mut msg = Message::query(7, "x.com".parse().unwrap(), RType::A);
        msg.set_edns(Edns {
            udp_payload: 1232,
            ..Default::default()
        });
        msg.set_edns(Edns {
            udp_payload: 4096,
            ..Default::default()
        });
        assert_eq!(msg.additionals.len(), 1);
        assert_eq!(msg.edns().unwrap().udp_payload, 4096);
    }

    #[test]
    fn malformed_options_rejected() {
        let record = Record {
            name: Name::root(),
            class: RClass::Other(1232),
            ttl: 0,
            rdata: RData::Opt(vec![0, 10, 0, 9, 1]), // declares 9 bytes, has 1
        };
        assert_eq!(Edns::from_record(&record), None);
        let trailing = Record {
            name: Name::root(),
            class: RClass::Other(1232),
            ttl: 0,
            rdata: RData::Opt(vec![0, 1, 0, 0, 9]), // 1 stray byte
        };
        assert_eq!(Edns::from_record(&trailing), None);
    }

    #[test]
    fn non_opt_record_is_not_edns() {
        let a = Record::new(
            "a.com".parse().unwrap(),
            60,
            RData::A(std::net::Ipv4Addr::LOCALHOST),
        );
        assert_eq!(Edns::from_record(&a), None);
    }

    #[test]
    fn rcode_passthrough_unaffected() {
        // Extended-rcode packing must not disturb the base header rcode.
        let q = Message::query(9, "y.com".parse().unwrap(), RType::A);
        let mut resp = Message::response(&q, RCode::NxDomain);
        resp.set_edns(Edns {
            extended_rcode: 0,
            ..Default::default()
        });
        let back = Message::decode(&resp.encode().unwrap()).unwrap();
        assert!(back.is_nxdomain());
    }
}
