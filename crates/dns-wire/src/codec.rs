//! Low-level wire reader/writer with RFC 1035 name compression.
//!
//! The writer maintains a table of previously emitted name suffixes so that
//! later occurrences are encoded as two-octet compression pointers. The
//! reader chases pointer chains with a strict "pointers only point backwards"
//! rule and a hop budget, making decoding loop-proof on adversarial input.

use std::collections::HashMap;

use bytes::{BufMut, BytesMut};

use crate::error::WireError;
use crate::name::Name;

/// Upper bound on pointer hops while decoding one name. A legal message can
/// never need more than the number of labels, and 128 comfortably exceeds
/// the 127-label maximum.
const MAX_POINTER_HOPS: usize = 128;

/// Compression pointers can only encode offsets below 2^14.
const MAX_POINTER_TARGET: usize = 0x3FFF;

/// Serializer for DNS messages.
pub struct WireWriter {
    buf: BytesMut,
    /// Suffix (as normalized presentation string) -> offset of its encoding.
    compress: HashMap<String, u16>,
    /// Whether to emit compression pointers at all.
    compression_enabled: bool,
}

impl WireWriter {
    pub fn new() -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(512),
            compress: HashMap::new(),
            compression_enabled: true,
        }
    }

    /// A writer that never emits compression pointers (for measuring the
    /// size benefit of compression, and for testing the reader's
    /// uncompressed path).
    pub fn without_compression() -> Self {
        let mut w = Self::new();
        w.compression_enabled = false;
        w
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.put_slice(s);
    }

    /// Writes a name, emitting a compression pointer for the longest suffix
    /// already present in the message.
    pub fn put_name(&mut self, name: &Name) -> Result<(), WireError> {
        let count = name.label_count();
        for i in 0..count {
            let suffix = name.suffix(count - i);
            let key = suffix.as_str().to_string();
            if self.compression_enabled {
                if let Some(&off) = self.compress.get(&key) {
                    self.buf.put_u16(0xC000 | off);
                    return Ok(());
                }
            }
            // Record this suffix's offset for future pointers (only if the
            // offset is representable in 14 bits).
            if self.compression_enabled && self.buf.len() <= MAX_POINTER_TARGET {
                self.compress.insert(key, self.buf.len() as u16);
            }
            let label = name.label(i);
            // `Name` validates labels on construction, but a silent `as u8`
            // truncation here would corrupt the wire format — fail instead.
            if label.len() > 63 {
                return Err(WireError::LabelTooLong(label.len()));
            }
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label.as_bytes());
        }
        self.buf.put_u8(0); // root terminator
        Ok(())
    }

    /// Finishes the message.
    pub fn finish(self) -> Result<Vec<u8>, WireError> {
        if self.buf.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong(self.buf.len()));
        }
        Ok(self.buf.to_vec())
    }

    /// Patches a previously written 16-bit field (used for RDLENGTH).
    /// Errs if `at..at + 2` is not inside the written buffer.
    pub fn patch_u16(&mut self, at: usize, v: u16) -> Result<(), WireError> {
        let len = self.buf.len();
        let slot = at
            .checked_add(2)
            .and_then(|end| self.buf.get_mut(at..end))
            .ok_or(WireError::Truncated {
                needed: 2,
                available: len.saturating_sub(at),
            })?;
        slot.copy_from_slice(&v.to_be_bytes());
        Ok(())
    }
}

impl Default for WireWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Deserializer over a full message buffer. Tracks a cursor; name decoding
/// may jump backwards through compression pointers without moving the cursor
/// past the pointer itself.
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes the next `n` bytes, advancing the cursor. The single bounds
    /// check every primitive read goes through — `.get()` instead of
    /// indexing, so no input can panic the reader.
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let s = self
            .pos
            .checked_add(n)
            .and_then(|end| self.data.get(self.pos..end))
            .ok_or(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            })?;
        self.pos += n;
        Ok(s)
    }

    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        match *self.take(1)? {
            [v] => Ok(v),
            _ => Err(WireError::Truncated {
                needed: 1,
                available: 0,
            }),
        }
    }

    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        match *self.take(2)? {
            [a, b] => Ok(u16::from_be_bytes([a, b])),
            _ => Err(WireError::Truncated {
                needed: 2,
                available: 0,
            }),
        }
    }

    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        match *self.take(4)? {
            [a, b, c, d] => Ok(u32::from_be_bytes([a, b, c, d])),
            _ => Err(WireError::Truncated {
                needed: 4,
                available: 0,
            }),
        }
    }

    pub fn read_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Decodes a possibly-compressed name starting at the cursor.
    pub fn read_name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut at = self.pos;
        let mut cursor_after: Option<usize> = None;
        let mut hops = 0usize;

        loop {
            let Some(&len) = self.data.get(at) else {
                return Err(WireError::Truncated {
                    needed: 1,
                    available: 0,
                });
            };
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        // Root terminator.
                        if cursor_after.is_none() {
                            cursor_after = Some(at + 1);
                        }
                        break;
                    }
                    let start = at + 1;
                    let end = start + len as usize;
                    let Some(raw) = self.data.get(start..end) else {
                        return Err(WireError::Truncated {
                            needed: len as usize,
                            available: self.data.len().saturating_sub(start),
                        });
                    };
                    let label: String = raw
                        .iter()
                        .map(|&b| (b as char).to_ascii_lowercase())
                        .collect();
                    labels.push(label);
                    at = end;
                }
                0xC0 => {
                    let Some(&low) = self.data.get(at + 1) else {
                        return Err(WireError::Truncated {
                            needed: 2,
                            available: 1,
                        });
                    };
                    let target = (((len & 0x3F) as usize) << 8) | low as usize;
                    if cursor_after.is_none() {
                        cursor_after = Some(at + 2);
                    }
                    // Pointers must strictly decrease to guarantee progress.
                    if target >= at {
                        return Err(WireError::BadPointer(at));
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer(at));
                    }
                    at = target;
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }

        // The loop always sets `cursor_after` before breaking, but a decoder
        // must never panic on wire input — degrade to an error if that
        // invariant is ever broken by a future edit.
        self.pos = cursor_after.ok_or(WireError::BadPointer(self.pos))?;
        if labels.is_empty() {
            Ok(Name::root())
        } else {
            Name::from_labels(labels)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip_simple_name() {
        let mut w = WireWriter::new();
        w.put_name(&name("www.example.com")).unwrap();
        let buf = w.finish().unwrap();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_name().unwrap(), name("www.example.com"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_root() {
        let mut w = WireWriter::new();
        w.put_name(&Name::root()).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf, vec![0]);
        let mut r = WireReader::new(&buf);
        assert!(r.read_name().unwrap().is_root());
    }

    #[test]
    fn compression_reuses_suffix() {
        let mut w = WireWriter::new();
        w.put_name(&name("www.example.com")).unwrap();
        let first = w.len();
        w.put_name(&name("mail.example.com")).unwrap();
        let buf = w.finish().unwrap();
        // Second name: 1+4 for "mail" label + 2 pointer octets.
        assert_eq!(buf.len() - first, 1 + 4 + 2);

        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_name().unwrap(), name("www.example.com"));
        assert_eq!(r.read_name().unwrap(), name("mail.example.com"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn identical_name_becomes_pure_pointer() {
        let mut w = WireWriter::new();
        w.put_name(&name("example.com")).unwrap();
        let first = w.len();
        w.put_name(&name("example.com")).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len() - first, 2);
        let mut r = WireReader::new(&buf);
        r.read_name().unwrap();
        assert_eq!(r.read_name().unwrap(), name("example.com"));
    }

    #[test]
    fn compression_disabled_writes_full_names() {
        let mut w = WireWriter::without_compression();
        w.put_name(&name("example.com")).unwrap();
        let first = w.len();
        w.put_name(&name("example.com")).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len() - first, first);
        let mut r = WireReader::new(&buf);
        r.read_name().unwrap();
        assert_eq!(r.read_name().unwrap(), name("example.com"));
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer at offset 0 pointing to offset 2 (forward) must fail.
        let buf = [0xC0, 0x02, 0x01, b'a', 0x00];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.read_name(), Err(WireError::BadPointer(_))));
    }

    #[test]
    fn self_pointer_rejected() {
        let buf = [0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.read_name(), Err(WireError::BadPointer(_))));
    }

    #[test]
    fn truncated_label_rejected() {
        let buf = [0x05, b'a', b'b'];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.read_name(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn truncated_pointer_rejected() {
        let buf = [0xC0];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.read_name(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn bad_label_type_rejected() {
        let buf = [0x80, 0x01];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.read_name(), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn reader_primitives() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEADBEEF);
        w.put_slice(b"xyz");
        let buf = w.finish().unwrap();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_slice(3).unwrap(), b"xyz");
        assert!(r.read_u8().is_err());
    }

    #[test]
    fn patch_u16_overwrites() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        w.put_u8(9);
        w.patch_u16(0, 0x1234).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf, vec![0x12, 0x34, 9]);
    }

    #[test]
    fn patch_u16_out_of_range_is_an_error() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        assert!(w.patch_u16(0, 1).is_err());
        assert!(w.patch_u16(usize::MAX, 1).is_err());
    }

    #[test]
    fn decoded_names_are_case_normalized() {
        // Hand-encode "WWW.CoM".
        let buf = [3, b'W', b'W', b'W', 3, b'C', b'o', b'M', 0];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_name().unwrap(), name("www.com"));
    }
}
