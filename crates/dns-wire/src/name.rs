//! Domain names: parsing, normalization, and structural queries.
//!
//! A [`Name`] is a sequence of labels, stored lowercase (DNS is
//! case-insensitive per RFC 1035 §2.3.3; we normalize at construction so that
//! equality, hashing, and ordering are cheap byte comparisons). The root name
//! is the empty label sequence and displays as `"."`.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use crate::error::WireError;

/// Maximum length of a single label, per RFC 1035 §2.3.4.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of an entire encoded name, per RFC 1035 §2.3.4.
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified DNS domain name.
///
/// Internally stored as the lowercase presentation form without a trailing
/// dot, plus label boundaries. The root is represented by an empty string.
///
/// ```
/// use nxd_dns_wire::Name;
/// let n: Name = "WWW.Example.COM".parse().unwrap();
/// assert_eq!(n.to_string(), "www.example.com");
/// assert_eq!(n.label_count(), 3);
/// assert_eq!(n.tld(), Some("com"));
/// assert_eq!(n.registrable(), Some("example.com".parse().unwrap()));
/// ```
#[derive(Clone, Eq, PartialOrd, Ord)]
pub struct Name {
    /// Lowercase labels joined by '.', no trailing dot; empty for root.
    repr: String,
    /// Byte offsets in `repr` where each label starts.
    label_starts: Vec<u16>,
}

impl Name {
    /// The DNS root (zero labels).
    pub fn root() -> Self {
        Name {
            repr: String::new(),
            label_starts: Vec::new(),
        }
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.label_starts.is_empty()
    }

    /// Builds a name from pre-validated lowercase labels.
    ///
    /// Returns an error if any label is empty, too long, contains `.`, or the
    /// total encoded length would exceed [`MAX_NAME_LEN`].
    pub fn from_labels<I, S>(labels: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut repr = String::new();
        let mut starts = Vec::new();
        for label in labels {
            let label = label.as_ref();
            validate_label(label)?;
            if !repr.is_empty() {
                repr.push('.');
            }
            starts.push(repr.len() as u16);
            for ch in label.chars() {
                repr.extend(ch.to_lowercase());
            }
        }
        let name = Name {
            repr,
            label_starts: starts,
        };
        if name.encoded_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(name.encoded_len()));
        }
        Ok(name)
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.label_starts.len()
    }

    /// Iterates over labels from the leftmost (host) to rightmost (TLD).
    pub fn labels(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.label_starts.len()).map(move |i| self.label(i))
    }

    /// Returns the i-th label from the left.
    ///
    /// # Panics
    /// Panics if `i >= label_count()`.
    pub fn label(&self, i: usize) -> &str {
        // nxd-lint: allow(NXL002, reason="documented panic contract: i < label_count(); not a wire-decode path")
        let start = self.label_starts[i] as usize;
        let end = self
            .label_starts
            .get(i + 1)
            .map(|&s| s as usize - 1)
            .unwrap_or(self.repr.len());
        // nxd-lint: allow(NXL002, reason="start/end are label_starts offsets into repr, a construction-time invariant")
        &self.repr[start..end]
    }

    /// The top-level domain label, if any (`com` for `www.example.com`).
    pub fn tld(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            Some(self.label(self.label_count() - 1))
        }
    }

    /// The registrable ("effective second-level") domain: the final two
    /// labels. Returns `None` for the root and bare TLDs.
    ///
    /// The simulation's registry operates purely on two-label registrable
    /// names, so no public-suffix list is required.
    pub fn registrable(&self) -> Option<Name> {
        if self.label_count() < 2 {
            return None;
        }
        Some(self.suffix(2))
    }

    /// The suffix consisting of the last `n` labels.
    ///
    /// # Panics
    /// Panics if `n > label_count()`.
    pub fn suffix(&self, n: usize) -> Name {
        assert!(n <= self.label_count(), "suffix longer than name");
        if n == 0 {
            return Name::root();
        }
        let first = self.label_count() - n;
        // nxd-lint: allow(NXL002, reason="guarded by the assert above: first < label_count(); documented panic contract")
        let start = self.label_starts[first] as usize;
        // nxd-lint: allow(NXL002, reason="start is a label boundary inside repr by construction")
        let repr = self.repr[start..].to_string();
        // nxd-lint: allow(NXL002, reason="first < label_starts.len() is guarded by the assert above")
        let label_starts = self.label_starts[first..]
            .iter()
            .map(|&s| s - start as u16)
            .collect();
        Name { repr, label_starts }
    }

    /// The name with the leftmost label removed; `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.is_root() {
            None
        } else {
            Some(self.suffix(self.label_count() - 1))
        }
    }

    /// Whether `self` equals `other` or is underneath it in the tree.
    /// Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.is_root() {
            return true;
        }
        if other.label_count() > self.label_count() {
            return false;
        }
        self.suffix(other.label_count()) == *other
    }

    /// Prepends `label` to this name (`child("www")` on `example.com` gives
    /// `www.example.com`).
    pub fn child(&self, label: &str) -> Result<Name, WireError> {
        let mut labels: Vec<&str> = vec![label];
        labels.extend(self.labels());
        Name::from_labels(labels)
    }

    /// Length of the RFC 1035 wire encoding (length-prefixed labels plus the
    /// terminating zero octet), without compression.
    pub fn encoded_len(&self) -> usize {
        if self.is_root() {
            1
        } else {
            // one length octet per label + label bytes + root octet
            self.label_count() + self.repr.len() - (self.label_count() - 1) + 1
        }
    }

    /// The lowercase presentation form without a trailing dot (empty string
    /// for the root). Useful as a map key.
    pub fn as_str(&self) -> &str {
        &self.repr
    }

    /// True if every label matches classic hostname rules (LDH: letters,
    /// digits, hyphens; no leading/trailing hyphen).
    pub fn is_ldh(&self) -> bool {
        self.labels().all(|l| {
            !l.starts_with('-')
                && !l.ends_with('-')
                && l.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-')
        })
    }
}

fn validate_label(label: &str) -> Result<(), WireError> {
    if label.is_empty() {
        return Err(WireError::EmptyLabel);
    }
    if label.len() > MAX_LABEL_LEN {
        return Err(WireError::LabelTooLong(label.len()));
    }
    if label.contains('.') {
        return Err(WireError::InvalidLabelChar('.'));
    }
    for ch in label.chars() {
        if !ch.is_ascii_graphic() {
            return Err(WireError::InvalidLabelChar(ch));
        }
    }
    Ok(())
}

impl FromStr for Name {
    type Err = WireError;

    /// Parses presentation form. A single `"."` (or empty string) is the
    /// root; a trailing dot is accepted and ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(s.split('.'))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            f.write_str(".")
        } else {
            f.write_str(&self.repr)
        }
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.repr == other.repr
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.repr.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parses_and_normalizes_case() {
        let name = n("WwW.ExAmPlE.CoM");
        assert_eq!(name.to_string(), "www.example.com");
        assert_eq!(name, n("www.example.com"));
    }

    #[test]
    fn root_forms() {
        assert!(n(".").is_root());
        assert!(n("").is_root());
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(Name::root().label_count(), 0);
        assert_eq!(Name::root().encoded_len(), 1);
    }

    #[test]
    fn trailing_dot_ignored() {
        assert_eq!(n("example.com."), n("example.com"));
    }

    #[test]
    fn labels_iterate_left_to_right() {
        let name = n("a.b.c");
        let labels: Vec<_> = name.labels().collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        assert_eq!(name.label(0), "a");
        assert_eq!(name.label(2), "c");
    }

    #[test]
    fn tld_and_registrable() {
        assert_eq!(n("www.example.com").tld(), Some("com"));
        assert_eq!(n("www.example.com").registrable(), Some(n("example.com")));
        assert_eq!(n("com").registrable(), None);
        assert_eq!(Name::root().tld(), None);
    }

    #[test]
    fn suffix_and_parent() {
        let name = n("a.b.c.d");
        assert_eq!(name.suffix(2), n("c.d"));
        assert_eq!(name.suffix(0), Name::root());
        assert_eq!(name.parent(), Some(n("b.c.d")));
        assert_eq!(n("d").parent(), Some(Name::root()));
        assert_eq!(Name::root().parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        assert!(n("www.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("com")));
        assert!(!n("example.com").is_subdomain_of(&n("example.org")));
        assert!(!n("badexample.com").is_subdomain_of(&n("example.com")));
        assert!(n("anything.at.all").is_subdomain_of(&Name::root()));
    }

    #[test]
    fn child_prepends() {
        assert_eq!(n("example.com").child("www").unwrap(), n("www.example.com"));
        assert_eq!(Name::root().child("com").unwrap(), n("com"));
    }

    #[test]
    fn rejects_bad_labels() {
        assert!("a..b".parse::<Name>().is_err());
        assert!(Name::from_labels(["ok", ""]).is_err());
        let long = "x".repeat(64);
        assert!(Name::from_labels([long.as_str()]).is_err());
        let ok63 = "x".repeat(63);
        assert!(Name::from_labels([ok63.as_str()]).is_ok());
    }

    #[test]
    fn rejects_overlong_name() {
        // 4 labels of 63 bytes = 4*64 + 1 = 257 encoded bytes > 255.
        let l = "y".repeat(63);
        let labels = vec![l.clone(), l.clone(), l.clone(), l.clone()];
        assert!(Name::from_labels(&labels).is_err());
        // 3 labels of 63 plus one of 61: 3*64 + 62 + 1 = 255 — exactly legal.
        let small = "y".repeat(61);
        let labels = vec![l.clone(), l.clone(), l, small];
        let name = Name::from_labels(&labels).unwrap();
        assert_eq!(name.encoded_len(), 255);
    }

    #[test]
    fn encoded_len_matches_definition() {
        assert_eq!(n("example.com").encoded_len(), 1 + 7 + 1 + 3 + 1);
        assert_eq!(n("a").encoded_len(), 3);
    }

    #[test]
    fn ldh_check() {
        assert!(n("ex-ample1.com").is_ldh());
        assert!(!n("ex_ample.com").is_ldh());
        assert!(!n("-bad.com").is_ldh());
        assert!(!n("bad-.com").is_ldh());
    }

    #[test]
    fn ordering_is_bytewise_on_normalized_form() {
        let mut v = vec![n("b.com"), n("a.com"), n("A.ORG")];
        v.sort();
        assert_eq!(v, vec![n("a.com"), n("a.org"), n("b.com")]);
    }
}
