//! # nxd-dns-wire
//!
//! DNS wire protocol (RFC 1035, with RFC 2308 negative-caching fields and an
//! opaque RFC 6891 OPT record) for the `nxdomain` reproduction of
//! *"Dial "N" for NXDomain"* (IMC 2023).
//!
//! This crate is self-contained and deterministic: no I/O, no clocks. It
//! provides:
//!
//! * [`Name`] — normalized domain names with structural queries (TLD,
//!   registrable domain, subdomain relation);
//! * [`Message`] / [`Record`] / [`Question`] — full message model with
//!   compression-aware encode/decode;
//! * [`RCode`] — response codes, notably [`RCode::NxDomain`];
//! * [`RData`] — typed payloads (A, AAAA, NS, CNAME, SOA, PTR, MX, TXT, OPT).
//!
//! ```
//! use nxd_dns_wire::{Message, Name, RCode, RType};
//!
//! let qname: Name = "does-not-exist.example".parse().unwrap();
//! let query = Message::query(0x29A, qname, RType::A);
//! let wire = query.encode().unwrap();
//! let parsed = Message::decode(&wire).unwrap();
//! assert_eq!(parsed, query);
//!
//! let response = Message::response(&query, RCode::NxDomain);
//! assert!(response.is_nxdomain());
//! ```

pub mod codec;
pub mod edns;
pub mod error;
pub mod message;
pub mod name;
pub mod rdata;
pub mod types;

pub use codec::{WireReader, WireWriter};
pub use edns::{Edns, EdnsMessage, EdnsOption, CLASSIC_UDP_LIMIT, DEFAULT_EDNS_PAYLOAD};
pub use error::WireError;
pub use message::{Header, Message, Question, Record};
pub use name::Name;
pub use rdata::{RData, Soa};
pub use types::{OpCode, RClass, RCode, RType};
