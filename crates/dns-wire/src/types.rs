//! Protocol enumerations: response codes, record types, classes, opcodes.

use std::fmt;

use crate::error::WireError;

/// DNS response codes (RFC 1035 §4.1.1, extended registry values included
/// where the simulation needs them).
///
/// [`RCode::NxDomain`] — "Name Error" — is the subject of the reproduced
/// paper: it signals that the queried name does not exist in the zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RCode {
    /// No error condition.
    NoError,
    /// The server could not interpret the query.
    FormErr,
    /// The server failed internally.
    ServFail,
    /// The queried domain name does not exist (NXDOMAIN).
    NxDomain,
    /// The requested operation is not implemented.
    NotImp,
    /// The server refuses to answer for policy reasons.
    Refused,
    /// A name exists when it should not (RFC 2136).
    YxDomain,
    /// A code outside the set this library models.
    Other(u8),
}

impl RCode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            RCode::NoError => 0,
            RCode::FormErr => 1,
            RCode::ServFail => 2,
            RCode::NxDomain => 3,
            RCode::NotImp => 4,
            RCode::Refused => 5,
            RCode::YxDomain => 6,
            RCode::Other(v) => v,
        }
    }

    /// Decodes the 4-bit wire value (never fails; unknown codes map to
    /// [`RCode::Other`]).
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => RCode::NoError,
            1 => RCode::FormErr,
            2 => RCode::ServFail,
            3 => RCode::NxDomain,
            4 => RCode::NotImp,
            5 => RCode::Refused,
            6 => RCode::YxDomain,
            other => RCode::Other(other),
        }
    }

    /// Whether this is the NXDOMAIN name error.
    pub fn is_nxdomain(self) -> bool {
        self == RCode::NxDomain
    }
}

impl fmt::Display for RCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RCode::NoError => "NOERROR",
            RCode::FormErr => "FORMERR",
            RCode::ServFail => "SERVFAIL",
            RCode::NxDomain => "NXDOMAIN",
            RCode::NotImp => "NOTIMP",
            RCode::Refused => "REFUSED",
            RCode::YxDomain => "YXDOMAIN",
            RCode::Other(v) => return write!(f, "RCODE{v}"),
        };
        f.write_str(s)
    }
}

/// Resource record types the library models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Mx,
    Txt,
    Aaaa,
    /// EDNS(0) pseudo-record (RFC 6891).
    Opt,
    /// Any other type, preserved numerically.
    Other(u16),
}

impl RType {
    pub fn to_u16(self) -> u16 {
        match self {
            RType::A => 1,
            RType::Ns => 2,
            RType::Cname => 5,
            RType::Soa => 6,
            RType::Ptr => 12,
            RType::Mx => 15,
            RType::Txt => 16,
            RType::Aaaa => 28,
            RType::Opt => 41,
            RType::Other(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RType::A,
            2 => RType::Ns,
            5 => RType::Cname,
            6 => RType::Soa,
            12 => RType::Ptr,
            15 => RType::Mx,
            16 => RType::Txt,
            28 => RType::Aaaa,
            41 => RType::Opt,
            other => RType::Other(other),
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RType::A => "A",
            RType::Ns => "NS",
            RType::Cname => "CNAME",
            RType::Soa => "SOA",
            RType::Ptr => "PTR",
            RType::Mx => "MX",
            RType::Txt => "TXT",
            RType::Aaaa => "AAAA",
            RType::Opt => "OPT",
            RType::Other(v) => return write!(f, "TYPE{v}"),
        };
        f.write_str(s)
    }
}

/// Record classes. The simulation only uses IN but the codec round-trips
/// anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RClass {
    In,
    Ch,
    Hs,
    Other(u16),
}

impl RClass {
    pub fn to_u16(self) -> u16 {
        match self {
            RClass::In => 1,
            RClass::Ch => 3,
            RClass::Hs => 4,
            RClass::Other(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RClass::In,
            3 => RClass::Ch,
            4 => RClass::Hs,
            other => RClass::Other(other),
        }
    }
}

/// Query opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCode {
    Query,
    IQuery,
    Status,
    Notify,
    Update,
    Other(u8),
}

impl OpCode {
    pub fn to_u8(self) -> u8 {
        match self {
            OpCode::Query => 0,
            OpCode::IQuery => 1,
            OpCode::Status => 2,
            OpCode::Notify => 4,
            OpCode::Update => 5,
            OpCode::Other(v) => v,
        }
    }

    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => OpCode::Query,
            1 => OpCode::IQuery,
            2 => OpCode::Status,
            4 => OpCode::Notify,
            5 => OpCode::Update,
            v if v < 16 => OpCode::Other(v),
            v => return Err(WireError::InvalidValue("opcode", v as u32)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcode_roundtrip() {
        for v in 0..16u8 {
            assert_eq!(RCode::from_u8(v).to_u8(), v);
        }
        assert!(RCode::NxDomain.is_nxdomain());
        assert!(!RCode::NoError.is_nxdomain());
    }

    #[test]
    fn rcode_display() {
        assert_eq!(RCode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(RCode::Other(11).to_string(), "RCODE11");
    }

    #[test]
    fn rtype_roundtrip() {
        for v in [1u16, 2, 5, 6, 12, 15, 16, 28, 41, 99, 255, 65280] {
            assert_eq!(RType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RType::Other(13).to_string(), "TYPE13");
    }

    #[test]
    fn rclass_roundtrip() {
        for v in [1u16, 3, 4, 254] {
            assert_eq!(RClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn opcode_validation() {
        assert_eq!(OpCode::from_u8(0).unwrap(), OpCode::Query);
        assert_eq!(OpCode::from_u8(7).unwrap(), OpCode::Other(7));
        assert!(OpCode::from_u8(16).is_err());
    }
}
