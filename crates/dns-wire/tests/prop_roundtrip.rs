//! Property-based tests for name and message wire round-trips.

use nxd_dns_wire::{Message, Name, RCode, RData, RType, Record, Soa};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..6)
        .prop_filter_map("name too long", |labels| Name::from_labels(&labels).ok())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[ -~]{0,40}", 0..3).prop_map(RData::Txt),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(|raw| RData::Unknown(4660, raw)),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(n, ttl, rd)| Record::new(n, ttl, rd))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn name_parse_display_roundtrip(name in arb_name()) {
        let text = name.to_string();
        let back: Name = text.parse().unwrap();
        prop_assert_eq!(back, name);
    }

    #[test]
    fn name_suffix_is_subdomain(name in arb_name(), k in 0usize..6) {
        let k = k.min(name.label_count());
        let suffix = name.suffix(k);
        prop_assert!(name.is_subdomain_of(&suffix));
    }

    #[test]
    fn message_roundtrip(
        id in any::<u16>(),
        qname in arb_name(),
        answers in proptest::collection::vec(arb_record(), 0..5),
        authorities in proptest::collection::vec(arb_record(), 0..3),
        rcode in 0u8..16,
    ) {
        let q = Message::query(id, qname, RType::A);
        let mut resp = Message::response(&q, RCode::from_u8(rcode));
        resp.answers = answers;
        resp.authorities = authorities;
        let wire = resp.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn compressed_never_larger(
        qname in arb_name(),
        answers in proptest::collection::vec(arb_record(), 0..6),
    ) {
        let q = Message::query(1, qname, RType::A);
        let mut resp = Message::response(&q, RCode::NoError);
        resp.answers = answers;
        let compressed = resp.encode().unwrap().len();
        let plain = resp.encode_uncompressed().unwrap().len();
        prop_assert!(compressed <= plain);
    }

    #[test]
    fn decode_arbitrary_bytes_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Message::decode(&buf);
    }
}
