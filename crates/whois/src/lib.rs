//! # nxd-whois
//!
//! Historic WHOIS storage — the stand-in for the WhoisXML database (15.6 B
//! records) and the WHOISIQ mirror the paper cross-checks against (§3.2,
//! §6.1). A domain has zero or more [`WhoisRecord`]s, one per registration
//! span; the paper's key join is "which NXDomains have *any* historic
//! record" (expired domains) versus none (never-registered names).
//!
//! Timestamps are plain Unix seconds so this crate stays dependency-light;
//! callers convert from their simulated clock.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Why a registration span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanEnd {
    /// Lapsed and was released.
    Expired,
    /// Still registered as of the database snapshot.
    Active,
    /// Taken down by authorities or the registrar.
    TakenDown,
}

/// One registration span of a domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhoisRecord {
    /// Registrable domain, normalized lowercase without trailing dot.
    pub domain: String,
    /// Unix seconds of registration.
    pub registered: u64,
    /// Unix seconds of expiration (end of the span; meaningful for
    /// `Expired`/`TakenDown`, projected for `Active`).
    pub expires: u64,
    pub registrar: String,
    /// Registrant identity (anonymized in the simulation).
    pub registrant: String,
    pub nameservers: Vec<String>,
    pub end: SpanEnd,
}

/// A historic WHOIS database: every registration span ever recorded.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct HistoricWhoisDb {
    records: HashMap<String, Vec<WhoisRecord>>,
    total: u64,
}

impl HistoricWhoisDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a span, keeping each domain's spans sorted by registration
    /// time.
    pub fn add(&mut self, record: WhoisRecord) {
        let spans = self.records.entry(record.domain.clone()).or_default();
        spans.push(record);
        spans.sort_by_key(|r| r.registered);
        self.total += 1;
    }

    /// All spans for a domain, oldest first.
    pub fn history(&self, domain: &str) -> &[WhoisRecord] {
        self.records
            .get(domain)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The most recent span, if any.
    pub fn latest(&self, domain: &str) -> Option<&WhoisRecord> {
        self.records.get(domain).and_then(|v| v.last())
    }

    /// Whether the domain was ever registered.
    pub fn has_history(&self, domain: &str) -> bool {
        self.records.contains_key(domain)
    }

    /// Total spans stored (the "15.6 billion historic WHOIS records" axis).
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Number of distinct domains with at least one span.
    pub fn distinct_domains(&self) -> usize {
        self.records.len()
    }

    /// Splits `names` into (with history, without history) — the §5.1 join
    /// that found 91,545,561 of 146 B NXDomains (0.06%) had records.
    pub fn join<'a, I>(&self, names: I) -> (Vec<&'a str>, Vec<&'a str>)
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut with = Vec::new();
        let mut without = Vec::new();
        for name in names {
            if self.has_history(name) {
                with.push(name);
            } else {
                without.push(name);
            }
        }
        (with, without)
    }

    /// Counts `names` with and without history — the allocation-free twin
    /// of [`HistoricWhoisDb::join`] for scans that only need the §5.1
    /// tallies, not the split name lists.
    pub fn join_counts<'a, I>(&self, names: I) -> (u64, u64)
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut with = 0u64;
        let mut without = 0u64;
        for name in names {
            if self.has_history(name) {
                with += 1;
            } else {
                without += 1;
            }
        }
        (with, without)
    }

    /// Domains whose latest span expired at least `min_gap_secs` before
    /// `now` — the §3.3 criterion "in non-existent status for at least six
    /// months".
    pub fn expired_before(&self, now: u64, min_gap_secs: u64) -> Vec<&WhoisRecord> {
        self.records
            .values()
            .filter_map(|spans| spans.last())
            .filter(|r| r.end == SpanEnd::Expired && r.expires + min_gap_secs <= now)
            .collect()
    }
}

/// Primary + secondary WHOIS sources checked together, as the paper does
/// with WhoisXML and WHOISIQ when selecting the control-group domains
/// ("we ensure that these domains do not hold any historical registration
/// records by checking two WHOIS databases").
#[derive(Debug, Default, Clone)]
pub struct CrossCheckedWhois {
    pub primary: HistoricWhoisDb,
    pub secondary: HistoricWhoisDb,
}

impl CrossCheckedWhois {
    pub fn new(primary: HistoricWhoisDb, secondary: HistoricWhoisDb) -> Self {
        CrossCheckedWhois { primary, secondary }
    }

    /// True only if *neither* database has ever seen the domain.
    pub fn never_registered(&self, domain: &str) -> bool {
        !self.primary.has_history(domain) && !self.secondary.has_history(domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(domain: &str, registered: u64, expires: u64, end: SpanEnd) -> WhoisRecord {
        WhoisRecord {
            domain: domain.into(),
            registered,
            expires,
            registrar: "godaddy".into(),
            registrant: "anon-1".into(),
            nameservers: vec![format!("ns1.{domain}")],
            end,
        }
    }

    #[test]
    fn add_and_history() {
        let mut db = HistoricWhoisDb::new();
        db.add(rec("a.com", 200, 300, SpanEnd::Expired));
        db.add(rec("a.com", 100, 150, SpanEnd::Expired));
        let h = db.history("a.com");
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].registered, 100, "spans sorted oldest first");
        assert_eq!(db.latest("a.com").unwrap().registered, 200);
        assert_eq!(db.total_records(), 2);
        assert_eq!(db.distinct_domains(), 1);
    }

    #[test]
    fn missing_domain() {
        let db = HistoricWhoisDb::new();
        assert!(db.history("nope.com").is_empty());
        assert!(db.latest("nope.com").is_none());
        assert!(!db.has_history("nope.com"));
    }

    #[test]
    fn join_splits() {
        let mut db = HistoricWhoisDb::new();
        db.add(rec("seen.com", 1, 2, SpanEnd::Expired));
        let names = vec!["seen.com", "never1.com", "never2.com"];
        let (with, without) = db.join(names);
        assert_eq!(with, vec!["seen.com"]);
        assert_eq!(without.len(), 2);
    }

    #[test]
    fn join_counts_matches_join() {
        let mut db = HistoricWhoisDb::new();
        db.add(rec("seen.com", 1, 2, SpanEnd::Expired));
        let names = ["seen.com", "never1.com", "never2.com"];
        let (with, without) = db.join_counts(names);
        let (with_v, without_v) = db.join(names);
        assert_eq!(with, with_v.len() as u64);
        assert_eq!(without, without_v.len() as u64);
        assert_eq!((with, without), (1, 2));
    }

    #[test]
    fn expired_before_honours_gap() {
        let mut db = HistoricWhoisDb::new();
        let half_year = 182 * 86_400;
        db.add(rec("old.com", 0, 1_000, SpanEnd::Expired));
        db.add(rec("fresh.com", 0, 100_000_000, SpanEnd::Expired));
        db.add(rec("active.com", 0, 1_000, SpanEnd::Active));
        let now = 1_000 + half_year;
        let hits = db.expired_before(now, half_year);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].domain, "old.com");
    }

    #[test]
    fn active_span_not_counted_as_expired() {
        let mut db = HistoricWhoisDb::new();
        db.add(rec("takedown.com", 0, 10, SpanEnd::TakenDown));
        assert!(db.expired_before(u64::MAX, 0).is_empty());
    }

    #[test]
    fn cross_check_requires_both_empty() {
        let mut primary = HistoricWhoisDb::new();
        primary.add(rec("p.com", 1, 2, SpanEnd::Expired));
        let mut secondary = HistoricWhoisDb::new();
        secondary.add(rec("s.com", 1, 2, SpanEnd::Expired));
        let x = CrossCheckedWhois::new(primary, secondary);
        assert!(!x.never_registered("p.com"));
        assert!(!x.never_registered("s.com"));
        assert!(x.never_registered("clean.com"));
    }
}
