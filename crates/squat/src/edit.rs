//! Edit distances used by squat classification.
//!
//! The classifier only ever asks "is the distance ≤ 1?", so the workhorse is
//! [`damerau_levenshtein_bounded`]: a banded OSA computation that early-exits
//! on length mismatch, clamps cells above the bound, and reuses caller-owned
//! row buffers ([`EditScratch`]) so the per-name hot loop of the fused origin
//! pipeline performs no allocation. The classic unbounded
//! [`damerau_levenshtein`] is a thin wrapper with the bound set to the longer
//! input, kept for callers that need the exact distance.

/// Reusable row buffers for [`damerau_levenshtein_bounded`]. One instance
/// per worker thread amortizes every allocation across a whole scan.
#[derive(Debug, Default, Clone)]
pub struct EditScratch {
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    prev2: Vec<usize>,
    prev: Vec<usize>,
    cur: Vec<usize>,
}

/// Damerau–Levenshtein distance (optimal string alignment variant) if it is
/// at most `max_dist`, else `None`.
///
/// Exits before touching the matrix when `|len(a) - len(b)| > max_dist`,
/// computes only the diagonal band of width `2 * max_dist + 1` (cells
/// outside the band cannot be ≤ `max_dist`), and abandons the scan as soon
/// as an entire row exceeds the bound. Equivalent to comparing
/// [`damerau_levenshtein`] against `max_dist` — property-tested in
/// `tests/prop_squat.rs`.
pub fn damerau_levenshtein_bounded(
    a: &str,
    b: &str,
    max_dist: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    scratch.a_chars.clear();
    scratch.a_chars.extend(a.chars());
    scratch.b_chars.clear();
    scratch.b_chars.extend(b.chars());
    let (n, m) = (scratch.a_chars.len(), scratch.b_chars.len());
    if n.abs_diff(m) > max_dist {
        return None;
    }
    if n == 0 {
        return Some(m); // m ≤ max_dist by the length check above
    }
    if m == 0 {
        return Some(n);
    }
    // Everything ≥ `inf` means "already beyond the bound"; cells are clamped
    // there so sentinel arithmetic cannot overflow and the band stays tight.
    let inf = max_dist + 1;
    scratch.prev2.clear();
    scratch.prev2.resize(m + 1, inf);
    scratch.prev.clear();
    scratch.prev.extend(0..=m);
    scratch.cur.clear();
    scratch.cur.resize(m + 1, inf);
    let EditScratch {
        a_chars,
        b_chars,
        prev2,
        prev,
        cur,
    } = scratch;
    for i in 1..=n {
        let lo = i.saturating_sub(max_dist).max(1);
        let hi = (i + max_dist).min(m);
        cur[lo - 1] = if lo == 1 { i.min(inf) } else { inf };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let cost = usize::from(a_chars[i - 1] != b_chars[j - 1]);
            let mut v = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1
                && j > 1
                && a_chars[i - 1] == b_chars[j - 2]
                && a_chars[i - 2] == b_chars[j - 1]
            {
                v = v.min(prev2[j - 2] + 1);
            }
            let v = v.min(inf);
            cur[j] = v;
            row_min = row_min.min(v);
        }
        if row_min >= inf {
            return None; // every path through this row already exceeds the bound
        }
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, cur);
    }
    let d = prev[m];
    (d <= max_dist).then_some(d)
}

/// Is the optimal-string-alignment distance between `a` and `b` at most 1?
/// Returns the distance (`Some(0)` / `Some(1)`) or `None`, exactly like
/// `damerau_levenshtein_bounded(a, b, 1, ..)` — property-tested equivalent
/// in `tests/prop_squat.rs`.
///
/// This is the question the typo-squat scan asks for every (label, brand)
/// pair, and at bound 1 the full band is overkill: a distance-≤1 pair is
/// either equal, one substitution, one adjacent transposition, or one
/// indel — all decidable from the longest common prefix and suffix, which
/// the SWAR kernels find eight bytes per step. ASCII-only fast path (byte
/// positions are char positions); anything else falls back to the banded
/// matrix.
pub fn within_one_edit(a: &str, b: &str, scratch: &mut EditScratch) -> Option<usize> {
    let (x, y) = (a.as_bytes(), b.as_bytes());
    if !nxd_swar::is_ascii(x) || !nxd_swar::is_ascii(y) {
        return damerau_levenshtein_bounded(a, b, 1, scratch);
    }
    // Orient so x is the longer side.
    let (x, y) = if x.len() >= y.len() { (x, y) } else { (y, x) };
    let (n, m) = (x.len(), y.len());
    if n - m > 1 {
        return None;
    }
    if x == y {
        return Some(0);
    }
    let p = nxd_swar::common_prefix_len(x, y);
    let s = nxd_swar::common_suffix_len(x, y);
    if n == m {
        // One substitution: a single mismatching position, i.e. the prefix
        // and suffix (which cannot overlap across the mismatch) cover all
        // but one byte.
        if p + s >= n - 1 {
            return Some(1);
        }
        // One adjacent transposition: exactly two mismatching positions,
        // adjacent and crosswise equal.
        if p + s == n - 2 && x[p] == y[p + 1] && x[p + 1] == y[p] {
            return Some(1);
        }
        return None;
    }
    // Lengths differ by one: a single indel iff prefix + suffix cover the
    // whole shorter string.
    (p + s >= m).then_some(1)
}

/// Damerau–Levenshtein distance (optimal string alignment variant):
/// insertions, deletions, substitutions, and adjacent transpositions.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let mut scratch = EditScratch::default();
    // With the bound set to the longer input the band covers the whole
    // matrix and the result always exists (d ≤ max(n, m)).
    let bound = a.chars().count().max(b.chars().count());
    damerau_levenshtein_bounded(a, b, bound, &mut scratch).unwrap_or(bound)
}

/// Hamming distance in bits between two equal-length ASCII strings; `None`
/// if lengths differ.
pub fn bit_hamming(a: &str, b: &str) -> Option<u32> {
    if a.len() != b.len() {
        return None;
    }
    Some(
        a.bytes()
            .zip(b.bytes())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert_eq!(damerau_levenshtein("example", "example"), 0);
    }

    #[test]
    fn single_edits() {
        assert_eq!(damerau_levenshtein("example", "exmple"), 1); // deletion
        assert_eq!(damerau_levenshtein("example", "exxample"), 1); // insertion
        assert_eq!(damerau_levenshtein("example", "ezample"), 1); // substitution
        assert_eq!(damerau_levenshtein("example", "examlpe"), 1); // transposition
    }

    #[test]
    fn empty_cases() {
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", ""), 0);
    }

    #[test]
    fn multi_edit() {
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn transposition_counts_once() {
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("google", "goolge"), 1);
    }

    #[test]
    fn bounded_agrees_with_exact() {
        let mut scratch = EditScratch::default();
        for (a, b) in [
            ("example", "exmple"),
            ("kitten", "sitting"),
            ("google", "goolge"),
            ("", "abc"),
            ("paypal", "paypal"),
            ("short", "muchlongerstring"),
        ] {
            let exact = damerau_levenshtein(a, b);
            for max_dist in 0..6 {
                let got = damerau_levenshtein_bounded(a, b, max_dist, &mut scratch);
                let want = (exact <= max_dist).then_some(exact);
                assert_eq!(got, want, "{a:?} vs {b:?} bound {max_dist}");
            }
        }
    }

    #[test]
    fn bounded_length_early_exit() {
        let mut scratch = EditScratch::default();
        assert_eq!(
            damerau_levenshtein_bounded("ab", "abcdef", 1, &mut scratch),
            None
        );
        // Scratch is reusable across calls of different sizes.
        assert_eq!(
            damerau_levenshtein_bounded("abc", "abd", 1, &mut scratch),
            Some(1)
        );
    }

    #[test]
    fn bounded_handles_multibyte() {
        let mut scratch = EditScratch::default();
        // One char substitution even though the byte lengths differ by 1.
        assert_eq!(
            damerau_levenshtein_bounded("caf\u{e9}", "cafe", 1, &mut scratch),
            Some(1)
        );
    }

    #[test]
    fn bit_hamming_basics() {
        assert_eq!(bit_hamming("a", "a"), Some(0));
        // 'a' = 0x61, 'c' = 0x63: one bit differs.
        assert_eq!(bit_hamming("a", "c"), Some(1));
        assert_eq!(bit_hamming("ab", "a"), None);
    }
}
