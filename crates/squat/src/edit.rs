//! Edit distances used by squat classification.

/// Damerau–Levenshtein distance (optimal string alignment variant):
/// insertions, deletions, substitutions, and adjacent transpositions.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows are enough for OSA.
    let mut prev2 = vec![0usize; m + 1];
    let mut prev = (0..=m).collect::<Vec<_>>();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                cur[j] = cur[j].min(prev2[j - 2] + 1);
            }
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Hamming distance in bits between two equal-length ASCII strings; `None`
/// if lengths differ.
pub fn bit_hamming(a: &str, b: &str) -> Option<u32> {
    if a.len() != b.len() {
        return None;
    }
    Some(
        a.bytes()
            .zip(b.bytes())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert_eq!(damerau_levenshtein("example", "example"), 0);
    }

    #[test]
    fn single_edits() {
        assert_eq!(damerau_levenshtein("example", "exmple"), 1); // deletion
        assert_eq!(damerau_levenshtein("example", "exxample"), 1); // insertion
        assert_eq!(damerau_levenshtein("example", "ezample"), 1); // substitution
        assert_eq!(damerau_levenshtein("example", "examlpe"), 1); // transposition
    }

    #[test]
    fn empty_cases() {
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", ""), 0);
    }

    #[test]
    fn multi_edit() {
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn transposition_counts_once() {
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("google", "goolge"), 1);
    }

    #[test]
    fn bit_hamming_basics() {
        assert_eq!(bit_hamming("a", "a"), Some(0));
        // 'a' = 0x61, 'c' = 0x63: one bit differs.
        assert_eq!(bit_hamming("a", "c"), Some(1));
        assert_eq!(bit_hamming("ab", "a"), None);
    }
}
