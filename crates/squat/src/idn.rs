//! IDN homograph attacks (the paper's homosquatting reference \[12\] is the
//! Wikipedia IDN-homograph article): internationalized domain names whose
//! Unicode form is visually identical to a Latin target — `аpple.com` with
//! a Cyrillic а — registered through their RFC 3492 punycode form
//! (`xn--pple-43d.com`).
//!
//! This module implements punycode encode/decode with the standard IDNA
//! parameters, confusable-character tables, generation of IDN homoglyph
//! squats, and the reverse classification (ASCII-projecting an `xn--` name
//! back onto a target).

/// RFC 3492 parameters.
const BASE: u32 = 36;
const TMIN: u32 = 1;
const TMAX: u32 = 26;
const SKEW: u32 = 38;
const DAMP: u32 = 700;
const INITIAL_BIAS: u32 = 72;
const INITIAL_N: u32 = 128;

fn adapt(mut delta: u32, numpoints: u32, first_time: bool) -> u32 {
    delta /= if first_time { DAMP } else { 2 };
    delta += delta / numpoints;
    let mut k = 0;
    while delta > ((BASE - TMIN) * TMAX) / 2 {
        delta /= BASE - TMIN;
        k += BASE;
    }
    k + (((BASE - TMIN + 1) * delta) / (delta + SKEW))
}

fn encode_digit(d: u32) -> char {
    if d < 26 {
        (b'a' + d as u8) as char
    } else {
        (b'0' + (d - 26) as u8) as char
    }
}

fn decode_digit(c: char) -> Option<u32> {
    match c {
        'a'..='z' => Some(c as u32 - 'a' as u32),
        'A'..='Z' => Some(c as u32 - 'A' as u32),
        '0'..='9' => Some(c as u32 - '0' as u32 + 26),
        _ => None,
    }
}

/// Punycode-encodes one label (RFC 3492 §6.3). Returns `None` on overflow.
pub fn punycode_encode(input: &str) -> Option<String> {
    let chars: Vec<char> = input.chars().collect();
    let mut output: String = chars.iter().filter(|c| c.is_ascii()).collect();
    let basic_len = output.chars().count() as u32;
    let mut handled = basic_len;
    // RFC 3492 §6.3: when any basic code points were copied, a delimiter
    // follows — even if no extended code points exist ("abc" → "abc-").
    if basic_len > 0 {
        output.push('-');
    }
    let mut n = INITIAL_N;
    let mut delta: u32 = 0;
    let mut bias = INITIAL_BIAS;
    let total = chars.len() as u32;
    while handled < total {
        let m = chars.iter().map(|&c| c as u32).filter(|&c| c >= n).min()?;
        delta = delta.checked_add((m - n).checked_mul(handled + 1)?)?;
        n = m;
        for &c in &chars {
            let c = c as u32;
            if c < n {
                delta = delta.checked_add(1)?;
            }
            if c == n {
                let mut q = delta;
                let mut k = BASE;
                loop {
                    let t = if k <= bias {
                        TMIN
                    } else if k >= bias + TMAX {
                        TMAX
                    } else {
                        k - bias
                    };
                    if q < t {
                        break;
                    }
                    output.push(encode_digit(t + (q - t) % (BASE - t)));
                    q = (q - t) / (BASE - t);
                    k += BASE;
                }
                output.push(encode_digit(q));
                bias = adapt(delta, handled + 1, handled == basic_len);
                delta = 0;
                handled += 1;
            }
        }
        delta = delta.checked_add(1)?;
        n = n.checked_add(1)?;
    }
    Some(output)
}

/// Punycode-decodes one label (RFC 3492 §6.2). Returns `None` on malformed
/// input.
pub fn punycode_decode(input: &str) -> Option<String> {
    let (basic, extended) = match input.rfind('-') {
        Some(pos) => (&input[..pos], &input[pos + 1..]),
        None => ("", input),
    };
    if !basic.is_ascii() {
        return None;
    }
    let mut output: Vec<char> = basic.chars().collect();
    let mut n = INITIAL_N;
    let mut i: u32 = 0;
    let mut bias = INITIAL_BIAS;
    let mut iter = extended.chars().peekable();
    while iter.peek().is_some() {
        let old_i = i;
        let mut w: u32 = 1;
        let mut k = BASE;
        loop {
            let c = iter.next()?;
            let digit = decode_digit(c)?;
            i = i.checked_add(digit.checked_mul(w)?)?;
            let t = if k <= bias {
                TMIN
            } else if k >= bias + TMAX {
                TMAX
            } else {
                k - bias
            };
            if digit < t {
                break;
            }
            w = w.checked_mul(BASE - t)?;
            k += BASE;
        }
        let out_len = output.len() as u32 + 1;
        bias = adapt(i - old_i, out_len, old_i == 0);
        n = n.checked_add(i / out_len)?;
        i %= out_len;
        let ch = char::from_u32(n)?;
        output.insert(i as usize, ch);
        i += 1;
    }
    Some(output.into_iter().collect())
}

/// Converts a (possibly Unicode) domain to its IDNA ASCII form: non-ASCII
/// labels become `xn--<punycode>`.
pub fn to_ascii(domain: &str) -> Option<String> {
    let labels: Vec<String> = domain
        .split('.')
        .map(|label| {
            if label.is_ascii() {
                Some(label.to_string())
            } else {
                punycode_encode(label).map(|p| format!("xn--{p}"))
            }
        })
        .collect::<Option<_>>()?;
    Some(labels.join("."))
}

/// Converts an IDNA ASCII domain back to Unicode (`xn--` labels decoded).
pub fn to_unicode(domain: &str) -> Option<String> {
    let labels: Vec<String> = domain
        .split('.')
        .map(|label| {
            if let Some(stripped) = label.strip_prefix("xn--") {
                punycode_decode(stripped)
            } else {
                Some(label.to_string())
            }
        })
        .collect::<Option<_>>()?;
    Some(labels.join("."))
}

/// Unicode characters visually confusable with Latin letters (a practical
/// subset of the Unicode confusables table: Cyrillic and Greek lookalikes).
pub const UNICODE_CONFUSABLES: &[(char, char)] = &[
    ('a', 'а'), // U+0430 CYRILLIC SMALL A
    ('c', 'с'), // U+0441 CYRILLIC SMALL ES
    ('e', 'е'), // U+0435 CYRILLIC SMALL IE
    ('i', 'і'), // U+0456 CYRILLIC SMALL BYELORUSSIAN-UKRAINIAN I
    ('j', 'ј'), // U+0458 CYRILLIC SMALL JE
    ('o', 'о'), // U+043E CYRILLIC SMALL O
    ('p', 'р'), // U+0440 CYRILLIC SMALL ER
    ('s', 'ѕ'), // U+0455 CYRILLIC SMALL DZE
    ('x', 'х'), // U+0445 CYRILLIC SMALL HA
    ('y', 'у'), // U+0443 CYRILLIC SMALL U
];

/// Generates IDN homograph squats of `brand.tld`: each single confusable
/// substitution, returned as `(unicode_form, idna_ascii_form)`.
pub fn idn_homosquats(target: &str) -> Vec<(String, String)> {
    let Some((brand, tld)) = target.split_once('.') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let chars: Vec<char> = brand.chars().collect();
    for i in 0..chars.len() {
        for &(latin, confusable) in UNICODE_CONFUSABLES {
            if chars[i] == latin {
                let mut c = chars.clone();
                c[i] = confusable;
                let unicode_label: String = c.into_iter().collect();
                let unicode_domain = format!("{unicode_label}.{tld}");
                if let Some(ascii) = to_ascii(&unicode_domain) {
                    out.push((unicode_domain, ascii));
                }
            }
        }
    }
    out
}

/// ASCII-projects an IDNA domain: decodes `xn--` labels and folds every
/// known confusable back to its Latin form. A registered `xn--pple-43d.com`
/// projects to `apple.com`, exposing the spoof.
pub fn ascii_projection(domain: &str) -> Option<String> {
    let unicode = to_unicode(domain)?;
    Some(
        unicode
            .chars()
            .map(|c| {
                UNICODE_CONFUSABLES
                    .iter()
                    .find(|&&(_, confusable)| confusable == c)
                    .map(|&(latin, _)| latin)
                    .unwrap_or(c)
            })
            .collect(),
    )
}

/// Checks whether an IDNA domain is an IDN homograph of any target; returns
/// the matched target.
pub fn classify_idn<'a, I>(domain: &str, targets: I) -> Option<String>
where
    I: IntoIterator<Item = &'a str>,
{
    if !domain.split('.').any(|l| l.starts_with("xn--")) {
        return None;
    }
    let projected = ascii_projection(domain)?;
    targets
        .into_iter()
        .find(|t| *t == projected)
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_style_vectors() {
        // Well-known IDNA pairs.
        assert_eq!(punycode_encode("bücher").as_deref(), Some("bcher-kva"));
        assert_eq!(punycode_encode("münchen").as_deref(), Some("mnchen-3ya"));
        assert_eq!(punycode_decode("bcher-kva").as_deref(), Some("bücher"));
        assert_eq!(punycode_decode("mnchen-3ya").as_deref(), Some("münchen"));
    }

    #[test]
    fn pure_ascii_label_roundtrip() {
        // RFC 3492: all-basic input encodes as itself plus the delimiter.
        assert_eq!(punycode_encode("plain").as_deref(), Some("plain-"));
        assert_eq!(punycode_decode("plain-").as_deref(), Some("plain"));
    }

    #[test]
    fn encode_decode_roundtrip_confusables() {
        for &(_, confusable) in UNICODE_CONFUSABLES {
            let label = format!("pay{confusable}pal");
            let encoded = punycode_encode(&label).unwrap();
            assert!(encoded.is_ascii());
            assert_eq!(punycode_decode(&encoded).unwrap(), label);
        }
    }

    #[test]
    fn to_ascii_and_back() {
        let unicode = "аpple.com"; // Cyrillic а
        let ascii = to_ascii(unicode).unwrap();
        assert!(ascii.starts_with("xn--"), "{ascii}");
        assert!(ascii.is_ascii());
        assert_eq!(to_unicode(&ascii).unwrap(), unicode);
    }

    #[test]
    fn idn_homosquats_of_apple() {
        let squats = idn_homosquats("apple.com");
        // 'a' twice? apple has one 'a', one 'e', one 'p' (twice p), no more.
        // Confusables available: a, e, p (×2) → 4 squats.
        assert_eq!(squats.len(), 4, "{squats:?}");
        for (unicode, ascii) in &squats {
            assert!(!unicode.is_ascii());
            assert!(ascii.is_ascii());
            assert!(ascii.starts_with("xn--"), "{ascii}");
            // Every squat projects back onto the target.
            assert_eq!(ascii_projection(ascii).as_deref(), Some("apple.com"));
        }
    }

    #[test]
    fn classify_idn_detects_spoof() {
        let squats = idn_homosquats("paypal.com");
        assert!(!squats.is_empty());
        for (_, ascii) in &squats {
            assert_eq!(
                classify_idn(ascii, ["paypal.com", "google.com"]).as_deref(),
                Some("paypal.com"),
                "{ascii}"
            );
        }
    }

    #[test]
    fn plain_ascii_domains_not_classified() {
        assert_eq!(classify_idn("paypal.com", ["paypal.com"]), None);
        assert_eq!(classify_idn("xn--pple-43d.com", ["google.com"]), None);
    }

    #[test]
    fn malformed_punycode_rejected() {
        assert_eq!(punycode_decode("!!!"), None);
        assert_eq!(to_unicode("xn--!!!.com"), None);
        // Overflow-inducing input must return None, not panic.
        assert_eq!(punycode_decode("99999999999999"), None);
    }

    #[test]
    fn brandless_input_yields_nothing() {
        assert!(idn_homosquats("com").is_empty());
        assert!(idn_homosquats("").is_empty());
    }
}
