//! The squat classifier — the stand-in for the commercial identification
//! algorithm behind Fig. 7 (45,175 typo / 38,900 combo / 6,090 dot /
//! 313 bit / 126 homo squats among 91 M expired NXDomains).
//!
//! Classification is checked in a fixed precedence order chosen so that each
//! generator's output maps back to its own category (see the round-trip
//! tests): bit before homo before typo (a bit-flip and some glyph swaps are
//! also edit-distance-1), and dot/combo last because their shapes are
//! unambiguous at larger edit distances.

use crate::edit::{bit_hamming, damerau_levenshtein};
use crate::tables::{CHAR_GLYPHS, COMBO_KEYWORDS, DIGRAPH_GLYPHS, POPULAR_TARGETS};

/// The five squat categories of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SquatKind {
    Typo,
    Combo,
    Dot,
    Bit,
    Homo,
}

impl SquatKind {
    pub const ALL: [SquatKind; 5] = [
        SquatKind::Typo,
        SquatKind::Combo,
        SquatKind::Dot,
        SquatKind::Bit,
        SquatKind::Homo,
    ];

    pub fn label(self) -> &'static str {
        match self {
            SquatKind::Typo => "typosquatting",
            SquatKind::Combo => "combosquatting",
            SquatKind::Dot => "dotsquatting",
            SquatKind::Bit => "bitsquatting",
            SquatKind::Homo => "homosquatting",
        }
    }
}

/// A positive classification: which kind, against which target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquatMatch {
    pub kind: SquatKind,
    pub target: String,
}

/// Classifier over a set of popular target domains.
#[derive(Debug, Clone)]
pub struct SquatClassifier {
    targets: Vec<(String, String)>, // (brand, tld)
}

impl Default for SquatClassifier {
    fn default() -> Self {
        Self::new(POPULAR_TARGETS.iter().copied())
    }
}

impl SquatClassifier {
    /// Builds a classifier for the given targets (each `brand.tld`).
    pub fn new<'a, I: IntoIterator<Item = &'a str>>(targets: I) -> Self {
        let targets = targets
            .into_iter()
            .filter_map(|t| {
                let mut it = t.split('.');
                match (it.next(), it.next(), it.next()) {
                    (Some(b), Some(tld), None) if !b.is_empty() && !tld.is_empty() => {
                        Some((b.to_string(), tld.to_string()))
                    }
                    _ => None,
                }
            })
            .collect();
        SquatClassifier { targets }
    }

    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Classifies a registrable domain. Returns `None` for exact targets and
    /// non-squats.
    pub fn classify(&self, domain: &str) -> Option<SquatMatch> {
        let (label, tld) = {
            let mut it = domain.split('.');
            let l = it.next()?;
            let t = it.next()?;
            if it.next().is_some() {
                return None;
            }
            (l, t)
        };
        // Exact target → not a squat.
        if self.targets.iter().any(|(b, t)| b == label && t == tld) {
            return None;
        }

        // Precedence: bit, homo, typo, dot, combo.
        for check in [
            Self::check_bit,
            Self::check_homo,
            Self::check_typo,
            Self::check_dot,
            Self::check_combo,
        ] {
            if let Some(m) = check(self, label, tld) {
                return Some(m);
            }
        }
        None
    }

    fn check_bit(&self, label: &str, tld: &str) -> Option<SquatMatch> {
        for (brand, btld) in &self.targets {
            if btld == tld && bit_hamming(label, brand) == Some(1) {
                return Some(SquatMatch {
                    kind: SquatKind::Bit,
                    target: format!("{brand}.{btld}"),
                });
            }
        }
        None
    }

    fn check_homo(&self, label: &str, tld: &str) -> Option<SquatMatch> {
        // De-confuse: map the label back through every glyph table entry and
        // see if any single rewrite reconstructs a target brand.
        for (brand, btld) in &self.targets {
            if btld != tld {
                continue;
            }
            // Single-char glyphs.
            let chars: Vec<char> = label.chars().collect();
            for i in 0..chars.len() {
                for &(a, b) in CHAR_GLYPHS {
                    for (from, to) in [(a, b), (b, a)] {
                        if chars[i] == from {
                            let mut c = chars.clone();
                            c[i] = to;
                            if c.iter().collect::<String>() == *brand {
                                return Some(SquatMatch {
                                    kind: SquatKind::Homo,
                                    target: format!("{brand}.{btld}"),
                                });
                            }
                        }
                    }
                }
            }
            // Digraph glyphs, both directions.
            for &(from, to) in DIGRAPH_GLYPHS {
                for (f, t) in [(from, to), (to, from)] {
                    let mut start = 0;
                    while let Some(pos) = label[start..].find(f) {
                        let at = start + pos;
                        let rewritten = format!("{}{}{}", &label[..at], t, &label[at + f.len()..]);
                        if rewritten == *brand {
                            return Some(SquatMatch {
                                kind: SquatKind::Homo,
                                target: format!("{brand}.{btld}"),
                            });
                        }
                        start = at + 1;
                    }
                }
            }
        }
        None
    }

    fn check_typo(&self, label: &str, tld: &str) -> Option<SquatMatch> {
        for (brand, btld) in &self.targets {
            // Same TLD, one edit in the label (omission/duplication/
            // substitution/insertion/transposition)...
            if btld == tld && damerau_levenshtein(label, brand) == 1 {
                return Some(SquatMatch {
                    kind: SquatKind::Typo,
                    target: format!("{brand}.{btld}"),
                });
            }
            // ...or same label with a one-edit TLD (`google.co`).
            if label == brand && damerau_levenshtein(tld, btld) == 1 {
                return Some(SquatMatch {
                    kind: SquatKind::Typo,
                    target: format!("{brand}.{btld}"),
                });
            }
        }
        None
    }

    fn check_dot(&self, label: &str, tld: &str) -> Option<SquatMatch> {
        for (brand, btld) in &self.targets {
            if btld != tld {
                continue;
            }
            // Fused or hyphenated www prefix.
            if label == format!("www{brand}") || label == format!("www-{brand}") {
                return Some(SquatMatch {
                    kind: SquatKind::Dot,
                    target: format!("{brand}.{btld}"),
                });
            }
            // Dot-shift: the label is a proper suffix of the brand (≥ 3
            // chars, shorter than the brand).
            if label.len() >= 3 && label.len() < brand.len() && brand.ends_with(label) {
                return Some(SquatMatch {
                    kind: SquatKind::Dot,
                    target: format!("{brand}.{btld}"),
                });
            }
        }
        None
    }

    fn check_combo(&self, label: &str, tld: &str) -> Option<SquatMatch> {
        for (brand, btld) in &self.targets {
            if btld != tld || label.len() <= brand.len() {
                continue;
            }
            // Try removing *each* occurrence of the brand (a brand can also
            // appear inside a keyword: brand "ecur" in "secure-ecur"); the
            // remainder minus separators must be a known combo keyword.
            for (at, _) in label.match_indices(brand.as_str()) {
                let rest = format!("{}{}", &label[..at], &label[at + brand.len()..]);
                let rest = rest.trim_matches('-');
                if !rest.is_empty() && COMBO_KEYWORDS.contains(&rest) {
                    return Some(SquatMatch {
                        kind: SquatKind::Combo,
                        target: format!("{brand}.{btld}"),
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn classifier() -> SquatClassifier {
        SquatClassifier::default()
    }

    #[test]
    fn exact_target_is_not_a_squat() {
        assert_eq!(classifier().classify("google.com"), None);
    }

    #[test]
    fn unrelated_domain_is_not_a_squat() {
        let c = classifier();
        assert_eq!(c.classify("completely-unrelated-business.com"), None);
        assert_eq!(c.classify("kxqzjwv.com"), None);
    }

    #[test]
    fn paper_example_twitter_sup0rt() {
        // The honeypot set contains twitter-sup0rt.com; with the homoglyph
        // 0→o it reads "twitter-support", a combosquat of twitter.com. Our
        // classifier sees the combo pattern only after glyph repair, which it
        // does not chain — but the pure combo twitter-support.com must hit.
        let c = classifier();
        let m = c.classify("twitter-support.com").unwrap();
        assert_eq!(m.kind, SquatKind::Combo);
        assert_eq!(m.target, "twitter.com");
    }

    #[test]
    fn tld_typo_detected() {
        let c = classifier();
        let m = c.classify("google.co").unwrap();
        assert_eq!(m.kind, SquatKind::Typo);
    }

    #[test]
    fn generated_typos_classify_as_typo() {
        let c = classifier();
        for s in generate::typosquats("google.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            // A few QWERTY substitutions are also single bit flips or
            // homoglyph pairs (o→0 is both a neighbour key and a glyph);
            // precedence sends those to Bit/Homo.
            assert!(
                matches!(m.kind, SquatKind::Typo | SquatKind::Bit | SquatKind::Homo),
                "{s} classified {:?}",
                m.kind
            );
        }
    }

    #[test]
    fn generated_combos_classify_as_combo() {
        let c = classifier();
        for s in generate::combosquats("paypal.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            assert_eq!(m.kind, SquatKind::Combo, "{s}");
            assert_eq!(m.target, "paypal.com");
        }
    }

    #[test]
    fn generated_dots_classify_as_dot() {
        let c = classifier();
        for s in generate::dotsquats("facebook.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            // Dropping only the first character ("acebook.com") is equally a
            // one-edit typo, which has precedence.
            assert!(
                m.kind == SquatKind::Dot || m.kind == SquatKind::Typo,
                "{s} classified {:?}",
                m.kind
            );
        }
    }

    #[test]
    fn generated_bits_classify_as_bit() {
        let c = classifier();
        for s in generate::bitsquats("apple.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            assert_eq!(m.kind, SquatKind::Bit, "{s}");
        }
    }

    #[test]
    fn generated_homos_classify_as_homo_or_stronger() {
        let c = classifier();
        for s in generate::homosquats("google.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            // Bit takes precedence when a glyph swap happens to be one bit.
            assert!(
                m.kind == SquatKind::Homo || m.kind == SquatKind::Bit,
                "{s} classified {:?}",
                m.kind
            );
        }
    }

    #[test]
    fn digraph_homoglyph_detected() {
        // "modern" with m→rn: "rnodern.com".
        let c = SquatClassifier::new(["modern.com"]);
        let m = c.classify("rnodern.com").unwrap();
        assert_eq!(m.kind, SquatKind::Homo);
    }

    #[test]
    fn subdomains_rejected() {
        assert_eq!(classifier().classify("www.google.com"), None);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(SquatKind::Typo.label(), "typosquatting");
        assert_eq!(SquatKind::ALL.len(), 5);
    }
}
