//! The squat classifier — the stand-in for the commercial identification
//! algorithm behind Fig. 7 (45,175 typo / 38,900 combo / 6,090 dot /
//! 313 bit / 126 homo squats among 91 M expired NXDomains).
//!
//! Classification is checked in a fixed precedence order chosen so that each
//! generator's output maps back to its own category (see the round-trip
//! tests): bit before homo before typo (a bit-flip and some glyph swaps are
//! also edit-distance-1), and dot/combo last because their shapes are
//! unambiguous at larger edit distances.
//!
//! The hot path is [`SquatClassifier::classify_with`]: targets are indexed
//! by TLD with precomputed byte/char lengths so each check screens targets
//! by length and first byte before running an edit distance, the
//! Damerau–Levenshtein call is the banded scratch-reusing
//! [`damerau_levenshtein_bounded`], and every rewrite comparison (homoglyph,
//! dot, combo) works on borrowed slices instead of building candidate
//! strings. A [`SquatScratch`] per worker thread makes a whole-population
//! scan allocation-free except for the rare positive match.

use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

use crate::edit::{bit_hamming, within_one_edit, EditScratch};
use crate::tables::{CHAR_GLYPHS, COMBO_KEYWORDS, DIGRAPH_GLYPHS, POPULAR_TARGETS};

/// The five squat categories of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SquatKind {
    Typo,
    Combo,
    Dot,
    Bit,
    Homo,
}

impl SquatKind {
    pub const ALL: [SquatKind; 5] = [
        SquatKind::Typo,
        SquatKind::Combo,
        SquatKind::Dot,
        SquatKind::Bit,
        SquatKind::Homo,
    ];

    pub fn label(self) -> &'static str {
        match self {
            SquatKind::Typo => "typosquatting",
            SquatKind::Combo => "combosquatting",
            SquatKind::Dot => "dotsquatting",
            SquatKind::Bit => "bitsquatting",
            SquatKind::Homo => "homosquatting",
        }
    }
}

/// A positive classification: which kind, against which target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquatMatch {
    pub kind: SquatKind,
    pub target: String,
}

/// One indexed target: the parsed brand/TLD plus precomputed lengths and
/// the rendered `brand.tld` handed out in matches.
#[derive(Debug, Clone)]
struct Target {
    brand: String,
    tld: String,
    full: String,
    brand_chars: usize,
    tld_chars: usize,
}

/// Reusable per-thread buffers for [`SquatClassifier::classify_with`].
#[derive(Debug, Default, Clone)]
pub struct SquatScratch {
    edit: EditScratch,
    buf: String,
}

/// Classifier over a set of popular target domains.
#[derive(Debug, Clone)]
pub struct SquatClassifier {
    /// All targets in insertion order — the order ties break in.
    targets: Vec<Target>,
    /// Target indices grouped by TLD (insertion order preserved within a
    /// group), for the checks that require the TLDs to match exactly.
    by_tld: HashMap<String, Vec<usize>>,
}

impl Default for SquatClassifier {
    fn default() -> Self {
        Self::new(POPULAR_TARGETS.iter().copied())
    }
}

fn combo_keyword_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| COMBO_KEYWORDS.iter().copied().collect())
}

/// Whether `(x, y)` is a confusable pair in either orientation.
fn char_glyph_pair(x: char, y: char) -> bool {
    CHAR_GLYPHS
        .iter()
        .any(|&(a, b)| (x == a && y == b) || (x == b && y == a))
}

/// Whether rewriting one occurrence of `f` in `label` to `t` yields `brand`,
/// without materializing the rewrite (pure slice comparisons).
fn digraph_rewrite_matches(label: &str, brand: &str, f: &str, t: &str) -> bool {
    if label.len() + t.len() != brand.len() + f.len() {
        return false;
    }
    let (lb, bb, tb) = (label.as_bytes(), brand.as_bytes(), t.as_bytes());
    let mut start = 0;
    while let Some(pos) = label[start..].find(f) {
        let at = start + pos;
        if bb[..at] == lb[..at]
            && bb[at..at + t.len()] == *tb
            && bb[at + t.len()..] == lb[at + f.len()..]
        {
            return true;
        }
        start = at + 1;
    }
    false
}

impl SquatClassifier {
    /// Builds a classifier for the given targets (each `brand.tld`).
    pub fn new<'a, I: IntoIterator<Item = &'a str>>(targets: I) -> Self {
        let targets: Vec<Target> = targets
            .into_iter()
            .filter_map(|t| {
                let mut it = t.split('.');
                match (it.next(), it.next(), it.next()) {
                    (Some(b), Some(tld), None) if !b.is_empty() && !tld.is_empty() => {
                        Some(Target {
                            brand: b.to_string(),
                            tld: tld.to_string(),
                            full: format!("{b}.{tld}"),
                            brand_chars: b.chars().count(),
                            tld_chars: tld.chars().count(),
                        })
                    }
                    _ => None,
                }
            })
            .collect();
        let mut by_tld: HashMap<String, Vec<usize>> = HashMap::new();
        for (idx, t) in targets.iter().enumerate() {
            by_tld.entry(t.tld.clone()).or_default().push(idx);
        }
        SquatClassifier { targets, by_tld }
    }

    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Classifies a registrable domain. Returns `None` for exact targets and
    /// non-squats. Allocation-per-call convenience wrapper over
    /// [`SquatClassifier::classify_with`].
    pub fn classify(&self, domain: &str) -> Option<SquatMatch> {
        self.classify_with(domain, &mut SquatScratch::default())
    }

    /// Classifies a registrable domain, reusing `scratch` across calls —
    /// the hot path of the fused origin pipeline.
    pub fn classify_with(&self, domain: &str, scratch: &mut SquatScratch) -> Option<SquatMatch> {
        let (label, tld) = {
            let mut it = domain.split('.');
            let l = it.next()?;
            let t = it.next()?;
            if it.next().is_some() {
                return None;
            }
            (l, t)
        };
        let same_tld = self.by_tld.get(tld).map(Vec::as_slice).unwrap_or(&[]);
        // Exact target → not a squat.
        if same_tld.iter().any(|&i| self.targets[i].brand == label) {
            return None;
        }
        let label_chars = label.chars().count();
        let tld_chars = tld.chars().count();

        // Precedence: bit, homo, typo, dot, combo.
        if let Some(m) = self.check_bit(label, same_tld) {
            return Some(m);
        }
        if let Some(m) = self.check_homo(label, label_chars, same_tld) {
            return Some(m);
        }
        if let Some(m) = self.check_typo(label, label_chars, tld, tld_chars, scratch) {
            return Some(m);
        }
        if let Some(m) = self.check_dot(label, same_tld) {
            return Some(m);
        }
        self.check_combo(label, same_tld, scratch)
    }

    fn found(&self, kind: SquatKind, idx: usize) -> Option<SquatMatch> {
        Some(SquatMatch {
            kind,
            target: self.targets[idx].full.clone(),
        })
    }

    fn check_bit(&self, label: &str, same_tld: &[usize]) -> Option<SquatMatch> {
        let lb = label.as_bytes();
        for &idx in same_tld {
            let brand = &self.targets[idx].brand;
            // One flipped bit leaves the length intact and the first bytes
            // within one bit of each other — both screens are free.
            if lb.len() == brand.len()
                && !lb.is_empty()
                && (lb[0] ^ brand.as_bytes()[0]).count_ones() <= 1
                && bit_hamming(label, brand) == Some(1)
            {
                return self.found(SquatKind::Bit, idx);
            }
        }
        None
    }

    fn check_homo(
        &self,
        label: &str,
        label_chars: usize,
        same_tld: &[usize],
    ) -> Option<SquatMatch> {
        for &idx in same_tld {
            let target = &self.targets[idx];
            // Single-char glyphs: the label must match the brand everywhere
            // except exactly one position holding a confusable pair.
            if label_chars == target.brand_chars {
                let mut diffs = 0u32;
                let mut pair = None;
                for (lc, bc) in label.chars().zip(target.brand.chars()) {
                    if lc != bc {
                        diffs += 1;
                        if diffs > 1 {
                            break;
                        }
                        pair = Some((lc, bc));
                    }
                }
                if diffs == 1 {
                    let (lc, bc) = pair.expect("one diff recorded");
                    if char_glyph_pair(lc, bc) {
                        return self.found(SquatKind::Homo, idx);
                    }
                }
            }
            // Digraph glyphs, both directions.
            for &(from, to) in DIGRAPH_GLYPHS {
                for (f, t) in [(from, to), (to, from)] {
                    if digraph_rewrite_matches(label, &target.brand, f, t) {
                        return self.found(SquatKind::Homo, idx);
                    }
                }
            }
        }
        None
    }

    fn check_typo(
        &self,
        label: &str,
        label_chars: usize,
        tld: &str,
        tld_chars: usize,
        scratch: &mut SquatScratch,
    ) -> Option<SquatMatch> {
        // Iterates the full target list (not the TLD group): the cross-TLD
        // arm competes with the same-TLD arm of *later* targets, and ties
        // must keep breaking in insertion order.
        for (idx, target) in self.targets.iter().enumerate() {
            // Same TLD, one edit in the label (omission/duplication/
            // substitution/insertion/transposition)...
            if target.tld == tld
                && label_chars.abs_diff(target.brand_chars) <= 1
                && within_one_edit(label, &target.brand, &mut scratch.edit) == Some(1)
            {
                return self.found(SquatKind::Typo, idx);
            }
            // ...or same label with a one-edit TLD (`google.co`).
            if label == target.brand
                && tld_chars.abs_diff(target.tld_chars) <= 1
                && within_one_edit(tld, &target.tld, &mut scratch.edit) == Some(1)
            {
                return self.found(SquatKind::Typo, idx);
            }
        }
        None
    }

    fn check_dot(&self, label: &str, same_tld: &[usize]) -> Option<SquatMatch> {
        for &idx in same_tld {
            let brand = self.targets[idx].brand.as_str();
            // Fused or hyphenated www prefix.
            if (label.len() == brand.len() + 3 && label.starts_with("www") && &label[3..] == brand)
                || (label.len() == brand.len() + 4
                    && label.starts_with("www-")
                    && &label[4..] == brand)
            {
                return self.found(SquatKind::Dot, idx);
            }
            // Dot-shift: the label is a proper suffix of the brand (≥ 3
            // chars, shorter than the brand).
            if label.len() >= 3 && label.len() < brand.len() && brand.ends_with(label) {
                return self.found(SquatKind::Dot, idx);
            }
        }
        None
    }

    fn check_combo(
        &self,
        label: &str,
        same_tld: &[usize],
        scratch: &mut SquatScratch,
    ) -> Option<SquatMatch> {
        let keywords = combo_keyword_set();
        for &idx in same_tld {
            let brand = self.targets[idx].brand.as_str();
            if label.len() <= brand.len() {
                continue;
            }
            // Try removing *each* occurrence of the brand (a brand can also
            // appear inside a keyword: brand "ecur" in "secure-ecur"); the
            // remainder minus separators must be a known combo keyword.
            for (at, _) in label.match_indices(brand) {
                scratch.buf.clear();
                scratch.buf.push_str(&label[..at]);
                scratch.buf.push_str(&label[at + brand.len()..]);
                let rest = scratch.buf.trim_matches('-');
                if !rest.is_empty() && keywords.contains(rest) {
                    return self.found(SquatKind::Combo, idx);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn classifier() -> SquatClassifier {
        SquatClassifier::default()
    }

    #[test]
    fn exact_target_is_not_a_squat() {
        assert_eq!(classifier().classify("google.com"), None);
    }

    #[test]
    fn unrelated_domain_is_not_a_squat() {
        let c = classifier();
        assert_eq!(c.classify("completely-unrelated-business.com"), None);
        assert_eq!(c.classify("kxqzjwv.com"), None);
    }

    #[test]
    fn paper_example_twitter_sup0rt() {
        // The honeypot set contains twitter-sup0rt.com; with the homoglyph
        // 0→o it reads "twitter-support", a combosquat of twitter.com. Our
        // classifier sees the combo pattern only after glyph repair, which it
        // does not chain — but the pure combo twitter-support.com must hit.
        let c = classifier();
        let m = c.classify("twitter-support.com").unwrap();
        assert_eq!(m.kind, SquatKind::Combo);
        assert_eq!(m.target, "twitter.com");
    }

    #[test]
    fn tld_typo_detected() {
        let c = classifier();
        let m = c.classify("google.co").unwrap();
        assert_eq!(m.kind, SquatKind::Typo);
    }

    #[test]
    fn generated_typos_classify_as_typo() {
        let c = classifier();
        for s in generate::typosquats("google.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            // A few QWERTY substitutions are also single bit flips or
            // homoglyph pairs (o→0 is both a neighbour key and a glyph);
            // precedence sends those to Bit/Homo.
            assert!(
                matches!(m.kind, SquatKind::Typo | SquatKind::Bit | SquatKind::Homo),
                "{s} classified {:?}",
                m.kind
            );
        }
    }

    #[test]
    fn generated_combos_classify_as_combo() {
        let c = classifier();
        for s in generate::combosquats("paypal.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            assert_eq!(m.kind, SquatKind::Combo, "{s}");
            assert_eq!(m.target, "paypal.com");
        }
    }

    #[test]
    fn generated_dots_classify_as_dot() {
        let c = classifier();
        for s in generate::dotsquats("facebook.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            // Dropping only the first character ("acebook.com") is equally a
            // one-edit typo, which has precedence.
            assert!(
                m.kind == SquatKind::Dot || m.kind == SquatKind::Typo,
                "{s} classified {:?}",
                m.kind
            );
        }
    }

    #[test]
    fn generated_bits_classify_as_bit() {
        let c = classifier();
        for s in generate::bitsquats("apple.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            assert_eq!(m.kind, SquatKind::Bit, "{s}");
        }
    }

    #[test]
    fn generated_homos_classify_as_homo_or_stronger() {
        let c = classifier();
        for s in generate::homosquats("google.com") {
            let m = c.classify(&s).unwrap_or_else(|| panic!("unclassified {s}"));
            // Bit takes precedence when a glyph swap happens to be one bit.
            assert!(
                m.kind == SquatKind::Homo || m.kind == SquatKind::Bit,
                "{s} classified {:?}",
                m.kind
            );
        }
    }

    #[test]
    fn digraph_homoglyph_detected() {
        // "modern" with m→rn: "rnodern.com".
        let c = SquatClassifier::new(["modern.com"]);
        let m = c.classify("rnodern.com").unwrap();
        assert_eq!(m.kind, SquatKind::Homo);
    }

    #[test]
    fn subdomains_rejected() {
        assert_eq!(classifier().classify("www.google.com"), None);
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let c = classifier();
        let mut scratch = SquatScratch::default();
        for domain in [
            "gogle.com",
            "paypal-login.com",
            "wwwfacebook.com",
            "rnail.ru",
            "appl4.com",
            "unrelated.net",
            "google.co",
            "twitter-support.com",
        ] {
            assert_eq!(
                c.classify_with(domain, &mut scratch),
                c.classify(domain),
                "{domain}"
            );
        }
    }

    #[test]
    fn kind_labels() {
        assert_eq!(SquatKind::Typo.label(), "typosquatting");
        assert_eq!(SquatKind::ALL.len(), 5);
    }
}
