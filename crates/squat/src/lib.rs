//! # nxd-squat
//!
//! Domain-squatting generation and classification for the origin analysis of
//! §5.2 and Fig. 7: typosquatting, combosquatting, dotsquatting,
//! bitsquatting, and homosquatting, implemented from the literature the
//! paper cites (Agten NDSS'15, Kintis CCS'17, Wang SRUTI'06, Nikiforakis
//! WWW'13).
//!
//! ```
//! use nxd_squat::{SquatClassifier, SquatKind, generate};
//!
//! let classifier = SquatClassifier::default();
//! let m = classifier.classify("gogle.com").unwrap();
//! assert_eq!(m.kind, SquatKind::Typo);
//! assert_eq!(m.target, "google.com");
//!
//! // Generators enumerate what an attacker would register:
//! assert!(generate::combosquats("paypal.com").contains(&"paypal-login.com".to_string()));
//! ```

pub mod classify;
pub mod edit;
pub mod generate;
pub mod idn;
pub mod tables;

pub use classify::{SquatClassifier, SquatKind, SquatMatch, SquatScratch};
pub use edit::{
    bit_hamming, damerau_levenshtein, damerau_levenshtein_bounded, within_one_edit, EditScratch,
};
pub use idn::{
    ascii_projection, classify_idn, idn_homosquats, punycode_decode, punycode_encode, to_ascii,
    to_unicode,
};
