//! Shared lookup tables: QWERTY adjacency, homoglyph confusables, combo
//! keywords, and the popular-target list squatters imitate.

/// QWERTY neighbours for fat-finger models (lowercase letters and digits).
pub fn qwerty_neighbors(c: char) -> &'static [char] {
    match c {
        'q' => &['w', 'a', '1', '2'],
        'w' => &['q', 'e', 's', 'a', '2', '3'],
        'e' => &['w', 'r', 'd', 's', '3', '4'],
        'r' => &['e', 't', 'f', 'd', '4', '5'],
        't' => &['r', 'y', 'g', 'f', '5', '6'],
        'y' => &['t', 'u', 'h', 'g', '6', '7'],
        'u' => &['y', 'i', 'j', 'h', '7', '8'],
        'i' => &['u', 'o', 'k', 'j', '8', '9'],
        'o' => &['i', 'p', 'l', 'k', '9', '0'],
        'p' => &['o', 'l', '0'],
        'a' => &['q', 'w', 's', 'z'],
        's' => &['a', 'd', 'w', 'e', 'z', 'x'],
        'd' => &['s', 'f', 'e', 'r', 'x', 'c'],
        'f' => &['d', 'g', 'r', 't', 'c', 'v'],
        'g' => &['f', 'h', 't', 'y', 'v', 'b'],
        'h' => &['g', 'j', 'y', 'u', 'b', 'n'],
        'j' => &['h', 'k', 'u', 'i', 'n', 'm'],
        'k' => &['j', 'l', 'i', 'o', 'm'],
        'l' => &['k', 'o', 'p'],
        'z' => &['a', 's', 'x'],
        'x' => &['z', 's', 'd', 'c'],
        'c' => &['x', 'd', 'f', 'v'],
        'v' => &['c', 'f', 'g', 'b'],
        'b' => &['v', 'g', 'h', 'n'],
        'n' => &['b', 'h', 'j', 'm'],
        'm' => &['n', 'j', 'k'],
        '0' => &['9', 'o', 'p'],
        '1' => &['2', 'q'],
        '2' => &['1', '3', 'q', 'w'],
        '3' => &['2', '4', 'w', 'e'],
        '4' => &['3', '5', 'e', 'r'],
        '5' => &['4', '6', 'r', 't'],
        '6' => &['5', '7', 't', 'y'],
        '7' => &['6', '8', 'y', 'u'],
        '8' => &['7', '9', 'u', 'i'],
        '9' => &['8', '0', 'i', 'o'],
        _ => &[],
    }
}

/// Single-character visual confusables representable in LDH hostnames.
pub const CHAR_GLYPHS: &[(char, char)] = &[
    ('0', 'o'),
    ('1', 'l'),
    ('1', 'i'),
    ('5', 's'),
    ('g', 'q'),
    ('u', 'v'),
];

/// Multi-character visual confusables (digraph → look-alike).
pub const DIGRAPH_GLYPHS: &[(&str, &str)] = &[("rn", "m"), ("vv", "w"), ("cl", "d"), ("nn", "m")];

/// Keywords combosquatters append/prepend to brands (Kintis et al., CCS'17).
pub const COMBO_KEYWORDS: &[&str] = &[
    "login",
    "secure",
    "security",
    "support",
    "help",
    "online",
    "account",
    "accounts",
    "verify",
    "verification",
    "update",
    "service",
    "services",
    "pay",
    "payment",
    "billing",
    "mail",
    "webmail",
    "app",
    "apps",
    "shop",
    "store",
    "official",
    "portal",
    "my",
    "web",
    "net",
    "info",
    "download",
    "free",
    "bonus",
    "promo",
    "signin",
    "auth",
    "wallet",
    "bank",
];

/// Popular domains squatters target (brand, tld) — stand-in for a top-site
/// list. `twitter.com` is among them because the honeypot set contains the
/// real squat `twitter-sup0rt.com`.
pub const POPULAR_TARGETS: &[&str] = &[
    "google.com",
    "youtube.com",
    "facebook.com",
    "twitter.com",
    "instagram.com",
    "wikipedia.org",
    "yahoo.com",
    "amazon.com",
    "reddit.com",
    "netflix.com",
    "microsoft.com",
    "linkedin.com",
    "twitch.tv",
    "ebay.com",
    "apple.com",
    "spotify.com",
    "adobe.com",
    "dropbox.com",
    "github.com",
    "paypal.com",
    "walmart.com",
    "chase.com",
    "wellsfargo.com",
    "coinbase.com",
    "binance.com",
    "steam.com",
    "roblox.com",
    "whatsapp.com",
    "telegram.org",
    "tiktok.com",
    "baidu.com",
    "yandex.ru",
    "vk.com",
    "mail.ru",
    "alibaba.com",
    "taobao.com",
    "qq.com",
    "akamai.com",
    "cloudflare.com",
    "office.com",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_symmetric() {
        for c in "abcdefghijklmnopqrstuvwxyz0123456789".chars() {
            for &n in qwerty_neighbors(c) {
                assert!(
                    qwerty_neighbors(n).contains(&c),
                    "{c} -> {n} but not {n} -> {c}"
                );
            }
        }
    }

    #[test]
    fn glyph_tables_are_ldh() {
        for &(a, b) in CHAR_GLYPHS {
            assert!(a.is_ascii_alphanumeric() && b.is_ascii_alphanumeric());
        }
        for &(from, to) in DIGRAPH_GLYPHS {
            assert!(from.chars().all(|c| c.is_ascii_alphanumeric()));
            assert!(to.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn targets_parse_as_registrable() {
        for t in POPULAR_TARGETS {
            let name: nxd_dns_wire::Name = t.parse().unwrap();
            assert_eq!(name.label_count(), 2, "{t}");
        }
    }

    #[test]
    fn unknown_char_has_no_neighbors() {
        assert!(qwerty_neighbors('-').is_empty());
    }
}
