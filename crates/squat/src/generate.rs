//! Squatting-domain generators: given a popular target, enumerate the
//! look-alike registrations an attacker would file. Used by the workload
//! generator to seed squat registrations and by tests as the ground truth
//! for the classifier.

use std::collections::BTreeSet;

use crate::tables::{qwerty_neighbors, CHAR_GLYPHS, COMBO_KEYWORDS, DIGRAPH_GLYPHS};

/// Splits `brand.tld`; returns `None` for anything that is not a two-label
/// registrable name.
fn split(target: &str) -> Option<(&str, &str)> {
    let mut parts = target.split('.');
    let brand = parts.next()?;
    let tld = parts.next()?;
    if parts.next().is_some() || brand.is_empty() || tld.is_empty() {
        return None;
    }
    Some((brand, tld))
}

fn valid_label(label: &str) -> bool {
    !label.is_empty()
        && !label.starts_with('-')
        && !label.ends_with('-')
        && label.len() <= 63
        && label
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

/// Classic typosquats (Agten et al., NDSS'15 models): character omission,
/// duplication, adjacent transposition, QWERTY-adjacent substitution and
/// insertion.
pub fn typosquats(target: &str) -> Vec<String> {
    let Some((brand, tld)) = split(target) else {
        return Vec::new();
    };
    let chars: Vec<char> = brand.chars().collect();
    let mut out = BTreeSet::new();
    // Omission.
    for i in 0..chars.len() {
        let mut c = chars.clone();
        c.remove(i);
        out.insert(c.iter().collect::<String>());
    }
    // Duplication.
    for i in 0..chars.len() {
        let mut c = chars.clone();
        c.insert(i, chars[i]);
        out.insert(c.iter().collect::<String>());
    }
    // Adjacent transposition.
    for i in 0..chars.len().saturating_sub(1) {
        let mut c = chars.clone();
        c.swap(i, i + 1);
        out.insert(c.iter().collect::<String>());
    }
    // QWERTY-adjacent substitution and insertion.
    for i in 0..chars.len() {
        for &n in qwerty_neighbors(chars[i]) {
            let mut sub = chars.clone();
            sub[i] = n;
            out.insert(sub.iter().collect::<String>());
            let mut ins = chars.clone();
            ins.insert(i, n);
            out.insert(ins.iter().collect::<String>());
        }
    }
    out.remove(brand);
    out.into_iter()
        .filter(|l| valid_label(l))
        .map(|l| format!("{l}.{tld}"))
        .collect()
}

/// Combosquats (Kintis et al., CCS'17): brand combined with a trust keyword,
/// hyphenated or fused, on either side.
pub fn combosquats(target: &str) -> Vec<String> {
    let Some((brand, tld)) = split(target) else {
        return Vec::new();
    };
    let mut out = BTreeSet::new();
    for kw in COMBO_KEYWORDS {
        out.insert(format!("{brand}-{kw}.{tld}"));
        out.insert(format!("{kw}-{brand}.{tld}"));
        out.insert(format!("{brand}{kw}.{tld}"));
        out.insert(format!("{kw}{brand}.{tld}"));
    }
    out.into_iter().collect()
}

/// Dotsquats (Wang et al., SRUTI'06): the `www` prefix fused onto the brand
/// (`wwwgoogle.com`), and dot-shift registrables — when a user types
/// `goo.gle.com`, the squatter owning `gle.com` receives the traffic, so the
/// generator emits every proper suffix of the brand (length ≥ 3) as a
/// registrable.
pub fn dotsquats(target: &str) -> Vec<String> {
    let Some((brand, tld)) = split(target) else {
        return Vec::new();
    };
    let mut out = BTreeSet::new();
    out.insert(format!("www{brand}.{tld}"));
    out.insert(format!("www-{brand}.{tld}"));
    let chars: Vec<char> = brand.chars().collect();
    for i in 1..chars.len().saturating_sub(2) {
        let suffix: String = chars[i..].iter().collect();
        if valid_label(&suffix) && suffix != brand {
            out.insert(format!("{suffix}.{tld}"));
        }
    }
    out.into_iter().collect()
}

/// Bitsquats (Nikiforakis et al., WWW'13): every single-bit flip of every
/// byte of the brand that still yields a valid LDH label.
pub fn bitsquats(target: &str) -> Vec<String> {
    let Some((brand, tld)) = split(target) else {
        return Vec::new();
    };
    let bytes = brand.as_bytes();
    let mut out = BTreeSet::new();
    for i in 0..bytes.len() {
        for bit in 0..8u8 {
            let flipped = bytes[i] ^ (1 << bit);
            if !(flipped.is_ascii_lowercase() || flipped.is_ascii_digit() || flipped == b'-') {
                continue;
            }
            let mut label = bytes.to_vec();
            label[i] = flipped;
            let label = String::from_utf8(label).expect("ascii");
            if valid_label(&label) && label != brand {
                out.insert(format!("{label}.{tld}"));
            }
        }
    }
    out.into_iter().collect()
}

/// Homosquats (IDN-free homoglyphs): visually confusable substitutions that
/// stay inside the LDH alphabet (`0↔o`, `1↔l`, `rn→m`, `vv→w`, …).
pub fn homosquats(target: &str) -> Vec<String> {
    let Some((brand, tld)) = split(target) else {
        return Vec::new();
    };
    let mut out = BTreeSet::new();
    // Single-char confusions, each position, both directions.
    let chars: Vec<char> = brand.chars().collect();
    for i in 0..chars.len() {
        for &(a, b) in CHAR_GLYPHS {
            for (from, to) in [(a, b), (b, a)] {
                if chars[i] == from {
                    let mut c = chars.clone();
                    c[i] = to;
                    out.insert(c.iter().collect::<String>());
                }
            }
        }
    }
    // Digraph confusions, both directions.
    for &(from, to) in DIGRAPH_GLYPHS {
        for (f, t) in [
            (from.to_string(), to.to_string()),
            (to.to_string(), from.to_string()),
        ] {
            let mut start = 0;
            while let Some(pos) = brand[start..].find(&f) {
                let at = start + pos;
                let mut s = String::with_capacity(brand.len());
                s.push_str(&brand[..at]);
                s.push_str(&t);
                s.push_str(&brand[at + f.len()..]);
                out.insert(s);
                start = at + 1;
            }
        }
    }
    out.remove(brand);
    out.into_iter()
        .filter(|l| valid_label(l))
        .map(|l| format!("{l}.{tld}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typos_of_google() {
        let squats = typosquats("google.com");
        assert!(squats.contains(&"gogle.com".to_string())); // omission
        assert!(squats.contains(&"ggoogle.com".to_string())); // duplication
        assert!(squats.contains(&"goolge.com".to_string())); // transposition
        assert!(squats.contains(&"hoogle.com".to_string())); // adjacent sub (g->h)
        assert!(!squats.contains(&"google.com".to_string()));
        assert!(squats.len() > 50);
    }

    #[test]
    fn combos_of_paypal() {
        let squats = combosquats("paypal.com");
        assert!(squats.contains(&"paypal-login.com".to_string()));
        assert!(squats.contains(&"securepaypal.com".to_string()));
        assert_eq!(squats.len(), COMBO_KEYWORDS.len() * 4);
    }

    #[test]
    fn dots_of_example() {
        let squats = dotsquats("example.com");
        assert!(squats.contains(&"wwwexample.com".to_string()));
        assert!(squats.contains(&"xample.com".to_string())); // e.xample.com
        assert!(squats.contains(&"ample.com".to_string())); // ex.ample.com
        assert!(!squats.contains(&"example.com".to_string()));
    }

    #[test]
    fn bits_of_apple() {
        let squats = bitsquats("apple.com");
        // 'a' ^ 0x02 = 'c' -> "cpple.com"
        assert!(squats.contains(&"cpple.com".to_string()));
        for s in &squats {
            let label = s.split('.').next().unwrap();
            assert_eq!(label.len(), 5);
            assert_eq!(crate::edit::bit_hamming(label, "apple"), Some(1), "{s}");
        }
    }

    #[test]
    fn homos_of_google_and_modern() {
        let squats = homosquats("google.com");
        assert!(squats.contains(&"g0ogle.com".to_string()));
        assert!(squats.contains(&"go0gle.com".to_string()));
        let squats = homosquats("modern.com");
        assert!(squats.contains(&"rnodern.com".to_string())); // m -> rn
        let squats = homosquats("wave.com");
        assert!(squats.contains(&"vvave.com".to_string())); // w -> vv
    }

    #[test]
    fn generators_never_emit_target_or_invalid() {
        for target in ["google.com", "twitter.com", "mail.ru", "a.io"] {
            for gen in [typosquats, combosquats, dotsquats, bitsquats, homosquats] {
                for s in gen(target) {
                    assert_ne!(s, target);
                    let name: nxd_dns_wire::Name = s.parse().expect("valid name");
                    assert_eq!(name.label_count(), 2, "{s}");
                    assert!(name.is_ldh(), "{s}");
                }
            }
        }
    }

    #[test]
    fn non_registrable_targets_yield_nothing() {
        assert!(typosquats("www.google.com").is_empty());
        assert!(combosquats("com").is_empty());
        assert!(bitsquats("").is_empty());
    }
}
