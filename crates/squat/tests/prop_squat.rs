//! Property tests: every generator output classifies as *some* squat of its
//! target, the target itself never classifies, and the edit-distance metric
//! behaves like a metric on the axes the classifier relies on.

use nxd_squat::{
    damerau_levenshtein, damerau_levenshtein_bounded, generate, within_one_edit, EditScratch,
    SquatClassifier, SquatScratch,
};
use proptest::prelude::*;

fn arb_brand() -> impl Strategy<Value = String> {
    "[a-z]{4,10}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_squats_always_classify(brand in arb_brand()) {
        let target = format!("{brand}.com");
        let classifier = SquatClassifier::new([target.as_str()]);
        for gen in [
            generate::typosquats,
            generate::combosquats,
            generate::dotsquats,
            generate::bitsquats,
            generate::homosquats,
        ] {
            for squat in gen(&target) {
                let verdict = classifier.classify(&squat);
                prop_assert!(verdict.is_some(), "{squat} (target {target}) unclassified");
                prop_assert_eq!(&verdict.unwrap().target, &target);
            }
        }
    }

    #[test]
    fn target_never_classifies_as_its_own_squat(brand in arb_brand()) {
        let target = format!("{brand}.com");
        let classifier = SquatClassifier::new([target.as_str()]);
        prop_assert_eq!(classifier.classify(&target), None);
    }

    #[test]
    fn edit_distance_identity_and_symmetry(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
        prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        // Distance bounded by the longer string's length.
        prop_assert!(damerau_levenshtein(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn bounded_distance_agrees_with_exact(a in "[a-z0-9-]{0,12}", b in "[a-z0-9-]{0,12}", max_dist in 0usize..6) {
        let exact = damerau_levenshtein(&a, &b);
        let mut scratch = EditScratch::default();
        let bounded = damerau_levenshtein_bounded(&a, &b, max_dist, &mut scratch);
        prop_assert_eq!(bounded, (exact <= max_dist).then_some(exact), "{} vs {}", a, b);
        // The scratch survives reuse on swapped operands.
        let swapped = damerau_levenshtein_bounded(&b, &a, max_dist, &mut scratch);
        prop_assert_eq!(swapped, bounded);
    }

    #[test]
    fn classify_with_scratch_matches_classify(label in "[a-z0-9-]{1,16}", tld_pick in 0usize..5) {
        let tld = ["com", "co", "net", "org", "tv"][tld_pick];
        let domain = format!("{label}.{tld}");
        let classifier = SquatClassifier::default();
        let mut scratch = SquatScratch::default();
        prop_assert_eq!(
            classifier.classify_with(&domain, &mut scratch),
            classifier.classify(&domain),
            "{}", domain
        );
    }

    #[test]
    fn single_random_substitution_is_distance_one(brand in "[a-z]{4,10}", pos in 0usize..10, c in proptest::char::range('a', 'z')) {
        let chars: Vec<char> = brand.chars().collect();
        let pos = pos % chars.len();
        if chars[pos] != c {
            let mut mutated = chars.clone();
            mutated[pos] = c;
            let mutated: String = mutated.into_iter().collect();
            prop_assert_eq!(damerau_levenshtein(&brand, &mutated), 1);
        }
    }

    /// The SWAR prefix/suffix decision procedure is exactly the banded
    /// matrix at bound 1, for arbitrary ASCII pairs.
    #[test]
    fn within_one_edit_matches_banded_matrix(a in "[a-z0-9-]{0,12}", b in "[a-z0-9-]{0,12}") {
        let mut scratch = EditScratch::default();
        let want = damerau_levenshtein_bounded(&a, &b, 1, &mut scratch);
        prop_assert_eq!(within_one_edit(&a, &b, &mut scratch), want, "{} vs {}", a, b);
        prop_assert_eq!(within_one_edit(&b, &a, &mut scratch), want);
    }

    /// Same equivalence on non-ASCII inputs (the fallback path), where byte
    /// positions and char positions diverge.
    #[test]
    fn within_one_edit_matches_on_multibyte(a in "[a-z\u{e0}-\u{e9}]{0,8}", b in "[a-z\u{e0}-\u{e9}]{0,8}") {
        let mut scratch = EditScratch::default();
        let want = damerau_levenshtein_bounded(&a, &b, 1, &mut scratch);
        prop_assert_eq!(within_one_edit(&a, &b, &mut scratch), want, "{} vs {}", a, b);
    }

    /// Constructive single edits: substitution, indel, and adjacent
    /// transposition on a shared stem are all reported as distance 1.
    #[test]
    fn within_one_edit_accepts_constructed_edits(stem in "[a-z]{4,10}", pos in 0usize..10, c in proptest::char::range('a', 'z')) {
        let mut scratch = EditScratch::default();
        let chars: Vec<char> = stem.chars().collect();
        let pos = pos % chars.len();
        // Substitution.
        if chars[pos] != c {
            let mut m = chars.clone();
            m[pos] = c;
            let m: String = m.iter().collect();
            prop_assert_eq!(within_one_edit(&stem, &m, &mut scratch), Some(1), "sub {}", m);
        }
        // Deletion / insertion.
        let mut del = chars.clone();
        del.remove(pos);
        let del: String = del.iter().collect();
        prop_assert_eq!(within_one_edit(&stem, &del, &mut scratch), Some(1), "del {}", del);
        let mut ins = chars.clone();
        ins.insert(pos, c);
        let ins: String = ins.iter().collect();
        prop_assert_eq!(within_one_edit(&stem, &ins, &mut scratch), Some(1), "ins {}", ins);
        // Adjacent transposition.
        if pos + 1 < chars.len() && chars[pos] != chars[pos + 1] {
            let mut tr = chars.clone();
            tr.swap(pos, pos + 1);
            let tr: String = tr.iter().collect();
            prop_assert_eq!(within_one_edit(&stem, &tr, &mut scratch), Some(1), "tr {}", tr);
        }
        // Identity.
        prop_assert_eq!(within_one_edit(&stem, &stem, &mut scratch), Some(0));
    }
}
