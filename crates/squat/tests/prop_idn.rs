//! Property tests for the RFC 3492 punycode implementation: encode/decode
//! round trips over mixed Latin/confusable labels and decoder robustness.

use nxd_squat::idn::{punycode_decode, punycode_encode, to_ascii, to_unicode, UNICODE_CONFUSABLES};
use proptest::prelude::*;

fn arb_mixed_label() -> impl Strategy<Value = String> {
    // Latin letters with occasional Cyrillic confusables mixed in.
    proptest::collection::vec(
        prop_oneof![
            4 => proptest::char::range('a', 'z').boxed(),
            1 => proptest::sample::select(
                UNICODE_CONFUSABLES.iter().map(|&(_, c)| c).collect::<Vec<char>>()
            ).boxed(),
        ],
        1..16,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn punycode_roundtrip(label in arb_mixed_label()) {
        let encoded = punycode_encode(&label).expect("encodable");
        prop_assert!(encoded.is_ascii());
        let decoded = punycode_decode(&encoded).expect("decodable");
        prop_assert_eq!(decoded, label);
    }

    #[test]
    fn idna_domain_roundtrip(label in arb_mixed_label()) {
        let domain = format!("{label}.com");
        let ascii = to_ascii(&domain).expect("convertible");
        prop_assert!(ascii.is_ascii());
        prop_assert_eq!(to_unicode(&ascii).expect("reversible"), domain);
    }

    #[test]
    fn decoder_never_panics(s in "[ -~]{0,24}") {
        let _ = punycode_decode(&s);
        let _ = to_unicode(&format!("xn--{s}.com"));
    }
}
