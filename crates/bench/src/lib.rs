//! # nxd-bench
//!
//! Benchmarks and the `repro` binary.
//!
//! * `cargo run -p nxd-bench --bin repro --release -- all` regenerates every
//!   table and figure of the paper (scaled) and prints paper-vs-measured
//!   rows — the source of EXPERIMENTS.md.
//! * `cargo bench -p nxd-bench` runs the criterion benches: one per
//!   table/figure plus the ablations called out in DESIGN.md (negative
//!   cache, sampling ratio, filter stages, DGA detector features,
//!   interning).
//!
//! This library crate only hosts shared experiment drivers so the bin and
//! the benches stay in sync.

use nxd_core::{origin as origin_analysis, scale, security, XrefParams};
use nxd_dns_wire::RCode;
use nxd_passive_dns::PassiveDb;
use nxd_telemetry::Telemetry;
use nxd_traffic::{era, honeypot_era, origin, EraConfig, HoneypotConfig, OriginConfig};

/// Standard reproduction-scale era world (shared by bin + benches).
pub fn era_world() -> era::EraWorld {
    era::generate(EraConfig::default())
}

/// Instrumented variant of [`era_world`]: the embedded sensor database and
/// consistency-check resolver attach to `telemetry`, and each generation
/// stage records a span.
pub fn era_world_with(telemetry: &Telemetry) -> era::EraWorld {
    era::generate_with(EraConfig::default(), telemetry)
}

/// A smaller era world for quick benches.
pub fn era_world_small() -> era::EraWorld {
    era::generate(EraConfig {
        nx_names: 8_000,
        expired_panel: 400,
        resolver_checks: 0,
        ..Default::default()
    })
}

/// Standard reproduction-scale origin world.
pub fn origin_world() -> origin::OriginWorld {
    origin::generate(OriginConfig::default())
}

/// A smaller origin world for quick benches.
pub fn origin_world_small() -> origin::OriginWorld {
    origin::generate(OriginConfig {
        expired_total: 8_000,
        ..Default::default()
    })
}

/// Standard reproduction-scale honeypot world (Table 1 / 100).
pub fn honeypot_world() -> honeypot_era::HoneypotWorld {
    honeypot_era::generate(HoneypotConfig::default())
}

/// Instrumented variant of [`honeypot_world`]: per-phase packet counters
/// and per-stage spans land in `telemetry`.
pub fn honeypot_world_with(telemetry: &Telemetry) -> honeypot_era::HoneypotWorld {
    honeypot_era::generate_with(HoneypotConfig::default(), telemetry)
}

/// A smaller honeypot world for quick benches.
pub fn honeypot_world_small() -> honeypot_era::HoneypotWorld {
    honeypot_era::generate(HoneypotConfig {
        scale: 1_000,
        ..Default::default()
    })
}

/// Interns an origin world's expired population into a passive database —
/// every row NXDomain, days/sensors/counts cycling deterministically — so
/// the fused §5 engine (and its benches) can scan it shard-parallel.
pub fn origin_db(world: &origin::OriginWorld) -> PassiveDb {
    let mut db = PassiveDb::new();
    for (i, d) in world.domains.iter().enumerate() {
        db.record_str(
            &d.name,
            17_000 + (i % 365) as u32,
            (i % 8) as u16,
            RCode::NxDomain,
            1 + (i % 7) as u32,
        );
    }
    db
}

/// The §5.2 cross-reference parameters shared by `repro origin-parallel`
/// and the origin-pipeline bench: the paper's 20 M-of-91 M sampling ratio
/// with the Fig. 8 token bucket.
pub fn origin_xref_params(population: usize) -> XrefParams {
    XrefParams {
        sample_size: population * 20 / 91,
        burst: 500,
        refill_per_sec: 200,
    }
}

/// Full §6 security report.
pub fn security_report(world: &honeypot_era::HoneypotWorld) -> nxd_core::SecurityReport {
    security::run(world)
}

/// Instrumented variant of [`security_report`]: filter and categorizer
/// counters plus the two stage spans land in `telemetry`.
pub fn security_report_with(
    world: &honeypot_era::HoneypotWorld,
    telemetry: &Telemetry,
) -> nxd_core::SecurityReport {
    security::run_with(world, telemetry)
}

/// Headline scalars.
pub fn scale_report(world: &era::EraWorld) -> nxd_core::ScaleReport {
    scale::headline(&world.db)
}

/// §5.1 WHOIS join.
pub fn whois_join(world: &era::EraWorld) -> origin_analysis::WhoisJoin {
    origin_analysis::whois_join(&world.db, &world.whois)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_worlds_build() {
        let era = era_world_small();
        assert!(era.db.row_count() > 0);
        let origin = origin_world_small();
        assert_eq!(origin.domains.len(), 8_000);
        let honeypot = honeypot_world_small();
        assert_eq!(honeypot.captures.len(), 19);
    }

    #[test]
    fn origin_db_interns_full_population() {
        let world = origin_world_small();
        let db = origin_db(&world);
        assert_eq!(db.distinct_names(), world.domains.len());
        assert_eq!(db.nx_names().count(), world.domains.len());
        let params = origin_xref_params(db.distinct_names());
        assert_eq!(params.sample_size, world.domains.len() * 20 / 91);
    }
}
