//! `repro` — regenerates every table and figure of the paper at
//! reproduction scale and prints paper-vs-measured comparisons.
//!
//! ```text
//! cargo run -p nxd-bench --bin repro --release -- all
//! cargo run -p nxd-bench --bin repro --release -- fig3 fig7 table1
//! cargo run -p nxd-bench --bin repro --release -- table1 --metrics
//! cargo run -p nxd-bench --bin repro --release -- all --metrics-json m.json --trace-out t.json
//! ```
//!
//! Experiments: scalars fig3 fig4 fig5 fig6 fig7 fig8 table1 fig10 fig12
//! fig13 fig14 fig15 filter hijack selection detector sinkhole federation
//! exposure market analyzer lint scale-parallel origin-parallel stream
//! serve-load
//!
//! Observability flags:
//!
//! * `--metrics` — print a per-experiment metrics delta after each
//!   experiment plus the cumulative snapshot at the end (text table).
//! * `--metrics-json <file>` — write the cumulative snapshot as JSON.
//! * `--trace-out <file>` — write the span timeline as Chrome trace-event
//!   JSON (loadable in `chrome://tracing` / Perfetto).
//! * `--shards <N>` — shard count for the `scale-parallel` and
//!   `origin-parallel` experiments. Defaults to auto: picked from the
//!   world's row count and the machine's parallelism via
//!   [`nxd_passive_dns::auto_shard_count`], so small worlds stay on one
//!   shard and large worlds fan out.
//! * `--serve <addr>` — start the live observability plane (nxd-obs) on
//!   `addr` (e.g. `127.0.0.1:9090`, or port 0 for an ephemeral port) before
//!   the first experiment. `/metrics`, `/journal?since=<seq>`, `/spans`,
//!   and `/snapshot.json` update live while experiments run; `/readyz`
//!   flips to 200 once the first experiment completes. The bound address
//!   is printed on stderr.
//! * `--serve-dns <addr>` — bind the live DNS front-end (nxd-serve) on
//!   `addr` (UDP+TCP on the same port; port 0 for ephemeral) over the
//!   serve world's authoritative hierarchy, and keep it answering real
//!   wire queries while the experiments run. Combine with `--serve` to
//!   watch `serve_*` counters and latency histograms live on `/metrics`;
//!   point a stub resolver (`dig`, or `nxdctl dns`) at the printed
//!   address. Every NXDOMAIN it answers lands in a passive-DNS sensor
//!   database whose row count is reported on shutdown. A streaming
//!   engine rides along: the §4 aggregates and sketches update on every
//!   answered query, so with `--serve` the `stream_*` gauges/counters are
//!   live on `/metrics` and `/snapshot.json` *mid-run*. After the
//!   experiments finish the front-end keeps serving until you press
//!   Enter (or stdin reaches EOF, so piped/CI runs exit immediately).

use std::collections::HashMap;
use std::sync::Arc;

use nxd_bench::{
    era_world_with, honeypot_world_with, origin_db, origin_world, origin_xref_params,
    security_report_with,
};
use nxd_blocklist::ThreatCategory;
use nxd_core::report::{bar_series, commas, compare_line, pct, table};
use nxd_core::{origin as origin_analysis, scale, selection};
use nxd_dga::DgaDetector;
use nxd_dns_sim::HijackPolicy;
use nxd_honeypot::TrafficCategory;
use nxd_squat::{SquatClassifier, SquatKind};
use nxd_telemetry::Telemetry;
use nxd_traffic::era::EraWorld;
use nxd_traffic::origin::OriginWorld;
use nxd_traffic::{HoneypotWorld, IN_APP_MIX, PAPER_GRAND_TOTAL, PAPER_TOTALS, TABLE1};

struct Worlds<'a> {
    telemetry: &'a Telemetry,
    era: Option<EraWorld>,
    origin: Option<OriginWorld>,
    honeypot: Option<(HoneypotWorld, nxd_core::SecurityReport)>,
}

impl<'a> Worlds<'a> {
    fn new(telemetry: &'a Telemetry) -> Self {
        Worlds {
            telemetry,
            era: None,
            origin: None,
            honeypot: None,
        }
    }

    fn era(&mut self) -> &EraWorld {
        if self.era.is_none() {
            eprintln!("[repro] generating passive-DNS era world ...");
            self.era = Some(era_world_with(self.telemetry));
        }
        self.era.as_ref().unwrap()
    }

    fn origin(&mut self) -> &OriginWorld {
        if self.origin.is_none() {
            eprintln!("[repro] generating origin population ...");
            let _span = self.telemetry.span("origin.generate");
            self.origin = Some(origin_world());
        }
        self.origin.as_ref().unwrap()
    }

    fn honeypot(&mut self) -> &(HoneypotWorld, nxd_core::SecurityReport) {
        if self.honeypot.is_none() {
            eprintln!("[repro] generating honeypot world + running §6 pipeline ...");
            let world = honeypot_world_with(self.telemetry);
            let report = security_report_with(&world, self.telemetry);
            self.honeypot = Some((world, report));
        }
        self.honeypot.as_ref().unwrap()
    }
}

fn main() {
    let mut metrics = false;
    let mut metrics_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut serve: Option<String> = None;
    let mut serve_dns: Option<String> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--metrics" => metrics = true,
            "--serve" => {
                serve = Some(raw.next().expect("--serve needs a listen address"));
            }
            "--serve-dns" => {
                serve_dns = Some(raw.next().expect("--serve-dns needs a listen address"));
            }
            "--metrics-json" => {
                metrics_json = Some(raw.next().expect("--metrics-json needs a file path"));
            }
            "--trace-out" => {
                trace_out = Some(raw.next().expect("--trace-out needs a file path"));
            }
            "--shards" => {
                shards = Some(
                    raw.next()
                        .expect("--shards needs a count")
                        .parse()
                        .expect("--shards needs an integer"),
                );
            }
            _ => experiments.push(arg),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "scalars",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table1",
            "fig10",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "filter",
            "hijack",
            "selection",
            "detector",
            "sinkhole",
            "federation",
            "exposure",
            "market",
            "analyzer",
            "lint",
            "scale-parallel",
            "origin-parallel",
            "stream",
            "serve-load",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    let telemetry = Arc::new(Telemetry::wall());
    let server = serve.map(|addr| {
        let server = nxd_obs::ObsServer::bind(&addr, telemetry.clone())
            .unwrap_or_else(|e| panic!("--serve {addr}: {e}"));
        eprintln!(
            "[repro] observability plane listening on http://{}",
            server.local_addr()
        );
        server
    });
    let dns_front = serve_dns.map(|addr| {
        let world = nxd_serve::build_world(&nxd_serve::WorldConfig::default());
        // The live streaming plane: registered on the same telemetry as
        // `--serve`, so `/metrics` and `/snapshot.json` expose the
        // incremental §4 aggregates while the front-end is answering.
        let engine = nxd_passive_dns::StreamEngine::default();
        engine.attach_metrics(&telemetry.registry);
        engine.attach_journal(telemetry.journal.clone());
        let front = nxd_serve::DnsServer::bind(
            &addr as &str,
            world.dns.clone(),
            telemetry.clone(),
            nxd_serve::ServeConfig {
                day: world.day,
                stream: Some(engine.clone()),
                ..nxd_serve::ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("--serve-dns {addr}: {e}"));
        eprintln!(
            "[repro] dns front-end listening on {} (udp+tcp, live stream aggregates attached)",
            front.local_addr()
        );
        (front, engine)
    });
    let mut worlds = Worlds::new(&telemetry);
    for exp in &experiments {
        let before = telemetry.snapshot();
        let span = telemetry.span(&format!("repro.{exp}"));
        match exp.as_str() {
            "scalars" | "scale" => scalars(&mut worlds),
            "fig3" => fig3(&mut worlds),
            "fig4" => fig4(&mut worlds),
            "fig5" => fig5(&mut worlds),
            "fig6" => fig6(&mut worlds),
            "fig7" => fig7(&mut worlds),
            "fig8" => fig8(&mut worlds),
            "table1" => table1(&mut worlds),
            "fig10" => fig10(&mut worlds),
            "fig12" => fig12(&mut worlds),
            "fig13" => fig13(&mut worlds),
            "fig14" => fig14(&mut worlds),
            "fig15" => fig15(&mut worlds),
            "filter" => filter_exp(&mut worlds),
            "hijack" => hijack(&mut worlds),
            "selection" => selection_exp(&mut worlds),
            "detector" => detector_exp(),
            "sinkhole" => sinkhole_exp(),
            "exposure" => exposure_exp(&mut worlds),
            "market" => market_exp(),
            "federation" => federation_exp(&mut worlds),
            "analyzer" => analyzer_exp(),
            "lint" => lint_exp(),
            "scale-parallel" => scale_parallel_exp(&mut worlds, shards),
            "origin-parallel" => origin_parallel_exp(&mut worlds, shards),
            "stream" => stream_exp(&mut worlds),
            "serve-load" => serve_load_exp(&telemetry),
            other => eprintln!(
                "[repro] unknown experiment {other:?} (see --help text in the doc comment)"
            ),
        }
        drop(span);
        if let Some(server) = &server {
            // Readiness flips (once) when the first phase completes.
            server.set_ready();
        }
        if metrics {
            let delta = telemetry.snapshot().delta(&before);
            if !delta.is_empty() {
                println!("\n--- metrics delta: {exp} ---");
                print!("{}", delta.to_text_table());
            }
        }
    }
    if metrics {
        heading("TELEMETRY — cumulative metrics snapshot");
        print!("{}", telemetry.snapshot().to_text_table());
    }
    if let Some(path) = metrics_json {
        let json = telemetry.snapshot().to_json();
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("[repro] wrote metrics snapshot to {path}");
    }
    if let Some(path) = trace_out {
        let trace = telemetry.tracer.to_chrome_trace();
        std::fs::write(&path, trace).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("[repro] wrote Chrome trace to {path}");
    }
    if let Some((front, engine)) = dns_front {
        // Hold the front-end open for interactive use: the README's
        // two-terminal workflow points `nxdctl dns` here after the
        // experiments finish. A piped stdin (CI) is already at EOF, so
        // `read_line` returns immediately and the run stays batch-shaped.
        eprintln!(
            "[repro] dns front-end still serving on {} — press Enter to stop",
            front.local_addr()
        );
        let mut line = String::new();
        let _ = std::io::stdin().read_line(&mut line);
        let db = front.shutdown();
        let snap = engine.snapshot();
        eprintln!(
            "[repro] dns front-end ingested {} passive-DNS rows",
            db.row_count()
        );
        eprintln!(
            "[repro] live stream plane saw {} rows: {} NXDOMAIN responses, \
             {} distinct NXDomains exact / ~{} sketched",
            snap.admitted_rows,
            snap.total_nx_responses,
            snap.distinct_nx_names,
            snap.distinct_nx_estimate
        );
    }
    if let Some(server) = server {
        server.shutdown();
    }
}

fn heading(title: &str) {
    println!("\n=== {title} ===");
}

fn scalars(worlds: &mut Worlds) {
    heading("E-SCALARS — headline counts (§4.1, §4.4, §5.1)");
    let era = worlds.era();
    let report = scale::headline(&era.db);
    println!(
        "{}",
        compare_line(
            "NXDOMAIN responses",
            "1,069,114,764,701",
            &commas(report.total_nx_responses)
        )
    );
    println!(
        "{}",
        compare_line(
            "distinct NXDomains",
            "146,363,745,785",
            &commas(report.distinct_nx_names)
        )
    );
    println!(
        "{}",
        compare_line(
            ">5y-NX names (§4.4)",
            "1,018,964",
            &commas(report.five_year_names)
        )
    );
    println!(
        "{}",
        compare_line(
            ">5y-NX queries (§4.4)",
            "107,020,820",
            &commas(report.five_year_queries)
        )
    );
    let era = worlds.era();
    let join = origin_analysis::whois_join(&era.db, &era.whois);
    println!(
        "{}",
        compare_line(
            "NXDomains with WHOIS history",
            "91,545,561 (0.06%)",
            &format!(
                "{} ({:.3}%)",
                commas(join.with_history),
                join.expired_fraction * 100.0
            ),
        )
    );
    println!(
        "note: the expired panel is oversampled vs the paper's 0.06% so that Figs. 6-8 have\n\
         statistical mass at laptop scale; EraConfig::paper_proportions() gives the honest ratio."
    );
    let (passed, total) = worlds.era().consistency;
    println!("resolver/registry consistency subsample: {passed}/{total} agree");
}

fn fig3(worlds: &mut Worlds) {
    heading("Fig. 3 — average NXDOMAIN responses per month, by year");
    let series = scale::fig3(&worlds.era().db);
    let display: Vec<(String, f64)> = series.iter().map(|&(y, v)| (y.to_string(), v)).collect();
    print!("{}", bar_series(&display, 48));
    println!("paper shape: rise 2014-2016, flat to 2020, jump 2021 (~20B/mo), 2022 >22B/mo");
}

fn fig4(worlds: &mut Worlds) {
    heading("Fig. 4 — top-20 TLDs by NXDomain count and query volume");
    let dist = scale::fig4(&worlds.era().db, 20);
    let rows: Vec<Vec<String>> = dist
        .iter()
        .map(|t| vec![t.tld.clone(), commas(t.nx_names), commas(t.nx_queries)])
        .collect();
    print!("{}", table(&["tld", "nx names", "nx queries"], &rows));
    println!("paper top-5: com, net, cn, ru, org (names and queries align)");
}

fn fig5(worlds: &mut Worlds) {
    heading("Fig. 5 — NXDomains and queries vs days in NX status (0-60)");
    let hist = scale::fig5(&worlds.era().db);
    let rows: Vec<Vec<String>> = hist
        .iter()
        .step_by(5)
        .map(|b| vec![b.day_offset.to_string(), commas(b.names), commas(b.queries)])
        .collect();
    print!("{}", table(&["day", "names", "queries"], &rows));
    println!("paper shape: steep decay in the first ten days, slow tail after");
}

fn fig6(worlds: &mut Worlds) {
    heading("Fig. 6 — avg queries per domain, 60 d before to 120 d after expiry");
    let era = worlds.era();
    let series = scale::fig6(&era.db, &era.expiry_days);
    let sampled: Vec<(String, f64)> = series
        .iter()
        .filter(|&&(o, _)| o % 10 == 0)
        .map(|&(o, v)| (format!("{o:+}d"), v))
        .collect();
    print!("{}", bar_series(&sampled, 48));
    println!("paper shape: drop at expiry, spike ≈ +30 d exceeding pre-expiry, then decline");
}

fn fig7(worlds: &mut Worlds) {
    heading("Fig. 7 — squatting NXDomains by type (classifier output)");
    let world = worlds.origin();
    let classifier = SquatClassifier::default();
    let counts =
        origin_analysis::squat_scan(world.domains.iter().map(|d| d.name.as_str()), &classifier);
    let paper: HashMap<SquatKind, u64> = [
        (SquatKind::Typo, 45_175),
        (SquatKind::Combo, 38_900),
        (SquatKind::Dot, 6_090),
        (SquatKind::Bit, 313),
        (SquatKind::Homo, 126),
    ]
    .into();
    let rows: Vec<Vec<String>> = SquatKind::ALL
        .iter()
        .map(|k| {
            vec![
                k.label().to_string(),
                commas(paper[k]),
                commas(counts.get(k).copied().unwrap_or(0)),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["type", "paper", "measured (population /1000)"], &rows)
    );
}

fn fig8(worlds: &mut Worlds) {
    heading("Fig. 8 — blocklisted NXDomains by category (rate-limited xref)");
    let world = worlds.origin();
    // Paper: 20 M of 91 M sampled due to the API rate limit; same ratio here.
    let sample = world.domains.len() * 20 / 91;
    let xref = origin_analysis::blocklist_xref(
        world.domains.iter().map(|d| d.name.as_str()),
        &world.blocklist,
        sample,
        500,
        200,
    );
    let paper: [(ThreatCategory, u64, &str); 4] = [
        (ThreatCategory::Malware, 382_135, "79%"),
        (ThreatCategory::Grayware, 42_050, "9%"),
        (ThreatCategory::Phishing, 39_834, "8%"),
        (ThreatCategory::CommandAndControl, 19_868, "4%"),
    ];
    let total_hits: u64 = xref.hits.values().sum();
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(cat, p, ppct)| {
            let got = xref.hits.get(&cat).copied().unwrap_or(0);
            vec![
                cat.label().to_string(),
                format!("{} ({ppct})", commas(p)),
                format!("{} ({})", commas(got), pct(got, total_hits)),
            ]
        })
        .collect();
    print!("{}", table(&["category", "paper", "measured"], &rows));
    println!(
        "sampled {} of {} domains; rate limiter forced {} one-second backoffs",
        commas(xref.queried),
        commas(world.domains.len() as u64),
        commas(xref.rate_limited_rejections)
    );
}

fn table1(worlds: &mut Worlds) {
    heading("Table 1 — HTTP/HTTPS traffic by category (filtered + categorized)");
    let (world, report) = worlds.honeypot();
    let scale_div = world.config.scale;
    let col = |counts: &HashMap<TrafficCategory, u64>, c: TrafficCategory| {
        counts.get(&c).copied().unwrap_or(0).to_string()
    };
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format!(
                    "{}{}",
                    r.spec.name,
                    if r.spec.malicious { " *" } else { "" }
                ),
                col(&r.counts, TrafficCategory::SearchEngineCrawler),
                col(&r.counts, TrafficCategory::FileGrabber),
                col(&r.counts, TrafficCategory::ScriptSoftware),
                col(&r.counts, TrafficCategory::MaliciousRequest),
                col(&r.counts, TrafficCategory::ReferralSearchEngine),
                col(&r.counts, TrafficCategory::ReferralEmbedded),
                col(&r.counts, TrafficCategory::ReferralMalicious),
                col(&r.counts, TrafficCategory::UserPcMobile),
                col(&r.counts, TrafficCategory::UserInApp),
                col(&r.counts, TrafficCategory::Other),
                r.total.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "domain (* = malicious)",
                "SE",
                "FileGrab",
                "Script",
                "MalReq",
                "Ref:SE",
                "Ref:Emb",
                "Ref:Mal",
                "User",
                "InApp",
                "Others",
                "total"
            ],
            &rows
        )
    );
    println!(
        "{}",
        compare_line(
            &format!("grand total (paper / {scale_div})"),
            &commas(PAPER_GRAND_TOTAL / scale_div),
            &commas(report.grand_total),
        )
    );
    for (label, paper_total, cat) in [
        (
            "script & software",
            PAPER_TOTALS.script_software,
            TrafficCategory::ScriptSoftware,
        ),
        (
            "malicious request",
            PAPER_TOTALS.malicious_request,
            TrafficCategory::MaliciousRequest,
        ),
        (
            "file grabber",
            PAPER_TOTALS.file_grabber,
            TrafficCategory::FileGrabber,
        ),
        (
            "search engine",
            PAPER_TOTALS.search_engine,
            TrafficCategory::SearchEngineCrawler,
        ),
    ] {
        println!(
            "{}",
            compare_line(
                &format!("{label} (paper / {scale_div})"),
                &commas(paper_total / scale_div),
                &commas(report.totals.get(&cat).copied().unwrap_or(0)),
            )
        );
    }
    let _ = TABLE1; // calibration table is embedded in nxd-traffic
}

fn fig10(worlds: &mut Worlds) {
    heading("Fig. 10 — port histograms: (a) NXDomains after filtering, (b) control");
    let (_, report) = worlds.honeypot();
    let a: Vec<Vec<String>> = report
        .ports_nxdomain
        .iter()
        .take(8)
        .map(|&(p, n)| {
            vec![
                format!("{p} ({})", nxd_honeypot::port_service(p)),
                commas(n),
            ]
        })
        .collect();
    print!("{}", table(&["port (a: NXDomains)", "packets"], &a));
    let b: Vec<Vec<String>> = report
        .ports_control
        .iter()
        .take(8)
        .map(|&(p, n)| {
            vec![
                format!("{p} ({})", nxd_honeypot::port_service(p)),
                commas(n),
            ]
        })
        .collect();
    print!("{}", table(&["port (b: control)", "packets"], &b));
    println!("paper: 80/443 dominate (a); port 52646 (AWS monitor) dominates (b) and is filtered from (a)");
}

fn fig12(worlds: &mut Worlds) {
    heading("Fig. 12 — example malicious request to gpclick.com (masked)");
    let (_, report) = worlds.honeypot();
    println!("{}", report.botnet.example_request);
    println!("paper example: /getTask.php?imei=A-BBBBBB-CCCCCC-D&balance=0&country=us&phone=+1…&op=Android&mnc=220&mcc=310&model=Nexus%205X&os=23");
}

fn fig13(worlds: &mut Worlds) {
    heading("Fig. 13 — in-app browsers among user visits");
    let (_, report) = worlds.honeypot();
    let total: u64 = report.in_app_mix.iter().map(|&(_, n)| n).sum();
    let paper_total: u64 = IN_APP_MIX.iter().map(|&(_, n)| n).sum();
    let rows: Vec<Vec<String>> = IN_APP_MIX
        .iter()
        .map(|&(app, p)| {
            let got = report
                .in_app_mix
                .iter()
                .find(|(a, _)| a == app)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            vec![
                app.to_string(),
                format!("{} ({})", commas(p), pct(p, paper_total)),
                format!("{} ({})", commas(got), pct(got, total)),
            ]
        })
        .collect();
    print!("{}", table(&["app", "paper", "measured"], &rows));
}

fn fig14(worlds: &mut Worlds) {
    heading("Fig. 14 — gpclick victim phone country codes (by continent)");
    let (_, report) = worlds.honeypot();
    let b = &report.botnet;
    println!(
        "distinct phone numbers: {} (paper: 55,829)",
        commas(b.distinct_phones)
    );
    let series: Vec<(String, f64)> = b
        .countries
        .iter()
        .map(|(c, n)| (c.clone(), *n as f64))
        .collect();
    print!("{}", bar_series(&series, 40));
    let rows: Vec<Vec<String>> = b
        .continents
        .iter()
        .map(|&(c, n)| vec![c.to_string(), commas(n)])
        .collect();
    print!("{}", table(&["continent", "requests"], &rows));
    println!(
        "paper: victims span Europe, Asia, America, Oceania — not only Russian-speaking countries"
    );
}

fn fig15(worlds: &mut Worlds) {
    heading("Fig. 15 — gpclick source hostname classes");
    let (_, report) = worlds.honeypot();
    let b = &report.botnet;
    let rows: Vec<Vec<String>> = b
        .hostname_classes
        .iter()
        .map(|(h, n)| vec![h.clone(), commas(*n), pct(*n, b.total_requests)])
        .collect();
    print!("{}", table(&["hostname class", "requests", "share"], &rows));
    println!("paper: google-proxy 527,226 = 56.1% of 939,420 malicious requests");
}

fn filter_exp(worlds: &mut Worlds) {
    heading("E-FILTER — two-step noise filter efficacy (§6.1 / Fig. 9)");
    let (_, report) = worlds.honeypot();
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.spec.name.to_string(),
                commas(r.filter.input),
                commas(r.filter.dropped_no_hosting),
                commas(r.filter.dropped_control),
                commas(r.filter.kept),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &["domain", "input", "drop:no-hosting", "drop:control", "kept"],
            &rows
        )
    );
}

fn hijack(worlds: &mut Worlds) {
    heading("E-HIJACK — NXDOMAIN hijack sensitivity (§7)");
    let db = &worlds.era().db;
    for rate in [0u16, 48, 200, 500] {
        let policy = HijackPolicy {
            rate_permille: rate,
            ..HijackPolicy::paper_rate(17)
        };
        let (visible, hidden, fraction) = scale::hijack_sensitivity(db, &policy);
        println!(
            "hijack rate {:>5.1}% → visible {} hidden {} ({:.1}% of signal lost)",
            rate as f64 / 10.0,
            commas(visible),
            commas(hidden),
            fraction * 100.0
        );
    }
    println!("paper: 4.8% wild hijack rate — marginal signal loss, study unbiased");
}

fn selection_exp(worlds: &mut Worlds) {
    heading("E-SELECT — §3.3 honeypot domain selection");
    let world = worlds.era();
    let as_of = nxd_dns_sim::SimTime::ERA_END.day_number() as u32;
    // Paper threshold is 10k queries/month at full (1e-6-scaled) volume;
    // scale with the generated volume instead: top names by sustained rate.
    let criteria = selection::SelectionCriteria {
        min_monthly_queries: 30.0,
        min_nx_days: 182,
        as_of_day: as_of,
        max_selected: 19,
    };
    let picked = selection::select(&world.db, &criteria);
    let rows: Vec<Vec<String>> = picked
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.nx_days.to_string(),
                format!("{:.1}", c.avg_monthly_queries),
                commas(c.total_nx_queries),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["candidate", "nx days", "avg q/mo", "total q"], &rows)
    );
    println!(
        "criteria: ≥6 months in NX status and sustained query volume (paper: >10k/mo, 19 picked)"
    );
}

fn exposure_exp(worlds: &mut Worlds) {
    heading("E-SEC64 — §6.4 exposure surfaces per domain");
    let (world, _) = worlds.honeypot();
    let report = nxd_core::exposure_report(world);
    let rows: Vec<Vec<String>> = report
        .iter()
        .map(|e| {
            vec![
                e.domain.clone(),
                commas(e.automated_downloads),
                commas(e.email_fetches),
                commas(e.polling_streams),
                commas(e.injection_surface()),
                commas(e.referral_visits),
                commas(e.user_visits),
                commas(e.residual_trust_surface()),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "domain",
                "auto-dl",
                "email",
                "polling",
                "INJECTION",
                "referral",
                "users",
                "RESIDUAL-TRUST"
            ],
            &rows
        )
    );
    println!("paper §6.4: botnet takeover + malicious file injection + residual trust, quantified");
}

fn market_exp() {
    heading("E-MARKET — expired-domain market: drop-catch vs public re-registration (§2/§8.2)");
    let report = nxd_core::reregistration_market(2_000, 250, 400, 45, 0xA1);
    println!(
        "{} domains: {} drop-caught at release, {} publicly re-registered, {} never (the NXDomain pool)",
        report.domains, report.drop_caught, report.public_reregistered, report.never_reregistered
    );
    println!("re-registration gap CDF (days → fraction of released domains):");
    for (days, fraction) in &report.gap_cdf {
        println!("  ≤{days:>3} d: {:.1}%", fraction * 100.0);
    }
    if let Some(median) = report.median_gap_days {
        println!("median gap among re-registered: {median} days");
    }
    println!(
        "Lauinger et al.: re-registrations cluster at release (drop-catch); long tail stays NX"
    );
}

fn sinkhole_exp() {
    heading("E-SINKHOLE — DGA takedown via NXDomain sinkholing (§7 extension)");
    let report = nxd_core::sinkhole_takedown(25, 40, 0xB07);
    println!(
        "watchlist: {} candidate names (one family, one day)",
        report.watched_names
    );
    println!(
        "redirected {} queries; identified {}/{} bots with {} false positives",
        commas(report.redirected as u64),
        report.bots_detected,
        report.bots_total,
        report.false_positives
    );
    println!("paper §7: \"sinkhole NXDomain traffic to dedicated analysis servers\" — done");
}

fn federation_exp(worlds: &mut Worlds) {
    heading("E-FEDERATION — multi-provider coverage & contributor bias (§7 extension)");
    let coverage = nxd_core::federation_report(worlds.era());
    let rows: Vec<Vec<String>> = coverage
        .iter()
        .map(|c| {
            vec![
                c.provider.clone(),
                commas(c.nx_names),
                commas(c.nx_responses),
                commas(c.unique_names),
                format!("{:.2}", c.jaccard_vs_union),
                format!("{:.3}", c.tld_bias_l1),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "provider",
                "nx names",
                "nx responses",
                "unique",
                "coverage",
                "tld-bias L1"
            ],
            &rows
        )
    );
    println!("paper §7: single-provider bias is real — regional networks deviate in TLD mix");
}

/// Resolves the `--shards` flag: an explicit count wins; otherwise the
/// auto heuristic sizes the fan-out from the world and this machine.
fn resolve_shards(flag: Option<usize>, rows: usize) -> (usize, &'static str) {
    match flag {
        Some(n) => (n.max(1), ""),
        None => (nxd_passive_dns::auto_shard_count_here(rows), ", auto"),
    }
}

fn scale_parallel_exp(worlds: &mut Worlds, shards: Option<usize>) {
    use std::time::Instant;

    let era = worlds.era();
    let (shards, picked) = resolve_shards(shards, era.db.row_count());
    heading(&format!(
        "E-SCALE-PARALLEL — sharded executor vs serial engine ({shards} shards{picked})"
    ));
    let expiry_strings: HashMap<String, u32> = era
        .expiry_days
        .iter()
        .map(|(&id, &day)| (era.db.interner().resolve(id).to_string(), day))
        .collect();

    let t0 = Instant::now();
    let serial = (
        scale::headline(&era.db),
        scale::fig3(&era.db),
        scale::fig4(&era.db, 20),
        scale::fig5(&era.db),
        scale::fig6(&era.db, &era.expiry_days),
    );
    let serial_elapsed = t0.elapsed();

    let t1 = Instant::now();
    let store = nxd_passive_dns::ShardedStore::from_db(&era.db, shards);
    let partition_elapsed = t1.elapsed();

    let t2 = Instant::now();
    let sharded = (
        scale::headline_sharded(&store),
        scale::fig3_sharded(&store),
        scale::fig4_sharded(&store, 20),
        scale::fig5_sharded(&store),
        scale::fig6_sharded(&store, &expiry_strings),
    );
    let sharded_elapsed = t2.elapsed();

    assert_eq!(serial, sharded, "sharded results diverged from serial");
    println!(
        "all five analyses bit-identical across {} shards ({} rows, {} names)",
        store.shard_count(),
        commas(store.row_count() as u64),
        commas(store.distinct_names() as u64),
    );
    let speedup = serial_elapsed.as_secs_f64() / sharded_elapsed.as_secs_f64().max(1e-9);
    println!(
        "serial suite {:>9.3} ms | partition {:>9.3} ms | sharded suite {:>9.3} ms | speedup {speedup:.2}x",
        serial_elapsed.as_secs_f64() * 1e3,
        partition_elapsed.as_secs_f64() * 1e3,
        sharded_elapsed.as_secs_f64() * 1e3,
    );
    let per_shard: Vec<String> = store
        .shards()
        .iter()
        .map(|s| commas(s.row_count() as u64))
        .collect();
    println!("rows per shard: [{}]", per_shard.join(", "));
}

fn origin_parallel_exp(worlds: &mut Worlds, shards: Option<usize>) {
    use std::time::Instant;

    let telemetry = worlds.telemetry;
    let world = worlds.origin();
    let db = origin_db(world);
    let (shards, picked) = resolve_shards(shards, db.row_count());
    heading(&format!(
        "E-ORIGIN-PARALLEL — fused §5 engine vs serial four-pass ({shards} shards{picked})"
    ));
    let detector = DgaDetector::default();
    let classifier = SquatClassifier::default();
    let pipeline = nxd_core::OriginPipeline {
        whois: &world.whois,
        detector: &detector,
        classifier: &classifier,
        blocklist: &world.blocklist,
        xref: origin_xref_params(db.distinct_names()),
    };

    let t0 = Instant::now();
    let serial = pipeline.run_serial(&db);
    let serial_elapsed = t0.elapsed();

    let t1 = Instant::now();
    let store = nxd_passive_dns::ShardedStore::from_db(&db, shards);
    let partition_elapsed = t1.elapsed();

    let t2 = Instant::now();
    let fused = pipeline.run_with(&store, telemetry);
    let fused_elapsed = t2.elapsed();

    assert_eq!(fused, serial, "fused origin results diverged from serial");
    println!(
        "all four §5 legs bit-identical across {} shards ({} names)",
        store.shard_count(),
        commas(store.distinct_names() as u64),
    );
    println!(
        "whois: {} with history / {} without ({:.3}% expired)",
        commas(fused.whois.with_history),
        commas(fused.whois.without_history),
        fused.whois.expired_fraction * 100.0
    );
    println!(
        "dga: {} flagged ({:.2}%)",
        commas(fused.dga_flagged),
        fused.dga_fraction * 100.0
    );
    let squats: Vec<String> = SquatKind::ALL
        .iter()
        .filter_map(|k| fused.squat.get(k).map(|n| format!("{} {}", k.label(), n)))
        .collect();
    println!("squats: [{}]", squats.join(", "));
    println!(
        "xref: {} queried, {} blocklist hits, {} rate-limit backoffs",
        commas(fused.xref.queried),
        commas(fused.xref.hits.values().sum::<u64>()),
        commas(fused.xref.rate_limited_rejections)
    );
    let speedup = serial_elapsed.as_secs_f64() / fused_elapsed.as_secs_f64().max(1e-9);
    println!(
        "serial four-pass {:>9.3} ms | partition {:>9.3} ms | fused scan {:>9.3} ms | speedup {speedup:.2}x",
        serial_elapsed.as_secs_f64() * 1e3,
        partition_elapsed.as_secs_f64() * 1e3,
        fused_elapsed.as_secs_f64() * 1e3,
    );
}

fn detector_exp() {
    heading("E-DGA — detector quality (replaces the commercial oracle)");
    let detector = DgaDetector::default();
    let dga_names: Vec<String> = nxd_dga::all_families()
        .iter()
        .flat_map(|f| f.generate(0xD6A, (2021, 6, 1), 500))
        .collect();
    let ev = detector.evaluate(
        nxd_dga::corpus::BENIGN_DOMAINS.iter().copied(),
        dga_names.iter().map(|s| s.as_str()),
    );
    println!(
        "precision {:.3}  recall {:.3}  f1 {:.3}",
        ev.precision(),
        ev.recall(),
        ev.f1()
    );
    println!(
        "tp {} fp {} tn {} fn {}",
        ev.true_positives, ev.false_positives, ev.true_negatives, ev.false_negatives
    );
    println!("(recall includes the deliberately evasive dictionary/markov families)");
}

fn analyzer_exp() {
    use nxd_analyzer::Analyzer;
    use nxd_dns_sim::{
        RegistryConfig, Resolver, ResolverConfig, ServerRef, SimDns, SimDuration, SimTime,
    };
    use nxd_dns_wire::{Message, Name, RType};

    heading("E-ANALYZER — RFC-conformance sweep of the simulated ecosystem");
    let start = SimTime::ERA_START;
    let mut dns = SimDns::new(&["com", "net", "org"], RegistryConfig::default(), start);
    let domains = ["alpha.com", "beta.net", "gamma.org"];
    for (i, d) in domains.iter().enumerate() {
        let name: Name = d.parse().expect("static name");
        dns.register_domain(
            &name,
            "owner",
            "registrar",
            1,
            std::net::Ipv4Addr::new(192, 0, 2, 10 + i as u8),
        )
        .expect("registrable");
    }
    let analyzer = Analyzer::new();

    // Wire pass: every authoritative server answers hits, misses, and NODATA.
    let mut messages = 0u32;
    let mut high = 0usize;
    let mut medium = 0usize;
    let mut low = 0usize;
    let mut servers = vec![ServerRef::Root];
    servers.extend(
        ["com", "net", "org"]
            .iter()
            .map(|t| ServerRef::Tld((*t).to_string())),
    );
    servers.extend(
        domains
            .iter()
            .map(|d| ServerRef::Auth(d.parse().expect("static name"))),
    );
    for server in &servers {
        for qname in ["www.alpha.com", "ghost.alpha.com", "nosuch.zz"] {
            for qtype in [RType::A, RType::Mx] {
                let query =
                    Message::query(messages as u16, qname.parse().expect("static name"), qtype);
                let wire = dns
                    .respond(server, &query.encode().expect("encodable"))
                    .expect("valid query");
                let report = analyzer.analyze_bytes(&wire).expect("decodable response");
                high += report.high_count();
                medium += report.at_severity(nxd_analyzer::Severity::Medium).count();
                low += report.at_severity(nxd_analyzer::Severity::Low).count();
                messages += 1;
            }
        }
    }

    // Zone pass over every zone the hierarchy serves.
    let mut zones = 0u32;
    for zone in dns.zones() {
        let report = analyzer.analyze_zone(zone);
        high += report.high_count();
        medium += report.at_severity(nxd_analyzer::Severity::Medium).count();
        low += report.at_severity(nxd_analyzer::Severity::Low).count();
        zones += 1;
    }

    // Trace pass over a recursive workload with negative-cache churn.
    let mut resolver = Resolver::new(ResolverConfig {
        record_trace: true,
        ..Default::default()
    });
    for dt in 0..600u64 {
        let qname: Name = if dt % 3 == 0 {
            "www.alpha.com"
        } else {
            "dead.net"
        }
        .parse()
        .expect("static name");
        resolver.resolve(&dns, &qname, RType::A, start + SimDuration::seconds(dt * 7));
    }
    let trace = resolver.take_trace();
    let trace_report = analyzer.analyze_trace(&trace);
    high += trace_report.high_count();
    medium += trace_report
        .at_severity(nxd_analyzer::Severity::Medium)
        .count();
    low += trace_report
        .at_severity(nxd_analyzer::Severity::Low)
        .count();

    println!(
        "checked {messages} wire responses, {zones} zones, {} trace events against {} rules",
        trace.len(),
        nxd_analyzer::catalog().len()
    );
    println!("diagnostics: high {high}  medium {medium}  low {low}");
    if high == 0 {
        println!("strict mode holds: the simulated ecosystem emits zero high-severity violations");
    } else {
        println!("STRICT MODE BROKEN: high-severity violations above");
    }

    // The paper's pathology on demand: disable RFC 2308 negative caching and
    // watch the trace rules light up.
    let mut broken = Resolver::new(ResolverConfig {
        negative_cache: false,
        record_trace: true,
        ..Default::default()
    });
    for dt in 0..20u64 {
        broken.resolve(
            &dns,
            &"dead.net".parse().expect("static name"),
            RType::A,
            start + SimDuration::seconds(dt),
        );
    }
    let mut ablation = broken.take_trace();
    for ev in &mut ablation {
        if !ev.from_cache && ev.negative_ttl.is_none() {
            ev.negative_ttl = Some(nxd_dns_sim::DEFAULT_NEGATIVE_TTL);
        }
    }
    let ablation_report = analyzer.analyze_trace(&ablation);
    println!(
        "ablation (negative_cache off): {} requery-inside-negative-ttl violations in 20 queries",
        ablation_report.high_count()
    );
}

fn stream_exp(worlds: &mut Worlds) {
    use std::time::Instant;

    use nxd_dns_wire::RCode;
    use nxd_passive_dns::stream::WindowConfig;
    use nxd_passive_dns::{
        collect_stream, query, PassiveDb, SieProducer, StreamConfig, StreamEngine,
    };

    heading("E-STREAM — incremental window aggregates vs batch oracle (§4, live)");
    let era = worlds.era();
    // Replay the era corpus in event-time order, fanned across producers —
    // the live-sensor shape: mostly-ordered arrivals with interleaving.
    let mut rows: Vec<(String, u32, u16, u8, u32)> = era
        .db
        .rows()
        .map(|o| {
            (
                era.db.interner().resolve(o.name).to_string(),
                o.day,
                o.sensor,
                o.rcode,
                o.count,
            )
        })
        .collect();
    rows.sort_by_key(|&(_, day, _, _, _)| day);
    let total_rows = rows.len();

    // Monthly windows with a sensor-federation lateness tolerance: batch
    // interleaving across producers skews arrival order by a few batches,
    // so the tolerance must cover a few batches' worth of event time.
    let engine = StreamEngine::new(StreamConfig {
        window: WindowConfig {
            window_days: 30,
            allowed_lateness_days: 365,
        },
        ..StreamConfig::default()
    });
    let producer_count = 4;
    let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = (0..producer_count)
        .map(|p| {
            let mine: Vec<_> = rows
                .iter()
                .skip(p)
                .step_by(producer_count)
                .cloned()
                .collect();
            Box::new(move |producer: SieProducer| {
                for chunk in mine.chunks(512) {
                    let mut shard = PassiveDb::new();
                    for (name, day, sensor, rcode, count) in chunk {
                        shard.record_str(name, *day, *sensor, RCode::from_u8(*rcode), *count);
                    }
                    producer.submit(shard);
                }
            }) as Box<dyn FnOnce(SieProducer) + Send>
        })
        .collect();

    let t0 = Instant::now();
    let outcome =
        collect_stream(producers, 2, 4, &engine).unwrap_or_else(|e| panic!("stream collect: {e}"));
    let elapsed = t0.elapsed();
    let snap = engine.snapshot();

    // Exactness: the snapshot must equal the batch oracle over the
    // admitted store, and admitted+late must account for every row.
    assert_eq!(
        outcome.store.row_count() + outcome.late.row_count(),
        total_rows,
        "stream dropped rows"
    );
    let admitted = outcome.store.to_serial();
    assert_eq!(snap.rcode_breakdown, query::rcode_breakdown(&admitted));
    assert_eq!(
        snap.total_nx_responses,
        query::total_nx_responses(&admitted)
    );
    assert_eq!(snap.distinct_nx_names, query::distinct_nx_names(&admitted));
    assert_eq!(snap.monthly_nx, query::monthly_nx_series(&admitted));
    assert_eq!(snap.nx_by_sensor, query::nx_by_sensor(&admitted));
    assert_eq!(snap.tld_distribution, query::tld_distribution(&admitted));
    println!(
        "snapshot ≡ batch oracle over {} admitted rows ({} windows closed, {} still open)",
        commas(snap.admitted_rows),
        commas(snap.windows_closed),
        commas(snap.windows_open),
    );
    println!(
        "late side-tally: {} rows / {} responses ({} NXDOMAIN) beyond the watermark",
        commas(snap.late.rows),
        commas(snap.late.responses),
        commas(snap.late.nx_responses),
    );

    // Approximate plane vs exact: top TLDs by NX query weight.
    let mut exact_tlds = snap.tld_distribution.clone();
    exact_tlds.sort_by(|a, b| b.nx_queries.cmp(&a.nx_queries).then(a.tld.cmp(&b.tld)));
    let table_rows: Vec<Vec<String>> = snap
        .top_tlds
        .iter()
        .take(5)
        .map(|e| {
            let exact = exact_tlds
                .iter()
                .find(|t| t.tld == e.item)
                .map(|t| t.nx_queries)
                .unwrap_or(0);
            vec![
                e.item.clone(),
                commas(e.count),
                commas(exact),
                commas(e.error),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["tld (top-k)", "estimate", "exact", "±error"], &table_rows)
    );
    println!(
        "distinct NXDomains: sketch ~{} vs exact {} (theoretical σ {:.2}%), {} sketch bytes",
        commas(snap.distinct_nx_estimate),
        commas(snap.distinct_nx_names),
        snap.distinct_standard_error * 100.0,
        commas(snap.approx_heap_bytes as u64),
    );
    let rate = total_rows as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "ingested {} rows through {} producers in {:.3} ms — {:.0} rows/s",
        commas(total_rows as u64),
        producer_count,
        elapsed.as_secs_f64() * 1e3,
        rate,
    );
    println!("paper §4: the scale aggregates are queryable while ingest is still running");
}

fn serve_load_exp(telemetry: &Arc<Telemetry>) {
    use nxd_dns_wire::RCode;

    heading("E-SERVE-LOAD — live DNS front-end vs offline ingest (§3 sensor path)");
    let world = nxd_serve::build_world(&nxd_serve::WorldConfig::default());
    let front = nxd_serve::DnsServer::bind(
        "127.0.0.1:0",
        world.dns.clone(),
        telemetry.clone(),
        nxd_serve::ServeConfig {
            day: world.day,
            ..nxd_serve::ServeConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("serve-load bind: {e}"));
    eprintln!("[repro] serve-load front-end on {}", front.local_addr());
    let report = nxd_serve::loadgen::run(
        front.local_addr(),
        &world,
        &nxd_serve::LoadConfig::default(),
        telemetry,
    )
    .unwrap_or_else(|e| panic!("serve-load fleet: {e}"));
    let served = front.shutdown();

    assert_eq!(report.failures, 0, "unanswered queries: {report:?}");
    let offline = nxd_serve::offline_reference(&world, world.day, 0);
    nxd_serve::ingest_parity(&served, &offline)
        .unwrap_or_else(|e| panic!("served/offline ingest diverged: {e}"));

    println!(
        "{} queries ({} udp, {} tcp) answered at {:.0} qps, {} retransmits",
        commas(report.queries),
        commas(report.udp_queries),
        commas(report.tcp_queries),
        report.qps(),
        commas(report.retransmits),
    );
    let rows: Vec<Vec<String>> = report
        .rcodes
        .iter()
        .map(|(&code, &n)| vec![format!("{:?}", RCode::from_u8(code)), commas(n)])
        .collect();
    print!("{}", table(&["rcode", "responses"], &rows));
    let p50 = report.latency.quantile(0.5).unwrap_or(0);
    let p99 = report.latency.quantile(0.99).unwrap_or(0);
    println!(
        "per-query latency: p50 {}ns, p99 {}ns",
        commas(p50),
        commas(p99)
    );
    println!(
        "served-ingest ≡ offline-ingest over {} passive-DNS rows",
        commas(served.row_count() as u64)
    );
    println!("paper §3: live sensors stream NXDOMAINs into the passive-DNS plane — reproduced");
}

fn lint_exp() {
    use nxd_lint::{find_workspace_root, Baseline, Linter};

    heading("E-LINT — workspace invariant sweep (nxd-lint, strict)");
    let Some(root) = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))) else {
        eprintln!("[repro] no workspace root found; skipping lint sweep");
        return;
    };
    let baseline = match std::fs::read_to_string(root.join("lint-baseline.txt")) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    };
    let report = match Linter::new().with_baseline(baseline).lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[repro] lint walk failed: {e}");
            return;
        }
    };
    println!(
        "scanned {} files: {} findings, {} suppressed inline, {} baselined, {} stale baseline entries",
        report.files_scanned,
        report.len(),
        report.suppressed,
        report.baselined,
        report.stale_baseline.len()
    );
    for rule in nxd_lint::catalog() {
        let n = report.count_for(rule.id);
        if n > 0 {
            println!("  {} {}: {n}", rule.id, rule.name);
        }
    }
    report.assert_clean("repro lint sweep");
    println!("strict mode holds: zero unsuppressed invariant violations");
}
