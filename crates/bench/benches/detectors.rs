//! Detector benchmarks: DGA generation/detection (with the feature
//! ablation), squat generation/classification, blocklist lookups, and
//! passive-store ingest (single-thread vs the parallel SIE channel, plus
//! the interning ablation).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use nxd_blocklist::{Blocklist, ThreatCategory};
use nxd_dga::{all_families, DgaDetector, Weights};
use nxd_dns_wire::RCode;
use nxd_passive_dns::{collect_parallel, PassiveDb, SieProducer};
use nxd_squat::{generate, SquatClassifier};

fn bench_dga(c: &mut Criterion) {
    let mut g = c.benchmark_group("dga");
    for family in all_families() {
        g.bench_function(&format!("generate/{}", family.name()), |b| {
            b.iter(|| black_box(family.generate(42, (2021, 6, 1), 100)))
        });
    }
    let names: Vec<String> = all_families()
        .iter()
        .flat_map(|f| f.generate(7, (2020, 2, 2), 125))
        .collect();
    let detector = DgaDetector::default();
    g.throughput(Throughput::Elements(names.len() as u64));
    g.bench_function("detect/full", |b| {
        b.iter(|| names.iter().filter(|n| detector.is_dga(n)).count())
    });
    // Ablation: drop the (expensive) bigram feature.
    let w = Weights {
        bigram_score: 0.0,
        ..Default::default()
    };
    let ablated = DgaDetector::new(w, 3.2);
    g.bench_function("detect/no_bigram", |b| {
        b.iter(|| names.iter().filter(|n| ablated.is_dga(n)).count())
    });
    g.finish();
}

fn bench_squat(c: &mut Criterion) {
    let mut g = c.benchmark_group("squat");
    g.bench_function("generate/typo(google.com)", |b| {
        b.iter(|| black_box(generate::typosquats("google.com")))
    });
    g.bench_function("generate/bit(google.com)", |b| {
        b.iter(|| black_box(generate::bitsquats("google.com")))
    });
    let classifier = SquatClassifier::default();
    let mixed: Vec<String> = generate::typosquats("google.com")
        .into_iter()
        .chain(generate::combosquats("paypal.com"))
        .chain((0..100).map(|i| format!("unrelated-site-{i}.com")))
        .collect();
    g.throughput(Throughput::Elements(mixed.len() as u64));
    g.bench_function("classify/mixed", |b| {
        b.iter(|| {
            mixed
                .iter()
                .filter(|d| classifier.classify(d).is_some())
                .count()
        })
    });
    g.finish();
}

fn bench_blocklist(c: &mut Criterion) {
    let mut bl = Blocklist::new();
    for i in 0..50_000 {
        bl.insert(&format!("bad-{i}.com"), ThreatCategory::Malware);
    }
    let probes: Vec<String> = (0..1000).map(|i| format!("bad-{}.com", i * 57)).collect();
    c.bench_function("blocklist/lookup_1k", |b| {
        b.iter(|| probes.iter().filter(|d| bl.lookup(d).is_some()).count())
    });
}

fn bench_passive_ingest(c: &mut Criterion) {
    let rows: Vec<(String, u32)> = (0..20_000)
        .map(|i| (format!("name-{}.com", i % 4_000), 16_000 + i % 365))
        .collect();
    let mut g = c.benchmark_group("passive-ingest");
    g.throughput(Throughput::Elements(rows.len() as u64));
    g.bench_function("single_thread", |b| {
        b.iter(|| {
            let mut db = PassiveDb::new();
            for (name, day) in &rows {
                db.record_str(name, *day, 0, RCode::NxDomain, 1);
            }
            black_box(db.row_count())
        })
    });
    g.bench_function("sie_parallel_4", |b| {
        b.iter(|| {
            let chunks: Vec<Vec<(String, u32)>> =
                rows.chunks(rows.len() / 4).map(|c| c.to_vec()).collect();
            let producers: Vec<Box<dyn FnOnce(SieProducer) + Send>> = chunks
                .into_iter()
                .map(|chunk| {
                    Box::new(move |p: SieProducer| {
                        let mut shard = PassiveDb::new();
                        for (name, day) in &chunk {
                            shard.record_str(name, *day, 1, RCode::NxDomain, 1);
                        }
                        p.submit(shard);
                    }) as Box<dyn FnOnce(SieProducer) + Send>
                })
                .collect();
            black_box(
                collect_parallel(producers, 4)
                    .expect("no worker panicked")
                    .row_count(),
            )
        })
    });
    // Interning ablation: how much heap the interner saves vs raw strings.
    g.bench_function("interning", |b| {
        b.iter(|| {
            let mut interner = nxd_passive_dns::Interner::new();
            for (name, _) in &rows {
                black_box(interner.intern_str(name));
            }
            black_box(interner.heap_bytes())
        })
    });
    g.bench_function("no_interning_strings", |b| {
        b.iter(|| {
            let mut v: Vec<String> = Vec::with_capacity(rows.len());
            for (name, _) in &rows {
                v.push(name.clone());
            }
            black_box(v.len())
        })
    });
    g.finish();
}

fn bench_idn_and_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.bench_function("punycode/encode", |b| {
        b.iter(|| black_box(nxd_squat::punycode_encode("pаypal-with-cyrillic-а")))
    });
    g.bench_function("punycode/decode", |b| {
        let encoded = nxd_squat::punycode_encode("pаypal-with-cyrillic-а").unwrap();
        b.iter(|| black_box(nxd_squat::punycode_decode(&encoded)))
    });
    g.bench_function("idn/homosquats(paypal.com)", |b| {
        b.iter(|| black_box(nxd_squat::idn_homosquats("paypal.com")))
    });
    // Stream detector: one client, a 500-name DGA burst.
    let names = all_families()[0].generate(3, (2022, 1, 1), 500);
    g.bench_function("stream_detector/burst_500", |b| {
        b.iter(|| {
            let mut d = nxd_dga::StreamDetector::new(
                nxd_dga::StreamConfig::default(),
                DgaDetector::default(),
            );
            for (i, n) in names.iter().enumerate() {
                black_box(d.observe_nx(1, n, i as u64));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dga,
    bench_squat,
    bench_blocklist,
    bench_passive_ingest,
    bench_idn_and_stream
);
criterion_main!(benches);
