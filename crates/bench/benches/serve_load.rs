//! Live DNS front-end load bench — the numbers behind the CI `BENCH_7`
//! gate.
//!
//! Boots `nxd-serve` on an ephemeral loopback port (UDP+TCP on the same
//! port number), replays an era-derived query mix through the crate's own
//! stub-resolver fleet, and reports throughput and tail latency as
//! pseudo-bench lines the gate script parses:
//!
//! ```text
//! bench serve-load/qps <queries per second> ns/iter
//! bench serve-load/p99-latency-ns <99th percentile latency> ns/iter
//! bench serve-load/queries <queries answered> ns/iter
//! ```
//!
//! (`ns/iter` is the parser's line shape, not the unit of the first two —
//! same convention as `bigworld`'s byte counters.)
//!
//! The run itself is also a correctness gate: it aborts unless every query
//! is answered and the served-ingest database exactly equals the offline
//! ingest of the same mix. CI runs this quick (`NXD_BENCH_QUICK=1`) and
//! gates with:
//!
//! ```text
//! scripts/bench_gate.py --input bench.txt --baseline BENCH_7.json \
//!     --metrics-only \
//!     --min-metric serve-load/qps=1500 \
//!     --max-metric serve-load/p99-latency-ns=50000000
//! ```

use std::sync::Arc;

use nxd_serve::{
    build_world, ingest_parity, loadgen, offline_reference, DnsServer, LoadConfig, ServeConfig,
    WorldConfig,
};
use nxd_telemetry::Telemetry;

fn main() {
    let quick = std::env::var_os("NXD_BENCH_QUICK").is_some();
    let world_config = if quick {
        WorldConfig {
            nx_names: 200,
            registered: 30,
            queries: 6_000,
            ..WorldConfig::default()
        }
    } else {
        WorldConfig {
            nx_names: 600,
            registered: 60,
            queries: 30_000,
            ..WorldConfig::default()
        }
    };
    eprintln!(
        "serve-load: {} queries over loopback ({} mode)",
        world_config.queries,
        if quick { "quick" } else { "full" }
    );

    let world = build_world(&world_config);
    let telemetry = Arc::new(Telemetry::wall());
    let server = DnsServer::bind(
        "127.0.0.1:0",
        world.dns.clone(),
        telemetry.clone(),
        ServeConfig {
            day: world.day,
            ..ServeConfig::default()
        },
    )
    .expect("bind on loopback");
    eprintln!("serve-load: front-end on {}", server.local_addr());

    let load = LoadConfig {
        clients: if quick { 8 } else { 16 },
        tcp_permille: 150,
        ..LoadConfig::default()
    };
    let report = loadgen::run(server.local_addr(), &world, &load, &telemetry)
        .expect("load fleet runs to completion");
    assert_eq!(
        report.failures, 0,
        "unanswered queries invalidate the bench: {report:?}"
    );

    // Correctness half of the gate: the live sink must have ingested
    // exactly what the offline pipeline would.
    let served = server.shutdown();
    let offline = offline_reference(&world, world.day, 0);
    ingest_parity(&served, &offline).expect("served ingest must equal offline ingest");

    let qps = report.qps().round() as u64;
    let p99 = report.latency.quantile(0.99).unwrap_or(0);
    eprintln!(
        "serve-load: {} udp + {} tcp queries, {} retransmits, {:.0} qps",
        report.udp_queries,
        report.tcp_queries,
        report.retransmits,
        report.qps()
    );
    println!("bench serve-load/qps {qps} ns/iter");
    println!("bench serve-load/p99-latency-ns {p99} ns/iter");
    println!("bench serve-load/queries {} ns/iter", report.queries);
}
