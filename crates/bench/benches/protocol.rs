//! Microbenchmarks of the protocol substrates: DNS wire codec (with the
//! compression ablation), HTTP parsing, and the recursive resolver (with
//! the negative-cache ablation — the design choice that determines how many
//! NXDOMAIN storms reach authoritative servers).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::net::Ipv4Addr;

use nxd_dns_sim::{Resolver, ResolverConfig, SimDns, SimDuration, SimTime};
use nxd_dns_wire::{Message, Name, RCode, RData, RType, Record};
use nxd_httpsim::HttpRequest;

fn sample_response() -> Message {
    let qname: Name = "www.example-benchmark.com".parse().unwrap();
    let q = Message::query(0x1234, qname.clone(), RType::A);
    let mut resp = Message::response(&q, RCode::NoError);
    for i in 0..6 {
        resp.answers.push(Record::new(
            qname.clone(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, i)),
        ));
    }
    resp.authorities.push(Record::new(
        "example-benchmark.com".parse().unwrap(),
        86_400,
        RData::Ns("ns1.example-benchmark.com".parse().unwrap()),
    ));
    resp
}

fn bench_wire(c: &mut Criterion) {
    let msg = sample_response();
    let wire = msg.encode().unwrap();
    let mut g = c.benchmark_group("dns-wire");
    g.bench_function("encode_compressed", |b| {
        b.iter(|| black_box(&msg).encode().unwrap())
    });
    g.bench_function("encode_uncompressed", |b| {
        b.iter(|| black_box(&msg).encode_uncompressed().unwrap())
    });
    g.bench_function("decode", |b| {
        b.iter(|| Message::decode(black_box(&wire)).unwrap())
    });
    g.finish();
}

fn bench_http_parse(c: &mut Criterion) {
    let raw = HttpRequest::get("/getTask.php?imei=1-2-3&country=us&model=Nexus%205X")
        .with_header("Host", "gpclick.com")
        .with_header("User-Agent", "Apache-HttpClient/UNAVAILABLE (java 1.4)")
        .with_header("Accept", "*/*")
        .to_bytes();
    c.bench_function("http/parse_request", |b| {
        b.iter(|| HttpRequest::parse(black_box(&raw)).unwrap())
    });
}

fn resolver_world() -> (SimDns, Vec<Name>) {
    let start = SimTime::ERA_START;
    let mut dns = SimDns::new(&["com"], Default::default(), start);
    let mut names = Vec::new();
    for i in 0..64 {
        let name: Name = format!("domain-{i}.com").parse().unwrap();
        if i % 2 == 0 {
            dns.register_domain(&name, "o", "r", 1, Ipv4Addr::new(192, 0, 2, 1))
                .unwrap();
        }
        names.push(name);
    }
    (dns, names)
}

fn bench_resolver(c: &mut Criterion) {
    let (dns, names) = resolver_world();
    let t = SimTime::ERA_START + SimDuration::days(1);
    let mut g = c.benchmark_group("resolver");
    g.bench_function("resolve_cold", |b| {
        // Fresh resolver each batch: every query walks the hierarchy.
        b.iter_batched(
            || Resolver::new(ResolverConfig::default()),
            |mut r| {
                for n in &names {
                    black_box(r.resolve(&dns, n, RType::A, t));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("resolve_warm", |b| {
        let mut r = Resolver::new(ResolverConfig::default());
        for n in &names {
            r.resolve(&dns, n, RType::A, t);
        }
        b.iter(|| {
            for n in &names {
                black_box(r.resolve(&dns, n, RType::A, t + SimDuration::seconds(1)));
            }
        })
    });
    // Ablation: negative cache off — repeated NXDOMAIN queries hit upstream
    // every time (the amplification the paper's sensors observe).
    g.bench_function("resolve_repeat_negcache_off", |b| {
        let mut r = Resolver::new(ResolverConfig {
            negative_cache: false,
            ..Default::default()
        });
        let ghost: Name = "ghost-name.com".parse().unwrap();
        b.iter(|| black_box(r.resolve(&dns, &ghost, RType::A, t)))
    });
    g.bench_function("resolve_repeat_negcache_on", |b| {
        let mut r = Resolver::new(ResolverConfig::default());
        let ghost: Name = "ghost-name.com".parse().unwrap();
        b.iter(|| black_box(r.resolve(&dns, &ghost, RType::A, t)))
    });
    g.finish();
}

fn bench_transport_and_zonefile(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport");
    let (dns, names) = resolver_world();
    let t = SimTime::ERA_START + SimDuration::days(1);
    g.bench_function("wire_exchange_lossless", |b| {
        let mut resolver = Resolver::new(ResolverConfig::default());
        let mut ch = nxd_dns_sim::WireChannel::new(nxd_dns_sim::TransportConfig::default());
        let mut i = 0usize;
        b.iter(|| {
            let q = Message::query(i as u16, names[i % names.len()].clone(), RType::A);
            i += 1;
            black_box(ch.exchange(&mut resolver, &dns, q, t).unwrap())
        })
    });
    g.bench_function("wire_exchange_lossy_15pct", |b| {
        let mut resolver = Resolver::new(ResolverConfig::default());
        let mut ch = nxd_dns_sim::WireChannel::new(nxd_dns_sim::TransportConfig {
            loss_permille: 150,
            max_retries: 8,
            seed: 5,
            ..Default::default()
        });
        let mut i = 0usize;
        b.iter(|| {
            let q = Message::query(i as u16, names[i % names.len()].clone(), RType::A);
            i += 1;
            black_box(ch.exchange(&mut resolver, &dns, q, t).ok())
        })
    });
    const ZONE: &str = "$ORIGIN bench.com.\n$TTL 300\n@ IN SOA ns1 host 1 2 3 4 5\n@ IN NS ns1\nns1 IN A 192.0.2.1\nwww IN A 192.0.2.2\nmail IN MX 10 mx1\nalias IN CNAME www\n";
    g.bench_function("zonefile_parse", |b| {
        let apex: Name = "bench.com".parse().unwrap();
        b.iter(|| black_box(nxd_dns_sim::parse_zone(ZONE, &apex).unwrap()))
    });
    g.finish();

    // pcap serialization throughput.
    let packets: Vec<nxd_honeypot::Packet> = (0..256)
        .map(|i| {
            nxd_honeypot::Packet::http(
                HttpRequest::get(&format!("/asset-{i}.png"))
                    .with_header("Host", "bench.com")
                    .with_src(Ipv4Addr::new(203, 0, 113, (i % 250) as u8 + 1))
                    .with_port(80)
                    .with_time(1_650_000_000 + i as u64),
            )
        })
        .collect();
    c.bench_function("pcap/write_256_packets", |b| {
        b.iter(|| {
            let mut w = nxd_honeypot::PcapWriter::new(Ipv4Addr::new(192, 0, 2, 80));
            w.write_all(&packets);
            black_box(w.finish().len())
        })
    });
}

criterion_group!(
    benches,
    bench_wire,
    bench_http_parse,
    bench_resolver,
    bench_transport_and_zonefile
);
criterion_main!(benches);
