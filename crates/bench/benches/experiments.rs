//! One bench per table/figure: each target regenerates the corresponding
//! paper artifact on a small deterministic world, so `cargo bench` measures
//! the full pipeline cost of every experiment (E-SCALARS, E-FIG3..8,
//! E-TAB1, E-FIG10/13/14/15, E-FILTER, E-HIJACK) plus the sampling-ratio
//! ablation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use nxd_bench::{era_world_small, honeypot_world_small, origin_world_small};
use nxd_core::{origin as origin_analysis, scale, security};
use nxd_dns_sim::HijackPolicy;
use nxd_passive_dns::query;
use nxd_squat::SquatClassifier;

fn bench_scale_figures(c: &mut Criterion) {
    let world = era_world_small();
    let db = &world.db;
    let mut g = c.benchmark_group("experiments-scale");
    g.sample_size(20);
    g.bench_function("scalars", |b| b.iter(|| black_box(scale::headline(db))));
    g.bench_function("fig3_monthly_series", |b| {
        b.iter(|| black_box(scale::fig3(db)))
    });
    g.bench_function("fig4_tld_distribution", |b| {
        b.iter(|| black_box(scale::fig4(db, 20)))
    });
    g.bench_function("fig5_lifespan", |b| b.iter(|| black_box(scale::fig5(db))));
    g.bench_function("fig6_expiry_alignment", |b| {
        b.iter(|| black_box(scale::fig6(db, &world.expiry_days)))
    });
    g.bench_function("hijack_sensitivity", |b| {
        let policy = HijackPolicy::paper_rate(5);
        b.iter(|| black_box(scale::hijack_sensitivity(db, &policy)))
    });
    // Ablation: sampling-ratio sensitivity (1/10 … 1/1000 vs exact count).
    for ratio in [10u64, 100, 1000] {
        g.bench_function(&format!("sampling_1_in_{ratio}"), |b| {
            b.iter(|| black_box(query::sample_nx_names(db, ratio, 42).len()))
        });
    }
    g.finish();
}

fn bench_origin_figures(c: &mut Criterion) {
    let world = origin_world_small();
    let names: Vec<String> = world.domains.iter().map(|d| d.name.clone()).collect();
    let mut g = c.benchmark_group("experiments-origin");
    g.sample_size(10);
    g.bench_function("whois_join", |b| {
        let era = era_world_small();
        b.iter(|| black_box(origin_analysis::whois_join(&era.db, &era.whois)))
    });
    g.bench_function("fig7_squat_scan", |b| {
        let classifier = SquatClassifier::default();
        b.iter(|| {
            black_box(origin_analysis::squat_scan(
                names.iter().map(|s| s.as_str()),
                &classifier,
            ))
        })
    });
    g.bench_function("dga_scan", |b| {
        let detector = nxd_dga::DgaDetector::default();
        b.iter(|| {
            black_box(origin_analysis::dga_scan(
                names.iter().map(|s| s.as_str()),
                &detector,
            ))
        })
    });
    g.bench_function("fig8_blocklist_xref", |b| {
        b.iter(|| {
            black_box(origin_analysis::blocklist_xref(
                names.iter().map(|s| s.as_str()),
                &world.blocklist,
                names.len() * 20 / 91,
                1_000,
                1_000,
            ))
        })
    });
    g.finish();
}

fn bench_security_figures(c: &mut Criterion) {
    let world = honeypot_world_small();
    let mut g = c.benchmark_group("experiments-security");
    g.sample_size(10);
    // E-TAB1 + E-FIG10 + E-FIG13/14/15 all come out of one pipeline run.
    g.bench_function("table1_full_pipeline", |b| {
        b.iter(|| black_box(security::run(&world)))
    });
    // E-FILTER in isolation.
    g.bench_function("filter_only", |b| {
        use nxd_honeypot::{ControlGroupProfile, NoHostingBaseline, NoiseFilter};
        let filter = NoiseFilter::new(
            NoHostingBaseline::from_packets(&world.baseline_packets),
            ControlGroupProfile::from_packets(&world.control_packets),
        );
        let packets = world.captures[0].packets.clone();
        b.iter(|| black_box(filter.apply(packets.clone())))
    });
    // Categorization in isolation (the Fig. 11 logic).
    g.bench_function("categorize_only", |b| {
        use nxd_honeypot::Categorizer;
        let categorizer = Categorizer::new(
            world.captures[0].spec.name,
            world.webfilter.clone(),
            world.reverse_dns.clone(),
        );
        b.iter(|| black_box(categorizer.tally(&world.captures[0].packets)))
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload-generation");
    g.sample_size(10);
    g.bench_function("era_world", |b| {
        b.iter(|| black_box(era_world_small().db.row_count()))
    });
    g.bench_function("origin_world", |b| {
        b.iter(|| black_box(origin_world_small().domains.len()))
    });
    g.bench_function("honeypot_world", |b| {
        b.iter(|| black_box(honeypot_world_small().captures.len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scale_figures,
    bench_origin_figures,
    bench_security_figures,
    bench_workload_generation
);
criterion_main!(benches);
