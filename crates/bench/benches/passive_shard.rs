//! Serial vs sharded passive-DNS query engine on a large synthetic fixture.
//!
//! This bench backs the CI `bench-gate` job: the composite analysis suite
//! (headline scalars, monthly trend, TLD distribution, lifespan decay) runs
//! against the serial `PassiveDb` and against `ShardedStore` at 1/2/4/8
//! shards. CI parses the `bench <name> <ns> ns/iter` lines into
//! `BENCH_4.json` and fails if the sharded engine is slower than serial at
//! 4+ shards.
//!
//! Set `NXD_BENCH_QUICK=1` for a smaller fixture and fewer samples (the CI
//! configuration); the default is a heavier local run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use nxd_dns_wire::RCode;
use nxd_passive_dns::{query, PassiveDb, ShardedStore};

/// Deterministic splitmix64 — the workspace has no rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const TLDS: [&str; 8] = ["com", "net", "org", "cn", "ru", "info", "biz", "io"];

/// Builds the large fixture: `rows` observations over `names` distinct
/// qnames spread across ~4 years of days, mostly NXDomain with a NoError
/// admixture, deterministic for a given seed.
fn fixture(rows: usize, names: usize) -> PassiveDb {
    let mut rng = 0x0DDB_1A5E_5EED_0001u64;
    let mut db = PassiveDb::new();
    for _ in 0..rows {
        let r = splitmix64(&mut rng);
        let name_idx = (r as usize) % names;
        let tld = TLDS[name_idx % TLDS.len()];
        let day = 16_000 + ((r >> 20) % 1_500) as u32;
        let sensor = ((r >> 36) % 32) as u16;
        let rcode = if r.is_multiple_of(10) {
            RCode::NoError
        } else {
            RCode::NxDomain
        };
        let count = 1 + ((r >> 48) % 8) as u32;
        db.record_str(&format!("host-{name_idx}.{tld}"), day, sensor, rcode, count);
    }
    db
}

/// The composite analysis suite over the serial engine; returns a digest so
/// the optimizer cannot elide any query.
fn suite_serial(db: &PassiveDb) -> u64 {
    let mut digest = query::total_nx_responses(db);
    digest ^= query::distinct_nx_names(db);
    digest ^= query::monthly_nx_series(db).len() as u64;
    digest ^= query::tld_distribution(db)
        .first()
        .map(|t| t.nx_queries)
        .unwrap_or(0);
    digest ^= query::lifespan_histogram(db, 60)
        .iter()
        .map(|b| b.queries)
        .sum::<u64>();
    let (names, queries) = query::long_lived_nx(db, 3 * 365);
    digest ^ names ^ queries
}

/// The same suite through the parallel sharded executor.
fn suite_sharded(store: &ShardedStore) -> u64 {
    let mut digest = store.total_nx_responses();
    digest ^= store.distinct_nx_names();
    digest ^= store.monthly_nx_series().len() as u64;
    digest ^= store
        .tld_distribution()
        .first()
        .map(|t| t.nx_queries)
        .unwrap_or(0);
    digest ^= store
        .lifespan_histogram(60)
        .iter()
        .map(|b| b.queries)
        .sum::<u64>();
    let (names, queries) = store.long_lived_nx(3 * 365);
    digest ^ names ^ queries
}

fn bench_passive_shard(c: &mut Criterion) {
    let quick = std::env::var_os("NXD_BENCH_QUICK").is_some();
    let (rows, names, samples) = if quick {
        (200_000, 40_000, 10)
    } else {
        (800_000, 120_000, 20)
    };
    let db = fixture(rows, names);

    let mut g = c.benchmark_group("passive-shard-large");
    g.sample_size(samples);
    let serial_digest = suite_serial(&db);
    g.bench_function("serial", |b| b.iter(|| black_box(suite_serial(&db))));
    for shards in [1usize, 2, 4, 8] {
        let store = ShardedStore::from_db(&db, shards);
        assert_eq!(
            suite_sharded(&store),
            serial_digest,
            "sharded digest diverged at {shards} shards"
        );
        g.bench_function(&format!("sharded-{shards}"), |b| {
            b.iter(|| black_box(suite_sharded(&store)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_passive_shard);
criterion_main!(benches);
