//! Serial four-pass §5 origin analysis vs the fused sharded pipeline.
//!
//! This bench backs the second CI `bench-gate` check: the four origin legs
//! (WHOIS join, DGA scan, squat classification, blocklist xref) run as four
//! separate serial passes and as ONE fused pass over `ShardedStore` at
//! 1/2/4/8 shards. CI parses the `bench <name> <ns> ns/iter` lines into
//! `BENCH_5.json` and fails if the fused engine regresses past the gate at
//! 4+ shards.
//!
//! Set `NXD_BENCH_QUICK=1` for a smaller population and fewer samples (the
//! CI configuration); the default is a heavier local run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use nxd_bench::{origin_db, origin_xref_params};
use nxd_core::OriginPipeline;
use nxd_dga::DgaDetector;
use nxd_passive_dns::ShardedStore;
use nxd_squat::SquatClassifier;
use nxd_traffic::{origin, OriginConfig};

fn bench_origin_pipeline(c: &mut Criterion) {
    let quick = std::env::var_os("NXD_BENCH_QUICK").is_some();
    let (population, samples) = if quick { (8_000, 10) } else { (40_000, 10) };
    let world = origin::generate(OriginConfig {
        expired_total: population,
        ..Default::default()
    });
    let db = origin_db(&world);
    let detector = DgaDetector::default();
    let classifier = SquatClassifier::default();
    let pipeline = OriginPipeline {
        whois: &world.whois,
        detector: &detector,
        classifier: &classifier,
        blocklist: &world.blocklist,
        xref: origin_xref_params(db.distinct_names()),
    };

    let mut g = c.benchmark_group("origin-pipeline");
    g.sample_size(samples);
    let serial = pipeline.run_serial(&db);
    g.bench_function("serial", |b| b.iter(|| black_box(pipeline.run_serial(&db))));
    for shards in [1usize, 2, 4, 8] {
        let store = ShardedStore::from_db(&db, shards);
        assert_eq!(
            pipeline.run(&store),
            serial,
            "fused results diverged at {shards} shards"
        );
        g.bench_function(&format!("fused-{shards}"), |b| {
            b.iter(|| black_box(pipeline.run(&store)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_origin_pipeline);
criterion_main!(benches);
