//! Microbenchmarks of the observability layer itself — the instrumentation
//! must stay cheap enough to leave on in every hot path (DESIGN.md budget:
//! a counter increment well under 50 ns, i.e. invisible next to a resolver
//! cache lookup or a sensor row append).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use nxd_telemetry::{Histogram, ManualClock, Registry, Telemetry};
use std::sync::Arc;

fn bench_counter(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench_items_total");
    let labeled = registry.counter_with("bench_labeled_total", &[("stage", "ingest")]);
    let mut g = c.benchmark_group("telemetry");
    // Nanosecond-scale ops need enough iterations to outrun timer noise.
    g.sample_size(1_000_000);
    g.bench_function("counter_inc", |b| b.iter(|| black_box(&counter).inc()));
    g.bench_function("counter_inc_labeled_handle", |b| {
        b.iter(|| black_box(&labeled).inc())
    });
    // The registry lookup itself (lock + BTreeMap) — the reason components
    // hold handles instead of resolving names per increment.
    g.bench_function("registry_lookup_and_inc", |b| {
        b.iter(|| registry.counter(black_box("bench_items_total")).inc())
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let h = Histogram::new();
    let mut v = 0u64;
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(1_000_000);
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            h.record(black_box(v >> 40));
        })
    });
    g.finish();
}

fn bench_span(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    // Each enter/exit appends a SpanRecord, so keep the buffers bounded.
    g.sample_size(100_000);
    // ManualClock isolates the span bookkeeping from clock syscall cost.
    let manual = Telemetry::with_time(Arc::new(ManualClock::new()));
    g.bench_function("span_enter_exit", |b| {
        b.iter(|| drop(manual.span(black_box("bench.stage"))))
    });
    let wall = Telemetry::wall();
    g.bench_function("span_enter_exit_wall", |b| {
        b.iter(|| drop(wall.span(black_box("bench.stage"))))
    });
    g.finish();
}

criterion_group!(benches, bench_counter, bench_histogram, bench_span);
criterion_main!(benches);
