//! Streaming ingest bench — the numbers behind the CI `BENCH_8` gate.
//!
//! Replays an era-derived observation stream through `collect_stream` at
//! 1/2/4/8 producers, with the full streaming engine attached (exact
//! incremental aggregates + top-k + distinct sketch), and reports as
//! pseudo-bench lines the gate script parses:
//!
//! ```text
//! bench stream-ingest/rows-per-sec <best rows/s across fan-outs> ns/iter
//! bench stream-ingest/rows-per-sec-1p <rows/s, single producer> ns/iter
//! bench stream-ingest/sketch-bytes <approximate-plane heap bytes> ns/iter
//! bench stream-ingest/batch-query-ns <batch collect+query wall> ns/iter
//! bench stream-ingest/stream-query-ns <streaming equivalent wall> ns/iter
//! ```
//!
//! (`ns/iter` is the parser's line shape, not the unit of the first
//! three — same convention as `bigworld`'s byte counters.)
//!
//! The run is also a correctness gate: every fan-out aborts unless the
//! streaming snapshot is bit-identical to the batch `query` oracle over
//! the admitted store. CI runs this quick (`NXD_BENCH_QUICK=1`) and gates
//! with:
//!
//! ```text
//! scripts/bench_gate.py --input bench.txt --baseline BENCH_8.json \
//!     --metrics-only \
//!     --min-metric stream-ingest/rows-per-sec=150000 \
//!     --max-metric stream-ingest/sketch-bytes=262144
//! ```
//!
//! The `rows-per-sec` floor guards throughput; the `sketch-bytes` ceiling
//! pins the approximate plane's O(k + 2^p) memory contract — a sketch
//! that silently grew with the stream would trip it.

use std::time::Instant;

use nxd_bench::era_world_small;
use nxd_dns_wire::RCode;
use nxd_passive_dns::stream::WindowConfig;
use nxd_passive_dns::{
    collect_sharded, collect_stream, query, PassiveDb, SieProducer, StreamConfig, StreamEngine,
};

type Row = (String, u32, u16, u8, u32);

/// Event-time-ordered observation stream, replicated `factor` times with
/// distinct name suffixes so the full mode has real volume.
fn corpus(factor: usize) -> Vec<Row> {
    let world = era_world_small();
    let mut rows: Vec<Row> = Vec::new();
    for rep in 0..factor {
        rows.extend(world.db.rows().map(|o| {
            let base = world.db.interner().resolve(o.name);
            let name = if rep == 0 {
                base.to_string()
            } else {
                format!("r{rep}-{base}")
            };
            (name, o.day, o.sensor, o.rcode, o.count)
        }));
    }
    rows.sort_by_key(|&(_, day, _, _, _)| day);
    rows
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window: WindowConfig {
            window_days: 30,
            allowed_lateness_days: 365,
        },
        ..StreamConfig::default()
    }
}

fn producers_for(rows: &[Row], producer_count: usize) -> Vec<Box<dyn FnOnce(SieProducer) + Send>> {
    (0..producer_count)
        .map(|p| {
            let mine: Vec<Row> = rows
                .iter()
                .skip(p)
                .step_by(producer_count)
                .cloned()
                .collect();
            Box::new(move |producer: SieProducer| {
                for chunk in mine.chunks(512) {
                    let mut shard = PassiveDb::new();
                    for (name, day, sensor, rcode, count) in chunk {
                        shard.record_str(name, *day, *sensor, RCode::from_u8(*rcode), *count);
                    }
                    producer.submit(shard);
                }
            }) as Box<dyn FnOnce(SieProducer) + Send>
        })
        .collect()
}

/// One timed streaming run; asserts snapshot ≡ oracle before returning.
fn run_stream(rows: &[Row], producer_count: usize) -> (f64, u64, usize) {
    let engine = StreamEngine::new(stream_config());
    let producers = producers_for(rows, producer_count);
    let t0 = Instant::now();
    let outcome = collect_stream(producers, 2, 4, &engine).expect("stream collect");
    let elapsed = t0.elapsed();
    let snap = engine.snapshot();

    assert_eq!(
        outcome.store.row_count() + outcome.late.row_count(),
        rows.len(),
        "stream dropped rows at {producer_count} producers"
    );
    let admitted = outcome.store.to_serial();
    assert_eq!(snap.rcode_breakdown, query::rcode_breakdown(&admitted));
    assert_eq!(
        snap.total_nx_responses,
        query::total_nx_responses(&admitted)
    );
    assert_eq!(snap.distinct_nx_names, query::distinct_nx_names(&admitted));
    assert_eq!(snap.monthly_nx, query::monthly_nx_series(&admitted));
    assert_eq!(snap.nx_by_sensor, query::nx_by_sensor(&admitted));
    assert_eq!(snap.tld_distribution, query::tld_distribution(&admitted));

    let rate = rows.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    (rate, elapsed.as_nanos() as u64, snap.approx_heap_bytes)
}

fn main() {
    let quick = std::env::var_os("NXD_BENCH_QUICK").is_some();
    let rows = corpus(if quick { 1 } else { 8 });
    eprintln!(
        "stream-ingest: {} rows ({} mode)",
        rows.len(),
        if quick { "quick" } else { "full" }
    );

    // Batch reference: collect everything, then query once at the end —
    // the latency the streaming plane removes.
    let t0 = Instant::now();
    let batch_producers = producers_for(&rows, 4);
    let store = collect_sharded(batch_producers, 2, 4).expect("batch collect");
    let batch_db = store.to_serial();
    let batch = (
        query::rcode_breakdown(&batch_db),
        query::total_nx_responses(&batch_db),
        query::monthly_nx_series(&batch_db),
        query::tld_distribution(&batch_db),
    );
    let batch_ns = t0.elapsed().as_nanos() as u64;
    assert!(batch.1 > 0, "era corpus must contain NXDOMAINs");

    let mut best_rate = 0.0f64;
    let mut one_producer_rate = 0.0f64;
    let mut stream_ns = 0u64;
    let mut sketch_bytes = 0usize;
    for producer_count in [1usize, 2, 4, 8] {
        let (rate, elapsed_ns, bytes) = run_stream(&rows, producer_count);
        eprintln!("stream-ingest: {producer_count} producers → {rate:.0} rows/s");
        if producer_count == 1 {
            one_producer_rate = rate;
        }
        if rate > best_rate {
            best_rate = rate;
            stream_ns = elapsed_ns;
        }
        sketch_bytes = bytes;
    }

    println!(
        "bench stream-ingest/rows-per-sec {} ns/iter",
        best_rate as u64
    );
    println!(
        "bench stream-ingest/rows-per-sec-1p {} ns/iter",
        one_producer_rate as u64
    );
    println!("bench stream-ingest/sketch-bytes {sketch_bytes} ns/iter");
    println!("bench stream-ingest/batch-query-ns {batch_ns} ns/iter");
    println!("bench stream-ingest/stream-query-ns {stream_ns} ns/iter");
}
