//! Big-world benchmark backing the `BENCH_6` CI gate: the compressed
//! columnar sharded engine against the flat serial reference on a
//! deterministic multi-million-name world.
//!
//! Two stores are populated from the identical observation stream
//! (`nxd_traffic::bigworld`): a flat [`PassiveDb::uncompressed`] scanned by
//! the serial per-row `query` engine, and the default compressed layout
//! fanned out through [`ShardedStore`], whose whole-store group-bys are
//! answered from per-block summaries without decoding. Result parity is
//! asserted bit-for-bit before anything is timed.
//!
//! Besides the timing lines, the bench prints the compression metric the
//! gate enforces, in the same `bench <name> <n> ns/iter` shape the parser
//! already understands:
//!
//! ```text
//! bench bigworld/row-bytes <uncompressed bytes> ns/iter
//! bench bigworld/compressed-bytes <compressed bytes> ns/iter
//! ```
//!
//! CI runs this quick (`NXD_BENCH_QUICK=1`) and gates with
//!
//! ```text
//! bench_gate.py --input out.txt --baseline BENCH_6.json --group bigworld \
//!     --serial serial --gated fused-4 fused-8 --min-speedup 2.0 \
//!     --ratio-max 0.5 --ratio-numer bigworld/compressed-bytes \
//!     --ratio-denom bigworld/row-bytes
//! ```
//!
//! Set `NXD_BIGWORLD_ROWS` / `NXD_BIGWORLD_NAMES` to resize locally.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use nxd_passive_dns::{query, PassiveDb, ShardedStore};
use nxd_traffic::bigworld::{self, BigWorldConfig};

/// The composite suite: every query family the compressed engine can
/// answer from block summaries or a dense single decode, folded into one
/// digest so the optimizer cannot elide anything.
fn suite_serial(db: &PassiveDb) -> u64 {
    let mut digest = query::total_nx_responses(db);
    digest ^= query::monthly_nx_series(db)
        .iter()
        .map(|&(m, n)| (m as u64).wrapping_mul(31).wrapping_add(n))
        .fold(0, u64::wrapping_add);
    digest ^= query::tld_distribution(db)
        .first()
        .map(|t| t.nx_queries)
        .unwrap_or(0);
    digest ^= query::lifespan_histogram(db, 60)
        .iter()
        .map(|b| b.queries)
        .fold(0, u64::wrapping_add);
    digest ^= query::rcode_breakdown(db)
        .iter()
        .map(|&(rc, n)| u64::from(rc).wrapping_mul(131).wrapping_add(n))
        .fold(0, u64::wrapping_add);
    digest ^= query::nx_by_sensor(db)
        .iter()
        .map(|(&s, &n)| u64::from(s).wrapping_mul(17).wrapping_add(n))
        .fold(0, u64::wrapping_add);
    digest
}

/// The same suite through the compressed sharded executor.
fn suite_fused(store: &ShardedStore) -> u64 {
    let mut digest = store.total_nx_responses();
    digest ^= store
        .monthly_nx_series()
        .iter()
        .map(|&(m, n)| (m as u64).wrapping_mul(31).wrapping_add(n))
        .fold(0, u64::wrapping_add);
    digest ^= store
        .tld_distribution()
        .first()
        .map(|t| t.nx_queries)
        .unwrap_or(0);
    digest ^= store
        .lifespan_histogram(60)
        .iter()
        .map(|b| b.queries)
        .fold(0, u64::wrapping_add);
    digest ^= store
        .rcode_breakdown()
        .iter()
        .map(|&(rc, n)| u64::from(rc).wrapping_mul(131).wrapping_add(n))
        .fold(0, u64::wrapping_add);
    digest ^= store
        .nx_by_sensor()
        .iter()
        .map(|(&s, &n)| u64::from(s).wrapping_mul(17).wrapping_add(n))
        .fold(0, u64::wrapping_add);
    digest
}

fn bench_bigworld(c: &mut Criterion) {
    let quick = std::env::var_os("NXD_BENCH_QUICK").is_some();
    let cfg = BigWorldConfig::from_env();

    let mut flat = PassiveDb::uncompressed();
    bigworld::populate(&mut flat, &cfg);
    let mut compressed = PassiveDb::new();
    bigworld::populate(&mut compressed, &cfg);
    assert_eq!(flat.row_count(), compressed.row_count());

    // Compression metric lines for the gate's ratio check. The parser only
    // understands `bench <name> <n> ns/iter`, so bytes ride the same shape.
    println!("bench bigworld/row-bytes {} ns/iter", flat.row_bytes());
    println!(
        "bench bigworld/compressed-bytes {} ns/iter",
        compressed.compressed_bytes()
    );

    let mut g = c.benchmark_group("bigworld");
    g.sample_size(if quick { 10 } else { 12 });
    let serial_digest = suite_serial(&flat);
    g.bench_function("serial", |b| b.iter(|| black_box(suite_serial(&flat))));
    for shards in [2usize, 4, 8] {
        let store = ShardedStore::from_db(&compressed, shards);
        assert_eq!(
            suite_fused(&store),
            serial_digest,
            "compressed engine diverged from flat serial at {shards} shards"
        );
        g.bench_function(&format!("fused-{shards}"), |b| {
            b.iter(|| black_box(suite_fused(&store)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bigworld);
criterion_main!(benches);
