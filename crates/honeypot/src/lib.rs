//! # nxd-honeypot
//!
//! NXD-Honeypot (§3.4, §6): the traffic recorder, the two-step noise filter
//! of Fig. 9 (no-hosting baseline + control group), the sensitive-URI
//! vulnerability table, the FortiGuard-style referrer filter, the Fig. 11
//! traffic categorizer producing Table 1's ten columns, and the ethics
//! landing page.
//!
//! ```
//! use nxd_honeypot::{Categorizer, Packet, TrafficCategory, WebFilter};
//! use nxd_dns_sim::ReverseDns;
//! use nxd_httpsim::HttpRequest;
//!
//! let categorizer = Categorizer::new("resheba.online", WebFilter::new(), ReverseDns::new());
//! let probe = Packet::http(
//!     HttpRequest::get("/wp-login.php").with_header("User-Agent", "python-requests/2.28"),
//! );
//! let tally = categorizer.tally(&[probe]);
//! assert_eq!(tally[&TrafficCategory::MaliciousRequest], 1);
//! ```

pub mod categorize;
pub mod filter;
pub mod landing;
pub mod packet;
pub mod pcap;
pub mod recorder;
pub mod responder;
pub mod vulndb;
pub mod webfilter;

pub use categorize::{Categorizer, TrafficCategory};
pub use filter::{ControlGroupProfile, FilterStats, NoHostingBaseline, NoiseFilter};
pub use packet::{port_service, Packet, Payload, Transport};
pub use pcap::{parse_pcap, PcapRecord, PcapWriter};
pub use recorder::TrafficRecorder;
pub use responder::{Interaction, InteractionStats, InteractiveResponder};
pub use vulndb::{is_sensitive, severity, Severity};
pub use webfilter::{ReferralKind, WebFilter};
