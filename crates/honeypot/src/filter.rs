//! The two-step noise filter of §6.1 / Fig. 9.
//!
//! Step 1 — *no-hosting baseline*: run bare cloud instances with no domain
//! attached; every source IP seen there is random IP scanning and is
//! excluded from the real collection.
//!
//! Step 2 — *control group*: register fresh never-registered domains with
//! the same landing page; their traffic is, by construction, caused only by
//! domain registration/establishment (certificate validation, new-domain
//! crawlers, cloud monitors). Its source IPs, URIs, and hostnames become
//! exclusion parameters.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use nxd_telemetry::{Counter, Registry};

use crate::packet::Packet;

/// Exclusion profile distilled from the no-hosting run.
#[derive(Debug, Default, Clone)]
pub struct NoHostingBaseline {
    pub src_ips: HashSet<Ipv4Addr>,
}

impl NoHostingBaseline {
    /// Builds the profile from packets recorded on bare instances.
    pub fn from_packets(packets: &[Packet]) -> Self {
        NoHostingBaseline {
            src_ips: packets.iter().map(|p| p.src_ip).collect(),
        }
    }
}

/// Exclusion profile distilled from the control-group domains.
#[derive(Debug, Default, Clone)]
pub struct ControlGroupProfile {
    pub src_ips: HashSet<Ipv4Addr>,
    /// URI paths characteristic of establishment traffic
    /// (ACME validation, new-domain probes).
    pub paths: HashSet<String>,
    /// Hostnames (Host header values) probed during establishment.
    pub hosts: HashSet<String>,
}

impl ControlGroupProfile {
    pub fn from_packets(packets: &[Packet]) -> Self {
        let mut profile = ControlGroupProfile::default();
        for p in packets {
            profile.src_ips.insert(p.src_ip);
            if let Some(req) = p.http_request() {
                profile.paths.insert(req.uri.path.clone());
                if let Some(host) = req.host() {
                    profile.hosts.insert(host.to_string());
                }
            }
        }
        profile
    }
}

/// How many packets each stage removed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FilterStats {
    pub input: u64,
    pub dropped_no_hosting: u64,
    pub dropped_control: u64,
    pub kept: u64,
}

/// Per-stage telemetry counters for [`NoiseFilter::apply`]. Detached cells
/// until [`NoiseFilter::attach_metrics`] re-homes them onto a registry.
#[derive(Debug, Default, Clone)]
struct FilterMetrics {
    input: Counter,
    dropped_no_hosting: Counter,
    dropped_control: Counter,
    kept: Counter,
}

impl FilterMetrics {
    fn registered(registry: &Registry) -> Self {
        FilterMetrics {
            input: registry.counter("honeypot_filter_input_total"),
            dropped_no_hosting: registry.counter("honeypot_filter_dropped_no_hosting_total"),
            dropped_control: registry.counter("honeypot_filter_dropped_control_total"),
            kept: registry.counter("honeypot_filter_kept_total"),
        }
    }
}

/// The assembled filter.
#[derive(Debug, Default, Clone)]
pub struct NoiseFilter {
    baseline: NoHostingBaseline,
    control: ControlGroupProfile,
    metrics: FilterMetrics,
}

impl NoiseFilter {
    pub fn new(baseline: NoHostingBaseline, control: ControlGroupProfile) -> Self {
        NoiseFilter {
            baseline,
            control,
            metrics: FilterMetrics::default(),
        }
    }

    /// Re-homes the filter's counters onto `registry` (as
    /// `honeypot_filter_{input,dropped_no_hosting,dropped_control,kept}_total`),
    /// carrying current values over.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let next = FilterMetrics::registered(registry);
        next.input.add(self.metrics.input.get());
        next.dropped_no_hosting
            .add(self.metrics.dropped_no_hosting.get());
        next.dropped_control.add(self.metrics.dropped_control.get());
        next.kept.add(self.metrics.kept.get());
        self.metrics = next;
    }

    /// Whether a packet is establishment noise per the control profile.
    ///
    /// A control-group *source IP* is noise outright (the same ACME/scanner
    /// infrastructure probes every new domain). A control-group *path* only
    /// counts as noise when the path is establishment-specific (appears in
    /// control but is not plain content like `/`): filtering on bare `/`
    /// would delete real user traffic, which is why the paper calls simple
    /// hostname filters "insufficient" and combines parameters.
    fn is_control_noise(&self, packet: &Packet) -> bool {
        if self.control.src_ips.contains(&packet.src_ip) {
            return true;
        }
        if let Some(req) = packet.http_request() {
            if req.uri.path != "/" && self.control.paths.contains(&req.uri.path) {
                return true;
            }
        }
        false
    }

    /// Applies both stages, returning kept packets and per-stage counts.
    pub fn apply(&self, packets: Vec<Packet>) -> (Vec<Packet>, FilterStats) {
        let mut stats = FilterStats {
            input: packets.len() as u64,
            ..Default::default()
        };
        let mut kept = Vec::with_capacity(packets.len());
        for p in packets {
            if self.baseline.src_ips.contains(&p.src_ip) {
                stats.dropped_no_hosting += 1;
            } else if self.is_control_noise(&p) {
                stats.dropped_control += 1;
            } else {
                kept.push(p);
            }
        }
        stats.kept = kept.len() as u64;
        self.metrics.input.add(stats.input);
        self.metrics
            .dropped_no_hosting
            .add(stats.dropped_no_hosting);
        self.metrics.dropped_control.add(stats.dropped_control);
        self.metrics.kept.add(stats.kept);
        (kept, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Transport;
    use nxd_httpsim::HttpRequest;

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, n)
    }

    fn http(path: &str, src: Ipv4Addr) -> Packet {
        Packet::http(
            HttpRequest::get(path)
                .with_src(src)
                .with_header("Host", "resheba.online"),
        )
    }

    fn filter() -> NoiseFilter {
        // Scanner 1 appears pre-hosting; ACME (ip 2) probed the control
        // group on the well-known path.
        let baseline =
            NoHostingBaseline::from_packets(&[Packet::raw(ip(1), 22, Transport::Tcp, 0, b"")]);
        let control = ControlGroupProfile::from_packets(&[
            Packet::http(
                HttpRequest::get("/.well-known/acme-challenge/token")
                    .with_src(ip(2))
                    .with_header("Host", "control-0.com"),
            ),
            http("/", ip(3)),
        ]);
        NoiseFilter::new(baseline, control)
    }

    #[test]
    fn drops_no_hosting_sources_first() {
        let f = filter();
        let (kept, stats) = f.apply(vec![http("/page", ip(1)), http("/page", ip(9))]);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.dropped_no_hosting, 1);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn drops_control_sources_and_paths() {
        let f = filter();
        let (kept, stats) = f.apply(vec![
            http("/anything", ip(2)),                         // control source IP
            http("/.well-known/acme-challenge/token", ip(9)), // control path
            http("/real-content.html", ip(10)),
        ]);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.dropped_control, 2);
        assert_eq!(
            kept[0].http_request().unwrap().uri.path,
            "/real-content.html"
        );
    }

    #[test]
    fn root_path_survives_even_if_in_control() {
        // "/" was fetched by a control-group visitor (ip 3) but a fresh
        // visitor hitting "/" must not be filtered.
        let f = filter();
        let (kept, stats) = f.apply(vec![http("/", ip(20))]);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.dropped_control, 0);
    }

    #[test]
    fn aws_monitor_traffic_removed_via_baseline() {
        // Port 52646 AWS monitor appears in the no-hosting run (Fig. 10b)
        // and must vanish from the NXDomain view (Fig. 10a).
        let monitor_ip = ip(40);
        let baseline = NoHostingBaseline::from_packets(&[Packet::raw(
            monitor_ip,
            52_646,
            Transport::Tcp,
            0,
            b"",
        )]);
        let f = NoiseFilter::new(baseline, ControlGroupProfile::default());
        let (kept, stats) = f.apply(vec![
            Packet::raw(monitor_ip, 52_646, Transport::Tcp, 1, b""),
            http("/x", ip(41)),
        ]);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.dropped_no_hosting, 1);
        assert!(kept[0].is_http());
    }

    #[test]
    fn attach_metrics_mirrors_stats() {
        let registry = Registry::new();
        let mut f = filter();
        f.attach_metrics(&registry);
        let (_, stats) = f.apply(vec![
            http("/a", ip(1)),
            http("/b", ip(2)),
            http("/c", ip(30)),
        ]);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_total("honeypot_filter_input_total"),
            stats.input
        );
        assert_eq!(
            snap.counter_total("honeypot_filter_dropped_no_hosting_total"),
            stats.dropped_no_hosting
        );
        assert_eq!(
            snap.counter_total("honeypot_filter_dropped_control_total"),
            stats.dropped_control
        );
        assert_eq!(snap.counter_total("honeypot_filter_kept_total"), stats.kept);
    }

    #[test]
    fn stats_add_up() {
        let f = filter();
        let input = vec![
            http("/a", ip(1)),
            http("/b", ip(2)),
            http("/c", ip(30)),
            http("/d", ip(31)),
        ];
        let (_, stats) = f.apply(input);
        assert_eq!(stats.input, 4);
        assert_eq!(
            stats.dropped_no_hosting + stats.dropped_control + stats.kept,
            stats.input
        );
    }
}
