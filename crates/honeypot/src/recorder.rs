//! The traffic recorder: accepts every inbound packet and answers the
//! port-distribution and stream-repetition questions the analysis needs.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use nxd_telemetry::{Counter, Registry};

use crate::packet::Packet;

/// Recorder attached to one hosting server (optionally serving a domain).
#[derive(Debug, Default)]
pub struct TrafficRecorder {
    /// Domain hosted on this server; `None` for the no-hosting baseline run.
    pub domain: Option<String>,
    packets: Vec<Packet>,
    packets_total: Counter,
}

impl TrafficRecorder {
    /// A recorder for a server hosting `domain`.
    pub fn for_domain(domain: &str) -> Self {
        TrafficRecorder {
            domain: Some(domain.to_string()),
            packets: Vec::new(),
            packets_total: Counter::new(),
        }
    }

    /// A recorder for a bare cloud instance (§6.1's no-hosting phase).
    pub fn no_hosting() -> Self {
        TrafficRecorder::default()
    }

    /// Counts recorded packets on `registry` as
    /// `honeypot_recorded_packets_total{phase=...}` (phase: the hosted
    /// domain, or `no-hosting`), carrying the current count over. The
    /// counter is cumulative — unlike [`TrafficRecorder::take_packets`], it
    /// is not reset by draining.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let phase = self.domain.as_deref().unwrap_or("no-hosting");
        let next = registry.counter_with("honeypot_recorded_packets_total", &[("phase", phase)]);
        next.add(self.packets_total.get());
        self.packets_total = next;
    }

    /// Records one packet.
    pub fn record(&mut self, packet: Packet) {
        self.packets_total.inc();
        self.packets.push(packet);
    }

    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    pub fn len(&self) -> usize {
        self.packets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Distinct source addresses seen (the no-hosting exclusion list).
    pub fn source_ips(&self) -> std::collections::HashSet<Ipv4Addr> {
        self.packets.iter().map(|p| p.src_ip).collect()
    }

    /// Packets per destination port, descending (Fig. 10).
    pub fn port_histogram(&self) -> Vec<(u16, u64)> {
        let mut counts: HashMap<u16, u64> = HashMap::new();
        for p in &self.packets {
            *counts.entry(p.dst_port).or_insert(0) += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// `(src_ip, path) → request count` over HTTP packets — the stream
    /// detector behind "the same URI is requested multiple times by the same
    /// IP address" (§6.3).
    pub fn stream_counts(&self) -> HashMap<(Ipv4Addr, String), u64> {
        let mut counts = HashMap::new();
        for p in &self.packets {
            if let Some(req) = p.http_request() {
                *counts.entry((p.src_ip, req.uri.path.clone())).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Drains recorded packets (used when feeding the filter pipeline).
    pub fn take_packets(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Transport;
    use nxd_httpsim::HttpRequest;

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, n)
    }

    #[test]
    fn records_and_counts() {
        let mut r = TrafficRecorder::for_domain("resheba.online");
        r.record(Packet::http(
            HttpRequest::get("/a").with_src(ip(1)).with_port(80),
        ));
        r.record(Packet::http(
            HttpRequest::get("/a").with_src(ip(1)).with_port(80),
        ));
        r.record(Packet::raw(ip(2), 22, Transport::Tcp, 0, b"probe"));
        assert_eq!(r.len(), 3);
        assert_eq!(r.source_ips().len(), 2);
    }

    #[test]
    fn port_histogram_sorted() {
        let mut r = TrafficRecorder::no_hosting();
        for _ in 0..3 {
            r.record(Packet::raw(ip(1), 52_646, Transport::Tcp, 0, b""));
        }
        r.record(Packet::raw(ip(1), 22, Transport::Tcp, 0, b""));
        let hist = r.port_histogram();
        assert_eq!(hist[0], (52_646, 3));
        assert_eq!(hist[1], (22, 1));
    }

    #[test]
    fn stream_counts_group_by_ip_and_path() {
        let mut r = TrafficRecorder::for_domain("1x-sport-bk7.com");
        for _ in 0..5 {
            r.record(Packet::http(
                HttpRequest::get("/status.json").with_src(ip(7)),
            ));
        }
        r.record(Packet::http(
            HttpRequest::get("/status.json").with_src(ip(8)),
        ));
        let streams = r.stream_counts();
        assert_eq!(streams[&(ip(7), "/status.json".to_string())], 5);
        assert_eq!(streams[&(ip(8), "/status.json".to_string())], 1);
    }

    #[test]
    fn take_packets_drains() {
        let mut r = TrafficRecorder::no_hosting();
        r.record(Packet::raw(ip(1), 80, Transport::Tcp, 0, b""));
        let taken = r.take_packets();
        assert_eq!(taken.len(), 1);
        assert!(r.is_empty());
    }
}
