//! The traffic categorizer of §6.2 / Fig. 11, producing exactly Table 1's
//! ten columns.
//!
//! Decision order follows the paper: ① Referer, ② User-Agent, ③ requested
//! URI, ④ source IP (reverse lookup). Repetitive single-URI streams from
//! browser User-Agents are classified as automated — this is what moves
//! `1x-sport-bk7.com`'s Chrome-labelled `status.json` storm into
//! *Script & Software* rather than *User Visit*.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use nxd_telemetry::{Counter, Registry};

use nxd_dns_sim::ReverseDns;
use nxd_httpsim::{classify_user_agent, HttpRequest, UaClass};

use crate::packet::Packet;
use crate::vulndb;
use crate::webfilter::{ReferralKind, WebFilter};

/// Table 1's traffic categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficCategory {
    /// Web Crawler → Search Engine.
    SearchEngineCrawler,
    /// Web Crawler → File Grabber (includes e-mail image crawlers).
    FileGrabber,
    /// Automated Process → Script & Software.
    ScriptSoftware,
    /// Automated Process → Malicious Request (vulnerability probes).
    MaliciousRequest,
    /// Referral → Search Engine.
    ReferralSearchEngine,
    /// Referral → Embedded URL/URI.
    ReferralEmbedded,
    /// Referral → Malicious Link (crafted/invalid referers).
    ReferralMalicious,
    /// User Visit → PC & Mobile browsers.
    UserPcMobile,
    /// User Visit → In-App browsers.
    UserInApp,
    /// Everything else (non-HTTP probes, anonymous connectivity checks).
    Other,
}

impl TrafficCategory {
    pub const ALL: [TrafficCategory; 10] = [
        TrafficCategory::SearchEngineCrawler,
        TrafficCategory::FileGrabber,
        TrafficCategory::ScriptSoftware,
        TrafficCategory::MaliciousRequest,
        TrafficCategory::ReferralSearchEngine,
        TrafficCategory::ReferralEmbedded,
        TrafficCategory::ReferralMalicious,
        TrafficCategory::UserPcMobile,
        TrafficCategory::UserInApp,
        TrafficCategory::Other,
    ];

    pub fn label(self) -> &'static str {
        match self {
            TrafficCategory::SearchEngineCrawler => "Search Engine",
            TrafficCategory::FileGrabber => "File Grabber",
            TrafficCategory::ScriptSoftware => "Script & Software",
            TrafficCategory::MaliciousRequest => "Malicious Request",
            TrafficCategory::ReferralSearchEngine => "Referral: Search Engine",
            TrafficCategory::ReferralEmbedded => "Referral: Embedded URL",
            TrafficCategory::ReferralMalicious => "Referral: Malicious Link",
            TrafficCategory::UserPcMobile => "User: PC & Mobile",
            TrafficCategory::UserInApp => "User: In-App Browser",
            TrafficCategory::Other => "Others",
        }
    }

    /// Machine-friendly identifier, used as the `category` label value on
    /// `honeypot_categorized_total`.
    pub fn slug(self) -> &'static str {
        match self {
            TrafficCategory::SearchEngineCrawler => "search_engine_crawler",
            TrafficCategory::FileGrabber => "file_grabber",
            TrafficCategory::ScriptSoftware => "script_software",
            TrafficCategory::MaliciousRequest => "malicious_request",
            TrafficCategory::ReferralSearchEngine => "referral_search_engine",
            TrafficCategory::ReferralEmbedded => "referral_embedded",
            TrafficCategory::ReferralMalicious => "referral_malicious",
            TrafficCategory::UserPcMobile => "user_pc_mobile",
            TrafficCategory::UserInApp => "user_in_app",
            TrafficCategory::Other => "other",
        }
    }
}

/// Reverse-DNS providers trusted as crawler infrastructure (§6.2 ④: "if the
/// reverse IP lookup results in a hostname that belongs to a popular
/// service, such as Google or Yahoo crawler").
const CRAWLER_PROVIDERS: &[&str] = &[
    "googlebot.com",
    "google.com",
    "yahoo.com",
    "msn.com",
    "yandex.ru",
    "mail.ru",
    "baidu.com",
];

/// Extensions a search-engine crawler fetches (HTML pages); anything else a
/// crawler requests makes it a file grabber.
fn is_page_fetch(req: &HttpRequest) -> bool {
    match req.uri.extension() {
        None => true,
        Some(ext) => matches!(
            ext.as_str(),
            "html" | "htm" | "xhtml" | "php" | "asp" | "aspx"
        ),
    }
}

/// The categorizer, bound to one registered domain.
#[derive(Debug, Clone)]
pub struct Categorizer {
    /// The registered domain whose traffic is being analyzed.
    pub domain: String,
    pub webfilter: WebFilter,
    pub reverse_dns: ReverseDns,
    /// Requests from one `(ip, path)` at or above this count are streams.
    pub stream_threshold: u64,
    /// One counter per category, keyed by [`TrafficCategory::ALL`] order.
    /// Detached cells until [`Categorizer::attach_metrics`].
    categorized: Vec<Counter>,
}

impl Categorizer {
    pub fn new(domain: &str, webfilter: WebFilter, reverse_dns: ReverseDns) -> Self {
        Categorizer {
            domain: domain.to_string(),
            webfilter,
            reverse_dns,
            stream_threshold: 5,
            categorized: TrafficCategory::ALL
                .iter()
                .map(|_| Counter::new())
                .collect(),
        }
    }

    /// Re-homes the per-category decision counters onto `registry` (as
    /// `honeypot_categorized_total{category=<slug>}`), carrying current
    /// values over.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let next: Vec<Counter> = TrafficCategory::ALL
            .iter()
            .map(|cat| {
                registry.counter_with("honeypot_categorized_total", &[("category", cat.slug())])
            })
            .collect();
        for (counter, old) in next.iter().zip(&self.categorized) {
            counter.add(old.get());
        }
        self.categorized = next;
    }

    fn count_decision(&self, category: TrafficCategory) {
        let idx = TrafficCategory::ALL
            .iter()
            .position(|&c| c == category)
            .expect("category in ALL");
        self.categorized[idx].inc();
    }

    /// Categorizes one packet. `streams` are the per-`(ip, path)` request
    /// counts from [`crate::recorder::TrafficRecorder::stream_counts`].
    pub fn categorize(
        &self,
        packet: &Packet,
        streams: &HashMap<(Ipv4Addr, String), u64>,
    ) -> TrafficCategory {
        let category = self.categorize_inner(packet, streams);
        self.count_decision(category);
        category
    }

    fn categorize_inner(
        &self,
        packet: &Packet,
        streams: &HashMap<(Ipv4Addr, String), u64>,
    ) -> TrafficCategory {
        let Some(req) = packet.http_request() else {
            return TrafficCategory::Other;
        };

        // ① Referer.
        if let Some(referer) = req.referer() {
            return match self.webfilter.classify(referer, &self.domain) {
                ReferralKind::SearchEngine => TrafficCategory::ReferralSearchEngine,
                ReferralKind::EmbeddedUrl => TrafficCategory::ReferralEmbedded,
                ReferralKind::MaliciousLink => TrafficCategory::ReferralMalicious,
            };
        }

        let ua = req.user_agent();
        let repetitive = streams
            .get(&(packet.src_ip, req.uri.path.clone()))
            .is_some_and(|&c| c >= self.stream_threshold);

        // ② User-Agent.
        match ua.map(classify_user_agent) {
            Some(UaClass::Crawler { .. }) => {
                if is_page_fetch(req) {
                    TrafficCategory::SearchEngineCrawler
                } else {
                    TrafficCategory::FileGrabber
                }
            }
            Some(UaClass::EmailCrawler { .. }) => TrafficCategory::FileGrabber,
            Some(UaClass::ScriptTool { .. }) => self.automated(req),
            Some(UaClass::InAppBrowser { app: _ }) => {
                if repetitive {
                    self.automated(req)
                } else {
                    TrafficCategory::UserInApp
                }
            }
            Some(UaClass::Browser { .. }) => {
                if repetitive {
                    // Identical URI hammered from one address is a bot
                    // wearing a browser User-Agent.
                    self.automated(req)
                } else {
                    TrafficCategory::UserPcMobile
                }
            }
            Some(UaClass::Unknown) => {
                // ④ Source IP: a trusted crawler PTR rescues UA-less
                // fetches; otherwise it is an automated process.
                if let Some(provider) = self.reverse_dns.provider(packet.src_ip) {
                    if CRAWLER_PROVIDERS.contains(&provider.as_str()) {
                        return if is_page_fetch(req) {
                            TrafficCategory::SearchEngineCrawler
                        } else {
                            TrafficCategory::FileGrabber
                        };
                    }
                }
                self.automated(req)
            }
            None => {
                // No User-Agent at all: bare "/" fetches are anonymous
                // connectivity probes (Others); anything more specific is an
                // automated process.
                if req.uri.path == "/" && !req.uri.has_query() {
                    TrafficCategory::Other
                } else {
                    self.automated(req)
                }
            }
        }
    }

    /// ③ Requested URI: sensitive file names are vulnerability probes, and
    /// query strings carrying PII-style parameters (Fig. 12's
    /// `imei`/`phone`/`balance`) are exfiltration or tasking traffic.
    fn automated(&self, req: &HttpRequest) -> TrafficCategory {
        const SENSITIVE_PARAMS: &[&str] = &[
            "imei",
            "imsi",
            "phone",
            "msisdn",
            "password",
            "passwd",
            "pwd",
            "token",
            "card",
            "cvv",
            "ssn",
            "balance",
            "account",
            "pin",
            "creditcard",
        ];
        let pii_query = req
            .uri
            .query
            .iter()
            .any(|(k, _)| SENSITIVE_PARAMS.contains(&k.to_ascii_lowercase().as_str()));
        if vulndb::is_sensitive(&req.uri.path) || pii_query {
            TrafficCategory::MaliciousRequest
        } else {
            TrafficCategory::ScriptSoftware
        }
    }

    /// Categorizes a whole capture, returning per-category counts.
    pub fn tally(&self, packets: &[Packet]) -> HashMap<TrafficCategory, u64> {
        let mut streams: HashMap<(Ipv4Addr, String), u64> = HashMap::new();
        for p in packets {
            if let Some(req) = p.http_request() {
                *streams.entry((p.src_ip, req.uri.path.clone())).or_insert(0) += 1;
            }
        }
        let mut tally = HashMap::new();
        for p in packets {
            *tally.entry(self.categorize(p, &streams)).or_insert(0) += 1;
        }
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Transport;

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, n)
    }

    fn cat() -> Categorizer {
        let mut wf = WebFilter::new();
        wf.add_page("https://forum.example/t/1", ["resheba.online"]);
        wf.add_page("https://blog.example/p", ["unrelated.com"]);
        let mut rdns = ReverseDns::new();
        rdns.insert_range(
            "66.249.64.0".parse().unwrap(),
            19,
            "crawl-{ip}.googlebot.com",
        );
        Categorizer::new("resheba.online", wf, rdns)
    }

    fn pkt(req: HttpRequest) -> Packet {
        Packet::http(req)
    }

    fn one(c: &Categorizer, p: &Packet) -> TrafficCategory {
        c.categorize(p, &HashMap::new())
    }

    #[test]
    fn referral_branches() {
        let c = cat();
        let se = pkt(HttpRequest::get("/x")
            .with_src(ip(1))
            .with_header("Referer", "https://www.google.com/search?q=resheba"));
        assert_eq!(one(&c, &se), TrafficCategory::ReferralSearchEngine);

        let emb = pkt(HttpRequest::get("/x")
            .with_src(ip(1))
            .with_header("Referer", "https://forum.example/t/1"));
        assert_eq!(one(&c, &emb), TrafficCategory::ReferralEmbedded);

        let bad = pkt(HttpRequest::get("/x")
            .with_src(ip(1))
            .with_header("Referer", "https://blog.example/p"));
        assert_eq!(one(&c, &bad), TrafficCategory::ReferralMalicious);
    }

    #[test]
    fn crawler_split_by_requested_file() {
        let c = cat();
        let page = pkt(HttpRequest::get("/lesson.html")
            .with_src(ip(2))
            .with_header("User-Agent", "Mozilla/5.0 (compatible; Googlebot/2.1)"));
        assert_eq!(one(&c, &page), TrafficCategory::SearchEngineCrawler);

        let file = pkt(HttpRequest::get("/photo.jpeg")
            .with_src(ip(2))
            .with_header("User-Agent", "Mozilla/5.0 (compatible; Googlebot/2.1)"));
        assert_eq!(one(&c, &file), TrafficCategory::FileGrabber);
    }

    #[test]
    fn email_crawler_is_file_grabber() {
        let c = cat();
        let p = pkt(HttpRequest::get("/banner.png")
            .with_src(ip(3))
            .with_header("User-Agent", "Mozilla/5.0 (via ggpht.com GoogleImageProxy)"));
        assert_eq!(one(&c, &p), TrafficCategory::FileGrabber);
    }

    #[test]
    fn script_tools_split_by_sensitivity() {
        let c = cat();
        let ok = pkt(HttpRequest::get("/data.json")
            .with_src(ip(4))
            .with_header("User-Agent", "curl/8.0"));
        assert_eq!(one(&c, &ok), TrafficCategory::ScriptSoftware);

        let probe = pkt(HttpRequest::get("/wp-login.php")
            .with_src(ip(4))
            .with_header("User-Agent", "python-requests/2.28"));
        assert_eq!(one(&c, &probe), TrafficCategory::MaliciousRequest);
    }

    #[test]
    fn gettask_botnet_is_malicious_request() {
        // Fig. 12: Apache-HttpClient hitting getTask.php. The file name is
        // not in the NVD table, but the query string carries IMEI/phone
        // exfiltration parameters — the query-string rule flags it.
        let c = cat();
        let p = pkt(
            HttpRequest::get("/getTask.php?imei=1&phone=%2B1555&country=us")
                .with_src(ip(5))
                .with_header("User-Agent", "Apache-HttpClient/UNAVAILABLE (java 1.4)"),
        );
        // PII-bearing query strings from script tools are malicious requests.
        assert_eq!(one(&c, &p), TrafficCategory::MaliciousRequest);
    }

    #[test]
    fn user_visits() {
        let c = cat();
        let pc = pkt(HttpRequest::get("/komiks/12").with_src(ip(6)).with_header(
            "User-Agent",
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Chrome/112",
        ));
        assert_eq!(one(&c, &pc), TrafficCategory::UserPcMobile);

        let inapp = pkt(HttpRequest::get("/komiks/12")
            .with_src(ip(7))
            .with_header("User-Agent", "Mozilla/5.0 (iPhone) WhatsApp/2.21"));
        assert_eq!(one(&c, &inapp), TrafficCategory::UserInApp);
    }

    #[test]
    fn repetitive_browser_stream_is_automated() {
        let c = cat();
        let req = HttpRequest::get("/status.json")
            .with_src(ip(8))
            .with_header(
                "User-Agent",
                "Mozilla/5.0 (Windows NT 6.3; WOW64) Chrome/41.0.2272.118",
            );
        let packets: Vec<Packet> = (0..10).map(|_| pkt(req.clone())).collect();
        let tally = c.tally(&packets);
        assert_eq!(tally[&TrafficCategory::ScriptSoftware], 10);
        assert!(!tally.contains_key(&TrafficCategory::UserPcMobile));
    }

    #[test]
    fn single_browser_request_stays_user() {
        let c = cat();
        let req = HttpRequest::get("/status.json")
            .with_src(ip(8))
            .with_header("User-Agent", "Mozilla/5.0 (Windows NT 6.3) Chrome/41");
        let tally = c.tally(&[pkt(req)]);
        assert_eq!(tally[&TrafficCategory::UserPcMobile], 1);
    }

    #[test]
    fn unknown_ua_with_crawler_ptr_is_crawler() {
        let c = cat();
        let p = pkt(HttpRequest::get("/page.html")
            .with_src("66.249.66.1".parse().unwrap())
            .with_header("User-Agent", "unrecognized-fetcher/0.1"));
        assert_eq!(one(&c, &p), TrafficCategory::SearchEngineCrawler);
    }

    #[test]
    fn unknown_ua_without_ptr_is_automated() {
        let c = cat();
        let p = pkt(HttpRequest::get("/page.html")
            .with_src(ip(9))
            .with_header("User-Agent", "unrecognized-fetcher/0.1"));
        assert_eq!(one(&c, &p), TrafficCategory::ScriptSoftware);
    }

    #[test]
    fn missing_ua_root_probe_is_other() {
        let c = cat();
        let p = pkt(HttpRequest::get("/").with_src(ip(10)));
        assert_eq!(one(&c, &p), TrafficCategory::Other);
        let deeper = pkt(HttpRequest::get("/admin.php").with_src(ip(10)));
        assert_eq!(one(&c, &deeper), TrafficCategory::MaliciousRequest);
    }

    #[test]
    fn non_http_is_other() {
        let c = cat();
        let p = Packet::raw(ip(11), 22, Transport::Tcp, 0, b"SSH-2.0");
        assert_eq!(one(&c, &p), TrafficCategory::Other);
    }

    #[test]
    fn all_categories_have_labels() {
        for cat in TrafficCategory::ALL {
            assert!(!cat.label().is_empty());
            assert!(!cat.slug().is_empty());
        }
    }

    #[test]
    fn attach_metrics_counts_decisions_by_category() {
        use nxd_telemetry::Registry;
        let mut c = cat();
        let registry = Registry::new();
        // One decision before attaching carries over.
        let p = pkt(HttpRequest::get("/data.json")
            .with_src(ip(4))
            .with_header("User-Agent", "curl/8.0"));
        one(&c, &p);
        c.attach_metrics(&registry);
        one(&c, &p);
        let user = pkt(HttpRequest::get("/komiks/12").with_src(ip(6)).with_header(
            "User-Agent",
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Chrome/112",
        ));
        one(&c, &user);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("honeypot_categorized_total"), 3);
        let script = snap
            .counters
            .iter()
            .find(|(id, _)| {
                id.name() == "honeypot_categorized_total"
                    && id.labels() == [("category".to_string(), "script_software".to_string())]
            })
            .map(|&(_, v)| v);
        assert_eq!(script, Some(2));
    }
}
