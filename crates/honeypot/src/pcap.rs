//! Classic libpcap export of recorded captures.
//!
//! The smoltcp guide's examples all offer `--pcap` dumps "containing a view
//! of every packet"; NXD-Honeypot does the same so a capture can be opened
//! in Wireshark. Recorded [`Packet`]s are re-framed as Ethernet II → IPv4 →
//! TCP/UDP with correct checksums; HTTP payloads carry the serialized
//! request head.

use bytes::{BufMut, BytesMut};
use std::net::Ipv4Addr;

use crate::packet::{Packet, Payload, Transport};

/// Classic pcap magic (microsecond timestamps, big-endian writer).
const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
const LINKTYPE_ETHERNET: u32 = 1;

/// Fixed MACs for the synthetic Ethernet framing.
const SRC_MAC: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x02];
const DST_MAC: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x01];

/// Serializes packets into a classic pcap byte stream.
pub struct PcapWriter {
    buf: BytesMut,
    /// Destination (server) address stamped into every frame.
    pub server_ip: Ipv4Addr,
    packets: u32,
}

impl PcapWriter {
    /// Creates a writer; `server_ip` is the honeypot host every recorded
    /// packet was sent to.
    pub fn new(server_ip: Ipv4Addr) -> Self {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_u32(PCAP_MAGIC);
        buf.put_u16(2); // version major
        buf.put_u16(4); // version minor
        buf.put_u32(0); // thiszone
        buf.put_u32(0); // sigfigs
        buf.put_u32(65_535); // snaplen
        buf.put_u32(LINKTYPE_ETHERNET);
        PcapWriter {
            buf,
            server_ip,
            packets: 0,
        }
    }

    /// Number of packets written so far.
    pub fn packet_count(&self) -> u32 {
        self.packets
    }

    /// Appends one recorded packet.
    pub fn write_packet(&mut self, packet: &Packet) {
        let payload: Vec<u8> = match &packet.payload {
            Payload::Http(req) => req.to_bytes(),
            Payload::Raw(bytes) => bytes.clone(),
        };
        let frame = build_frame(packet, self.server_ip, &payload);
        self.buf.put_u32(packet.timestamp as u32); // ts_sec
        self.buf.put_u32(0); // ts_usec
        self.buf.put_u32(frame.len() as u32); // incl_len
        self.buf.put_u32(frame.len() as u32); // orig_len
        self.buf.put_slice(&frame);
        self.packets += 1;
    }

    /// Appends every packet of a capture.
    pub fn write_all<'a, I: IntoIterator<Item = &'a Packet>>(&mut self, packets: I) {
        for p in packets {
            self.write_packet(p);
        }
    }

    /// Finishes and returns the pcap bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

fn build_frame(packet: &Packet, dst_ip: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
    let mut frame = BytesMut::with_capacity(54 + payload.len());
    // Ethernet II.
    frame.put_slice(&DST_MAC);
    frame.put_slice(&SRC_MAC);
    frame.put_u16(0x0800); // IPv4

    let (proto, l4): (u8, Vec<u8>) = match packet.transport {
        Transport::Tcp => (6, build_tcp(packet, dst_ip, payload)),
        Transport::Udp => (17, build_udp(packet, dst_ip, payload)),
    };

    // IPv4 header (no options).
    let total_len = 20 + l4.len();
    let mut ip = BytesMut::with_capacity(20);
    ip.put_u8(0x45); // version 4, IHL 5
    ip.put_u8(0); // DSCP/ECN
    ip.put_u16(total_len as u16);
    ip.put_u16(packet.timestamp as u16); // identification (arbitrary, stable)
    ip.put_u16(0x4000); // don't fragment
    ip.put_u8(64); // TTL
    ip.put_u8(proto);
    ip.put_u16(0); // checksum placeholder
    ip.put_slice(&packet.src_ip.octets());
    ip.put_slice(&dst_ip.octets());
    let csum = ones_complement_sum(&ip);
    ip[10] = (csum >> 8) as u8;
    ip[11] = (csum & 0xFF) as u8;

    frame.put_slice(&ip);
    frame.put_slice(&l4);
    frame.to_vec()
}

fn build_tcp(packet: &Packet, dst_ip: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
    let mut tcp = BytesMut::with_capacity(20 + payload.len());
    tcp.put_u16(packet.src_port);
    tcp.put_u16(packet.dst_port);
    tcp.put_u32(1); // seq
    tcp.put_u32(1); // ack
    tcp.put_u8(0x50); // data offset 5
    tcp.put_u8(0x18); // PSH|ACK
    tcp.put_u16(0xFFFF); // window
    tcp.put_u16(0); // checksum placeholder
    tcp.put_u16(0); // urgent
    tcp.put_slice(payload);
    let csum = l4_checksum(packet.src_ip, dst_ip, 6, &tcp);
    tcp[16] = (csum >> 8) as u8;
    tcp[17] = (csum & 0xFF) as u8;
    tcp.to_vec()
}

fn build_udp(packet: &Packet, dst_ip: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
    let mut udp = BytesMut::with_capacity(8 + payload.len());
    udp.put_u16(packet.src_port);
    udp.put_u16(packet.dst_port);
    udp.put_u16(8 + payload.len() as u16);
    udp.put_u16(0); // checksum placeholder
    udp.put_slice(payload);
    let csum = l4_checksum(packet.src_ip, dst_ip, 17, &udp);
    udp[6] = (csum >> 8) as u8;
    udp[7] = (csum & 0xFF) as u8;
    udp.to_vec()
}

/// RFC 1071 checksum over a header (with its checksum field zeroed).
fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// TCP/UDP checksum including the IPv4 pseudo-header.
fn l4_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> u16 {
    let mut pseudo = BytesMut::with_capacity(12 + segment.len());
    pseudo.put_slice(&src.octets());
    pseudo.put_slice(&dst.octets());
    pseudo.put_u8(0);
    pseudo.put_u8(proto);
    pseudo.put_u16(segment.len() as u16);
    pseudo.put_slice(segment);
    ones_complement_sum(&pseudo)
}

/// A decoded pcap record (for round-trip verification and tooling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    pub ts_sec: u32,
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub transport: Transport,
    pub payload: Vec<u8>,
}

/// Parses a pcap stream produced by [`PcapWriter`] (or any classic
/// big-endian Ethernet pcap with plain IPv4 TCP/UDP).
pub fn parse_pcap(data: &[u8]) -> Result<Vec<PcapRecord>, String> {
    if data.len() < 24 {
        return Err("short global header".into());
    }
    let magic = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
    if magic != PCAP_MAGIC {
        return Err(format!("bad magic {magic:#x}"));
    }
    let mut out = Vec::new();
    let mut i = 24;
    while i + 16 <= data.len() {
        let ts_sec = u32::from_be_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        let incl =
            u32::from_be_bytes([data[i + 8], data[i + 9], data[i + 10], data[i + 11]]) as usize;
        i += 16;
        if i + incl > data.len() {
            return Err("truncated record".into());
        }
        let frame = &data[i..i + incl];
        i += incl;
        if frame.len() < 14 + 20 {
            return Err("short frame".into());
        }
        let ip = &frame[14..];
        let ihl = (ip[0] & 0x0F) as usize * 4;
        let proto = ip[9];
        let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
        let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
        let l4 = &ip[ihl..];
        let (transport, header_len) = match proto {
            6 => (Transport::Tcp, ((l4[12] >> 4) as usize) * 4),
            17 => (Transport::Udp, 8),
            other => return Err(format!("unexpected protocol {other}")),
        };
        let src_port = u16::from_be_bytes([l4[0], l4[1]]);
        let dst_port = u16::from_be_bytes([l4[2], l4[3]]);
        out.push(PcapRecord {
            ts_sec,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            transport,
            payload: l4[header_len..].to_vec(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_httpsim::HttpRequest;

    fn server() -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, 80)
    }

    fn http_packet() -> Packet {
        Packet::http(
            HttpRequest::get("/status.json")
                .with_header("Host", "1x-sport-bk7.com")
                .with_src(Ipv4Addr::new(203, 0, 113, 9))
                .with_port(80)
                .with_time(1_650_000_000),
        )
    }

    #[test]
    fn roundtrip_http_packet() {
        let mut w = PcapWriter::new(server());
        let pkt = http_packet();
        w.write_packet(&pkt);
        assert_eq!(w.packet_count(), 1);
        let records = parse_pcap(&w.finish()).unwrap();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.src_ip, pkt.src_ip);
        assert_eq!(r.dst_ip, server());
        assert_eq!(r.dst_port, 80);
        assert_eq!(r.transport, Transport::Tcp);
        assert_eq!(r.ts_sec, 1_650_000_000);
        let parsed = HttpRequest::parse(&r.payload).unwrap();
        assert_eq!(parsed.uri.path, "/status.json");
    }

    #[test]
    fn roundtrip_udp_raw_packet() {
        let mut w = PcapWriter::new(server());
        let pkt = Packet::raw(
            Ipv4Addr::new(171, 25, 1, 2),
            53,
            Transport::Udp,
            7,
            b"probe-bytes",
        );
        w.write_packet(&pkt);
        let records = parse_pcap(&w.finish()).unwrap();
        assert_eq!(records[0].transport, Transport::Udp);
        assert_eq!(records[0].payload, b"probe-bytes");
        assert_eq!(records[0].dst_port, 53);
    }

    #[test]
    fn ip_header_checksum_validates() {
        let mut w = PcapWriter::new(server());
        w.write_packet(&http_packet());
        let bytes = w.finish();
        // Re-sum the IPv4 header including its checksum: must fold to 0.
        let ip = &bytes[24 + 16 + 14..24 + 16 + 14 + 20];
        let mut sum = 0u32;
        for c in ip.chunks_exact(2) {
            sum += u16::from_be_bytes([c[0], c[1]]) as u32;
        }
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(sum as u16, 0xFFFF, "checksum must verify");
    }

    #[test]
    fn write_all_and_counts() {
        let mut w = PcapWriter::new(server());
        let packets = vec![http_packet(), http_packet(), http_packet()];
        w.write_all(&packets);
        assert_eq!(w.packet_count(), 3);
        assert_eq!(parse_pcap(&w.finish()).unwrap().len(), 3);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_pcap(b"short").is_err());
        assert!(parse_pcap(&[0u8; 24]).is_err()); // wrong magic
    }

    #[test]
    fn empty_capture_is_valid() {
        let w = PcapWriter::new(server());
        let records = parse_pcap(&w.finish()).unwrap();
        assert!(records.is_empty());
    }
}
