//! The interactive responder — the paper's §7 plan to "enhance our
//! NXD-honeypot by implementing the capability to interact with domain
//! visitors. This will provide us with additional information in order to
//! comprehensively understand the purpose of their visits."
//!
//! Interaction stays within the paper's ethics envelope: the responder only
//! answers what it is asked (no outbound contact), serves inert decoys, and
//! never issues commands — a bot polling `getTask.php` receives an explicit
//! empty-task answer, never a task.

use nxd_httpsim::{HttpRequest, HttpResponse, Method};

use crate::landing;
use crate::vulndb;

/// What the responder served, for interaction analytics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    /// The ethics landing page at `/`.
    LandingPage,
    /// An inert JSON decoy for automated pollers (`status.json`,
    /// `getTask.php`, other `.json`/`.php` data endpoints with queries).
    JsonDecoy,
    /// A 1×1 placeholder image for file grabbers and e-mail proxies.
    PixelDecoy,
    /// A refusal (403) for vulnerability probes — logged, never served.
    RefusedProbe,
    /// 404 for everything else.
    NotFound,
    /// 405 for non-GET/HEAD methods.
    MethodRejected,
}

/// Aggregated interaction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InteractionStats {
    pub landing: u64,
    pub json_decoys: u64,
    pub pixel_decoys: u64,
    pub refused_probes: u64,
    pub not_found: u64,
    pub method_rejected: u64,
}

impl InteractionStats {
    pub fn total(&self) -> u64 {
        self.landing
            + self.json_decoys
            + self.pixel_decoys
            + self.refused_probes
            + self.not_found
            + self.method_rejected
    }
}

/// Smallest valid 1×1 transparent GIF (43 bytes) — the classic tracking-
/// pixel payload, served to image grabbers.
pub const PIXEL_GIF: [u8; 43] = [
    0x47, 0x49, 0x46, 0x38, 0x39, 0x61, 0x01, 0x00, 0x01, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00,
    0xFF, 0xFF, 0xFF, 0x21, 0xF9, 0x04, 0x01, 0x00, 0x00, 0x00, 0x00, 0x2C, 0x00, 0x00, 0x00, 0x00,
    0x01, 0x00, 0x01, 0x00, 0x00, 0x02, 0x02, 0x44, 0x01, 0x00, 0x3B,
];

/// The interactive responder.
#[derive(Debug, Default, Clone)]
pub struct InteractiveResponder {
    stats: InteractionStats,
}

impl InteractiveResponder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> InteractionStats {
        self.stats
    }

    /// Serves one request, classifying the interaction.
    pub fn respond(&mut self, req: &HttpRequest) -> (HttpResponse, Interaction) {
        if !matches!(req.method, Method::Get | Method::Head) {
            self.stats.method_rejected += 1;
            return (
                HttpResponse::new(405, "Method Not Allowed"),
                Interaction::MethodRejected,
            );
        }
        // Vulnerability probes are refused before anything else: serving
        // even a decoy would invite follow-up exploitation.
        if vulndb::is_sensitive(&req.uri.path) {
            self.stats.refused_probes += 1;
            return (
                HttpResponse::new(403, "Forbidden")
                    .with_body("text/plain", b"request logged by research honeypot"),
                Interaction::RefusedProbe,
            );
        }
        if req.uri.path == "/" {
            self.stats.landing += 1;
            return (landing::serve(req), Interaction::LandingPage);
        }
        let ext = req.uri.extension();
        match ext.as_deref() {
            // Automated pollers: an explicit empty answer keeps the session
            // alive and observable without commanding anything.
            Some("json") => {
                self.stats.json_decoys += 1;
                let body = br#"{"status":"ok","tasks":[],"notice":"research honeypot"}"#;
                (
                    HttpResponse::new(200, "OK").with_body("application/json", body),
                    Interaction::JsonDecoy,
                )
            }
            Some("php") if req.uri.has_query() => {
                self.stats.json_decoys += 1;
                let body = br#"{"result":"none","notice":"research honeypot"}"#;
                (
                    HttpResponse::new(200, "OK").with_body("application/json", body),
                    Interaction::JsonDecoy,
                )
            }
            // Image grabbers (including e-mail proxies) get the pixel.
            Some("jpeg") | Some("jpg") | Some("png") | Some("gif") | Some("ico") => {
                self.stats.pixel_decoys += 1;
                (
                    HttpResponse::new(200, "OK").with_body("image/gif", &PIXEL_GIF),
                    Interaction::PixelDecoy,
                )
            }
            _ => {
                self.stats.not_found += 1;
                (
                    HttpResponse::new(404, "Not Found")
                        .with_body("text/html", b"<html><body>Not found.</body></html>"),
                    Interaction::NotFound,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> HttpRequest {
        HttpRequest::get(path)
    }

    #[test]
    fn landing_page_at_root() {
        let mut r = InteractiveResponder::new();
        let (resp, kind) = r.respond(&get("/"));
        assert_eq!(kind, Interaction::LandingPage);
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("measurement study"));
    }

    #[test]
    fn gettask_poll_gets_empty_task_decoy() {
        let mut r = InteractiveResponder::new();
        let (resp, kind) = r.respond(&get("/getTask.php?imei=1&country=us"));
        assert_eq!(kind, Interaction::JsonDecoy);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8_lossy(&resp.body);
        assert!(body.contains("\"result\":\"none\""), "{body}");
        assert!(body.contains("research honeypot"));
    }

    #[test]
    fn status_json_served() {
        let mut r = InteractiveResponder::new();
        let (resp, kind) = r.respond(&get("/status.json"));
        assert_eq!(kind, Interaction::JsonDecoy);
        assert!(String::from_utf8_lossy(&resp.body).contains("\"tasks\":[]"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn image_requests_get_pixel() {
        let mut r = InteractiveResponder::new();
        for path in ["/banner.png", "/photo.jpeg", "/favicon.ico"] {
            let (resp, kind) = r.respond(&get(path));
            assert_eq!(kind, Interaction::PixelDecoy, "{path}");
            assert_eq!(resp.body, PIXEL_GIF.to_vec());
        }
    }

    #[test]
    fn vulnerability_probes_refused() {
        let mut r = InteractiveResponder::new();
        let (resp, kind) = r.respond(&get("/wp-login.php?user=admin"));
        assert_eq!(
            kind,
            Interaction::RefusedProbe,
            "sensitivity beats the php-query decoy"
        );
        assert_eq!(resp.status, 403);
    }

    #[test]
    fn unknown_content_404s() {
        let mut r = InteractiveResponder::new();
        let (resp, kind) = r.respond(&get("/video.mp4"));
        assert_eq!(kind, Interaction::NotFound);
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn post_rejected() {
        let mut r = InteractiveResponder::new();
        let mut req = get("/");
        req.method = Method::Post;
        let (resp, kind) = r.respond(&req);
        assert_eq!(kind, Interaction::MethodRejected);
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = InteractiveResponder::new();
        r.respond(&get("/"));
        r.respond(&get("/status.json"));
        r.respond(&get("/x.png"));
        r.respond(&get("/wp-login.php"));
        r.respond(&get("/other.html"));
        let s = r.stats();
        assert_eq!(s.landing, 1);
        assert_eq!(s.json_decoys, 1);
        assert_eq!(s.pixel_decoys, 1);
        assert_eq!(s.refused_probes, 1);
        assert_eq!(s.not_found, 1);
        assert_eq!(s.total(), 5);
    }
}
