//! The ethics landing page (Appendix A): every registered domain serves a
//! static page describing the study with contact information, and the
//! honeypot never initiates contact with visitors.

use nxd_httpsim::{HttpRequest, HttpResponse, Method};

/// The landing page body served at `/`.
pub const LANDING_PAGE: &str = "<!doctype html>\n<html><head><title>Research Study Notice</title></head>\n<body>\n<h1>This domain is part of an academic measurement study</h1>\n<p>This previously expired domain has been re-registered by researchers to\nmeasure residual traffic to non-existent domains (NXDomains). We passively\nrecord inbound requests only; no interaction is initiated with visitors.</p>\n<p>Contact: nxdomain-study@example.edu &mdash; we will answer questions and\nhonour removal requests.</p>\n</body></html>\n";

/// Serves the landing page: `200` with the notice at `/`, `404` elsewhere,
/// `405` for non-GET/HEAD methods. HEAD responses carry no body.
pub fn serve(req: &HttpRequest) -> HttpResponse {
    match req.method {
        Method::Get | Method::Head => {
            let mut resp = if req.uri.path == "/" {
                HttpResponse::new(200, "OK")
                    .with_body("text/html; charset=utf-8", LANDING_PAGE.as_bytes())
            } else {
                HttpResponse::new(404, "Not Found").with_body(
                    "text/html; charset=utf-8",
                    b"<html><body>Not found.</body></html>",
                )
            };
            if req.method == Method::Head {
                resp.body.clear();
            }
            resp
        }
        _ => HttpResponse::new(405, "Method Not Allowed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_serves_notice() {
        let resp = serve(&HttpRequest::get("/"));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("measurement study"));
    }

    #[test]
    fn other_paths_404() {
        let resp = serve(&HttpRequest::get("/wp-login.php"));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn head_has_no_body() {
        let mut req = HttpRequest::get("/");
        req.method = Method::Head;
        let resp = serve(&req);
        assert_eq!(resp.status, 200);
        assert!(resp.body.is_empty());
    }

    #[test]
    fn post_is_rejected() {
        let mut req = HttpRequest::get("/");
        req.method = Method::Post;
        assert_eq!(serve(&req).status, 405);
    }
}
