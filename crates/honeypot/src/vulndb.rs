//! Sensitive-URI lookup — the NVD substitute (§6.2 ③).
//!
//! The paper searches the NIST National Vulnerability Database for the
//! requested file name and treats a URI as sensitive if an associated
//! vulnerability has at least medium severity. This module embeds the table
//! of probe paths that dominate real honeypot traffic with CVSS-like
//! severities.

/// CVSS-style severity bands (NVD's qualitative scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Low,
    Medium,
    High,
    Critical,
}

/// Known sensitive path fragments with their worst associated severity.
/// Matching is case-insensitive on the URI path.
const SENSITIVE_PATHS: &[(&str, Severity)] = &[
    ("wp-login.php", Severity::High),
    ("wp-admin", Severity::High),
    ("wp-config.php", Severity::Critical),
    ("xmlrpc.php", Severity::Medium),
    ("changepassword.php", Severity::High),
    ("changepasswd.php", Severity::High),
    ("admin.php", Severity::Medium),
    ("administrator/index.php", Severity::Medium),
    ("phpmyadmin", Severity::High),
    ("shell.php", Severity::Critical),
    ("cmd.php", Severity::Critical),
    ("eval-stdin.php", Severity::Critical),
    (".env", Severity::Critical),
    (".git/config", Severity::High),
    (".aws/credentials", Severity::Critical),
    ("etc/passwd", Severity::Critical),
    ("config.php", Severity::Medium),
    ("setup.php", Severity::Medium),
    ("install.php", Severity::Medium),
    ("login.jsp", Severity::Medium),
    ("manager/html", Severity::High),
    ("boaform", Severity::High),
    ("hnap1", Severity::High),
    ("cgi-bin/", Severity::Medium),
    ("solr/admin", Severity::High),
    ("actuator/env", Severity::High),
    ("id_rsa", Severity::Critical),
    ("backup.sql", Severity::High),
    ("dump.sql", Severity::High),
    ("web.config", Severity::Medium),
    ("owa/auth", Severity::High),
    ("autodiscover", Severity::Medium),
];

/// The worst severity associated with a URI path, if any.
pub fn severity(path: &str) -> Option<Severity> {
    let l = path.to_ascii_lowercase();
    SENSITIVE_PATHS
        .iter()
        .filter(|(frag, _)| l.contains(frag))
        .map(|&(_, s)| s)
        .max()
}

/// The paper's sensitivity rule: associated vulnerability of severity
/// greater than or equal to medium.
pub fn is_sensitive(path: &str) -> bool {
    severity(path).is_some_and(|s| s >= Severity::Medium)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_are_sensitive() {
        // §6.2: "e.g., wp-login.php, changepasswd.php".
        assert!(is_sensitive("/wp-login.php"));
        assert!(is_sensitive("/changepasswd.php"));
        assert!(is_sensitive("/changepassword.php"));
    }

    #[test]
    fn ordinary_content_is_not() {
        for p in [
            "/",
            "/index.html",
            "/status.json",
            "/images/logo.png",
            "/video.mp4",
        ] {
            assert!(!is_sensitive(p), "{p}");
        }
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Critical > Severity::High);
        assert!(Severity::High > Severity::Medium);
        assert!(Severity::Medium > Severity::Low);
    }

    #[test]
    fn worst_severity_wins() {
        // A path hitting both a Medium and a Critical fragment.
        assert_eq!(severity("/cgi-bin/shell.php"), Some(Severity::Critical));
    }

    #[test]
    fn case_insensitive() {
        assert!(is_sensitive("/WP-LOGIN.PHP"));
        assert!(is_sensitive("/HNAP1/"));
    }

    #[test]
    fn nested_paths_match() {
        assert!(is_sensitive("/blog/wp-admin/setup.php"));
        assert!(is_sensitive("/a/b/../etc/passwd"));
    }
}
