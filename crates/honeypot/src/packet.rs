//! Inbound packet model and the well-known-port table.
//!
//! NXD-Honeypot "accepts TCP and UDP packets from all well-known and
//! standardized ports" (§3.4) and records source address, ports, and
//! payload. HTTP/HTTPS payloads are parsed; everything else stays raw.

use std::net::Ipv4Addr;

use nxd_httpsim::HttpRequest;

/// Transport protocol of an inbound packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    Tcp,
    Udp,
}

/// Payload as recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A parsed HTTP/HTTPS request (443 is modeled post-TLS-termination).
    Http(HttpRequest),
    /// Raw bytes on any other port (scanners, probes, AWS health checks).
    Raw(Vec<u8>),
}

/// One recorded inbound packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub src_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub transport: Transport,
    /// Unix seconds (simulated clock).
    pub timestamp: u64,
    pub payload: Payload,
}

impl Packet {
    /// Wraps an HTTP request as a TCP packet to its destination port.
    pub fn http(req: HttpRequest) -> Packet {
        Packet {
            src_ip: req.src_ip,
            src_port: 40_000,
            dst_port: req.dst_port,
            transport: Transport::Tcp,
            timestamp: req.timestamp,
            payload: Payload::Http(req),
        }
    }

    /// A raw probe packet.
    pub fn raw(
        src_ip: Ipv4Addr,
        dst_port: u16,
        transport: Transport,
        timestamp: u64,
        bytes: &[u8],
    ) -> Packet {
        Packet {
            src_ip,
            src_port: 50_000,
            dst_port,
            transport,
            timestamp,
            payload: Payload::Raw(bytes.to_vec()),
        }
    }

    /// The parsed HTTP request, if this is an HTTP packet.
    pub fn http_request(&self) -> Option<&HttpRequest> {
        match &self.payload {
            Payload::Http(r) => Some(r),
            Payload::Raw(_) => None,
        }
    }

    pub fn is_http(&self) -> bool {
        matches!(self.payload, Payload::Http(_))
    }
}

/// Human label for well-known destination ports (Fig. 10's x-axis).
pub fn port_service(port: u16) -> &'static str {
    match port {
        21 => "ftp",
        22 => "ssh",
        23 => "telnet",
        25 => "smtp",
        53 => "dns",
        80 => "http",
        110 => "pop3",
        123 => "ntp",
        143 => "imap",
        443 => "https",
        445 => "smb",
        465 => "smtps",
        587 => "submission",
        993 => "imaps",
        995 => "pop3s",
        1433 => "mssql",
        3306 => "mysql",
        3389 => "rdp",
        5060 => "sip",
        5432 => "postgres",
        6379 => "redis",
        8080 => "http-alt",
        8443 => "https-alt",
        27017 => "mongodb",
        52646 => "aws-monitor",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_packet_wraps_request() {
        let req = HttpRequest::get("/")
            .with_src(Ipv4Addr::new(10, 0, 0, 1))
            .with_port(443)
            .with_time(5);
        let pkt = Packet::http(req.clone());
        assert!(pkt.is_http());
        assert_eq!(pkt.dst_port, 443);
        assert_eq!(pkt.timestamp, 5);
        assert_eq!(pkt.http_request(), Some(&req));
    }

    #[test]
    fn raw_packet_has_no_request() {
        let pkt = Packet::raw(
            Ipv4Addr::new(10, 0, 0, 2),
            22,
            Transport::Tcp,
            9,
            b"SSH-2.0-probe",
        );
        assert!(!pkt.is_http());
        assert!(pkt.http_request().is_none());
    }

    #[test]
    fn port_labels() {
        assert_eq!(port_service(80), "http");
        assert_eq!(port_service(443), "https");
        assert_eq!(port_service(52646), "aws-monitor");
        assert_eq!(port_service(12345), "other");
    }
}
