//! Referrer classification — the FortiGuard Web Filter substitute (§6.3,
//! "Referral").
//!
//! The paper classifies Referer URLs three ways: search-engine pages,
//! benign pages that genuinely embed a link to the registered domain, and
//! malicious links (the referer is invalid or does not contain the link —
//! "intentionally crafted with false information").

use std::collections::{HashMap, HashSet};

/// Outcome of referrer classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReferralKind {
    SearchEngine,
    EmbeddedUrl,
    MaliciousLink,
}

/// Search-engine referrer hosts (registrable domains).
const SEARCH_ENGINES: &[&str] = &[
    "google.com",
    "bing.com",
    "yahoo.com",
    "duckduckgo.com",
    "yandex.ru",
    "baidu.com",
    "mail.ru",
    "sogou.com",
    "naver.com",
    "seznam.cz",
    "qwant.com",
    "ecosia.org",
];

/// The web-of-pages model: which referer URLs exist, and which domains each
/// page links to. The §6.3 procedure ("we obtain the redirecting web page
/// using cURL and check if the URLs associated with our registered domains
/// are embedded") becomes a lookup here.
#[derive(Debug, Default, Clone)]
pub struct WebFilter {
    /// Referer URL → set of registrable domains hyperlinked on that page.
    /// A URL absent from the map does not resolve (invalid page).
    pages: HashMap<String, HashSet<String>>,
}

impl WebFilter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fetchable page and the domains it links to.
    pub fn add_page<'a, I: IntoIterator<Item = &'a str>>(&mut self, url: &str, links_to: I) {
        self.pages.insert(
            url.to_string(),
            links_to.into_iter().map(str::to_string).collect(),
        );
    }

    /// Whether `url`'s host is a known search engine.
    pub fn is_search_engine(url: &str) -> bool {
        let host = host_of(url);
        SEARCH_ENGINES
            .iter()
            .any(|se| host == *se || host.ends_with(&format!(".{se}")))
    }

    /// Classifies a Referer URL with respect to `our_domain`.
    pub fn classify(&self, referer: &str, our_domain: &str) -> ReferralKind {
        if Self::is_search_engine(referer) {
            return ReferralKind::SearchEngine;
        }
        match self.pages.get(referer) {
            Some(links) if links.contains(our_domain) => ReferralKind::EmbeddedUrl,
            // Page exists but carries no hyperlink to us, or does not
            // resolve at all: a crafted referer.
            _ => ReferralKind::MaliciousLink,
        }
    }
}

/// Extracts the registrable host of a URL-ish string (scheme optional).
fn host_of(url: &str) -> String {
    let no_scheme = url.split("://").nth(1).unwrap_or(url);
    let host = no_scheme.split(['/', '?', '#']).next().unwrap_or("");
    let host = host.split('@').next_back().unwrap_or(host); // strip userinfo
    let host = host.split(':').next().unwrap_or(host); // strip port
    let labels: Vec<&str> = host.split('.').filter(|l| !l.is_empty()).collect();
    if labels.len() >= 2 {
        format!("{}.{}", labels[labels.len() - 2], labels[labels.len() - 1])
    } else {
        host.to_string()
    }
    .to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_engines_detected() {
        assert!(WebFilter::is_search_engine(
            "https://www.google.com/search?q=resheba"
        ));
        assert!(WebFilter::is_search_engine("https://go.mail.ru/search?q=x"));
        assert!(WebFilter::is_search_engine("http://yandex.ru/yandsearch"));
        assert!(!WebFilter::is_search_engine(
            "https://someforum.example/thread/1"
        ));
    }

    #[test]
    fn embedded_link_detected() {
        let mut wf = WebFilter::new();
        wf.add_page(
            "https://forum.example/thread/42",
            ["resheba.online", "other.com"],
        );
        assert_eq!(
            wf.classify("https://forum.example/thread/42", "resheba.online"),
            ReferralKind::EmbeddedUrl
        );
    }

    #[test]
    fn missing_link_is_malicious() {
        let mut wf = WebFilter::new();
        wf.add_page("https://blog.example/post", ["unrelated.com"]);
        assert_eq!(
            wf.classify("https://blog.example/post", "resheba.online"),
            ReferralKind::MaliciousLink
        );
    }

    #[test]
    fn invalid_page_is_malicious() {
        let wf = WebFilter::new();
        assert_eq!(
            wf.classify("https://no-such-page.example/x", "resheba.online"),
            ReferralKind::MaliciousLink
        );
    }

    #[test]
    fn search_engine_beats_page_lookup() {
        let mut wf = WebFilter::new();
        wf.add_page("https://www.google.com/search?q=x", ["resheba.online"]);
        assert_eq!(
            wf.classify("https://www.google.com/search?q=x", "resheba.online"),
            ReferralKind::SearchEngine
        );
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("https://a.b.example.com:8080/p?q#f"), "example.com");
        assert_eq!(host_of("example.com/path"), "example.com");
        assert_eq!(host_of("https://user@site.org/"), "site.org");
        assert_eq!(host_of("localhost"), "localhost");
    }
}
