//! CI `stream-smoke`: boot the DNS front-end with a live streaming engine
//! attached, replay a loadgen burst, and assert the streaming plane's two
//! contracts end to end over real sockets:
//!
//! 1. **Live**: while the front-end is still up (the served database not
//!    yet collected), the engine snapshot is non-empty and all four
//!    stream metrics are scrapeable from the `nxd-obs` plane.
//! 2. **Convergence**: after shutdown, the streaming snapshot equals the
//!    batch query engine run over the served database — which itself
//!    equals the offline reference ingest.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use nxd_obs::{client, ObsServer};
use nxd_passive_dns::{query, StreamEngine};
use nxd_serve::{
    build_world, ingest_parity, loadgen, offline_reference, DnsServer, LoadConfig, LoadReport,
    ServeConfig, WorldConfig,
};
use nxd_telemetry::Telemetry;

/// The four metrics the streaming engine registers; every one must be
/// scrapeable from `/metrics` while the run is live.
const STREAM_METRICS: [&str; 4] = [
    "stream_queue_depth",
    "stream_watermark_lag_days",
    "stream_late_rows_total",
    "stream_windows_closed_total",
];

#[test]
fn live_stream_aggregates_are_scrapeable_and_converge_to_offline() {
    let world = build_world(&WorldConfig {
        nx_names: 150,
        registered: 20,
        queries: 2_000,
        ..WorldConfig::default()
    });
    let telemetry = Arc::new(Telemetry::wall());
    let engine = StreamEngine::default();
    engine.attach_metrics(&telemetry.registry);
    engine.attach_journal(telemetry.journal.clone());

    let obs = ObsServer::bind("127.0.0.1:0", telemetry.clone()).expect("obs binds");
    let obs_addr = obs.local_addr().to_string();
    let server = DnsServer::bind(
        "127.0.0.1:0",
        world.dns.clone(),
        telemetry.clone(),
        ServeConfig {
            day: world.day,
            stream: Some(engine.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind on loopback");
    let dns_addr = server.local_addr();

    // Drive the fleet from a scoped worker while this thread polls the
    // observability plane — a best-effort mid-flight race (asserted
    // deterministically below, once the load is done but the server is
    // still up).
    let load = LoadConfig {
        clients: 8,
        tcp_permille: 250,
        ..LoadConfig::default()
    };
    let done = AtomicBool::new(false);
    let report_slot: Mutex<Option<LoadReport>> = Mutex::new(None);
    let mut polls = 0u32;
    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            let report = loadgen::run(dns_addr, &world, &load, &telemetry).expect("fleet runs");
            *report_slot.lock().unwrap() = Some(report);
            done.store(true, Ordering::SeqCst);
        });
        while !done.load(Ordering::SeqCst) {
            let scrape = client::http_get(&obs_addr, "/metrics").expect("scrape");
            assert_eq!(scrape.status, 200);
            polls += 1;
        }
    })
    .expect("no worker panicked");
    assert!(polls > 0, "the poller never ran");
    let report = report_slot.into_inner().unwrap().expect("report recorded");
    assert_eq!(report.failures, 0, "every query must be answered");

    // Live contract: the server is still serving, the sink has not been
    // collected — yet the streaming aggregates are already complete and
    // every stream metric is on the exposition.
    let live = engine.snapshot();
    assert!(live.admitted_rows > 0, "live snapshot is empty");
    assert!(live.total_nx_responses > 0, "no NXDOMAINs seen live");
    assert!(live.distinct_nx_estimate > 0, "sketch plane is empty");
    let metrics = client::http_get(&obs_addr, "/metrics").expect("scrape");
    for name in STREAM_METRICS {
        assert!(
            metrics.body.contains(name),
            "{name} missing from /metrics:\n{}",
            metrics.body
        );
    }
    let json = client::http_get(&obs_addr, "/snapshot.json").expect("scrape");
    assert_eq!(json.status, 200);
    assert!(json.body.contains("stream_late_rows_total"));

    // Convergence contract: snapshot ≡ batch oracle over the served rows.
    let served = server.shutdown();
    let snap = engine.snapshot();
    assert_eq!(snap.admitted_rows, served.row_count() as u64);
    assert_eq!(snap.late.rows, 0, "single-day traffic cannot be late");
    assert_eq!(snap.rcode_breakdown, query::rcode_breakdown(&served));
    assert_eq!(snap.total_nx_responses, query::total_nx_responses(&served));
    assert_eq!(snap.distinct_nx_names, query::distinct_nx_names(&served));
    assert_eq!(snap.nx_by_sensor, query::nx_by_sensor(&served));
    assert_eq!(snap.tld_distribution, query::tld_distribution(&served));
    let offline = offline_reference(&world, world.day, 0);
    ingest_parity(&served, &offline).expect("served ingest must equal offline ingest");

    // The queue drained (depth gauge rests at zero), and with all rows on
    // one day the watermark sits exactly `allowed_lateness_days` behind.
    let tsnap = telemetry.snapshot();
    assert_eq!(tsnap.gauge_value("stream_queue_depth"), Some(0));
    assert_eq!(
        tsnap.gauge_value("stream_watermark_lag_days"),
        Some(i64::from(engine.config().window.allowed_lateness_days))
    );
    assert_eq!(tsnap.counter_total("stream_late_rows_total"), 0);
    obs.shutdown();
}
