//! End-to-end smoke over real sockets: boot the front-end on
//! `127.0.0.1:0` (UDP+TCP on the same port), drive a mixed query set —
//! NOERROR answers, NODATA, authoritative NXDOMAIN, TLD/root NXDOMAIN —
//! with the crate-native client fleet, and assert the three contracts: per
//! rcode counts, byte parity with offline `SimDns::respond`, and exact
//! served≡offline ingest parity. This is the CI `serve-smoke` job; no
//! external tools.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use nxd_dns_wire::{Message, RCode};
use nxd_serve::{
    answer, build_world, ingest_parity, loadgen, offline_reference, route, tcp_exchange, DnsServer,
    LoadConfig, ServeConfig, ServeWorld, StubResolver, WorldConfig, MAX_TCP_MESSAGE,
};
use nxd_telemetry::Telemetry;

fn boot(config: &WorldConfig) -> (DnsServer, ServeWorld, Arc<Telemetry>) {
    let world = build_world(config);
    let telemetry = Arc::new(Telemetry::wall());
    let server = DnsServer::bind(
        "127.0.0.1:0",
        world.dns.clone(),
        telemetry.clone(),
        ServeConfig {
            day: world.day,
            ..ServeConfig::default()
        },
    )
    .expect("bind on loopback");
    (server, world, telemetry)
}

#[test]
fn mixed_load_matches_offline_rcodes_and_ingest() {
    let config = WorldConfig {
        nx_names: 150,
        registered: 20,
        queries: 1_200,
        ..WorldConfig::default()
    };
    let (server, world, telemetry) = boot(&config);
    let load = LoadConfig {
        clients: 8,
        tcp_permille: 250,
        ..LoadConfig::default()
    };
    let report = loadgen::run(server.local_addr(), &world, &load, &telemetry).expect("fleet runs");

    assert_eq!(
        report.failures, 0,
        "every query must be answered: {report:?}"
    );
    assert_eq!(report.queries, 1_200);
    assert!(report.udp_queries > 0, "no UDP coverage");
    assert!(report.tcp_queries > 0, "no TCP coverage");

    // Observed rcode counts must equal the offline answers, query by query.
    let mut expected: BTreeMap<u8, u64> = BTreeMap::new();
    for wire in &world.queries {
        let answered = answer(&world.dns, wire).expect("world queries decode");
        *expected.entry(answered.rcode.to_u8()).or_insert(0) += 1;
    }
    assert_eq!(report.rcodes, expected);
    let nx = expected.get(&RCode::NxDomain.to_u8()).copied().unwrap_or(0);
    let noerror = expected.get(&RCode::NoError.to_u8()).copied().unwrap_or(0);
    assert!(nx > 0, "the mix must include NXDOMAINs");
    assert!(noerror > 0, "the mix must include NOERRORs");

    // Served-ingest ≡ offline-ingest, exactly.
    let served = server.shutdown();
    assert_eq!(served.row_count(), world.queries.len());
    let offline = offline_reference(&world, world.day, 0);
    ingest_parity(&served, &offline).expect("served ingest must equal offline ingest");

    // The front-end reported itself: qps inputs, rcode mix, latency.
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counter_total("serve_tcp_queries_total"),
        report.tcp_queries
    );
    assert!(snap.counter_total("serve_udp_queries_total") >= report.udp_queries);
    // Every query was answered at least once; a retransmitted query may
    // have been answered once per arriving copy.
    let responses = snap.counter_total("serve_responses_total");
    assert!(responses >= report.queries);
    assert!(responses <= report.queries + report.retransmits);
    assert!(snap.histogram_total("serve_request_latency_ns").count() > 0);
    assert_eq!(snap.counter_total("serve_handler_panics_total"), 0);
}

#[test]
fn served_bytes_equal_offline_respond_over_udp() {
    let (server, world, _telemetry) = boot(&WorldConfig {
        nx_names: 60,
        registered: 10,
        queries: 64,
        ..WorldConfig::default()
    });
    let stub =
        StubResolver::connect(server.local_addr(), Duration::from_secs(2), 3).expect("stub binds");
    for wire in &world.queries {
        let exchange = stub.exchange(wire).expect("answered");
        let decoded = Message::decode(wire).expect("world queries decode");
        let offline = world
            .dns
            .respond(&route(&world.dns, &decoded), wire)
            .expect("offline respond");
        assert_eq!(
            exchange.response, offline,
            "served bytes differ from SimDns::respond"
        );
    }
    drop(server.shutdown());
}

#[test]
fn served_bytes_equal_offline_respond_over_tcp() {
    let (server, world, _telemetry) = boot(&WorldConfig {
        nx_names: 60,
        registered: 10,
        queries: 32,
        ..WorldConfig::default()
    });
    let responses = tcp_exchange(
        server.local_addr(),
        &world.queries,
        Duration::from_secs(2),
        MAX_TCP_MESSAGE,
    )
    .expect("pipelined exchange");
    assert_eq!(responses.len(), world.queries.len());
    for (wire, response) in world.queries.iter().zip(&responses) {
        let served = answer(&world.dns, wire).expect("decodes");
        assert_eq!(response, &served.wire);
    }
    drop(server.shutdown());
}

#[test]
fn udp_retransmissions_do_not_inflate_the_served_database() {
    let (server, world, telemetry) = boot(&WorldConfig {
        nx_names: 40,
        registered: 5,
        queries: 16,
        ..WorldConfig::default()
    });
    let stub =
        StubResolver::connect(server.local_addr(), Duration::from_secs(2), 3).expect("stub binds");
    // Send the same stamped query three times by hand (a lost-response
    // client would do exactly this), then a fresh id for the same name.
    let wire = world.queries.first().expect("non-empty world").clone();
    for _ in 0..3 {
        let exchange = stub.exchange(&wire).expect("answered");
        assert!(!exchange.response.is_empty());
    }
    let mut fresh = wire.clone();
    nxd_serve::stamp_id(&mut fresh, 0x7777);
    stub.exchange(&fresh).expect("answered");

    let served = server.shutdown();
    // 3 sends of one (peer, id, name) dedup to 1 row; the fresh id adds 1.
    assert_eq!(served.row_count(), 2);
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter_total("serve_sink_duplicates_total"), 2);
}
