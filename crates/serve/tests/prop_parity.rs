//! Property tests for the two serving contracts.
//!
//! * **Byte parity** — for ANY question (era names, random labels, odd
//!   rtypes, any id) the served answer path returns exactly
//!   `SimDns::respond`'s bytes for the routed server.
//! * **Ingest parity** — for ANY replay schedule over real UDP sockets —
//!   duplicate names, colliding query ids, retransmission-shaped repeats —
//!   the served database equals the offline ingest of the distinct
//!   (query id, name) multiset, with exact counts.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use nxd_dns_wire::{Message, Name, RType};
use nxd_passive_dns::PassiveDb;
use nxd_serve::{
    answer, build_world, ingest_parity, route, stamp_id, DnsServer, ServeConfig, ServeWorld,
    StubResolver, WorldConfig,
};
use nxd_telemetry::Telemetry;
use proptest::prelude::*;

fn world() -> &'static ServeWorld {
    static WORLD: OnceLock<ServeWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        build_world(&WorldConfig {
            nx_names: 60,
            registered: 10,
            queries: 48,
            ..WorldConfig::default()
        })
    })
}

const LABELS: [&str; 6] = ["alpha", "www", "ns1", "ghost", "x", "very-long-label-here"];
const TLDS: [&str; 5] = ["com", "ru", "top", "unknowntld", "io"];

fn arb_name() -> impl Strategy<Value = Name> {
    (
        0usize..LABELS.len(),
        0usize..LABELS.len(),
        0usize..TLDS.len(),
        any::<bool>(),
    )
        .prop_map(|(a, b, tld, deep)| {
            let name = if deep {
                format!("{}.{}.{}", LABELS[a], LABELS[b], TLDS[tld])
            } else {
                format!("{}.{}", LABELS[a], TLDS[tld])
            };
            name.parse().expect("generated names are valid")
        })
}

fn arb_rtype() -> impl Strategy<Value = RType> {
    prop_oneof![
        Just(RType::A),
        Just(RType::Aaaa),
        Just(RType::Mx),
        Just(RType::Txt),
        Just(RType::Ns),
        Just(RType::Soa),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Served answers are byte-identical to offline `SimDns::respond`.
    #[test]
    fn answer_equals_respond(name in arb_name(), rtype in arb_rtype(), id in 0u16..=u16::MAX) {
        let world = world();
        let wire = Message::query(id, name, rtype).encode().expect("encodes");
        let decoded = Message::decode(&wire).expect("round-trips");
        let offline = world
            .dns
            .respond(&route(&world.dns, &decoded), &wire)
            .expect("respond");
        let served = answer(&world.dns, &wire).expect("answered");
        prop_assert_eq!(served.wire, offline);
        prop_assert_eq!(served.question.map(|(qid, _)| qid), Some(id));
    }
}

proptest! {
    // Each case boots a real server; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A served replay's database equals the offline ingest of the same
    /// schedule — duplicates (same id + name = retransmission) dedup to
    /// one row on both sides.
    #[test]
    fn served_ingest_equals_offline_ingest(
        schedule in proptest::collection::vec((0usize..48, 0u16..6), 1..40)
    ) {
        let world = world();
        let telemetry = Arc::new(Telemetry::wall());
        let server = DnsServer::bind(
            "127.0.0.1:0",
            world.dns.clone(),
            telemetry.clone(),
            ServeConfig { day: world.day, ..ServeConfig::default() },
        )
        .expect("bind");
        let stub = StubResolver::connect(server.local_addr(), Duration::from_secs(2), 3)
            .expect("stub");

        // Offline: ingest each *distinct* (id, name) once, like the sink.
        let mut offline = PassiveDb::new();
        let mut seen: BTreeMap<(u16, String), ()> = BTreeMap::new();
        for &(index, id) in &schedule {
            let mut wire = world.queries.get(index).expect("index in range").clone();
            stamp_id(&mut wire, id);
            let exchange = stub.exchange(&wire).expect("answered");
            prop_assert!(!exchange.response.is_empty());
            let answered = answer(&world.dns, &wire).expect("decodes");
            let (qid, qname) = answered.question.clone().expect("has a question");
            if seen.insert((qid, qname.clone()), ()).is_none() {
                offline.record_str(&qname, world.day, 0, answered.rcode, 1);
            }
        }

        let served = server.shutdown();
        prop_assert_eq!(served.row_count(), seen.len());
        if let Err(err) = ingest_parity(&served, &offline) {
            return Err(err.to_string());
        }
    }
}
